//! Connected components of filled cells (paper §II-B).
//!
//! The paper builds a graph over filled cells with edges between adjacent
//! cells and takes connected components; components are the candidate
//! "tabular regions". We use union-find; adjacency is configurable
//! (4-neighbour rook or 8-neighbour queen — the paper just says
//! "adjacent"; queen adjacency merges diagonally-touching regions and is
//! the default here).

use std::collections::HashMap;

use dataspread_grid::{CellAddr, Rect, SparseSheet};

/// Cell adjacency for component construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Adjacency {
    /// Up/down/left/right.
    Four,
    /// Four plus diagonals.
    #[default]
    Eight,
}

/// A connected component of filled cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Number of filled cells in the component.
    pub cells: usize,
    /// Minimum bounding rectangle.
    pub bbox: Rect,
}

impl Component {
    /// Density of the component: filled cells / bounding-box area
    /// (Figure 4's statistic).
    pub fn density(&self) -> f64 {
        self.cells as f64 / self.bbox.area() as f64
    }
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

/// Compute the connected components of a sheet's filled cells.
pub fn connected_components(sheet: &SparseSheet, adj: Adjacency) -> Vec<Component> {
    let cells: Vec<CellAddr> = sheet.iter().map(|(a, _)| a).collect();
    if cells.is_empty() {
        return Vec::new();
    }
    let index: HashMap<(u32, u32), u32> = cells
        .iter()
        .enumerate()
        .map(|(i, a)| ((a.row, a.col), i as u32))
        .collect();
    let mut uf = UnionFind::new(cells.len());
    // Only look at "earlier" neighbours (row-major order) — each edge once.
    let neighbours_four: [(i64, i64); 2] = [(-1, 0), (0, -1)];
    let neighbours_eight: [(i64, i64); 4] = [(-1, -1), (-1, 0), (-1, 1), (0, -1)];
    for (i, a) in cells.iter().enumerate() {
        let deltas: &[(i64, i64)] = match adj {
            Adjacency::Four => &neighbours_four,
            Adjacency::Eight => &neighbours_eight,
        };
        for &(dr, dc) in deltas {
            let nr = a.row as i64 + dr;
            let nc = a.col as i64 + dc;
            if nr < 0 || nc < 0 {
                continue;
            }
            if let Some(&j) = index.get(&(nr as u32, nc as u32)) {
                uf.union(i as u32, j);
            }
        }
    }
    let mut comps: HashMap<u32, Component> = HashMap::new();
    for (i, a) in cells.iter().enumerate() {
        let root = uf.find(i as u32);
        let rect = Rect::cell(*a);
        comps
            .entry(root)
            .and_modify(|c| {
                c.cells += 1;
                c.bbox = c.bbox.bbox_union(&rect);
            })
            .or_insert(Component {
                cells: 1,
                bbox: rect,
            });
    }
    let mut out: Vec<Component> = comps.into_values().collect();
    out.sort_by_key(|c| (c.bbox.r1, c.bbox.c1, c.bbox.r2, c.bbox.c2));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sheet(cells: &[(u32, u32)]) -> SparseSheet {
        let mut s = SparseSheet::new();
        for &(r, c) in cells {
            s.set_value(CellAddr::new(r, c), 1i64);
        }
        s
    }

    #[test]
    fn empty_sheet_has_no_components() {
        assert!(connected_components(&SparseSheet::new(), Adjacency::Eight).is_empty());
    }

    #[test]
    fn two_separate_blocks() {
        let s = sheet(&[(0, 0), (0, 1), (1, 0), (5, 5), (5, 6)]);
        let comps = connected_components(&s, Adjacency::Four);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].cells, 3);
        assert_eq!(comps[0].bbox, Rect::new(0, 0, 1, 1));
        assert!((comps[0].density() - 0.75).abs() < 1e-12);
        assert_eq!(comps[1].cells, 2);
    }

    #[test]
    fn diagonal_touch_merges_only_under_eight() {
        let s = sheet(&[(0, 0), (1, 1)]);
        assert_eq!(connected_components(&s, Adjacency::Four).len(), 2);
        assert_eq!(connected_components(&s, Adjacency::Eight).len(), 1);
    }

    #[test]
    fn snake_is_one_component() {
        // A winding 1-wide path: down column 0, across row 5, up column 4.
        let mut cells: Vec<(u32, u32)> = (0..6).map(|r| (r, 0)).collect();
        cells.extend((1..5).map(|c| (5, c)));
        cells.extend((0..6).map(|r| (r, 4)));
        let s = sheet(&cells);
        let comps = connected_components(&s, Adjacency::Four);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].cells, s.filled_count());
        assert!(comps[0].density() < 0.7, "snakes are not tabular");
    }
}
