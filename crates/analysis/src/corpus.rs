//! Per-sheet and per-corpus aggregation — the Table I pipeline.

use dataspread_formula::parse;
use dataspread_grid::SparseSheet;

use crate::formulas::{formula_stats, FormulaStats};
use crate::tabular::{tabular_regions, TabularConfig};

/// Everything the Table I / Figures 2–4 pipeline needs from one sheet.
#[derive(Debug, Clone, PartialEq)]
pub struct SheetAnalysis {
    pub filled_cells: usize,
    pub formula_cells: usize,
    /// Filled cells / bounding-box area (Figure 2).
    pub density: f64,
    /// Number of tabular regions (Figure 3).
    pub tabular_regions: usize,
    /// Fraction of filled cells inside tabular regions (Table I col 9).
    pub tabular_coverage: f64,
    /// Per-formula access stats (Table I cols 10–11).
    pub formulas: Vec<FormulaStats>,
}

impl SheetAnalysis {
    /// Fraction of filled cells that are formulas.
    pub fn formula_fraction(&self) -> f64 {
        if self.filled_cells == 0 {
            0.0
        } else {
            self.formula_cells as f64 / self.filled_cells as f64
        }
    }
}

/// Analyze one sheet.
pub fn analyze_sheet(sheet: &SparseSheet, cfg: &TabularConfig) -> SheetAnalysis {
    let regions = tabular_regions(sheet, cfg);
    let covered: usize = regions.iter().map(|c| c.cells).sum();
    let filled = sheet.filled_count();
    let mut formulas = Vec::new();
    let mut formula_cells = 0;
    for (_, cell) in sheet.iter() {
        if let Some(src) = &cell.formula {
            formula_cells += 1;
            if let Ok(expr) = parse(src) {
                formulas.push(formula_stats(&expr));
            }
        }
    }
    SheetAnalysis {
        filled_cells: filled,
        formula_cells,
        density: sheet.density(),
        tabular_regions: regions.len(),
        tabular_coverage: if filled == 0 {
            0.0
        } else {
            covered as f64 / filled as f64
        },
        formulas,
    }
}

/// A full Table I row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusStats {
    pub sheets: usize,
    /// % of sheets containing at least one formula (col 3).
    pub pct_sheets_with_formulae: f64,
    /// % of sheets where formulas are > 20% of filled cells (col 4).
    pub pct_sheets_formula_heavy: f64,
    /// Formula cells / filled cells across the corpus (col 5).
    pub pct_formulae: f64,
    /// % of sheets with density < 0.5 (col 6).
    pub pct_density_below_half: f64,
    /// % of sheets with density < 0.2 (col 7).
    pub pct_density_below_fifth: f64,
    /// Total tabular regions (col 8).
    pub tables: usize,
    /// % of filled cells inside tabular regions (col 9).
    pub pct_coverage: f64,
    /// Average cells accessed per formula (col 10).
    pub cells_per_formula: f64,
    /// Average contiguous regions accessed per formula (col 11).
    pub regions_per_formula: f64,
}

/// Aggregate per-sheet analyses into a Table I row.
pub fn analyze_corpus(analyses: &[SheetAnalysis]) -> CorpusStats {
    let sheets = analyses.len();
    if sheets == 0 {
        return CorpusStats::default();
    }
    let with_formulae = analyses.iter().filter(|a| a.formula_cells > 0).count();
    let heavy = analyses
        .iter()
        .filter(|a| a.formula_fraction() > 0.20)
        .count();
    let filled: usize = analyses.iter().map(|a| a.filled_cells).sum();
    let formula_cells: usize = analyses.iter().map(|a| a.formula_cells).sum();
    let below_half = analyses.iter().filter(|a| a.density < 0.5).count();
    let below_fifth = analyses.iter().filter(|a| a.density < 0.2).count();
    let tables: usize = analyses.iter().map(|a| a.tabular_regions).sum();
    let covered: f64 = analyses
        .iter()
        .map(|a| a.tabular_coverage * a.filled_cells as f64)
        .sum();
    let all_formulas: Vec<&FormulaStats> =
        analyses.iter().flat_map(|a| a.formulas.iter()).collect();
    let nf = all_formulas.len().max(1) as f64;
    CorpusStats {
        sheets,
        pct_sheets_with_formulae: 100.0 * with_formulae as f64 / sheets as f64,
        pct_sheets_formula_heavy: 100.0 * heavy as f64 / sheets as f64,
        pct_formulae: if filled == 0 {
            0.0
        } else {
            100.0 * formula_cells as f64 / filled as f64
        },
        pct_density_below_half: 100.0 * below_half as f64 / sheets as f64,
        pct_density_below_fifth: 100.0 * below_fifth as f64 / sheets as f64,
        tables,
        pct_coverage: if filled == 0 {
            0.0
        } else {
            100.0 * covered / filled as f64
        },
        cells_per_formula: all_formulas
            .iter()
            .map(|f| f.cells_accessed as f64)
            .sum::<f64>()
            / nf,
        regions_per_formula: all_formulas
            .iter()
            .map(|f| f.regions_accessed as f64)
            .sum::<f64>()
            / nf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_grid::{Cell, CellAddr};

    fn tabular_sheet() -> SparseSheet {
        let mut s = SparseSheet::new();
        for r in 0..10 {
            for c in 0..4 {
                s.set_value(CellAddr::new(r, c), (r * 4 + c) as i64);
            }
        }
        // Totals row of formulas.
        for c in 0..4 {
            let col = dataspread_grid::addr::col_to_letters(c);
            s.set(
                CellAddr::new(10, c),
                Cell::formula(format!("SUM({col}1:{col}10)")),
            );
        }
        s
    }

    #[test]
    fn analyze_sheet_counts() {
        let s = tabular_sheet();
        let a = analyze_sheet(&s, &TabularConfig::default());
        assert_eq!(a.filled_cells, 44);
        assert_eq!(a.formula_cells, 4);
        assert_eq!(a.tabular_regions, 1);
        assert!((a.tabular_coverage - 1.0).abs() < 1e-12);
        assert_eq!(a.formulas.len(), 4);
        assert_eq!(a.formulas[0].cells_accessed, 10);
        assert_eq!(a.formulas[0].regions_accessed, 1);
        assert!((a.formula_fraction() - 4.0 / 44.0).abs() < 1e-12);
    }

    #[test]
    fn corpus_aggregation() {
        let s1 = tabular_sheet();
        let mut s2 = SparseSheet::new();
        s2.set_value(CellAddr::new(0, 0), 1i64);
        s2.set_value(CellAddr::new(9, 9), 1i64);
        let analyses = vec![
            analyze_sheet(&s1, &TabularConfig::default()),
            analyze_sheet(&s2, &TabularConfig::default()),
        ];
        let stats = analyze_corpus(&analyses);
        assert_eq!(stats.sheets, 2);
        assert_eq!(stats.pct_sheets_with_formulae, 50.0);
        assert_eq!(stats.tables, 1);
        assert_eq!(stats.pct_density_below_fifth, 50.0);
        assert!(stats.cells_per_formula > 0.0);
    }

    #[test]
    fn empty_corpus() {
        assert_eq!(analyze_corpus(&[]), CorpusStats::default());
    }
}
