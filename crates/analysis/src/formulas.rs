//! Formula-access statistics (paper §II-C, Table I columns 10–11,
//! Figure 5).

use std::collections::HashMap;

use dataspread_formula::ast::Expr;
use dataspread_formula::refs::collect_ranges;
use dataspread_formula::{parse, BinOp};
use dataspread_grid::{Rect, SparseSheet};

/// Access statistics of a single formula.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormulaStats {
    /// Cells accessed (sum of referenced-range areas).
    pub cells_accessed: u64,
    /// Number of contiguous regions among the accessed cells — computed as
    /// connected components over the referenced rectangles, where two
    /// rectangles connect when they overlap or touch (share an edge after
    /// 1-cell dilation).
    pub regions_accessed: usize,
}

/// Whether two rectangles overlap or are edge/corner adjacent.
fn touching(a: &Rect, b: &Rect) -> bool {
    // Dilate `a` by one cell in every direction, then test intersection.
    let dil = Rect {
        r1: a.r1.saturating_sub(1),
        c1: a.c1.saturating_sub(1),
        r2: a.r2.saturating_add(1),
        c2: a.c2.saturating_add(1),
    };
    dil.intersects(b)
}

/// Compute access statistics for a parsed formula.
pub fn formula_stats(expr: &Expr) -> FormulaStats {
    let ranges = collect_ranges(expr);
    let cells_accessed = ranges.iter().map(Rect::area).sum();
    // Union-find over the (few) rectangles.
    let n = ranges.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for i in 0..n {
        for j in i + 1..n {
            if touching(&ranges[i], &ranges[j]) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[rj] = ri;
                }
            }
        }
    }
    let mut roots: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
    roots.sort_unstable();
    roots.dedup();
    FormulaStats {
        cells_accessed,
        regions_accessed: roots.len(),
    }
}

/// Histogram of functions used across a sheet's formulas (Figure 5).
/// Binary arithmetic operators are tallied under `ARITH`, matching the
/// paper's category.
pub fn function_histogram(sheet: &SparseSheet) -> HashMap<String, u64> {
    let mut hist: HashMap<String, u64> = HashMap::new();
    for (_, cell) in sheet.iter() {
        let Some(src) = &cell.formula else { continue };
        let Ok(expr) = parse(src) else { continue };
        tally(&expr, &mut hist);
    }
    hist
}

fn tally(expr: &Expr, hist: &mut HashMap<String, u64>) {
    match expr {
        Expr::Func(name, args) => {
            *hist.entry(name.clone()).or_insert(0) += 1;
            for a in args {
                tally(a, hist);
            }
        }
        Expr::Binary(op, a, b) => {
            if matches!(
                op,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Pow
            ) {
                *hist.entry("ARITH".to_string()).or_insert(0) += 1;
            }
            tally(a, hist);
            tally(b, hist);
        }
        Expr::Unary(_, e) | Expr::Percent(e) => tally(e, hist),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_grid::{Cell, CellAddr};

    #[test]
    fn stats_count_cells_and_regions() {
        // Two touching ranges + one far-away cell = 2 regions.
        let e = parse("SUM(A1:A10)+SUM(B1:B10)+Z99").unwrap();
        let st = formula_stats(&e);
        assert_eq!(st.cells_accessed, 21);
        assert_eq!(st.regions_accessed, 2);
    }

    #[test]
    fn disjoint_ranges_counted_separately() {
        let e = parse("SUM(A1:A5)+SUM(H10:I20)").unwrap();
        assert_eq!(formula_stats(&e).regions_accessed, 2);
        // Constants only: no accesses.
        let c = parse("1+2").unwrap();
        assert_eq!(
            formula_stats(&c),
            FormulaStats {
                cells_accessed: 0,
                regions_accessed: 0
            }
        );
    }

    #[test]
    fn vlookup_style_locality() {
        // Typical VLOOKUP: key cell next to the formula + a big table.
        let e = parse("VLOOKUP(A2,H1:J100,2)").unwrap();
        let st = formula_stats(&e);
        assert_eq!(st.cells_accessed, 1 + 300);
        assert_eq!(st.regions_accessed, 2);
    }

    #[test]
    fn histogram_tallies_functions_and_arith() {
        let mut s = SparseSheet::new();
        s.set(CellAddr::new(0, 0), Cell::formula("SUM(A2:A9)+1"));
        s.set(
            CellAddr::new(0, 1),
            Cell::formula("IF(A1>0,SUM(B2:B9),LN(2))"),
        );
        s.set(CellAddr::new(0, 2), Cell::value(5i64));
        let h = function_histogram(&s);
        assert_eq!(h.get("SUM"), Some(&2));
        assert_eq!(h.get("IF"), Some(&1));
        assert_eq!(h.get("LN"), Some(&1));
        assert_eq!(h.get("ARITH"), Some(&1));
    }
}
