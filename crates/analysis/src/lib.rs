//! Spreadsheet structure and formula-access analysis — the toolkit behind
//! the paper's empirical study (§II, Table I, Figures 2–5).
//!
//! * [`components`] — connected components of filled cells (union-find),
//! * [`tabular`] — tabular-region detection (≥ 2 columns, ≥ 5 rows,
//!   density ≥ 0.7),
//! * [`formulas`] — formula-access statistics: cells accessed per formula,
//!   contiguous regions accessed per formula, function histograms,
//! * [`corpus`] — per-sheet and per-corpus aggregation reproducing the
//!   Table I columns.

pub mod components;
pub mod corpus;
pub mod formulas;
pub mod tabular;

pub use components::{connected_components, Adjacency, Component};
pub use corpus::{analyze_corpus, analyze_sheet, CorpusStats, SheetAnalysis};
pub use formulas::{formula_stats, function_histogram, FormulaStats};
pub use tabular::{tabular_regions, TabularConfig};
