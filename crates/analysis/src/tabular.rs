//! Tabular-region detection (paper §II-B).
//!
//! "We declare a connected component to be a tabular region if it spans at
//! least two columns and five rows, and has a density of at least 0.7."

use dataspread_grid::SparseSheet;

use crate::components::{connected_components, Adjacency, Component};

/// Thresholds for declaring a component tabular.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TabularConfig {
    pub min_rows: u64,
    pub min_cols: u64,
    pub min_density: f64,
    pub adjacency: Adjacency,
}

impl Default for TabularConfig {
    /// The paper's thresholds.
    fn default() -> Self {
        TabularConfig {
            min_rows: 5,
            min_cols: 2,
            min_density: 0.7,
            adjacency: Adjacency::default(),
        }
    }
}

/// The tabular regions of a sheet.
pub fn tabular_regions(sheet: &SparseSheet, cfg: &TabularConfig) -> Vec<Component> {
    connected_components(sheet, cfg.adjacency)
        .into_iter()
        .filter(|c| {
            c.bbox.rows() >= cfg.min_rows
                && c.bbox.cols() >= cfg.min_cols
                && c.density() >= cfg.min_density
        })
        .collect()
}

/// Fraction of a sheet's filled cells captured inside tabular regions
/// (Table I "%Coverage").
pub fn tabular_coverage(sheet: &SparseSheet, cfg: &TabularConfig) -> f64 {
    let filled = sheet.filled_count();
    if filled == 0 {
        return 0.0;
    }
    let covered: usize = tabular_regions(sheet, cfg).iter().map(|c| c.cells).sum();
    covered as f64 / filled as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_grid::CellAddr;

    fn dense_block(s: &mut SparseSheet, r0: u32, c0: u32, rows: u32, cols: u32) {
        for r in 0..rows {
            for c in 0..cols {
                s.set_value(CellAddr::new(r0 + r, c0 + c), 1i64);
            }
        }
    }

    #[test]
    fn detects_qualifying_table() {
        let mut s = SparseSheet::new();
        dense_block(&mut s, 0, 0, 6, 3);
        let regions = tabular_regions(&s, &TabularConfig::default());
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].cells, 18);
        assert_eq!(tabular_coverage(&s, &TabularConfig::default()), 1.0);
    }

    #[test]
    fn too_small_or_sparse_rejected() {
        let cfg = TabularConfig::default();
        // 4 rows: too short.
        let mut short = SparseSheet::new();
        dense_block(&mut short, 0, 0, 4, 3);
        assert!(tabular_regions(&short, &cfg).is_empty());
        // 1 column: too narrow.
        let mut narrow = SparseSheet::new();
        dense_block(&mut narrow, 0, 0, 10, 1);
        assert!(tabular_regions(&narrow, &cfg).is_empty());
        // Connected but sparse (density < 0.7): a long L shape.
        let mut sparse = SparseSheet::new();
        for i in 0..10 {
            sparse.set_value(CellAddr::new(i, 0), 1i64);
            sparse.set_value(CellAddr::new(9, i), 1i64);
        }
        assert!(tabular_regions(&sparse, &cfg).is_empty());
        assert_eq!(tabular_coverage(&sparse, &cfg), 0.0);
    }

    #[test]
    fn coverage_is_fractional() {
        let mut s = SparseSheet::new();
        dense_block(&mut s, 0, 0, 5, 2); // 10 cells, tabular
        s.set_value(CellAddr::new(50, 50), 1i64); // 1 stray cell
        let cov = tabular_coverage(&s, &TabularConfig::default());
        assert!((cov - 10.0 / 11.0).abs() < 1e-12);
    }
}
