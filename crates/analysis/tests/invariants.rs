//! Property tests for the analysis toolkit's invariants.

use proptest::prelude::*;

use dataspread_analysis::{
    analyze_corpus, analyze_sheet, connected_components, tabular_regions, Adjacency, TabularConfig,
};
use dataspread_grid::{CellAddr, SparseSheet};

fn sheet_strategy() -> impl Strategy<Value = SparseSheet> {
    prop::collection::vec((0u32..30, 0u32..30), 0..120).prop_map(|cells| {
        let mut s = SparseSheet::new();
        for (r, c) in cells {
            s.set_value(CellAddr::new(r, c), 1i64);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn components_partition_filled_cells(s in sheet_strategy()) {
        for adj in [Adjacency::Four, Adjacency::Eight] {
            let comps = connected_components(&s, adj);
            let total: usize = comps.iter().map(|c| c.cells).sum();
            prop_assert_eq!(total, s.filled_count(), "{:?}", adj);
            for c in &comps {
                prop_assert!(c.cells as u64 <= c.bbox.area());
                prop_assert!(c.density() > 0.0 && c.density() <= 1.0);
                if let Some(bbox) = s.bounding_box() {
                    prop_assert!(bbox.contains_rect(&c.bbox));
                }
            }
        }
    }

    #[test]
    fn eight_adjacency_merges_never_splits(s in sheet_strategy()) {
        // Queen adjacency has strictly more edges than rook adjacency, so
        // it can only merge rook components.
        let four = connected_components(&s, Adjacency::Four).len();
        let eight = connected_components(&s, Adjacency::Eight).len();
        prop_assert!(eight <= four, "eight {} > four {}", eight, four);
    }

    #[test]
    fn tabular_regions_are_a_subset_of_components(s in sheet_strategy()) {
        let cfg = TabularConfig::default();
        let tabs = tabular_regions(&s, &cfg);
        let comps = connected_components(&s, cfg.adjacency);
        prop_assert!(tabs.len() <= comps.len());
        for t in &tabs {
            prop_assert!(t.bbox.rows() >= cfg.min_rows);
            prop_assert!(t.bbox.cols() >= cfg.min_cols);
            prop_assert!(t.density() >= cfg.min_density);
            prop_assert!(comps.contains(t), "every tabular region is a component");
        }
    }

    #[test]
    fn sheet_analysis_is_internally_consistent(s in sheet_strategy()) {
        let a = analyze_sheet(&s, &TabularConfig::default());
        prop_assert_eq!(a.filled_cells, s.filled_count());
        prop_assert!(a.formula_cells <= a.filled_cells);
        prop_assert!((0.0..=1.0).contains(&a.density));
        prop_assert!((0.0..=1.0).contains(&a.tabular_coverage));
        prop_assert!((0.0..=1.0).contains(&a.formula_fraction()));
    }

    #[test]
    fn corpus_stats_percentages_bounded(sheets in prop::collection::vec(sheet_strategy(), 1..8)) {
        let analyses: Vec<_> = sheets
            .iter()
            .map(|s| analyze_sheet(s, &TabularConfig::default()))
            .collect();
        let stats = analyze_corpus(&analyses);
        prop_assert_eq!(stats.sheets, sheets.len());
        for pct in [
            stats.pct_sheets_with_formulae,
            stats.pct_sheets_formula_heavy,
            stats.pct_formulae,
            stats.pct_density_below_half,
            stats.pct_density_below_fifth,
            stats.pct_coverage,
        ] {
            prop_assert!((0.0..=100.0).contains(&pct), "{}", pct);
        }
        prop_assert!(stats.pct_density_below_fifth <= stats.pct_density_below_half);
        prop_assert!(stats.pct_sheets_formula_heavy <= stats.pct_sheets_with_formulae);
    }
}
