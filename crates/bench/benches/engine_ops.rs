//! Criterion benchmarks for storage-engine operations (Figures 22–24's
//! select / update / insert on ROM vs RCV translators).

use criterion::{criterion_group, criterion_main, Criterion};

use dataspread_bench::{dense_rcv, dense_rom};
use dataspread_engine::PosMapKind;
use dataspread_grid::{Cell, CellAddr, Rect};

const ROWS: u32 = 50_000;
const COLS: u32 = 50;

fn bench_select(c: &mut Criterion) {
    let rom = dense_rom(ROWS, COLS, PosMapKind::Hierarchical);
    let rcv = dense_rcv(ROWS / 10, COLS, 1.0, PosMapKind::Hierarchical);
    let mut group = c.benchmark_group("select_1000x20");
    group.sample_size(20);
    group.bench_function("rom", |b| {
        let window = Rect::new(20_000, 0, 20_999, 19);
        b.iter(|| std::hint::black_box(rom.get_cells(window)))
    });
    group.bench_function("rcv", |b| {
        let window = Rect::new(2_000, 0, 2_999, 19);
        b.iter(|| std::hint::black_box(rcv.get_cells(window)))
    });
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut rom = dense_rom(ROWS, COLS, PosMapKind::Hierarchical);
    let mut rcv = dense_rcv(ROWS / 10, COLS, 1.0, PosMapKind::Hierarchical);
    let mut group = c.benchmark_group("update_cell");
    group.bench_function("rom", |b| {
        b.iter(|| {
            rom.set_cell(CellAddr::new(25_000, 10), Cell::value(1i64))
                .unwrap()
        })
    });
    group.bench_function("rcv", |b| {
        b.iter(|| {
            rcv.set_cell(CellAddr::new(2_500, 10), Cell::value(1i64))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_insert_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_row_middle");
    group.sample_size(20);
    group.bench_function("rom_hierarchical", |b| {
        let mut rom = dense_rom(ROWS, COLS, PosMapKind::Hierarchical);
        b.iter(|| rom.insert_rows(25_000, 1).unwrap())
    });
    group.bench_function("rcv_hierarchical", |b| {
        let mut rcv = dense_rcv(ROWS / 10, COLS, 1.0, PosMapKind::Hierarchical);
        b.iter(|| rcv.insert_rows(2_500, 1).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_select, bench_update, bench_insert_row);
criterion_main!(benches);
