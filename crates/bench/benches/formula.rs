//! Criterion benchmarks for the formula engine: parsing, evaluation, and
//! dependency planning.

use criterion::{criterion_group, criterion_main, Criterion};

use dataspread_formula::eval::SheetReader;
use dataspread_formula::refs::collect_ranges;
use dataspread_formula::{parse, DependencyGraph, Evaluator};
use dataspread_grid::{CellAddr, Rect, SparseSheet};

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("formula_parse");
    for (name, src) in [
        ("arith", "(A1+B2)*3-C4/2"),
        ("agg", "SUM(A1:A1000)+AVERAGE(B1:B1000)"),
        ("lookup", "IF(VLOOKUP(A1,D1:F100,2)>0,MAX(G1:G50),0)"),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(parse(src).unwrap()))
        });
    }
    group.finish();
}

fn bench_eval(c: &mut Criterion) {
    let mut sheet = SparseSheet::new();
    for r in 0..10_000u32 {
        sheet.set_value(CellAddr::new(r, 0), r as i64);
        sheet.set_value(CellAddr::new(r, 1), (r * 2) as i64);
    }
    let reader = SheetReader(&sheet);
    let evaluator = Evaluator::new();
    let sum = parse("SUM(A1:A10000)").unwrap();
    let vlookup = parse("VLOOKUP(5000,A1:B10000,2)").unwrap();
    let mut group = c.benchmark_group("formula_eval");
    group.bench_function("sum_10k", |b| {
        b.iter(|| std::hint::black_box(evaluator.eval(&sum, &reader)))
    });
    group.bench_function("vlookup_10k", |b| {
        b.iter(|| std::hint::black_box(evaluator.eval(&vlookup, &reader)))
    });
    group.finish();
}

fn bench_deps(c: &mut Criterion) {
    // A chain of 500 formulas each reading its predecessor plus a shared
    // range; plan recomputation from the base cell.
    let mut g = DependencyGraph::new();
    for i in 0..500u32 {
        let expr = parse(&format!("B{}+SUM(Z1:Z100)", i + 1)).unwrap();
        g.set_formula(CellAddr::new(i, 1), collect_ranges(&expr));
    }
    g.set_formula(CellAddr::new(0, 1), vec![Rect::new(0, 0, 0, 0)]);
    let mut group = c.benchmark_group("dependency_plan");
    group.sample_size(20);
    group.bench_function("chain_500", |b| {
        b.iter(|| std::hint::black_box(g.recompute_plan(&[CellAddr::new(0, 0)])))
    });
    group.finish();
}

criterion_group!(benches, bench_parse, bench_eval, bench_deps);
criterion_main!(benches);
