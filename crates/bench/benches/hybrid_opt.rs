//! Criterion benchmarks for the hybrid decomposition optimizers
//! (Figure 15a's algorithms, in isolation).

use criterion::{criterion_group, criterion_main, Criterion};

use dataspread_corpus::multi_table_sheet;
use dataspread_hybrid::dp::dp_cost;
use dataspread_hybrid::{optimize_agg, optimize_greedy, CostModel, GridView, OptimizerOptions};

fn bench_optimizers(c: &mut Criterion) {
    let synth = multi_table_sheet(12, 20, 8, 0.4, 0, 15);
    let sheet = &synth.sheet;
    let cm = CostModel::postgres();
    let opts = OptimizerOptions::default();

    let mut group = c.benchmark_group("hybrid_optimizers_12_tables");
    group.sample_size(20);
    group.bench_function("grid_view_build", |b| {
        b.iter(|| std::hint::black_box(GridView::from_sheet(sheet)))
    });
    let view = GridView::from_sheet(sheet);
    group.bench_function("greedy", |b| {
        b.iter(|| std::hint::black_box(optimize_greedy(&view, &cm, &opts)))
    });
    group.bench_function("agg", |b| {
        b.iter(|| std::hint::black_box(optimize_agg(&view, &cm, &opts)))
    });
    group.bench_function("dp", |b| {
        b.iter(|| std::hint::black_box(dp_cost(&view, &cm, &opts).unwrap()))
    });
    group.finish();
}

fn bench_weighted_collapse(c: &mut Criterion) {
    // A tall dense sheet: weighting collapses thousands of rows to one band.
    let mut sheet = dataspread_grid::SparseSheet::new();
    for r in 0..20_000u32 {
        for col in 0..12 {
            sheet.set_value(dataspread_grid::CellAddr::new(r, col), 1i64);
        }
    }
    let cm = CostModel::postgres();
    let opts = OptimizerOptions::default();
    let mut group = c.benchmark_group("weighted_collapse_20k_rows");
    group.sample_size(10);
    group.bench_function("view_plus_dp", |b| {
        b.iter(|| {
            let view = GridView::from_sheet(&sheet);
            std::hint::black_box(dp_cost(&view, &cm, &opts).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_optimizers, bench_weighted_collapse);
criterion_main!(benches);
