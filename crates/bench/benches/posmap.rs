//! Criterion micro-benchmarks for the positional mapping schemes
//! (Figure 18's core data structures, in isolation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dataspread_posmap::{HierarchicalPosMap, MonotonicMap, PositionAsIs, PositionalMap};

fn bench_fetch(c: &mut Criterion) {
    let mut group = c.benchmark_group("posmap_fetch");
    for &n in &[10_000usize, 1_000_000] {
        let hier: HierarchicalPosMap<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::new("hierarchical", n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(hier.get(n / 2)))
        });
        let asis: PositionAsIs<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::new("as_is", n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(asis.get(n / 2)))
        });
        if n <= 10_000 {
            let mono: MonotonicMap<u64> = (0..n as u64).collect();
            group.bench_with_input(BenchmarkId::new("monotonic", n), &n, |b, &n| {
                b.iter(|| std::hint::black_box(mono.get(n / 2)))
            });
        }
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("posmap_insert_middle");
    group.sample_size(20);
    for &n in &[10_000usize, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("hierarchical", n), &n, |b, &n| {
            let mut m: HierarchicalPosMap<u64> = (0..n as u64).collect();
            b.iter(|| m.insert_at(n / 2, 7));
        });
        if n <= 10_000 {
            group.bench_with_input(BenchmarkId::new("as_is", n), &n, |b, &n| {
                let mut m: PositionAsIs<u64> = (0..n as u64).collect();
                b.iter(|| m.insert_at(n / 2, 7));
            });
            group.bench_with_input(BenchmarkId::new("monotonic", n), &n, |b, &n| {
                let mut m: MonotonicMap<u64> = (0..n as u64).collect();
                b.iter(|| m.insert_at(n / 2, 7));
            });
        }
    }
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("posmap_range_1000");
    let hier: HierarchicalPosMap<u64> = (0..1_000_000u64).collect();
    group.bench_function("hierarchical", |b| {
        b.iter(|| std::hint::black_box(hier.range(500_000, 1_000)))
    });
    let asis: PositionAsIs<u64> = (0..1_000_000u64).collect();
    group.bench_function("as_is", |b| {
        b.iter(|| std::hint::black_box(asis.range(500_000, 1_000)))
    });
    group.finish();
}

criterion_group!(benches, bench_fetch, bench_insert, bench_range);
criterion_main!(benches);
