//! Ablations of the optimizer's design choices (paper Appendix A-C):
//!
//! 1. **Access-aware costing (Theorem 7)** — give the optimizer the formula
//!    workload and compare the decomposition (and its measured access time)
//!    against the storage-only choice.
//! 2. **Weighted representation (Theorem 5)** — optimizer runtime with vs
//!    without collapsing identical adjacent rows/columns, at equal cost.
//! 3. **Size limits (Theorem 8 / Appendix A-C4)** — a sheet wider than the
//!    relation-width cap must split into legal tables.

use std::time::Instant;

use dataspread_bench::load_hybrid;
use dataspread_corpus::multi_table_sheet;
use dataspread_engine::hybrid::StorageReader;
use dataspread_formula::refs::collect_ranges;
use dataspread_formula::{parse, Evaluator};
use dataspread_grid::{CellAddr, SparseSheet};
use dataspread_hybrid::dp::dp_cost;
use dataspread_hybrid::{
    optimize_agg, optimize_dp, CostModel, GridView, ModelSet, OptimizerOptions,
};

fn main() {
    ablation_access_aware();
    ablation_weighted();
    ablation_size_limits();
}

/// Ablation 1. Storage-only vs access-aware decomposition on a sheet whose
/// access pattern disagrees with its storage-optimal layout: a tall dense
/// table whose storage prefers COM (the s3 < s4 asymmetry) read by
/// row-range formulas, which want ROM.
fn ablation_access_aware() {
    println!("Ablation 1: access-aware costing (Theorem 7)\n");
    let synth = multi_table_sheet(6, 300, 12, 0.5, 60, 77);
    let sheet = &synth.sheet;
    let exprs: Vec<_> = synth
        .formulas
        .iter()
        .filter_map(|a| sheet.get(*a))
        .filter_map(|c| c.formula.as_deref())
        .filter_map(|s| parse(s).ok())
        .collect();
    let workload: Vec<_> = exprs.iter().flat_map(collect_ranges).collect();
    let cm = CostModel::postgres();
    let view = GridView::from_sheet(sheet);

    let storage_only = optimize_agg(&view, &cm, &OptimizerOptions::default());
    let access_aware = optimize_agg(
        &view,
        &cm,
        &OptimizerOptions {
            workload: workload.clone(),
            ..OptimizerOptions::default()
        },
    );
    let evaluator = Evaluator::new();
    for (label, decomp) in [
        ("storage-only", &storage_only),
        ("access-aware", &access_aware),
    ] {
        let store = load_hybrid(sheet, decomp);
        let reader = StorageReader(&store);
        let t = Instant::now();
        for _ in 0..5 {
            for e in &exprs {
                std::hint::black_box(evaluator.eval(e, &reader));
            }
        }
        let kinds: Vec<String> = decomp.regions.iter().map(|r| r.kind.to_string()).collect();
        println!(
            "  {label:<14} {:2} table(s) [{}]  storage {:>10.0}  access(5x{} formulas) {:?}",
            decomp.table_count(),
            kinds.join(","),
            decomp.storage_cost(&view, &cm),
            exprs.len(),
            t.elapsed(),
        );
    }
    println!(
        "  expected: access-aware trades storage for access — it splits tables so\n\
         \x20 range probes transfer fewer irrelevant tuples/cells (Theorem 7)\n"
    );
}

/// Ablation 2. Weighted vs unweighted DP: identical cost, different runtime.
fn ablation_weighted() {
    println!("Ablation 2: weighted representation (Theorem 5)\n");
    let mut sheet = SparseSheet::new();
    for r in 0..3_000u32 {
        for c in 0..10 {
            sheet.set_value(CellAddr::new(r, c), 1i64);
        }
    }
    for r in 4_000..4_030u32 {
        for c in 20..26 {
            sheet.set_value(CellAddr::new(r, c), 2i64);
        }
    }
    let cm = CostModel::postgres();
    let opts = OptimizerOptions {
        dp_max_side: 8_192,
        ..OptimizerOptions::default()
    };
    let t = Instant::now();
    let wview = GridView::from_sheet(&sheet);
    let wcost = dp_cost(&wview, &cm, &opts).unwrap();
    let wtime = t.elapsed();
    println!(
        "  weighted:   bands {}x{}  cost {:.0}  in {:?}",
        wview.h(),
        wview.w(),
        wcost,
        wtime
    );
    let t = Instant::now();
    let uview = GridView::from_sheet_unweighted(&sheet);
    println!(
        "  unweighted: bands {}x{}  (DP would be O(n^5) over 4030 bands — skipped; \
         view build alone took {:?})",
        uview.h(),
        uview.w(),
        t.elapsed()
    );
    println!("  Theorem 5: the weighted optimum equals the unweighted optimum.\n");
}

/// Ablation 3. Relation-width caps force legal splits.
fn ablation_size_limits() {
    println!("Ablation 3: size limits (Theorem 8)\n");
    let mut sheet = SparseSheet::new();
    for r in 0..4u32 {
        for c in 0..2_000u32 {
            sheet.set_value(CellAddr::new(r, c), 1i64);
        }
    }
    let opts = OptimizerOptions {
        models: ModelSet::ROM_ONLY,
        ..OptimizerOptions::default()
    };
    let capped = CostModel::postgres(); // max 1600 columns
                                        // Band collapse must respect the cap, or the mandatory split cuts are
                                        // unreachable (the one case Theorem 5 doesn't cover).
    let view = GridView::from_sheet_capped(&sheet, u32::MAX, 1600);
    let d = optimize_dp(&view, &capped, &opts).unwrap();
    println!(
        "  2000-column dense sheet, ROM-only, 1600-col cap: {} tables",
        d.table_count()
    );
    for r in &d.regions {
        println!("    {} as {} ({} cols)", r.rect, r.kind, r.rect.cols());
        assert!(r.rect.cols() <= 1600, "every table respects the cap");
    }
    let uncapped = CostModel {
        max_table_cols: None,
        ..CostModel::postgres()
    };
    let d = optimize_dp(&GridView::from_sheet(&sheet), &uncapped, &opts).unwrap();
    println!("  same sheet without the cap: {} table(s)", d.table_count());
}
