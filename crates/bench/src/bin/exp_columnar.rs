//! Columnar-region benchmark: the compressed per-column layout vs the
//! row-wise ROM translator on the paper's two motivating datasets, at
//! full scale.
//!
//! Corpora (`DS_COLUMNAR_ROWS` data rows each, default 1 000 000):
//!
//! * **retail** — invoice lines shaped like Example 2's
//!   customer-management database, denormalized the way a spreadsheet
//!   user keeps them: integer ids, low-cardinality customer / city /
//!   supplier texts (dictionary + RLE fodder), 2-decimal amounts, day
//!   offsets, and a paid flag (bool bitmap);
//! * **vcf** — variant-call rows from the corpus crate's generator
//!   (Example 1's genomics file): the eight fixed VCF columns plus
//!   `DS_COLUMNAR_SAMPLES` genotype columns of four repeating strings
//!   (default 16 — the paper's file carries 284).
//!
//! Each corpus is imported as one ROM region into a durable engine and
//! measured three ways — resident bytes (per-region accounting), a full
//! recompute of `SUM`/`COUNT`/`AVERAGE`/`COUNTA` formulas spanning the
//! million-row columns (the evaluator's real path: per-cell walk on ROM,
//! `range_agg` column fold on columnar), and `WindowPatch` construction
//! over scattered viewport-sized windows (the serving path:
//! `from_cells` on ROM, run-level `PatchBuilder` streaming on columnar)
//! — then migrated in place to `ModelKind::Columnar` and measured again.
//! Checkpoint image sizes on both sides show the compressed pages
//! flowing straight into the v2 format. Aggregate values and window
//! patches are asserted identical across the migration, and at full
//! scale the acceptance bounds are armed: ≥ 4× resident-byte reduction
//! and ≥ 5× aggregate-recompute speedup on both corpora.
//!
//! Results go to stdout and `BENCH_columnar.json` (override with
//! `DS_COLUMNAR_OUT`).

use std::time::Instant;

use dataspread_corpus::vcf::vcf_rows;
use dataspread_engine::durable::image_path;
use dataspread_engine::{ModelKind, ScanValue, SheetEngine};
use dataspread_grid::{CellAddr, CellValue, Rect};
use dataspread_proto::{PatchBuilder, WindowPatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WINDOW_ROWS: u32 = 256;
const WINDOW_COUNT: u32 = 64;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Invoice lines mirroring the retail corpus's `invoice` table joined
/// with its name columns (`dataspread_corpus::retail`): the shape a
/// small-business sheet actually has.
fn retail_rows(n_rows: usize, seed: u64) -> impl Iterator<Item = Vec<CellValue>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let customers = ["wilde", "poe", "woolf", "kafka", "borges", "morrison"];
    let cities = ["Champaign", "Urbana", "Savoy", "Mahomet"];
    let supps = ["acme", "globex", "initech", "umbrella"];
    (0..n_rows).map(move |i| {
        let c = rng.gen_range(0..customers.len());
        vec![
            CellValue::Number(i as f64 + 1.0),
            CellValue::Text(customers[c].to_string()),
            CellValue::Text(cities[c % cities.len()].to_string()),
            CellValue::Text(supps[rng.gen_range(0..supps.len())].to_string()),
            CellValue::Number((rng.gen_range(10.0..5_000.0f64) * 100.0).round() / 100.0),
            CellValue::Number(rng.gen_range(-30i64..60) as f64),
            CellValue::Bool(rng.gen_bool(0.7)),
        ]
    })
}

struct Corpus {
    name: &'static str,
    width: u32,
    /// 0-based column index the numeric aggregates run over.
    num_col: u32,
    /// 0-based column index the `COUNTA` runs over (a text column).
    text_col: u32,
}

#[derive(Default)]
struct Side {
    resident: u64,
    agg_ms: f64,
    window_ms: f64,
    image_bytes: u64,
}

struct Report {
    name: &'static str,
    rows: u32,
    cols: u32,
    filled: u64,
    rom: Side,
    col: Side,
    migrate_ms: f64,
}

/// Column index → A1 letter (the corpora stay under 26 columns only for
/// retail; VCF sample columns can pass Z).
fn col_name(mut c: u32) -> String {
    let mut s = Vec::new();
    loop {
        s.push(b'A' + (c % 26) as u8);
        if c < 26 {
            break;
        }
        c = c / 26 - 1;
    }
    s.reverse();
    String::from_utf8(s).expect("ascii")
}

/// Evenly spaced viewport-sized windows over the region.
fn windows(rect: Rect) -> Vec<Rect> {
    let rows = rect.rows() as u32;
    let n = WINDOW_COUNT.min(rows / WINDOW_ROWS).max(1);
    (0..n)
        .map(|i| {
            let r1 = rect.r1 + (rows - WINDOW_ROWS).min(i * (rows / n));
            Rect::new(r1, rect.c1, (r1 + WINDOW_ROWS - 1).min(rect.r2), rect.c2)
        })
        .collect()
}

/// Build every window's `WindowPatch` the way the workspace service
/// does: run-level streaming where the window is columnar-resident,
/// cell materialization otherwise.
fn fetch_windows(engine: &SheetEngine, wins: &[Rect]) -> Vec<WindowPatch> {
    wins.iter()
        .map(|&rect| {
            let mut builder = PatchBuilder::new(rect);
            let columnar =
                engine
                    .storage()
                    .scan_columnar_window(rect, |_, _, v, formula| match v {
                        ScanValue::Empty => builder.push_empty(formula),
                        ScanValue::Number(n) => builder.push_number(n, formula),
                        ScanValue::Bool(b) => builder.push_bool(b, formula),
                        ScanValue::Text(s) => builder.push_text(s, formula),
                        ScanValue::Error(e) => builder.push_error(e, formula),
                    });
            if columnar {
                builder.finish()
            } else {
                WindowPatch::from_cells(rect, engine.get_cells(rect))
            }
        })
        .collect()
}

fn measure_side(
    engine: &mut SheetEngine,
    dir: &std::path::Path,
    rect: Rect,
    kind: ModelKind,
    formulas: &[CellAddr],
    wins: &[Rect],
    reps: usize,
) -> (Side, Vec<CellValue>, Vec<WindowPatch>) {
    let resident = engine
        .storage()
        .region_resident_bytes()
        .into_iter()
        .find(|(r, k, _)| *r == rect && *k == kind)
        .map(|(_, _, b)| b)
        .expect("data region present under the expected model");

    let mut agg_ms = f64::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        engine.recompute_all().expect("recompute aggregates");
        agg_ms = agg_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let values: Vec<CellValue> = formulas.iter().map(|&a| engine.value(a)).collect();

    let mut window_ms = f64::MAX;
    let mut patches = Vec::new();
    for _ in 0..reps {
        let t = Instant::now();
        patches = fetch_windows(engine, wins);
        window_ms = window_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }

    engine.checkpoint().expect("checkpoint");
    let image_bytes = std::fs::metadata(image_path(dir)).expect("image").len();
    let side = Side {
        resident,
        agg_ms,
        window_ms,
        image_bytes,
    };
    (side, values, patches)
}

fn run_corpus(
    corpus: &Corpus,
    rows_iter: impl Iterator<Item = Vec<CellValue>>,
    n_rows: usize,
    reps: usize,
) -> Report {
    let dir = std::env::temp_dir().join(format!(
        "dataspread-exp-columnar-{}-{}",
        corpus.name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    let mut engine = SheetEngine::open(&dir).expect("open durable engine");

    let rect = engine
        .import_rows(CellAddr::new(0, 0), corpus.width, rows_iter)
        .expect("import corpus");
    assert_eq!(rect.rows() as usize, n_rows);

    // Full-column aggregates registered below the block: the evaluator
    // takes its fast path only when the range is columnar-resident, so
    // the same formulas time both layouts.
    let num = col_name(corpus.num_col);
    let text = col_name(corpus.text_col);
    let sources = [
        format!("=SUM({num}1:{num}{n_rows})"),
        format!("=COUNT({num}1:{num}{n_rows})"),
        format!("=AVERAGE({num}1:{num}{n_rows})"),
        format!("=COUNTA({text}1:{text}{n_rows})"),
    ];
    let formulas: Vec<CellAddr> = sources
        .iter()
        .enumerate()
        .map(|(i, src)| {
            let addr = CellAddr::new(rect.r2 + 2, i as u32);
            engine.update_cell(addr, src).expect("aggregate formula");
            addr
        })
        .collect();
    engine.save().expect("save");

    let wins = windows(rect);
    let (rom, rom_values, rom_patches) = measure_side(
        &mut engine,
        &dir,
        rect,
        ModelKind::Rom,
        &formulas,
        &wins,
        reps,
    );

    let slot = engine
        .storage()
        .layout()
        .iter()
        .position(|(r, _)| *r == rect)
        .expect("region slot");
    let t = Instant::now();
    engine
        .migrate_region(slot, ModelKind::Columnar)
        .expect("migrate to columnar");
    let migrate_ms = t.elapsed().as_secs_f64() * 1e3;

    let (col, col_values, col_patches) = measure_side(
        &mut engine,
        &dir,
        rect,
        ModelKind::Columnar,
        &formulas,
        &wins,
        reps,
    );
    assert_eq!(
        col_values, rom_values,
        "{}: aggregate values diverged across the migration",
        corpus.name
    );
    assert_eq!(
        col_patches, rom_patches,
        "{}: window patches diverged across the migration",
        corpus.name
    );

    let filled = engine.storage().filled_count();
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
    Report {
        name: corpus.name,
        rows: rect.rows() as u32,
        cols: corpus.width,
        filled,
        rom,
        col,
        migrate_ms,
    }
}

fn ratio(rom: f64, col: f64) -> f64 {
    if col > 0.0 {
        rom / col
    } else {
        f64::INFINITY
    }
}

fn main() {
    let n_rows = env_usize("DS_COLUMNAR_ROWS", 1_000_000);
    let samples = env_usize("DS_COLUMNAR_SAMPLES", 16);
    let reps = env_usize("DS_COLUMNAR_REPS", 3).max(1);
    let out_path =
        std::env::var("DS_COLUMNAR_OUT").unwrap_or_else(|_| "BENCH_columnar.json".to_string());
    let full_scale = n_rows >= 1_000_000;

    println!("Columnar-region benchmark ({n_rows} rows per corpus, {reps} reps)\n");

    let retail = Corpus {
        name: "retail",
        width: 7,
        num_col: 4,  // amount
        text_col: 2, // city
    };
    let vcf = Corpus {
        name: "vcf",
        width: 9 + samples as u32,
        num_col: 5,  // QUAL
        text_col: 0, // CHROM
    };
    let reports = [
        run_corpus(&retail, retail_rows(n_rows, 42), n_rows, reps),
        run_corpus(&vcf, vcf_rows(n_rows, samples, 42), n_rows, reps),
    ];

    println!(
        "{:>8} | {:>13} | {:>13} | {:>6} | {:>9} | {:>9} | {:>6} | {:>9} | {:>9} | {:>6}",
        "corpus",
        "rom MiB",
        "col MiB",
        "ratio",
        "rom agg",
        "col agg",
        "speed",
        "rom win",
        "col win",
        "speed"
    );
    for r in &reports {
        println!(
            "{:>8} | {:>10.1} MiB | {:>10.1} MiB | {:>5.1}x | {:>7.1}ms | {:>7.1}ms | {:>5.1}x | {:>7.1}ms | {:>7.1}ms | {:>5.1}x",
            r.name,
            r.rom.resident as f64 / (1 << 20) as f64,
            r.col.resident as f64 / (1 << 20) as f64,
            ratio(r.rom.resident as f64, r.col.resident as f64),
            r.rom.agg_ms,
            r.col.agg_ms,
            ratio(r.rom.agg_ms, r.col.agg_ms),
            r.rom.window_ms,
            r.col.window_ms,
            ratio(r.rom.window_ms, r.col.window_ms),
        );
    }

    let mut json = format!(
        "{{\n  \"bench\": \"columnar\",\n  \"rows\": {n_rows},\n  \"vcf_samples\": {samples},\n  \
         \"reps\": {reps},\n  \"window_rows\": {WINDOW_ROWS},\n  \
         \"identical_across_migration\": true,\n  \"corpora\": [\n"
    );
    for (i, r) in reports.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"corpus\": \"{}\", \"rows\": {}, \"cols\": {}, \"filled\": {},\n      \
             \"rom\": {{\"resident_bytes\": {}, \"agg_ms\": {:.1}, \"window_ms\": {:.1}, \"image_bytes\": {}}},\n      \
             \"columnar\": {{\"resident_bytes\": {}, \"agg_ms\": {:.1}, \"window_ms\": {:.1}, \"image_bytes\": {}}},\n      \
             \"migrate_ms\": {:.1}, \"resident_ratio\": {:.2}, \"agg_speedup\": {:.2}, \
             \"window_speedup\": {:.2}, \"image_ratio\": {:.2}}}{}\n",
            r.name,
            r.rows,
            r.cols,
            r.filled,
            r.rom.resident,
            r.rom.agg_ms,
            r.rom.window_ms,
            r.rom.image_bytes,
            r.col.resident,
            r.col.agg_ms,
            r.col.window_ms,
            r.col.image_bytes,
            r.migrate_ms,
            ratio(r.rom.resident as f64, r.col.resident as f64),
            ratio(r.rom.agg_ms, r.col.agg_ms),
            ratio(r.rom.window_ms, r.col.window_ms),
            ratio(r.rom.image_bytes as f64, r.col.image_bytes as f64),
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path}");

    // Acceptance bounds, armed at full scale only; outputs were already
    // asserted identical across the migration above.
    if full_scale {
        for r in &reports {
            let res = ratio(r.rom.resident as f64, r.col.resident as f64);
            let agg = ratio(r.rom.agg_ms, r.col.agg_ms);
            assert!(
                res >= 4.0,
                "{}: resident-byte reduction {res:.2}x < 4x",
                r.name
            );
            assert!(agg >= 5.0, "{}: aggregate speedup {agg:.2}x < 5x", r.name);
        }
    }
    println!(
        "\npaper context: the hybrid data model stores each region under the\n\
         layout its access pattern earns; large read-mostly imports (the VCF\n\
         and retail motivating examples) earn a compressed columnar form —\n\
         typed per-column arrays with dictionaries, run-length runs, and bit\n\
         packing — that shrinks resident memory and checkpoint images while\n\
         aggregate formulas fold straight over the columns and windows\n\
         stream to clients run-by-run, all cell-identical to the row store."
    );
}
