//! Concurrent-workspace benchmark: group commit vs per-op fsync across a
//! writer grid, and concurrent positional-window read scaling across
//! sheets.
//!
//! * **Writers.** K concurrent sessions hammer ONE durable sheet with
//!   cell edits, in two client shapes: fully synchronous (window 1 — one
//!   edit in flight per client) and pipelined (window 4 — stage a small
//!   window, await its last ticket; the standard RPC pipelining
//!   pattern). `per-op` mode pays the legacy one-fsync-per-op baseline
//!   in both shapes; `group` mode appends, blocks on a commit ticket,
//!   and lets the dedicated committer batch every outstanding record
//!   into one fsync — same durability contract (no edit is acknowledged
//!   before it is on stable storage), ~1 fsync per batch instead of per
//!   op.
//! * **Readers.** R sessions each scan positional windows of their own
//!   pre-imported sheet — per-sheet sharding means their locks never
//!   touch, so aggregate throughput should track the machine's available
//!   parallelism.
//!
//! Results go to stdout and `BENCH_concurrent.json` (override with
//! `DS_CONCURRENT_OUT`). Sizes: `DS_CONCURRENT_WRITERS` /
//! `DS_CONCURRENT_READERS` (comma-separated thread counts) and
//! `DS_CONCURRENT_OPS` (ops per writer). At full scale (a grid including
//! 8 writers) the run *asserts* the acceptance bounds: group-commit
//! throughput ≥ 5× per-op fsync at 8 writers pipelined and ≥ 2× fully
//! synchronous (commit acknowledgements spin briefly then *help* with
//! the flush — `SharedWal::commit_wait` — so the window-1 row is bounded
//! by batch formation, about one fsync per W-writer batch, instead of a
//! futex sleep/wake pair per op), group fsyncs ≤ ¼ of per-op fsyncs
//! (scheduler-independent), and read scaling within 2× of linear in
//! `min(readers, cores)` — scaled-down CI grids skip the asserts.

use std::path::PathBuf;
use std::time::Instant;

use dataspread_grid::{CellAddr, CellValue, Rect};
use dataspread_workspace::{CommitMode, Edit, Workspace, WorkspaceConfig};

fn sizes_from_env(var: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(var)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn ops_per_writer() -> usize {
    std::env::var("DS_CONCURRENT_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dataspread-exp-concurrent-{name}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

struct WriterRow {
    writers: usize,
    window: usize,
    per_op_ops_s: f64,
    per_op_fsyncs: u64,
    group_ops_s: f64,
    group_fsyncs: u64,
}

struct ReaderRow {
    readers: usize,
    windows_s: f64,
    speedup: f64,
    efficiency: f64,
}

/// K writer threads × `ops` edits each against one shared durable sheet,
/// each client keeping `window` edits in flight (window 1 = fully
/// synchronous; larger windows = RPC pipelining: stage a window, then
/// await its last ticket). Per-op mode fsyncs every staged edit either
/// way — pipelining changes nothing for it. Returns (ops/s, fsyncs).
fn run_writers(writers: usize, ops: usize, window: usize, mode: CommitMode) -> (f64, u64) {
    let dir = temp_dir(&format!("writers-{writers}-{window}-{mode:?}"));
    let ws = Workspace::open_with(
        &dir,
        WorkspaceConfig {
            commit_mode: mode,
            ..Default::default()
        },
    )
    .expect("open workspace");
    let session = ws.session();
    session.open_sheet("hot").expect("open sheet");
    let (_, fsyncs_at_open, _) = ws.commit_stats();
    let t = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..writers {
            let session = session.clone();
            scope.spawn(move || {
                let mut i = 0usize;
                while i < ops {
                    let burst = window.min(ops - i);
                    let mut last = 0u64;
                    for k in 0..burst {
                        let receipt = session
                            .stage_edit(
                                "hot",
                                Edit::Set {
                                    row: ((i + k) % 512) as u32,
                                    col: w as u32,
                                    input: format!("{}", (i + k) * 7 + w),
                                },
                            )
                            .expect("edit");
                        last = receipt.ticket;
                    }
                    session.await_commit("hot", last).expect("commit");
                    i += burst;
                }
            });
        }
    });
    let elapsed = t.elapsed().as_secs_f64();
    let (_, group_fsyncs, inline_syncs) = ws.commit_stats();
    let fsyncs = match mode {
        CommitMode::PerOp => inline_syncs,
        CommitMode::Group => group_fsyncs - fsyncs_at_open,
    };
    // Cross-check the metrics registry against the committer's own
    // accounting: the WAL observer attaches at shard build, before any
    // append, so it must have seen exactly one append per staged edit
    // and at least the fsyncs the fsync-point tallied.
    let snap = ws.metrics_registry().snapshot();
    let appends = snap.counter("wal_appends{sheet=\"hot\"}").unwrap_or(0);
    assert_eq!(
        appends,
        (writers * ops) as u64,
        "registry wal_appends disagrees with the ops issued"
    );
    let obs_fsyncs = snap.counter("wal_fsyncs{sheet=\"hot\"}").unwrap_or(0);
    assert!(
        obs_fsyncs >= fsyncs,
        "registry saw {obs_fsyncs} fsyncs, fsync-point tallied {fsyncs}"
    );
    drop(ws);
    std::fs::remove_dir_all(&dir).ok();
    ((writers * ops) as f64 / elapsed, fsyncs)
}

/// R reader threads, each fetching positional windows of its own sheet;
/// returns aggregate windows/s.
fn run_readers(readers: usize, windows_per_reader: usize) -> f64 {
    let dir = temp_dir(&format!("readers-{readers}"));
    let ws = Workspace::open(&dir).expect("open workspace");
    let session = ws.session();
    for r in 0..readers {
        let name = format!("sheet{r}");
        session.open_sheet(&name).expect("open sheet");
        session
            .import_rows(
                &name,
                CellAddr::new(0, 0),
                8,
                (0..2000u32)
                    .map(|i| {
                        (0..8u32)
                            .map(|c| CellValue::Number((i * 8 + c) as f64))
                            .collect()
                    })
                    .collect(),
            )
            .expect("import");
    }
    let t = Instant::now();
    std::thread::scope(|scope| {
        for r in 0..readers {
            let session = session.clone();
            scope.spawn(move || {
                let name = format!("sheet{r}");
                let mut total = 0usize;
                for i in 0..windows_per_reader {
                    let r1 = ((i * 137) % 1950) as u32;
                    let cells = session
                        .fetch_window(&name, Rect::new(r1, 0, r1 + 49, 7))
                        .expect("window");
                    total += cells.filled_count() as usize;
                }
                assert!(total > 0);
            });
        }
    });
    let elapsed = t.elapsed().as_secs_f64();
    drop(ws);
    std::fs::remove_dir_all(&dir).ok();
    (readers * windows_per_reader) as f64 / elapsed
}

fn main() {
    let writer_sizes = sizes_from_env("DS_CONCURRENT_WRITERS", &[1, 2, 4, 8]);
    let reader_sizes = sizes_from_env("DS_CONCURRENT_READERS", &[1, 2, 4, 8]);
    let ops = ops_per_writer();
    let out_path =
        std::env::var("DS_CONCURRENT_OUT").unwrap_or_else(|_| "BENCH_concurrent.json".to_string());
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());

    println!("Concurrent workspace benchmark ({ops} ops/writer, {cores} cores)\n");
    println!(
        "{:>8} {:>7} | {:>12} {:>9} | {:>12} {:>9} | {:>8}",
        "writers", "window", "per-op ops/s", "fsyncs", "group ops/s", "fsyncs", "speedup"
    );
    let mut writer_rows = Vec::new();
    for &writers in &writer_sizes {
        // Window 1: fully synchronous clients (one edit in flight each).
        // Window 4: pipelined clients (the RPC pattern — stage a small
        // window, await its last ticket). Per-op fsyncs are identical in
        // both shapes; group commit batches the whole in-flight set.
        for window in [1usize, 4] {
            let (per_op_ops_s, per_op_fsyncs) =
                run_writers(writers, ops, window, CommitMode::PerOp);
            let (group_ops_s, group_fsyncs) = run_writers(writers, ops, window, CommitMode::Group);
            println!(
                "{:>8} {:>7} | {:>12.0} {:>9} | {:>12.0} {:>9} | {:>7.1}x",
                writers,
                window,
                per_op_ops_s,
                per_op_fsyncs,
                group_ops_s,
                group_fsyncs,
                group_ops_s / per_op_ops_s,
            );
            writer_rows.push(WriterRow {
                writers,
                window,
                per_op_ops_s,
                per_op_fsyncs,
                group_ops_s,
                group_fsyncs,
            });
        }
    }

    // Fixed per-reader work so wall-clock reflects aggregate throughput.
    let windows_per_reader = (ops * 2).max(200);
    println!(
        "\n{:>8} | {:>12} | {:>8} | {:>10}",
        "readers", "windows/s", "speedup", "efficiency"
    );
    let mut reader_rows: Vec<ReaderRow> = Vec::new();
    for &readers in &reader_sizes {
        let windows_s = run_readers(readers, windows_per_reader);
        let base = reader_rows
            .first()
            .map(|r: &ReaderRow| r.windows_s / r.readers as f64)
            .unwrap_or(windows_s / readers as f64);
        let speedup = windows_s / base;
        // Near-linear means: throughput tracks min(readers, cores) — the
        // hardware bound, not the thread count (a 1-core CI box cannot
        // show wall-clock parallelism, only absence of collapse).
        let ideal = readers.min(cores) as f64;
        let efficiency = speedup / ideal;
        println!(
            "{:>8} | {:>12.0} | {:>7.2}x | {:>9.0}%",
            readers,
            windows_s,
            speedup,
            efficiency * 100.0
        );
        reader_rows.push(ReaderRow {
            readers,
            windows_s,
            speedup,
            efficiency,
        });
    }

    // Machine-readable trajectory record.
    let mut json = format!(
        "{{\n  \"bench\": \"concurrent\",\n  \"cores\": {cores},\n  \"ops_per_writer\": {ops},\n  \"writers\": [\n"
    );
    for (i, r) in writer_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"writers\": {}, \"window\": {}, \"per_op_ops_s\": {:.0}, \
             \"per_op_fsyncs\": {}, \"group_ops_s\": {:.0}, \"group_fsyncs\": {}, \
             \"speedup\": {:.2}}}{}\n",
            r.writers,
            r.window,
            r.per_op_ops_s,
            r.per_op_fsyncs,
            r.group_ops_s,
            r.group_fsyncs,
            r.group_ops_s / r.per_op_ops_s,
            if i + 1 < writer_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"readers\": [\n");
    for (i, r) in reader_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"readers\": {}, \"windows_s\": {:.0}, \"speedup\": {:.2}, \
             \"efficiency_vs_cores\": {:.2}}}{}\n",
            r.readers,
            r.windows_s,
            r.speedup,
            r.efficiency,
            if i + 1 < reader_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path}");

    // Acceptance bounds, armed only at full scale (8-writer grid). The
    // pipelined row must clear 5×. The synchronous window-1 row is bounded
    // by batch formation (W writers × 1 op in flight → at best W ops per
    // fsync, and each batch costs a full scheduling cycle through all W
    // writers), so its floor is looser — 2× guards the failure mode the
    // helping-flush commit path fixed, where every ack paid a committer
    // park/wake round-trip and the ratio decayed toward 1×. The
    // fsync-batching bound is asserted on every full-scale row — it is
    // scheduler-independent.
    for r in &writer_rows {
        if r.writers >= 8 {
            let speedup = r.group_ops_s / r.per_op_ops_s;
            let floor = if r.window > 1 { 5.0 } else { 2.0 };
            assert!(
                speedup >= floor,
                "group commit speedup {speedup:.1}x < {floor}x at {} writers (window {})",
                r.writers,
                r.window
            );
            assert!(
                r.group_fsyncs <= r.per_op_fsyncs / 4,
                "group commit must batch fsyncs ({} vs {})",
                r.group_fsyncs,
                r.per_op_fsyncs
            );
        }
    }
    if writer_sizes.iter().any(|&w| w >= 8) {
        for r in &reader_rows {
            if r.readers >= 8 {
                assert!(
                    r.efficiency >= 0.5,
                    "read scaling efficiency {:.0}% < 50% of linear in \
                     min(readers, cores) at {} readers",
                    r.efficiency * 100.0,
                    r.readers
                );
            }
        }
    }
    println!(
        "\npaper context: a spreadsheet *served* from a database-grade engine means\n\
         many sessions fetching windows and committing edits at once; per-sheet\n\
         sharding keeps readers wait-free across sheets, and the group-commit\n\
         committer turns K writers x 1 fsync/op into ~1 fsync per batch without\n\
         weakening the WAL durability contract."
    );
}
