//! Figure 2: per-corpus sheet-density histograms.

use dataspread_bench::{bar, corpora_with_analyses};

fn main() {
    println!("Figure 2: Data Density distribution (#sheets per density bucket)\n");
    for (name, _sheets, analyses) in corpora_with_analyses() {
        println!("{name}:");
        let mut buckets = [0usize; 5]; // (0,0.2], .. (0.8,1.0]
        for a in &analyses {
            let b = ((a.density * 5.0).ceil() as usize).clamp(1, 5) - 1;
            buckets[b] += 1;
        }
        let max = buckets.iter().copied().max().unwrap_or(1).max(1);
        for (i, count) in buckets.iter().enumerate() {
            println!(
                "  ({:.1},{:.1}] {:>5}  {}",
                i as f64 * 0.2,
                (i + 1) as f64 * 0.2,
                count,
                bar(*count as f64 / max as f64, 40)
            );
        }
        println!();
    }
    println!(
        "paper shape: Internet/ClueWeb09/Enron skew dense (right); Academic skews sparse (left)."
    );
}
