//! Figure 3: tabular regions per sheet.

use dataspread_bench::{bar, corpora_with_analyses};

fn main() {
    println!("Figure 3: Tabular Region Distribution (#sheets by #tables)\n");
    for (name, _sheets, analyses) in corpora_with_analyses() {
        println!("{name}:");
        let mut buckets = [0usize; 8]; // 0..=6, 7+
        for a in &analyses {
            buckets[a.tabular_regions.min(7)] += 1;
        }
        let max = buckets.iter().copied().max().unwrap_or(1).max(1);
        for (i, count) in buckets.iter().enumerate() {
            let label = if i == 7 {
                "7+".to_string()
            } else {
                i.to_string()
            };
            println!(
                "  {label:>2} tables {count:>5}  {}",
                bar(*count as f64 / max as f64, 40)
            );
        }
        println!();
    }
    println!("paper shape: most sheets have 0-2 tabular regions; Academic has fewest.");
}
