//! Figure 4: connected-component density distribution.

use dataspread_analysis::{connected_components, Adjacency};
use dataspread_bench::{bar, corpora_with_analyses};

fn main() {
    println!("Figure 4: Connected Component Data Density (#components per bucket)\n");
    for (name, sheets, _) in corpora_with_analyses() {
        println!("{name}:");
        let mut buckets = [0usize; 5];
        for sheet in &sheets {
            for comp in connected_components(sheet, Adjacency::Eight) {
                let b = ((comp.density() * 5.0).ceil() as usize).clamp(1, 5) - 1;
                buckets[b] += 1;
            }
        }
        let max = buckets.iter().copied().max().unwrap_or(1).max(1);
        for (i, count) in buckets.iter().enumerate() {
            println!(
                "  ({:.1},{:.1}] {:>6}  {}",
                i as f64 * 0.2,
                (i + 1) as f64 * 0.2,
                count,
                bar(*count as f64 / max as f64, 40)
            );
        }
        println!();
    }
    println!("paper shape: components are very dense — >80% above 0.8 density.");
}
