//! Figure 5: formula-function histograms per corpus.

use dataspread_analysis::function_histogram;
use dataspread_bench::{bar, corpora_with_analyses};

fn main() {
    println!("Figure 5: Formulae Distribution (top functions per corpus)\n");
    for (name, sheets, _) in corpora_with_analyses() {
        let mut total: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        for sheet in &sheets {
            for (f, n) in function_histogram(sheet) {
                *total.entry(f).or_insert(0) += n;
            }
        }
        let mut sorted: Vec<(String, u64)> = total.into_iter().collect();
        sorted.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
        println!("{name}:");
        let max = sorted.first().map(|(_, n)| *n).unwrap_or(1).max(1);
        for (f, n) in sorted.iter().take(8) {
            println!("  {f:<12} {n:>7}  {}", bar(*n as f64 / max as f64, 40));
        }
        println!();
    }
    println!("paper shape: ARITH/SUM/IF dominate; VLOOKUP appears in the publication corpora;\nAcademic is dominated by small arithmetic/conditional formulas.");
}
