//! Figure 6: user-survey operation frequencies.
//!
//! This figure is human-subject data (30 industry participants) and cannot
//! be re-run; see DESIGN.md §2. We print the paper's reported distribution
//! and the derived operation mix (Appendix C-A2) that drives the
//! incremental-maintenance experiment, then sample the mix to show the
//! generator matches it.

use dataspread_corpus::{OpMix, UserOp};
use dataspread_grid::{CellAddr, SparseSheet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("Figure 6: Operations performed on spreadsheets (substitution — see DESIGN.md)\n");
    println!("paper's survey (30 participants, 1=never..5=frequently, share marking >=4):");
    for (op, share) in [
        ("Scrolling", "30/30 perform; 22 mark 5"),
        ("Changing individual cells", "all participants"),
        ("Formula evaluation", "most mark >=4"),
        ("Row/column add/delete", "26/30 mark >=4"),
        ("Organize as tables", "25/30 mark >=4"),
        ("Rely on row ordering", "25/30 mark >=4"),
    ] {
        println!("  {op:<28} {share}");
    }
    println!("\nderived operation mix (Appendix C-A2), used by exp_fig26:");
    let mix = OpMix::default();
    println!("  update existing cell  {:.4}", mix.update_cell);
    println!("  add new cell          {:.4}", mix.add_cell);
    println!("  add row               {:.4}", mix.add_row);
    println!("  add column            {:.4}", mix.add_col);

    // Sample the generator to confirm it matches.
    let mut sheet = SparseSheet::new();
    for r in 0..50 {
        for c in 0..8 {
            sheet.set_value(CellAddr::new(r, c), 1i64);
        }
    }
    let mut rng = StdRng::seed_from_u64(6);
    let mut counts = [0u32; 4];
    const N: u32 = 100_000;
    for _ in 0..N {
        match mix.sample(&sheet, &mut rng) {
            UserOp::UpdateCell(_) => counts[0] += 1,
            UserOp::AddCell(_) => counts[1] += 1,
            UserOp::AddRow(_) => counts[2] += 1,
            UserOp::AddCol(_) => counts[3] += 1,
        }
    }
    println!("\nsampled mix over {N} draws:");
    for (label, c) in ["update", "add cell", "add row", "add col"]
        .iter()
        .zip(counts)
    {
        println!("  {label:<10} {:.4}", c as f64 / N as f64);
    }
}
