//! Figure 13: storage comparison of primitive vs hybrid data models,
//! normalized to worst = 100 per corpus.
//!
//! (a) PostgreSQL cost model; (b) the "ideal database" cost model.
//! Series: RCV, ROM, COM, Greedy, Agg, DP, and the OPT lower bound.
//! The paper's headline: hybrids save 15–20% over the best primitive under
//! PostgreSQL and considerably more under the ideal model; DP ≈ Agg ≈
//! within 10% of OPT.

use dataspread_bench::corpora_with_analyses;
use dataspread_hybrid::dp::primitive_cost;
use dataspread_hybrid::{
    opt_lower_bound, optimize_agg, optimize_dp, optimize_greedy, CostModel, GridView, ModelKind,
    OptimizerOptions,
};

fn main() {
    for (cm_label, cm) in [
        ("(a) PostgreSQL cost model", CostModel::postgres()),
        ("(b) ideal database cost model", CostModel::ideal()),
    ] {
        println!("Figure 13{cm_label}: normalized storage (worst = 100)\n");
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "Dataset", "RCV", "ROM", "COM", "Greedy", "Agg", "DP", "OPT"
        );
        for (name, sheets, _) in corpora_with_analyses() {
            // Average normalized cost across sheets (paper's methodology).
            let mut sums = [0.0f64; 7];
            let mut counted = 0usize;
            for sheet in &sheets {
                if sheet.is_empty() {
                    continue;
                }
                let view = GridView::from_sheet(sheet);
                let opts = OptimizerOptions::default();
                let rcv = primitive_cost(&view, &cm, ModelKind::Rcv);
                let rom = primitive_cost(&view, &cm, ModelKind::Rom);
                let com = primitive_cost(&view, &cm, ModelKind::Com);
                let greedy = optimize_greedy(&view, &cm, &opts).storage_cost(&view, &cm);
                let agg = optimize_agg(&view, &cm, &opts).storage_cost(&view, &cm);
                let dp = match optimize_dp(&view, &cm, &opts) {
                    Ok(d) => d.storage_cost(&view, &cm),
                    Err(_) => agg, // DP terminated on oversize sheets (paper cut DP off too)
                };
                let opt = opt_lower_bound(sheet, &cm);
                let vals = [rcv, rom, com, greedy, agg, dp, opt];
                let finite_worst = vals
                    .iter()
                    .copied()
                    .filter(|v| v.is_finite())
                    .fold(f64::MIN, f64::max);
                for (i, v) in vals.iter().enumerate() {
                    let v = if v.is_finite() { *v } else { finite_worst };
                    sums[i] += v / finite_worst * 100.0;
                }
                counted += 1;
            }
            let n = counted.max(1) as f64;
            println!(
                "{:<10} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
                name.to_string(),
                sums[0] / n,
                sums[1] / n,
                sums[2] / n,
                sums[3] / n,
                sums[4] / n,
                sums[5] / n,
                sums[6] / n,
            );
        }
        println!();
    }
    println!(
        "paper shape: under PostgreSQL, RCV worst on the dense corpora (ROM/COM ~40% of RCV),\n\
         hybrids 15-20% below the best primitive, all within 10% of OPT;\n\
         under the ideal model ROM is worst and hybrids reach ~1/7th of it on ClueWeb09;\n\
         on Academic (sparse) RCV beats ROM/COM."
    );
}
