//! Figure 14: upper bound on the number of tables in the optimal
//! decomposition, ⌊e·s2/s1 + 1⌋ summed over connected components
//! (Theorem 4) — justifying that recursive decomposition's additive error
//! (Theorem 3) is small in practice.

use dataspread_analysis::{connected_components, Adjacency};
use dataspread_bench::{bar, corpora_with_analyses};
use dataspread_hybrid::{table_count_upper_bound, CostModel};

fn main() {
    println!("Figure 14: upper bound for #tables in the optimal decomposition\n");
    let cm = CostModel::postgres();
    for (name, sheets, _) in corpora_with_analyses() {
        let mut buckets = [0usize; 8]; // bound 1..=7, 8+
        for sheet in &sheets {
            if sheet.is_empty() {
                continue;
            }
            let bound: u64 = connected_components(sheet, Adjacency::Eight)
                .iter()
                .map(|comp| {
                    let empty = comp.bbox.area() - comp.cells as u64;
                    table_count_upper_bound(empty, &cm)
                })
                .sum();
            buckets[(bound.clamp(1, 8) - 1) as usize] += 1;
        }
        println!("{name}:");
        let max = buckets.iter().copied().max().unwrap_or(1).max(1);
        for (i, count) in buckets.iter().enumerate() {
            let label = if i == 7 {
                "8+".into()
            } else {
                format!("{}", i + 1)
            };
            println!(
                "  bound {label:>2}: {count:>5}  {}",
                bar(*count as f64 / max as f64, 40)
            );
        }
        println!();
    }
    println!("paper shape: ~90% of sheets have fewer than 10 tables in the optimal decomposition,\nso Theorem 3's s1*k(k-1)/2 slack stays small.");
}
