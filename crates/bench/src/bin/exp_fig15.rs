//! Figure 15: (a) running time of the hybrid optimization algorithms and
//! (b) average formula access time per data model.
//!
//! (a) DP vs Greedy vs Agg on the four corpora (DP skips sheets above the
//! size guard, as the paper terminated DP after a wall-clock budget).
//! (b) every corpus formula evaluated against ROM-single, RCV-single, and
//! Agg-hybrid storage.

use std::time::{Duration, Instant};

use dataspread_bench::{corpora_with_analyses, load_hybrid, single_model};
use dataspread_engine::hybrid::StorageReader;
use dataspread_formula::{parse, Evaluator};
use dataspread_hybrid::{
    optimize_agg, optimize_dp, optimize_greedy, CostModel, GridView, ModelKind, OptimizerOptions,
};

fn main() {
    let cm = CostModel::postgres();
    let opts = OptimizerOptions::default();

    println!("Figure 15(a): hybrid optimization running time (avg per sheet)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>14}",
        "Dataset", "DP", "Greedy", "Agg", "DP sheets run"
    );
    let corpora = corpora_with_analyses();
    for (name, sheets, _) in &corpora {
        let mut dp_total = Duration::ZERO;
        let mut dp_count = 0usize;
        let mut greedy_total = Duration::ZERO;
        let mut agg_total = Duration::ZERO;
        for sheet in sheets {
            if sheet.is_empty() {
                continue;
            }
            let view = GridView::from_sheet(sheet);
            let t = Instant::now();
            let g = optimize_greedy(&view, &cm, &opts);
            greedy_total += t.elapsed();
            let t = Instant::now();
            let a = optimize_agg(&view, &cm, &opts);
            agg_total += t.elapsed();
            let t = Instant::now();
            if optimize_dp(&view, &cm, &opts).is_ok() {
                dp_total += t.elapsed();
                dp_count += 1;
            }
            let _ = (g, a);
        }
        let n = sheets.len().max(1) as f64;
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>11}/{}",
            name.to_string(),
            fmt_avg(dp_total, dp_count.max(1)),
            fmt_avg(greedy_total, sheets.len().max(1)),
            fmt_avg(agg_total, sheets.len().max(1)),
            dp_count,
            n as usize,
        );
    }
    println!("\npaper shape: DP orders of magnitude slower (6.3s avg on Enron);\nGreedy ~140x and Agg ~20x faster than DP.\n");

    println!("Figure 15(b): average formula access time per data model\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>9}",
        "Dataset", "ROM", "RCV", "Agg", "formulas"
    );
    let evaluator = Evaluator::new();
    for (name, sheets, _) in &corpora {
        let mut totals = [Duration::ZERO; 3];
        let mut n_formulas = 0u64;
        for sheet in sheets.iter() {
            if sheet.is_empty() || sheet.formula_count() == 0 {
                continue;
            }
            let exprs: Vec<_> = sheet
                .iter()
                .filter_map(|(_, cell)| cell.formula.as_deref())
                .filter_map(|src| parse(src).ok())
                .collect();
            if exprs.is_empty() {
                continue;
            }
            let view = GridView::from_sheet(sheet);
            let agg_decomp = optimize_agg(&view, &cm, &OptimizerOptions::default());
            let stores = [
                load_hybrid(sheet, &single_model(sheet, ModelKind::Rom)),
                load_hybrid(sheet, &single_model(sheet, ModelKind::Rcv)),
                load_hybrid(sheet, &agg_decomp),
            ];
            for (i, store) in stores.iter().enumerate() {
                let reader = StorageReader(store);
                let t = Instant::now();
                for expr in &exprs {
                    std::hint::black_box(evaluator.eval(expr, &reader));
                }
                totals[i] += t.elapsed();
            }
            n_formulas += exprs.len() as u64;
        }
        let n = n_formulas.max(1) as usize;
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>9}",
            name.to_string(),
            fmt_avg(totals[0], n),
            fmt_avg(totals[1], n),
            fmt_avg(totals[2], n),
            n_formulas,
        );
    }
    println!("\npaper shape: Agg <= ROM << RCV (e.g. Internet: ROM 0.23ms, RCV 3.17ms, Agg 0.13ms\n— 96% below RCV, 45% below ROM), even though Agg optimized storage only.");
}

fn fmt_avg(total: Duration, n: usize) -> String {
    let avg = total.as_secs_f64() / n as f64;
    if avg >= 1e-3 {
        format!("{:.3} ms", avg * 1e3)
    } else {
        format!("{:.1} µs", avg * 1e6)
    }
}
