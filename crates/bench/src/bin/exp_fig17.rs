//! Figure 17: large synthetic multi-table sheets — (a) storage and
//! (b) formula access time, for Agg-hybrid vs ROM vs RCV across decreasing
//! density.
//!
//! The paper populates sheets with twenty dense regions plus 100 random
//! range formulas (100M+ cells). Default scale here is 20 regions of
//! 100×50 (100k filled cells) so the harness runs in seconds; pass
//! `--scale N` to multiply region edge lengths.

use std::time::Instant;

use dataspread_bench::{load_hybrid, single_model};
use dataspread_corpus::multi_table_sheet;
use dataspread_engine::hybrid::StorageReader;
use dataspread_formula::{parse, Evaluator};
use dataspread_hybrid::{optimize_agg, CostModel, GridView, ModelKind, ModelSet, OptimizerOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u32 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    // Big enough that the 8 KB-per-table overhead stops dominating and the
    // optimizer actually separates the regions (the paper runs 100M+ cells;
    // --scale 4 gets there).
    let (rows, cols) = (400 * scale, 80 * scale);

    println!("Figure 17: synthetic sheets (20 regions of {rows}x{cols}, 100 range formulas)\n");
    println!(
        "{:<10} {:>14} {:>14} {:>14}   {:>12} {:>12} {:>12}",
        "density", "Agg bytes", "ROM bytes", "RCV bytes", "Agg access", "ROM access", "RCV access"
    );
    let cm = CostModel::postgres();
    let evaluator = Evaluator::new();
    // The paper's §VII-B.e compares Agg against ROM and RCV, so the hybrid
    // picks between those two models (COM's storage win on tall tables
    // would trade row-major access away — Theorem 7's access extension is
    // exercised by the `workload` option instead).
    let opts = OptimizerOptions {
        models: ModelSet {
            rom: true,
            com: false,
            rcv: true,
            columnar: false,
        },
        ..OptimizerOptions::default()
    };
    for &density in &[0.8, 0.6, 0.4, 0.2] {
        let synth = multi_table_sheet(20, rows, cols, density, 100, 17);
        let sheet = &synth.sheet;
        let view = GridView::from_sheet(sheet);
        let agg_decomp = optimize_agg(&view, &cm, &opts);
        let exprs: Vec<_> = synth
            .formulas
            .iter()
            .filter_map(|a| sheet.get(*a))
            .filter_map(|c| c.formula.as_deref())
            .filter_map(|src| parse(src).ok())
            .collect();
        let configs = [
            ("Agg", agg_decomp.clone()),
            ("ROM", single_model(sheet, ModelKind::Rom)),
            ("RCV", single_model(sheet, ModelKind::Rcv)),
        ];
        let mut bytes = Vec::new();
        let mut access = Vec::new();
        for (_, decomp) in &configs {
            let store = load_hybrid(sheet, decomp);
            bytes.push(store.storage_bytes());
            let reader = StorageReader(&store);
            let t = Instant::now();
            for expr in &exprs {
                std::hint::black_box(evaluator.eval(expr, &reader));
            }
            access.push(t.elapsed());
        }
        println!(
            "{:<10} {:>14} {:>14} {:>14}   {:>12?} {:>12?} {:>12?}",
            density, bytes[0], bytes[1], bytes[2], access[0], access[1], access[2],
        );
    }
    println!(
        "\npaper shape: Agg < ROM < RCV on both storage and access at high density;\n\
         RCV approaches ROM as density falls; Agg saves up to 50-75% of access time."
    );
}
