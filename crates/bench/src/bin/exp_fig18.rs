//! Figure 18: positional-mapping performance — fetch / insert / delete of a
//! single (random) row vs sheet size, for position-as-is, monotonic, and
//! hierarchical positional mapping.
//!
//! Default sweep: 10³..10⁶ rows (pass `--full` for 10⁷). The paper sweeps
//! 10³..10⁷ and reports hierarchical staying at milliseconds throughout
//! while as-is insert/delete and monotonic fetch blow past the 500 ms
//! interactivity bound. Rows carry 10 payload columns (the paper uses 100;
//! narrower rows keep the harness's build phase quick without changing the
//! complexity story, which is in the *counts*, not the tuple width).

use std::time::Duration;

use dataspread_bench::posmark::{AsIsStore, HierarchicalStore, MonotonicStore};
use dataspread_bench::time_median;

const WIDTH: u32 = 10;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sizes: &[u64] = if full {
        &[1_000, 10_000, 100_000, 1_000_000, 10_000_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    println!("Figure 18: positional mapping, single random-row ops ({WIDTH} payload cols)\n");
    println!(
        "{:>10} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
        "#rows",
        "fetch a-i",
        "fetch mono",
        "fetch hier",
        "ins a-i",
        "ins mono",
        "ins hier",
        "del a-i",
        "del mono",
        "del hier",
    );
    for &n in sizes {
        let pos = n / 2;
        // position-as-is: cascading insert/delete get hopeless past 10^6
        // (the paper's plot cuts off similarly).
        let (asis_f, asis_i, asis_d) = if n > 1_000_000 {
            (None, None, None)
        } else {
            let mut s = AsIsStore::build(n, WIDTH);
            let f = time_median(3, || {
                std::hint::black_box(s.fetch(pos, 1));
            });
            let i = time_median(3, || s.insert_at(pos));
            let d = time_median(3, || s.delete_at(pos));
            (Some(f), Some(i), Some(d))
        };
        // monotonic: the linear fetch dominates at 10^7.
        let (mono_f, mono_i, mono_d) = if n > 1_000_000 {
            (None, None, None)
        } else {
            let mut s = MonotonicStore::build(n, WIDTH);
            let f = time_median(3, || {
                std::hint::black_box(s.fetch(pos, 1));
            });
            let i = time_median(3, || s.insert_at(pos));
            let d = time_median(3, || s.delete_at(pos));
            (Some(f), Some(i), Some(d))
        };
        let (hier_f, hier_i, hier_d) = {
            let mut s = HierarchicalStore::build(n, WIDTH);
            let f = time_median(3, || {
                std::hint::black_box(s.fetch(pos, 1));
            });
            let i = time_median(3, || s.insert_at(pos));
            let d = time_median(3, || s.delete_at(pos));
            (Some(f), Some(i), Some(d))
        };
        println!(
            "{:>10} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
            n,
            fmt(asis_f),
            fmt(mono_f),
            fmt(hier_f),
            fmt(asis_i),
            fmt(mono_i),
            fmt(hier_i),
            fmt(asis_d),
            fmt(mono_d),
            fmt(hier_d),
        );
    }
    println!(
        "\npaper shape: as-is fetch and hierarchical everything stay flat (sub-ms);\n\
         as-is insert/delete grow linearly and leave the interactive (<500 ms) regime\n\
         past ~10^5-10^6; monotonic insert/delete are fast but its fetch grows linearly.\n\
         (skipped) = combination intentionally cut off, like the paper's plots."
    );
}

fn fmt(d: Option<Duration>) -> String {
    match d {
        None => "(skipped)".to_string(),
        Some(d) if d.as_secs_f64() >= 1.0 => format!("{:.2} s", d.as_secs_f64()),
        Some(d) if d.as_secs_f64() >= 1e-3 => format!("{:.2} ms", d.as_secs_f64() * 1e3),
        Some(d) => format!("{:.1} µs", d.as_secs_f64() * 1e6),
    }
}
