//! Figures 22–24: translator operation latencies vs sheet density, column
//! count, and row count — ROM vs RCV, both on hierarchical positional maps
//! (Appendix C-B1).
//!
//! * Fig 22 — update a 100×20 region (cell-at-a-time updates),
//! * Fig 23 — insert one row of `cols` cells,
//! * Fig 24 — select (scroll to) a 1000×20 region.
//!
//! Default row count is 10⁵ (the paper sweeps to 10⁷; pass `--full`).

use std::time::Duration;

use dataspread_bench::{dense_rcv, dense_rom, sparse_rom, time_median};
use dataspread_engine::hybrid::HybridSheet;
use dataspread_engine::PosMapKind;
use dataspread_grid::{Cell, Rect};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let base_rows: u32 = if full { 1_000_000 } else { 100_000 };
    let kind = PosMapKind::Hierarchical;

    // --- sweep 1: density (rows fixed, 100 cols) ---------------------
    println!("sweep (a): density (rows={base_rows}, cols=100)\n");
    header();
    for &density in &[0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut rom = sparse_rom(base_rows / 10, 100, density, kind);
        let mut rcv = dense_rcv(base_rows / 10, 100, density, kind);
        row(
            &format!("d={density}"),
            measure(&mut rom),
            measure(&mut rcv),
        );
    }

    // --- sweep 2: column count ----------------------------------------
    println!(
        "\nsweep (b): columns (rows={}, density=1)\n",
        base_rows / 10
    );
    header();
    for &cols in &[10u32, 30, 50, 70, 100] {
        let mut rom = dense_rom(base_rows / 10, cols, kind);
        let mut rcv = dense_rcv(base_rows / 10, cols, 1.0, kind);
        row(&format!("c={cols}"), measure(&mut rom), measure(&mut rcv));
    }

    // --- sweep 3: row count --------------------------------------------
    println!("\nsweep (c): rows (cols=100, density=1)\n");
    header();
    let row_sizes: &[u32] = if full {
        &[10_000, 100_000, 1_000_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    for &rows in row_sizes {
        let mut rom = dense_rom(rows, 100, kind);
        let mut rcv = dense_rcv(rows, 100, 1.0, kind);
        row(&format!("r={rows}"), measure(&mut rom), measure(&mut rcv));
    }
    println!(
        "\npaper shape (Figs 22-24): ROM beats RCV for updates and inserts (one tuple vs many);\n\
         selects: RCV competitive at low density, ROM wins when dense; everything stays\n\
         interactive (<500 ms) except RCV range updates, which issue one query per cell."
    );
}

struct Lat {
    update: Duration,
    insert: Duration,
    select: Duration,
}

fn measure(hs: &mut HybridSheet) -> Lat {
    // Fig 22: update a 100 x 20 region, one batched write per row (the
    // paper's ROM issues one UPDATE per row; RCV still touches each cell's
    // tuple).
    let patch: Vec<(u32, Cell)> = (0..20).map(|c| (c, Cell::value(1i64))).collect();
    let update = time_median(3, || {
        for r in 200..300 {
            // The batch API consumes its input; both models pay the same
            // clone here, so the ROM-vs-RCV comparison is unaffected.
            hs.set_cells_in_row(r, patch.clone()).unwrap();
        }
    });
    // Fig 23: insert one row (the region's translator handles the shift).
    let insert = time_median(3, || {
        hs.insert_rows(500, 1).unwrap();
    });
    // Fig 24: select a 1000 x 20 region.
    let select = time_median(3, || {
        std::hint::black_box(hs.get_cells(Rect::new(100, 0, 1099, 19)));
    });
    Lat {
        update,
        insert,
        select,
    }
}

fn header() {
    println!(
        "{:<10} | {:>12} {:>12} | {:>12} {:>12} | {:>12} {:>12}",
        "", "upd ROM", "upd RCV", "ins ROM", "ins RCV", "sel ROM", "sel RCV"
    );
}

fn row(label: &str, rom: Lat, rcv: Lat) {
    println!(
        "{:<10} | {:>12?} {:>12?} | {:>12?} {:>12?} | {:>12?} {:>12?}",
        label, rom.update, rcv.update, rom.insert, rcv.insert, rom.select, rcv.select
    );
}
