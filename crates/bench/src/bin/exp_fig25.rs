//! Figure 25: storage drill-down on four contrasting sample sheets —
//! normalized storage (worst = 100) per data model, showing where each
//! primitive wins and how close the optimizers get to DP.

use dataspread_bench::normalize_to_worst;
use dataspread_grid::{CellAddr, SparseSheet};
use dataspread_hybrid::dp::{dp_cost, primitive_cost};
use dataspread_hybrid::{
    optimize_agg, optimize_greedy, CostModel, GridView, ModelKind, OptimizerOptions,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dense(rows: u32, cols: u32) -> SparseSheet {
    let mut s = SparseSheet::new();
    for r in 0..rows {
        for c in 0..cols {
            s.set_value(CellAddr::new(r, c), 1i64);
        }
    }
    s
}

fn main() {
    // Sheet 1: dense, wide (horizontal layout).
    let sheet1 = dense(40, 120);
    // Sheet 2: dense, tall (vertical layout).
    let sheet2 = dense(1200, 6);
    // Sheet 3: mixed — dense core plus sparse halo.
    let mut sheet3 = dense(60, 10);
    let mut rng = StdRng::seed_from_u64(25);
    for _ in 0..150 {
        sheet3.set_value(
            CellAddr::new(rng.gen_range(0..400), rng.gen_range(0..60)),
            1i64,
        );
    }
    // Sheet 4: very sparse scatter (horizontal drift).
    let mut sheet4 = SparseSheet::new();
    for _ in 0..200 {
        sheet4.set_value(
            CellAddr::new(rng.gen_range(0..40), rng.gen_range(0..500)),
            1i64,
        );
    }
    let samples = [
        ("Sheet 1 (dense wide)", sheet1),
        ("Sheet 2 (dense tall)", sheet2),
        ("Sheet 3 (mixed)", sheet3),
        ("Sheet 4 (sparse wide)", sheet4),
    ];
    let cm = CostModel::postgres();
    let opts = OptimizerOptions::default();
    println!("Figure 25: normalized storage on sample sheets (worst = 100, PostgreSQL model)\n");
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Sheet", "ROM", "COM", "RCV", "Greedy", "Agg", "DP"
    );
    for (name, sheet) in samples {
        let view = GridView::from_sheet(&sheet);
        let rom = primitive_cost(&view, &cm, ModelKind::Rom);
        let com = primitive_cost(&view, &cm, ModelKind::Com);
        let rcv = primitive_cost(&view, &cm, ModelKind::Rcv);
        let greedy = optimize_greedy(&view, &cm, &opts).storage_cost(&view, &cm);
        let agg = optimize_agg(&view, &cm, &opts).storage_cost(&view, &cm);
        let dp = dp_cost(&view, &cm, &opts).unwrap_or(agg);
        let vals: Vec<f64> = [rom, com, rcv, greedy, agg, dp]
            .into_iter()
            .map(|v| if v.is_finite() { v } else { f64::NAN })
            .collect();
        let finite: Vec<f64> = vals
            .iter()
            .map(|v| if v.is_nan() { rcv } else { *v })
            .collect();
        let norm = normalize_to_worst(&finite);
        println!(
            "{:<22} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            name, norm[0], norm[1], norm[2], norm[3], norm[4], norm[5],
        );
    }
    println!(
        "\npaper shape: dense sheets — ROM/COM far below RCV; orientation decides ROM vs COM;\n\
         sparse sheets — RCV wins over ROM/COM; the optimizers track the best primitive\n\
         or beat it, with Agg close to DP except on the mixed sheet."
    );
}
