//! Figure 26: incremental hybrid decomposition.
//!
//! (a) the η trade-off — higher migration penalties mean fewer migrated
//! cells but worse storage;
//! (b) storage vs user operations — re-optimizing incrementally after each
//! batch of 1 000 edits from the survey-derived mix yields the paper's
//! sawtooth: storage drifts up as the sheet diverges, then drops when the
//! optimizer decides migration pays off.

use dataspread_corpus::{apply_op, multi_table_sheet, OpMix, UserOp};
use dataspread_grid::SparseSheet;
use dataspread_hybrid::{
    incremental_agg, optimize_agg, CostModel, Decomposition, GridView, IncrementalOptions,
    OptimizerOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Keep a decomposition's rectangles aligned with the sheet across
/// structural edits (what the engine's hybrid layer does for real storage).
fn shift_decomp(decomp: &mut Decomposition, op: UserOp) {
    match op {
        UserOp::AddRow(at) => {
            for region in &mut decomp.regions {
                if at <= region.rect.r1 {
                    region.rect = region.rect.translate(1, 0);
                } else if at <= region.rect.r2 {
                    region.rect.r2 += 1;
                }
            }
        }
        UserOp::AddCol(at) => {
            for region in &mut decomp.regions {
                if at <= region.rect.c1 {
                    region.rect = region.rect.translate(0, 1);
                } else if at <= region.rect.c2 {
                    region.rect.c2 += 1;
                }
            }
        }
        UserOp::UpdateCell(_) | UserOp::AddCell(_) => {}
    }
}

/// Apply one sampled op to the sheet and the tracked decomposition.
fn step(sheet: &mut SparseSheet, decomp: &mut Decomposition, mix: &OpMix, rng: &mut StdRng) {
    let op = mix.sample(sheet, rng);
    shift_decomp(decomp, op);
    apply_op(sheet, op, rng);
}

fn main() {
    let cm = CostModel::postgres();
    let opts = OptimizerOptions::default();

    // ----- (a) the η trade-off ----------------------------------------
    println!("Figure 26(a): eta trade-off (diverged sheet, incremental Agg)\n");
    println!(
        "{:>10} {:>16} {:>16} {:>12}",
        "eta", "migrated cells", "storage cost", "kept tables"
    );
    let synth = multi_table_sheet(8, 30, 10, 0.5, 0, 26);
    let mut sheet = synth.sheet.clone();
    let mut old = optimize_agg(&GridView::from_sheet(&sheet), &cm, &opts);
    // Diverge the sheet with 2k edits, keeping the old decomposition's
    // rectangles aligned (as the engine's region metadata would be).
    let mix = OpMix::default();
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..2_000 {
        step(&mut sheet, &mut old, &mix, &mut rng);
    }
    for &eta in &[0.0, 0.1, 1.0, 10.0, 100.0, 1e6] {
        let (decomp, stats) = incremental_agg(
            &sheet,
            &old,
            &cm,
            &IncrementalOptions {
                eta,
                base: opts.clone(),
            },
        );
        let view = GridView::from_sheet(&sheet);
        println!(
            "{:>10} {:>16} {:>16.0} {:>12}",
            eta,
            stats.migrated_cells,
            decomp.storage_cost(&view, &cm),
            stats.kept_tables,
        );
    }
    println!("\npaper shape: migration falls and storage rises monotonically with eta;\nbeyond eta~100 the old decomposition is frozen (zero migration).\n");

    // ----- (b) user operations vs storage ------------------------------
    println!("Figure 26(b): storage vs user operations (batches of 1000, eta = 1)\n");
    println!(
        "{:>8} {:>16} {:>16} {:>10} {:>8}",
        "ops", "storage (cur)", "storage (opt)", "migrated", "kept/new"
    );
    let synth = multi_table_sheet(8, 30, 10, 0.6, 0, 27);
    let mut sheet = synth.sheet.clone();
    let mut current = optimize_agg(&GridView::from_sheet(&sheet), &cm, &opts);
    let mut rng = StdRng::seed_from_u64(7);
    for batch in 1..=10 {
        for _ in 0..1_000 {
            step(&mut sheet, &mut current, &mix, &mut rng);
        }
        let view = GridView::from_sheet(&sheet);
        // What the *current* (stale) decomposition costs: regions may no
        // longer cover everything, so re-cost a decomposition that adds a
        // catch-all for uncovered cells via the incremental keep-everything
        // path (eta huge = frozen).
        let (frozen, _) = incremental_agg(
            &sheet,
            &current,
            &cm,
            &IncrementalOptions {
                eta: 1e12,
                base: opts.clone(),
            },
        );
        let stale_cost = frozen.storage_cost(&view, &cm);
        let (next, stats) = incremental_agg(
            &sheet,
            &current,
            &cm,
            &IncrementalOptions {
                eta: 1.0,
                base: opts.clone(),
            },
        );
        let new_cost = next.storage_cost(&view, &cm);
        println!(
            "{:>8} {:>16.0} {:>16.0} {:>10} {:>6}/{}",
            batch * 1000,
            stale_cost,
            new_cost,
            stats.migrated_cells,
            stats.kept_tables,
            stats.new_tables,
        );
        current = next;
    }
    println!("\npaper shape: a sawtooth — the frozen layout's cost drifts upward between\nre-optimizations; migrations (nonzero 'migrated') pull it back down.");
}
