//! Interactive hot-path benchmark: the sub-linear claims behind the
//! paper's "O(1) edit" story (§VI, Figures 13–15, 22), measured against
//! the retained scan implementations.
//!
//! * **dependents lookup** — `DependencyGraph::dependents_of` (grid-bucket
//!   spatial index) vs `ScanDependencyGraph` (walks every formula), across
//!   formula counts.
//! * **recompute plan** — index-probed edge construction vs the all-pairs
//!   scan, same seeds.
//! * **point routing** — `HybridSheet::region_at` (row-band index) vs
//!   `region_at_scan`, plus end-to-end `get_cell`/`set_cell`, across
//!   region counts.
//! * **window fetch** — `get_cells` over a scrolling-sized window.
//!
//! Results go to stdout and to a machine-readable `BENCH_hotpath.json`
//! (override with `DS_HOTPATH_OUT`) so successive perf PRs accumulate a
//! tracked trajectory. Sizes: `DS_HOTPATH_FORMULAS` / `DS_HOTPATH_REGIONS`
//! (comma-separated; CI runs scaled-down sizes, local runs default to the
//! paper-scale 100k formulas / 2048 regions).
//!
//! At full size the run *asserts* the ≥10× acceptance bound, so a perf
//! regression fails loudly instead of shipping quietly.

use std::hint::black_box;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataspread_engine::rom::RomTranslator;
use dataspread_engine::{HybridSheet, PosMapKind};
use dataspread_formula::{DependencyGraph, ScanDependencyGraph};
use dataspread_grid::{Cell, CellAddr, Rect};

fn sizes_from_env(var: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(var)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// Nanoseconds per op for `iters` runs of `f`.
fn per_op_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

struct FormulaRow {
    count: usize,
    dep_scan_ns: f64,
    dep_indexed_ns: f64,
    plan_scan_ns: f64,
    plan_indexed_ns: f64,
}

struct RoutingRow {
    regions: usize,
    route_scan_ns: f64,
    route_indexed_ns: f64,
    get_cell_ns: f64,
    set_cell_ns: f64,
    window_fetch_us: f64,
}

/// A synthetic dense-formula sheet: data cells in columns 0..8, one
/// formula per data row in column 9 reading a small aggregate of nearby
/// data, chains (formula reading the previous formula) every 3rd row, and
/// a whole-column aggregate every 500th row to exercise coarse index
/// levels. Registered into both graphs identically.
fn build_graphs(count: usize, rng: &mut StdRng) -> (DependencyGraph, ScanDependencyGraph) {
    let mut indexed = DependencyGraph::new();
    let mut scan = ScanDependencyGraph::new();
    for i in 0..count as u32 {
        let cell = CellAddr::new(i, 9);
        let mut ranges = vec![Rect::new(
            i,
            rng.gen_range(0..4u32),
            i,
            rng.gen_range(4..8u32),
        )];
        if i % 3 == 2 {
            ranges.push(Rect::cell(CellAddr::new(i - 1, 9)));
        }
        if i % 500 == 499 {
            ranges.push(Rect::new(0, rng.gen_range(0..8u32), count as u32, 8));
        }
        indexed.set_formula(cell, ranges.clone());
        scan.set_formula(cell, ranges);
    }
    (indexed, scan)
}

fn bench_formulas(count: usize, rng: &mut StdRng) -> FormulaRow {
    let (indexed, scan) = build_graphs(count, rng);
    let probes: Vec<CellAddr> = (0..512)
        .map(|_| CellAddr::new(rng.gen_range(0..count as u32), rng.gen_range(0..10u32)))
        .collect();
    // The scan graph is O(F) per lookup: keep its iteration count small at
    // large F (per-op normalization keeps the comparison fair).
    let scan_iters = (200_000 / count.max(1)).clamp(8, probes.len());
    let mut pi = probes.iter().cycle();
    let dep_indexed_ns = per_op_ns(probes.len() * 8, || {
        black_box(indexed.dependents_of(*pi.next().unwrap()));
    });
    let mut pi = probes.iter().cycle();
    let dep_scan_ns = per_op_ns(scan_iters, || {
        black_box(scan.dependents_of(*pi.next().unwrap()));
    });
    // Recompute plans seeded by single data-cell edits (the updateCell
    // path): seeds with a direct dependent, sometimes a chain.
    let seeds: Vec<CellAddr> = (0..64)
        .map(|_| CellAddr::new(rng.gen_range(0..count as u32), rng.gen_range(0..8u32)))
        .collect();
    let mut si = seeds.iter().cycle();
    let plan_indexed_ns = per_op_ns(seeds.len() * 4, || {
        black_box(indexed.recompute_plan(std::slice::from_ref(si.next().unwrap())));
    });
    let plan_iters = (100_000 / count.max(1)).clamp(4, seeds.len());
    let mut si = seeds.iter().cycle();
    let plan_scan_ns = per_op_ns(plan_iters, || {
        black_box(scan.recompute_plan(std::slice::from_ref(si.next().unwrap())));
    });
    FormulaRow {
        count,
        dep_scan_ns,
        dep_indexed_ns,
        plan_scan_ns,
        plan_indexed_ns,
    }
}

/// A many-region sheet: row bands of 10 rows × 8 columns with 2-row gaps
/// (catch-all territory), one seeded cell per region.
fn build_regioned_sheet(regions: usize) -> HybridSheet {
    let mut hs = HybridSheet::new();
    for i in 0..regions as u32 {
        let r1 = i * 12;
        let rom = Box::new(RomTranslator::new(PosMapKind::Hierarchical));
        hs.add_region(Rect::new(r1, 0, r1 + 9, 7), rom)
            .expect("bands are disjoint");
    }
    for i in 0..regions as u32 {
        hs.set_cell(CellAddr::new(i * 12 + 3, 2), Cell::value(i as i64))
            .expect("seed cell");
    }
    hs
}

fn bench_routing(regions: usize, rng: &mut StdRng) -> RoutingRow {
    let mut hs = build_regioned_sheet(regions);
    let max_row = regions as u32 * 12;
    let addrs: Vec<CellAddr> = (0..1024)
        .map(|_| CellAddr::new(rng.gen_range(0..max_row), rng.gen_range(0..10u32)))
        .collect();
    let mut ai = addrs.iter().cycle();
    let route_indexed_ns = per_op_ns(addrs.len() * 8, || {
        black_box(hs.region_at(*ai.next().unwrap()));
    });
    let scan_iters = (1_000_000 / regions.max(1)).clamp(64, addrs.len() * 8);
    let mut ai = addrs.iter().cycle();
    let route_scan_ns = per_op_ns(scan_iters, || {
        black_box(hs.region_at_scan(*ai.next().unwrap()));
    });
    let mut ai = addrs.iter().cycle();
    let get_cell_ns = per_op_ns(addrs.len() * 4, || {
        black_box(hs.get_cell(*ai.next().unwrap()));
    });
    let mut ai = addrs.iter().cycle();
    let mut v = 0i64;
    let set_cell_ns = per_op_ns(addrs.len() * 2, || {
        v += 1;
        hs.set_cell(*ai.next().unwrap(), Cell::value(v)).unwrap();
    });
    // Scrolling window: 50 rows × 8 cols at random vertical offsets.
    let offsets: Vec<u32> = (0..128)
        .map(|_| rng.gen_range(0..max_row.saturating_sub(50).max(1)))
        .collect();
    let mut oi = offsets.iter().cycle();
    let window_fetch_us = per_op_ns(offsets.len() * 2, || {
        let r1 = *oi.next().unwrap();
        black_box(hs.get_cells(Rect::new(r1, 0, r1 + 49, 7)));
    }) / 1e3;
    RoutingRow {
        regions,
        route_scan_ns,
        route_indexed_ns,
        get_cell_ns,
        set_cell_ns,
        window_fetch_us,
    }
}

fn main() {
    let formula_sizes = sizes_from_env("DS_HOTPATH_FORMULAS", &[1_000, 10_000, 100_000]);
    let region_sizes = sizes_from_env("DS_HOTPATH_REGIONS", &[16, 256, 2048]);
    let out_path =
        std::env::var("DS_HOTPATH_OUT").unwrap_or_else(|_| "BENCH_hotpath.json".to_string());
    let mut rng = StdRng::seed_from_u64(0x407_9478);

    println!("Hot-path benchmark (indexed vs retained scan implementations)\n");
    println!(
        "{:>9} | {:>13} {:>13} {:>8} | {:>13} {:>13} {:>8}",
        "formulas", "deps scan", "deps idx", "speedup", "plan scan", "plan idx", "speedup"
    );
    let mut formula_rows = Vec::new();
    for &count in &formula_sizes {
        let row = bench_formulas(count, &mut rng);
        println!(
            "{:>9} | {:>11.0}ns {:>11.0}ns {:>7.1}x | {:>11.0}ns {:>11.0}ns {:>7.1}x",
            row.count,
            row.dep_scan_ns,
            row.dep_indexed_ns,
            row.dep_scan_ns / row.dep_indexed_ns,
            row.plan_scan_ns,
            row.plan_indexed_ns,
            row.plan_scan_ns / row.plan_indexed_ns,
        );
        formula_rows.push(row);
    }

    println!(
        "\n{:>9} | {:>12} {:>12} {:>8} | {:>10} {:>10} {:>11}",
        "regions", "route scan", "route idx", "speedup", "get_cell", "set_cell", "window 50x8"
    );
    let mut routing_rows = Vec::new();
    for &regions in &region_sizes {
        let row = bench_routing(regions, &mut rng);
        println!(
            "{:>9} | {:>10.0}ns {:>10.0}ns {:>7.1}x | {:>8.0}ns {:>8.0}ns {:>9.1}us",
            row.regions,
            row.route_scan_ns,
            row.route_indexed_ns,
            row.route_scan_ns / row.route_indexed_ns,
            row.get_cell_ns,
            row.set_cell_ns,
            row.window_fetch_us,
        );
        routing_rows.push(row);
    }

    // Machine-readable trajectory record.
    let mut json = String::from("{\n  \"bench\": \"hotpath\",\n  \"formulas\": [\n");
    for (i, r) in formula_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"count\": {}, \"dependents_scan_ns\": {:.1}, \"dependents_indexed_ns\": {:.1}, \
             \"plan_scan_ns\": {:.1}, \"plan_indexed_ns\": {:.1}}}{}\n",
            r.count,
            r.dep_scan_ns,
            r.dep_indexed_ns,
            r.plan_scan_ns,
            r.plan_indexed_ns,
            if i + 1 < formula_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"routing\": [\n");
    for (i, r) in routing_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"regions\": {}, \"route_scan_ns\": {:.1}, \"route_indexed_ns\": {:.1}, \
             \"get_cell_ns\": {:.1}, \"set_cell_ns\": {:.1}, \"window_fetch_us\": {:.2}}}{}\n",
            r.regions,
            r.route_scan_ns,
            r.route_indexed_ns,
            r.get_cell_ns,
            r.set_cell_ns,
            r.window_fetch_us,
            if i + 1 < routing_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path}");

    // Acceptance bounds at paper scale: the indexed hot paths must beat
    // the scans by ≥10× (scaled-down CI runs skip the assert — small
    // sizes don't separate the asymptotics).
    for r in &formula_rows {
        if r.count >= 100_000 {
            let dep = r.dep_scan_ns / r.dep_indexed_ns;
            let plan = r.plan_scan_ns / r.plan_indexed_ns;
            assert!(
                dep >= 10.0,
                "dependents_of speedup {dep:.1}x < 10x at {} formulas",
                r.count
            );
            assert!(
                plan >= 10.0,
                "recompute_plan speedup {plan:.1}x < 10x at {} formulas",
                r.count
            );
        }
    }
    for r in &routing_rows {
        if r.regions >= 2048 {
            let route = r.route_scan_ns / r.route_indexed_ns;
            assert!(
                route >= 10.0,
                "routing speedup {route:.1}x < 10x at {} regions",
                r.regions
            );
        }
    }
    println!(
        "\npaper context: single-cell edits and window fetches must stay sub-linear in\n\
         sheet size for interactivity (Figs 13-15, 22); the spatial dependency index\n\
         and row-band routing index make dependents-of, plan construction, and point\n\
         routing O(candidates)/O(log regions) instead of O(formulas)/O(regions)."
    );
}
