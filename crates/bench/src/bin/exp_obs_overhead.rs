//! Observability overhead: `apply_edit` throughput with the metrics
//! registry enabled vs disabled.
//!
//! The instrumented hot path pays one atomic fetch-add (the exact op
//! counter) per op, plus — for one op in 128 — two `Instant::now()`
//! reads, a histogram record, and a slow-op threshold compare; with the
//! registry disabled it pays a single relaxed load. This harness
//! measures both on an in-memory workspace — the configuration most
//! sensitive to per-op overhead, since nothing is hidden behind an
//! fsync — and asserts the enabled/disabled throughput ratio stays
//! within the acceptance bound (ratio ≥ 0.97, i.e. ≤ 3% overhead).
//!
//! The overhead under test is tens of nanoseconds per op, far below the
//! CPU-frequency and scheduler drift a whole-trial A/B comparison would
//! see. So each trial keeps one workspace per mode alive and interleaves
//! them in 10k-op chunks (~6ms each), alternating which mode goes first,
//! and scores each mode by its *minimum* chunk time: noise (preemption,
//! frequency dips, cache pollution) only ever adds time, so the fastest
//! of ~50 chunks is the cleanest estimate of the true per-op cost. The
//! acceptance bound is asserted on the median of the per-trial ratios,
//! which a single disturbed trial cannot move.
//!
//! The enabled runs are also cross-checked against the registry
//! snapshot itself: the `session_ops{op="apply_edit"}` counter must
//! equal the ops issued exactly, and the latency histogram must hold
//! exactly the 1-in-128 sampling schedule's record count.
//!
//! Results go to stdout and `BENCH_obs.json` (override with
//! `DS_OBS_OUT`). Sizes: `DS_OBS_OPS` (edits per mode per trial, default
//! 500000) and `DS_OBS_TRIALS` (trials, default 5); scaled-down runs
//! skip the assertion.

use std::time::{Duration, Instant};

use dataspread_workspace::{Edit, Session, Workspace, WorkspaceConfig};

const DEFAULT_OPS: usize = 500_000;
const DEFAULT_TRIALS: usize = 5;
const MIN_RATIO: f64 = 0.97;
const CHUNK: usize = 10_000;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn bench_session(metrics_enabled: bool) -> (Workspace, Session) {
    let ws = Workspace::in_memory_with(WorkspaceConfig {
        metrics_enabled,
        ..WorkspaceConfig::default()
    });
    let session = ws.session();
    session.open_sheet("bench").expect("open sheet");
    (ws, session)
}

/// `n` numeric cell edits over a fixed 512×8 footprint, starting at
/// logical op index `base` so chunks tile the same cells a full trial
/// would. Returns the elapsed wall time.
fn run_chunk(session: &Session, base: usize, n: usize) -> Duration {
    let t = Instant::now();
    for i in base..base + n {
        session
            .apply_edit(
                "bench",
                Edit::Set {
                    row: (i % 512) as u32,
                    col: ((i / 512) % 8) as u32,
                    input: (i as f64).to_string(),
                },
            )
            .expect("edit");
    }
    t.elapsed()
}

/// One trial: a fresh workspace per mode, `ops` edits each, interleaved
/// in `CHUNK`-sized slices. Returns each mode's peak chunk throughput
/// (disabled ops/s, enabled ops/s).
fn trial(ops: usize) -> (f64, f64) {
    let (ws_off, off) = bench_session(false);
    let (ws_on, on) = bench_session(true);
    // Warm both paths (page cache, allocator, branch predictors) before
    // the clock starts; these ops still count toward the registry totals.
    let warmup = ops.min(20_000);
    run_chunk(&off, 0, warmup);
    run_chunk(&on, 0, warmup);

    let mut min_off = Duration::MAX;
    let mut min_on = Duration::MAX;
    let mut done = 0usize;
    let mut off_first = true;
    while done < ops {
        let n = CHUNK.min(ops - done);
        let (a, b) = if off_first {
            (run_chunk(&off, done, n), run_chunk(&on, done, n))
        } else {
            let b = run_chunk(&on, done, n);
            (run_chunk(&off, done, n), b)
        };
        // Short tail chunks would skew the per-chunk minimum; score full
        // chunks only (ops is a multiple of CHUNK in the default config).
        if n == CHUNK {
            min_off = min_off.min(a);
            min_on = min_on.min(b);
        }
        off_first = !off_first;
        done += n;
    }
    assert!(
        min_off < Duration::MAX,
        "need at least one full {CHUNK}-op chunk; raise DS_OBS_OPS"
    );

    let issued = (warmup + ops) as u64;
    for (ws, enabled) in [(&ws_off, false), (&ws_on, true)] {
        let snap = ws.metrics_registry().snapshot();
        let counted = snap.counter("session_ops{op=\"apply_edit\"}").unwrap_or(0);
        let sampled = snap
            .histogram("session_op_ns{op=\"apply_edit\"}")
            .map_or(0, dataspread_workspace::HistogramSnapshot::count);
        if enabled {
            assert_eq!(counted, issued, "the op counter is exact");
            // Latency is clocked for one op in 128, starting with the
            // first; single-threaded, that count is deterministic.
            assert_eq!(
                sampled,
                issued.div_ceil(128),
                "sampled latency records disagree with the 1-in-128 schedule"
            );
        } else {
            assert_eq!(counted, 0, "disabled registry must count nothing");
            assert_eq!(sampled, 0, "disabled registry must record nothing");
        }
    }
    (
        CHUNK as f64 / min_off.as_secs_f64(),
        CHUNK as f64 / min_on.as_secs_f64(),
    )
}

fn main() {
    let ops = env_usize("DS_OBS_OPS", DEFAULT_OPS);
    let trials = env_usize("DS_OBS_TRIALS", DEFAULT_TRIALS);
    let out_path = std::env::var("DS_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".to_string());
    let full_scale = ops >= DEFAULT_OPS && trials >= DEFAULT_TRIALS;

    println!(
        "obs overhead: {ops} apply_edits/mode/trial, {trials} trials, interleaved {CHUNK}-op chunks"
    );
    let mut best_off = 0f64;
    let mut best_on = 0f64;
    let mut ratios = Vec::with_capacity(trials);
    for t in 0..trials {
        let (off, on) = trial(ops);
        best_off = best_off.max(off);
        best_on = best_on.max(on);
        ratios.push(on / off);
        println!(
            "  trial {:>2}: disabled {:>9.0} ops/s   enabled {:>9.0} ops/s   ratio {:.4}",
            t + 1,
            off,
            on,
            on / off
        );
    }
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios[ratios.len() / 2];
    println!(
        "  best: disabled {best_off:>9.0} ops/s   enabled {best_on:>9.0} ops/s   median ratio {ratio:.4}"
    );

    let json = format!(
        "{{\n  \"experiment\": \"obs_overhead\",\n  \"ops_per_trial\": {ops},\n  \"trials\": {trials},\n  \"disabled_ops_per_sec\": {best_off:.1},\n  \"enabled_ops_per_sec\": {best_on:.1},\n  \"ratio\": {ratio:.4},\n  \"min_ratio\": {MIN_RATIO}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");

    if full_scale {
        assert!(
            ratio >= MIN_RATIO,
            "instrumentation overhead out of bounds: enabled/disabled ratio {ratio:.4} < {MIN_RATIO}"
        );
        println!("acceptance: ratio {ratio:.4} >= {MIN_RATIO} (≤3% overhead) ok");
    } else {
        println!("scaled-down run: acceptance bound not asserted");
    }
}
