//! Persistence benchmark: WAL logging, crash recovery (replay), checkpoint,
//! and cold-open throughput of the durable engine.
//!
//! Scenario: `DS_PERSIST_OPS` cell updates (default 50 000) are logged to
//! the WAL of a durable sheet. We then measure
//!
//! * **log** — op logging throughput (`update_cell` with WAL append),
//! * **commit** — the fsync-point (`save`),
//! * **replay** — reopening the crash image: recovery replays every logged
//!   op and folds the result into the page image,
//! * **checkpoint** — folding the live engine's WAL into the image,
//! * **cold open** — reopening from a checkpointed image with an empty WAL,
//! * **incremental checkpoint** — after touching ~1% of cells, how many
//!   image pages actually get rewritten (dirty-page tracking at work),
//! * **region-granular checkpoint** — on a sheet decomposed into many ROM
//!   regions, a one-cell edit must re-serialize only the dirty region:
//!   page-writes and checkpoint time stay O(dirty regions), independent of
//!   total sheet size. Violations panic, so the CI durability job enforces
//!   the bound.

use std::path::{Path, PathBuf};
use std::time::Instant;

use dataspread_engine::SheetEngine;
use dataspread_grid::{CellAddr, CellValue};

fn ops_budget() -> usize {
    std::env::var("DS_PERSIST_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dataspread-exp-persist-{name}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn clone_store(src: &Path, dst: &Path) {
    std::fs::remove_dir_all(dst).ok();
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

fn row(metric: &str, duration_s: f64, detail: String) {
    println!("  {metric:<28} {:>10.1} ms   {detail}", duration_s * 1e3);
}

fn main() {
    let ops = ops_budget();
    println!("Persistence benchmark ({ops} logged cell updates)\n");

    let base = temp_dir("base");
    let crash = temp_dir("crash");

    // --- log ---------------------------------------------------------
    let mut engine = SheetEngine::open(&base).expect("open durable sheet");
    let t = Instant::now();
    for i in 0..ops as u32 {
        let addr = CellAddr::new(i % 1009, i / 1009);
        engine
            .update_cell(addr, &format!("{}", (i as i64) * 7 % 100_000))
            .expect("update");
    }
    let log_s = t.elapsed().as_secs_f64();
    row(
        "log (update_cell + WAL)",
        log_s,
        format!("{:>10.0} ops/s", ops as f64 / log_s),
    );

    // --- commit (fsync-point) ---------------------------------------
    let t = Instant::now();
    engine.save().expect("save");
    let commit_s = t.elapsed().as_secs_f64();
    let wal_bytes = engine.persistence_stats().expect("durable").wal_bytes;
    row(
        "commit (wal fsync)",
        commit_s,
        format!("{:>10} wal bytes", wal_bytes),
    );

    // --- replay (crash recovery) -------------------------------------
    clone_store(&base, &crash);
    let t = Instant::now();
    let recovered = SheetEngine::open(&crash).expect("recover");
    let replay_s = t.elapsed().as_secs_f64();
    row(
        "replay (recover + fold)",
        replay_s,
        format!("{:>10.0} ops/s", ops as f64 / replay_s),
    );
    assert_eq!(recovered.snapshot(), engine.snapshot(), "recovery fidelity");
    drop(recovered);

    // --- checkpoint ---------------------------------------------------
    let t = Instant::now();
    let report = engine.checkpoint().expect("checkpoint").expect("durable");
    let ckpt_s = t.elapsed().as_secs_f64();
    row(
        "checkpoint (full image)",
        ckpt_s,
        format!(
            "{:>10} pages written ({} total, {} KiB payload)",
            report.pages_written,
            report.page_count,
            report.payload_bytes / 1024
        ),
    );

    // --- cold open ----------------------------------------------------
    let t = Instant::now();
    let cold = SheetEngine::open(&base).expect("cold open");
    let cold_s = t.elapsed().as_secs_f64();
    let cells = cold.snapshot().filled_count();
    row(
        "cold open (image only)",
        cold_s,
        format!("{:>10.0} cells/s", cells as f64 / cold_s),
    );
    drop(cold);

    // --- incremental checkpoint --------------------------------------
    // Touch ~1% of cells in a contiguous row band: the canonical image is
    // row-major, so a localized edit should dirty only a few pages.
    let touched = (ops / 100).max(1);
    for i in 0..touched as u32 {
        let addr = CellAddr::new(i % 1009, 0);
        engine.update_cell(addr, "424242").expect("touch");
    }
    let t = Instant::now();
    let incr = engine.checkpoint().expect("checkpoint").expect("durable");
    let incr_s = t.elapsed().as_secs_f64();
    row(
        "incremental checkpoint",
        incr_s,
        format!(
            "{:>10} pages written of {} after touching {touched} cells",
            incr.pages_written, incr.page_count
        ),
    );

    let stats = engine.persistence_stats().expect("durable");
    println!(
        "\n  on-disk: {} KiB, image {} pages; pager: {} hits / {} misses / {} evictions",
        dir_bytes(&base) / 1024,
        stats.image_pages,
        stats.pager.hits,
        stats.pager.misses,
        stats.pager.evictions
    );
    drop(engine);

    // --- region-granular incremental vs full checkpoint ----------------
    // Two sheets built from row-band ROM imports, the second twice the
    // size. After a single-cell edit, checkpoint cost must depend on the
    // dirty region alone: identical page-writes on both sheets, regardless
    // of total size.
    println!("\nRegion-granular checkpoints (single-cell edit on an N-region sheet):");
    let mut incr_pages = Vec::new();
    for bands in [120u32, 240u32] {
        let dir = temp_dir(&format!("regions-{bands}"));
        let mut engine = SheetEngine::open(&dir).expect("open region sheet");
        for band in 0..bands {
            engine
                .import_rows(
                    CellAddr::new(band * 60, 0),
                    8,
                    (0..50u32).map(|r| {
                        (0..8u32)
                            .map(|c| CellValue::Number((band * 1000 + r * 8 + c) as f64))
                            .collect()
                    }),
                )
                .expect("import band");
        }
        engine.save().expect("save imports");
        let t = Instant::now();
        let full = engine.checkpoint().expect("checkpoint").expect("durable");
        let full_s = t.elapsed().as_secs_f64();
        // One-cell edit inside one region.
        engine
            .update_cell(CellAddr::new(3 * 60 + 7, 2), "424242")
            .expect("edit");
        let t = Instant::now();
        let incr = engine.checkpoint().expect("checkpoint").expect("durable");
        let incr_s = t.elapsed().as_secs_f64();
        row(
            &format!("full ckpt ({bands} regions)"),
            full_s,
            format!(
                "{:>10} pages written, {} regions serialized",
                full.pages_written, full.regions_written
            ),
        );
        row(
            &format!("1-cell ckpt ({bands} regions)"),
            incr_s,
            format!(
                "{:>10} pages written, {} of {} regions serialized",
                incr.pages_written, incr.regions_dirty, incr.regions_total
            ),
        );
        // The hard bounds the durability CI job relies on: exactly the
        // dirty region is re-serialized, and page-writes stay O(dirty
        // regions) — region payload + map + header — not O(sheet).
        assert_eq!(
            incr.regions_dirty, 1,
            "single-cell edit must dirty exactly one region"
        );
        assert_eq!(incr.regions_written, 1, "only the dirty region rewrites");
        assert!(
            incr.pages_written <= 8,
            "incremental checkpoint wrote {} pages (want O(dirty region), got O(sheet)?)",
            incr.pages_written
        );
        assert!(
            incr.pages_written * 10 <= full.pages_written,
            "incremental ({}) should be far below full ({})",
            incr.pages_written,
            full.pages_written
        );
        incr_pages.push(incr.pages_written);
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(
        incr_pages[0], incr_pages[1],
        "incremental page-writes must not grow with sheet size"
    );

    // --- clean-TOM checkpoint skip --------------------------------------
    // A linked-table region's content lives in the database; the database
    // change counter lets a checkpoint prove "nothing changed" and skip
    // re-serializing the region entirely (pre-counter behavior: TOM regions
    // were re-serialized every checkpoint).
    println!("\nClean-TOM checkpoint skip (database change counter):");
    let tom_dir = temp_dir("tom");
    {
        let mut engine = SheetEngine::open(&tom_dir).expect("open tom sheet");
        engine.update_cell(CellAddr::new(0, 0), "id").expect("hdr");
        engine
            .update_cell(CellAddr::new(0, 1), "amount")
            .expect("hdr");
        for r in 1..=40u32 {
            engine
                .update_cell(CellAddr::new(r, 0), &r.to_string())
                .expect("row");
            engine
                .update_cell(CellAddr::new(r, 1), &(r * 10).to_string())
                .expect("row");
        }
        engine
            .link_table(dataspread_grid::Rect::new(0, 0, 40, 1), "persist_bench_inv")
            .expect("link");
        engine.save().expect("save");
        let t = Instant::now();
        let clean = engine.checkpoint().expect("checkpoint").expect("durable");
        let clean_s = t.elapsed().as_secs_f64();
        row(
            "ckpt (quiet linked table)",
            clean_s,
            format!(
                "{:>10} regions serialized, {} pages written",
                clean.regions_written, clean.pages_written
            ),
        );
        assert_eq!(
            clean.regions_dirty, 0,
            "a quiet database must not re-serialize the TOM region"
        );
        // Mutate the table behind the sheet's back (direct SQL-style
        // access): the counter moves, so the next checkpoint captures it.
        {
            let db = engine.database();
            let mut guard = db.write();
            let table = guard.table_mut("persist_bench_inv").expect("table");
            table
                .insert(&[
                    dataspread_relstore::Datum::Int(999),
                    dataspread_relstore::Datum::Float(9990.0),
                ])
                .expect("insert");
        }
        let t = Instant::now();
        let dirtied = engine.checkpoint().expect("checkpoint").expect("durable");
        let dirty_s = t.elapsed().as_secs_f64();
        row(
            "ckpt (table mutated via SQL)",
            dirty_s,
            format!("{:>10} regions serialized", dirtied.regions_written),
        );
        assert_eq!(
            dirtied.regions_dirty, 1,
            "a database mutation must re-dirty exactly the TOM region"
        );
        assert_eq!(dirtied.regions_written, 1);
        // Per-table change counters tighten the skip further: churn on an
        // *unrelated* table in the same database must leave the linked
        // region clean (the database-global counter used to dirty it).
        {
            let db = engine.database();
            let mut guard = db.write();
            guard
                .create_table(
                    "persist_bench_other",
                    dataspread_relstore::Schema::new(vec![dataspread_relstore::ColumnDef::new(
                        "x",
                        dataspread_relstore::DataType::Int,
                    )]),
                )
                .expect("create other");
            for i in 0..50 {
                guard
                    .table_mut("persist_bench_other")
                    .expect("other")
                    .insert(&[dataspread_relstore::Datum::Int(i)])
                    .expect("insert other");
            }
        }
        let t = Instant::now();
        let unrelated = engine.checkpoint().expect("checkpoint").expect("durable");
        let unrelated_s = t.elapsed().as_secs_f64();
        row(
            "ckpt (unrelated table churn)",
            unrelated_s,
            format!("{:>10} regions serialized", unrelated.regions_written),
        );
        assert_eq!(
            unrelated.regions_dirty, 0,
            "churn on an unrelated table must not dirty the TOM region \
             (per-table change counters)"
        );
    }
    std::fs::remove_dir_all(&tom_dir).ok();

    println!(
        "\npaper context: page-granular persistence + WAL is the durability story\n\
         behind the positional storage engine; region-keyed images make the\n\
         checkpoint itself O(dirty regions); replay >= log throughput means\n\
         recovery is never the bottleneck after a crash."
    );

    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&crash).ok();
}
