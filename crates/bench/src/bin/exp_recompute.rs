//! Recompute-cascade benchmark: the wave/batch evaluation pipeline vs the
//! sequential per-cell tree walk, over a fill-down corpus shaped like the
//! paper's weather/billing sheets.
//!
//! Corpus (`DS_RECOMPUTE_ROWS` data rows, default 50 000 → ≈100k
//! formulas):
//!
//! * column A — numeric data;
//! * column B — a fill-down sliding aggregate `=SUM(A{r-63}:A{r})` on
//!   every row from 64 down (one shape, one column: the vectorized batch
//!   sweep's target);
//! * column C — `=B{r}*2-1` (a second topological wave of plain scalar
//!   walks);
//! * column D — a 2 000-cell chain `=D{r-1}+1` (depth: every wave holds
//!   one cell, the pipeline's worst case).
//!
//! The run times a full cascade (`recompute_all`) under the retained
//! scalar oracle, then under the wave pipeline at 1/2/4/8 worker
//! threads, verifies the wave output is **cell-for-cell identical** to
//! the oracle at every thread count, and — at full scale — asserts the
//! acceptance bound: ≥ 3× at 4 threads. On a single-core host the
//! speedup is algorithmic (the batch sweep answers a whole fill-down run
//! from one bulk fetch over dense arrays instead of per-cell tree walks
//! through the locked LRU cache), so the bound holds without hardware
//! parallelism.
//!
//! Results go to stdout and `BENCH_recompute.json` (override with
//! `DS_RECOMPUTE_OUT`; thread grid with `DS_RECOMPUTE_THREADS`).

use std::time::Instant;

use dataspread_engine::SheetEngine;
use dataspread_grid::{Cell, CellAddr, Rect};

const WINDOW: u32 = 64;
const CHAIN: u32 = 2_000;

fn rows_from_env() -> u32 {
    std::env::var("DS_RECOMPUTE_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000)
}

fn threads_from_env() -> Vec<usize> {
    std::env::var("DS_RECOMPUTE_THREADS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// Deterministic data value for row `r` (integer-derived so the text
/// round-trip through `update_cell` is exact).
fn data_value(r: u32) -> f64 {
    ((r.wrapping_mul(2_654_435_761)) % 4_000) as f64 / 4.0
}

/// Build the corpus. Formulas are laid down dependency-first so each
/// registration evaluates exactly once during setup.
fn build(rows: u32) -> (SheetEngine, u64) {
    let mut e = SheetEngine::new();
    for r in 0..rows {
        e.update_cell(CellAddr::new(r, 0), &format!("{}", data_value(r)))
            .expect("data");
    }
    let mut formulas = 0u64;
    for r in WINDOW - 1..rows {
        let src = format!("=SUM(A{}:A{})", r + 2 - WINDOW, r + 1);
        e.update_cell(CellAddr::new(r, 1), &src).expect("window");
        formulas += 1;
    }
    for r in 0..rows {
        e.update_cell(CellAddr::new(r, 2), &format!("=B{}*2-1", r + 1))
            .expect("scalar");
        formulas += 1;
    }
    e.update_cell(CellAddr::new(0, 3), "1").expect("chain base");
    for r in 1..CHAIN.min(rows) {
        e.update_cell(CellAddr::new(r, 3), &format!("=D{r}+1"))
            .expect("chain");
        formulas += 1;
    }
    (e, formulas)
}

fn snapshot(e: &SheetEngine, rows: u32) -> Vec<(CellAddr, Cell)> {
    e.get_cells(Rect::new(0, 0, rows + 2, 6))
}

fn main() {
    let rows = rows_from_env();
    let threads = threads_from_env();
    let out_path =
        std::env::var("DS_RECOMPUTE_OUT").unwrap_or_else(|_| "BENCH_recompute.json".to_string());
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let full_scale = rows >= 50_000;

    println!("Recompute-cascade benchmark ({rows} data rows, {cores} cores)");
    let (mut engine, formulas) = build(rows);
    println!("corpus: {formulas} formulas\n");

    // The sequential oracle: one tree walk per cell in Kahn order.
    engine.set_scalar_recompute(true);
    let t = Instant::now();
    engine.recompute_all().expect("scalar recompute");
    let scalar_ms = t.elapsed().as_secs_f64() * 1e3;
    let want = snapshot(&engine, rows);
    println!("{:>18} | {:>10} | {:>8}", "mode", "cascade ms", "speedup");
    println!(
        "{:>18} | {:>10.1} | {:>7.2}x",
        "scalar oracle", scalar_ms, 1.0
    );

    engine.set_scalar_recompute(false);
    let mut rows_json: Vec<(usize, f64, f64)> = Vec::new();
    for &t in &threads {
        engine.set_recompute_threads(t);
        let start = Instant::now();
        engine.recompute_all().expect("wave recompute");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let speedup = scalar_ms / ms;
        assert_eq!(
            snapshot(&engine, rows),
            want,
            "wave output diverged from the scalar oracle at {t} threads"
        );
        println!(
            "{:>18} | {:>10.1} | {:>7.2}x",
            format!("waves, {t} thr"),
            ms,
            speedup
        );
        rows_json.push((t, ms, speedup));
    }

    let mut json = format!(
        "{{\n  \"bench\": \"recompute\",\n  \"cores\": {cores},\n  \"rows\": {rows},\n  \
         \"formulas\": {formulas},\n  \"window\": {WINDOW},\n  \"scalar_ms\": {scalar_ms:.1},\n  \
         \"identical_to_oracle\": true,\n  \"waves\": [\n"
    );
    for (i, (t, ms, speedup)) in rows_json.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {t}, \"cascade_ms\": {ms:.1}, \"speedup\": {speedup:.2}}}{}\n",
            if i + 1 < rows_json.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path}");

    // Acceptance bound, armed at full scale only: ≥ 3× at 4 threads,
    // output already proven identical above.
    if full_scale {
        let at4 = rows_json
            .iter()
            .find(|(t, _, _)| *t == 4)
            .map(|&(_, _, s)| s)
            .expect("thread grid includes 4");
        assert!(
            at4 >= 3.0,
            "wave/batch cascade speedup {at4:.2}x < 3x at 4 threads"
        );
    }
    println!(
        "\npaper context: a cascade touching every dependent of an edit is the\n\
         spreadsheet cost model's worst case; evaluating the dependency DAG in\n\
         topological waves lets same-shape fill-down runs collapse into one\n\
         vectorized sweep and independent cells fan out across workers, while\n\
         deterministic wave-order write-back keeps the result bit-identical to\n\
         the sequential walk."
    );
}
