//! Network-serving benchmark: sustained throughput and tail latency of
//! the TCP server under concurrent clients.
//!
//! For each client count K, an in-process `dataspread-server` hosts a
//! durable group-commit workspace on loopback; K OS threads each dial
//! their own connection and run the standard pipelined client shape —
//! stage a window of 8 edits, await the last ticket, fetch a positional
//! window every 16 ops — on a private sheet. Every staged edit's
//! request→receipt round trip is timed; awaits and fetches ride along in
//! the wall clock, so `ops_per_sec` is *acknowledged end-to-end edits
//! per second including their share of fsync waits and reads*, not raw
//! frame throughput.
//!
//! Results go to stdout and `BENCH_server.json` (override with
//! `DS_SERVER_OUT`). Sizes: `DS_SERVER_CLIENTS` (comma-separated client
//! counts, default `1,4,8`) and `DS_SERVER_OPS` (staged edits per
//! client, default 600).

use std::path::PathBuf;
use std::time::Instant;

use dataspread_client::Client;
use dataspread_grid::Rect;
use dataspread_workspace::{Edit, Workspace, WorkspaceError};

const WINDOW: usize = 8;
const FETCH_EVERY: usize = 16;

fn clients_from_env() -> Vec<usize> {
    std::env::var("DS_SERVER_CLIENTS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4, 8])
}

fn ops_per_client() -> usize {
    std::env::var("DS_SERVER_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(600)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dataspread-exp-server-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

struct Row {
    clients: usize,
    ops: usize,
    secs: f64,
    ops_per_sec: f64,
    p50_us: u128,
    p99_us: u128,
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One client's run: returns per-stage-edit round-trip latencies (µs).
fn client_run(addr: std::net::SocketAddr, id: usize, ops: usize) -> Vec<u128> {
    let client = Client::connect(addr).expect("connect");
    let session = client.session();
    let sheet = format!("bench{id}");
    session.open_sheet(&sheet).expect("open");
    let mut latencies = Vec::with_capacity(ops);
    let mut last_ticket = 0;
    let mut in_window = 0usize;
    let mut i = 0usize;
    while i < ops {
        let edit = Edit::Set {
            row: (i / 64) as u32,
            col: (i % 64) as u32,
            input: (i as f64).to_string(),
        };
        let t = Instant::now();
        match session.stage_edit(&sheet, edit) {
            Ok(receipt) => {
                latencies.push(t.elapsed().as_micros());
                last_ticket = receipt.ticket;
                in_window += 1;
                i += 1;
            }
            Err(WorkspaceError::Busy(_)) => {
                // Admission control: drain the window and retry.
                session.await_commit(&sheet, last_ticket).expect("await");
                in_window = 0;
                continue;
            }
            Err(e) => panic!("stage_edit failed: {e}"),
        }
        if in_window >= WINDOW {
            session.await_commit(&sheet, last_ticket).expect("await");
            in_window = 0;
        }
        if i.is_multiple_of(FETCH_EVERY) {
            let rect = Rect::new(0, 0, (i / 64) as u32, 63);
            session.fetch_window(&sheet, rect).expect("fetch");
        }
    }
    if in_window > 0 {
        session.await_commit(&sheet, last_ticket).expect("await");
    }
    latencies
}

fn run_scale(clients: usize, ops: usize) -> Row {
    let dir = temp_dir(&format!("c{clients}"));
    let ws = Workspace::open(&dir).expect("open workspace");
    let handle = dataspread_server::serve(ws, "127.0.0.1:0").expect("serve");
    let addr = handle.local_addr();
    let t = Instant::now();
    let mut latencies: Vec<u128> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|id| scope.spawn(move || client_run(addr, id, ops)))
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect()
    });
    let secs = t.elapsed().as_secs_f64();
    let total_ops = clients * ops;

    // Pull the server's own accounting over the wire and hold it against
    // what this harness just did: every staged edit must be counted and
    // timed server-side, and the durable path must have fsynced.
    {
        let client = Client::connect(addr).expect("metrics connect");
        let snap = client.session().metrics().expect("metrics");
        let staged = snap
            .counter("server_requests{kind=\"stage_edit\"}")
            .unwrap_or(0);
        assert!(
            staged >= total_ops as u64,
            "server counted {staged} stage_edits, harness sent >= {total_ops}"
        );
        assert!(
            snap.counter("session_ops{op=\"stage_edit\"}").unwrap_or(0) >= total_ops as u64,
            "session op counter disagrees with the ops issued"
        );
        let hist = snap
            .histogram("session_op_ns{op=\"stage_edit\"}")
            .expect("stage_edit histogram");
        assert!(
            hist.count() >= (total_ops / 128) as u64,
            "histogram holds {} samples, expected >= 1 in 128 of {total_ops}",
            hist.count()
        );
        let fsyncs: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("wal_fsyncs{"))
            .map(|&(_, v)| v)
            .sum();
        assert!(fsyncs > 0, "a durable run must have fsynced");
        if let Ok(path) = std::env::var("DS_SERVER_METRICS_OUT") {
            std::fs::write(&path, snap.render_text()).expect("write metrics exposition");
            println!("  wrote metrics exposition to {path}");
        }
    }

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    latencies.sort_unstable();
    Row {
        clients,
        ops: total_ops,
        secs,
        ops_per_sec: total_ops as f64 / secs,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    }
}

fn main() {
    let scales = clients_from_env();
    let ops = ops_per_client();
    let out_path =
        std::env::var("DS_SERVER_OUT").unwrap_or_else(|_| "BENCH_server.json".to_string());

    println!("server bench: {ops} staged edits/client, window {WINDOW}, clients {scales:?}");
    let mut rows = Vec::new();
    for &clients in &scales {
        let row = run_scale(clients, ops);
        println!(
            "  {:>2} clients: {:>9.0} ops/s  p50 {:>6} us  p99 {:>6} us  ({:.2}s)",
            row.clients, row.ops_per_sec, row.p50_us, row.p99_us, row.secs
        );
        rows.push(row);
    }

    let mut json = format!(
        "{{\n  \"experiment\": \"server\",\n  \"ops_per_client\": {ops},\n  \"pipeline_window\": {WINDOW},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {}, \"ops\": {}, \"secs\": {:.3}, \"ops_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}{}\n",
            r.clients,
            r.ops,
            r.secs,
            r.ops_per_sec,
            r.p50_us,
            r.p99_us,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
