//! Table I: corpus statistics across the four (synthetic) corpora.
//!
//! Prints the same columns as the paper. Absolute counts differ (the real
//! crawls are not redistributable); the calibrated *shape* — which corpus
//! is dense, which is formula-heavy, how large formula ranges are — is the
//! reproduction target. `DS_CORPUS_SHEETS` controls the corpus size.

use dataspread_analysis::analyze_corpus;
use dataspread_bench::corpora_with_analyses;

fn main() {
    println!("Table I: Spreadsheet Datasets — Preliminary Statistics (synthetic corpora)\n");
    println!(
        "{:<10} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>9} {:>10} {:>9}",
        "Dataset",
        "Sheets",
        "%w/form",
        "%>20%f",
        "%formul",
        "%d<0.5",
        "%d<0.2",
        "Tables",
        "%Cover",
        "Cells/f",
        "Regions/f"
    );
    for (name, _sheets, analyses) in corpora_with_analyses() {
        let s = analyze_corpus(&analyses);
        println!(
            "{:<10} {:>7} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}% {:>8} {:>8.2}% {:>10.2} {:>9.2}",
            name.to_string(),
            s.sheets,
            s.pct_sheets_with_formulae,
            s.pct_sheets_formula_heavy,
            s.pct_formulae,
            s.pct_density_below_half,
            s.pct_density_below_fifth,
            s.tables,
            s.pct_coverage,
            s.cells_per_formula,
            s.regions_per_formula,
        );
    }
    println!(
        "\npaper (for reference):\n\
         Internet   52,311  29.15%  20.26%   1.30%  22.53%   6.21%  67,374  66.03%  334.26  2.50\n\
         ClueWeb09  26,148  42.21%  27.13%   2.89%  46.71%  23.80%  37,164  67.68%  147.99  1.92\n\
         Enron      17,765  39.72%  30.42%   3.35%  50.06%  24.76%   9,733  60.98%  143.05  1.75\n\
         Academic      636  91.35%  71.26%  23.26%  90.72%  60.53%     286  12.10%    3.03  1.54"
    );
}
