//! Table II: the cost of storing positions as-is, on a sheet of 10⁶ cells.
//!
//! The paper measures a front-row insert (cascading position rewrite of
//! every subsequent tuple) and a positional fetch, for RCV (10⁶ tuples)
//! and ROM (10⁴ tuples of 100 columns). Absolute numbers differ from the
//! paper's PostgreSQL-backed run; the reproduction targets the *shape*:
//! insert ≫ fetch, and RCV-insert ≫ ROM-insert (100× more tuples to
//! renumber).

use dataspread_bench::posmark::AsIsStore;
use dataspread_bench::{ms, time_once};

fn main() {
    const ROWS: u64 = 10_000;
    const COLS: u32 = 100; // 10^6 cells

    println!("Table II: position-as-is performance on a 10^6-cell sheet\n");
    println!("{:<12} {:>14} {:>14}", "Operation", "RCV", "ROM");

    // ROM as-is: one tuple per row -> 10^4 positions.
    let mut rom = AsIsStore::build(ROWS, COLS);
    // RCV as-is: one tuple per cell -> 10^6 positions (cells in row-major
    // order; a row insert renumbers all cell tuples of later rows).
    let mut rcv = AsIsStore::build(ROWS * COLS as u64, 1);

    let rcv_insert = time_once(|| {
        // Insert one row's worth of cells at the front: the paper's row
        // insert on RCV = COLS cell inserts, each cascading. Measure one
        // cascading cell insert and scale, to keep the harness bounded.
        rcv.insert_at(0);
    });
    let rom_insert = time_once(|| rom.insert_at(0));
    let rcv_fetch = time_once(|| {
        std::hint::black_box(rcv.fetch(500_000, COLS as u64));
    });
    let rom_fetch = time_once(|| {
        std::hint::black_box(rom.fetch(5_000, 1));
    });

    println!(
        "{:<12} {:>14} {:>14}   (one cascading insert at the front)",
        "Insert",
        ms(rcv_insert),
        ms(rom_insert)
    );
    println!(
        "{:<12} {:>14} {:>14}   (fetch one row's cells mid-sheet)",
        "Fetch",
        ms(rcv_fetch),
        ms(rom_fetch)
    );
    println!(
        "\nshape checks: RCV insert / ROM insert = {:.1}x (paper: 87,821/1,531 = 57x)\n\
         insert / fetch (RCV) = {:.0}x (paper: 87,821/312 = 281x)",
        rcv_insert.as_secs_f64() / rom_insert.as_secs_f64().max(1e-9),
        rcv_insert.as_secs_f64() / rcv_fetch.as_secs_f64().max(1e-9),
    );
    println!("\npaper: RCV insert 87,821 ms fetch 312 ms; ROM insert 1,531 ms fetch 244 ms");
}
