//! Shared infrastructure for the experiment harnesses.
//!
//! One `exp_*` binary per paper table/figure lives in `src/bin/`; Criterion
//! micro-benchmarks live in `benches/`. This library provides the common
//! pieces: timing, corpus loading, hybrid-storage loading, and the
//! storage-level position-as-is/monotonic baselines of Table II & Figure 18.

pub mod posmark;

use std::time::{Duration, Instant};

use dataspread_analysis::{analyze_sheet, SheetAnalysis, TabularConfig};
use dataspread_corpus::{generate_corpus, CorpusName};
use dataspread_engine::hybrid::HybridSheet;
use dataspread_engine::rom::RomTranslator;
use dataspread_engine::{PosMapKind, Translator};
use dataspread_grid::{Cell, Rect, SparseSheet};
use dataspread_hybrid::{Decomposition, ModelKind, Region};

/// Environment knob: number of sheets per synthetic corpus
/// (`DS_CORPUS_SHEETS`, default 150 — large enough for stable statistics,
/// small enough for CI).
pub fn corpus_size() -> usize {
    std::env::var("DS_CORPUS_SHEETS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(150)
}

/// Generate all four corpora with their analyses.
pub fn corpora_with_analyses() -> Vec<(CorpusName, Vec<SparseSheet>, Vec<SheetAnalysis>)> {
    CorpusName::ALL
        .into_iter()
        .map(|name| {
            let sheets = generate_corpus(name, corpus_size(), 20_180_416);
            let analyses = sheets
                .iter()
                .map(|s| analyze_sheet(s, &TabularConfig::default()))
                .collect();
            (name, sheets, analyses)
        })
        .collect()
}

/// Median wall time of `f` over `reps` runs.
pub fn time_median(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// Time a single run.
pub fn time_once(f: impl FnOnce()) -> Duration {
    let t = Instant::now();
    f();
    t.elapsed()
}

/// Load a sparse sheet into hybrid storage under a given decomposition.
pub fn load_hybrid(sheet: &SparseSheet, decomp: &Decomposition) -> HybridSheet {
    let mut hs = HybridSheet::with_posmap(PosMapKind::Hierarchical);
    hs.reorganize(decomp).expect("fresh reorganize");
    for (addr, cell) in sheet.iter() {
        hs.set_cell(addr, cell.clone()).expect("load cell");
    }
    hs
}

/// Single-model decompositions over a sheet's bounding box.
pub fn single_model(sheet: &SparseSheet, kind: ModelKind) -> Decomposition {
    match sheet.bounding_box() {
        Some(rect) => Decomposition::new(vec![Region { rect, kind }]),
        None => Decomposition::default(),
    }
}

/// Fast-path: load a fully dense `rows x cols` sheet as one bulk-loaded ROM
/// region (Figures 18 / 22–24 substrate).
pub fn dense_rom(rows: u32, cols: u32, posmap: PosMapKind) -> HybridSheet {
    let mut hs = HybridSheet::with_posmap(posmap);
    let rom = RomTranslator::bulk_load_rows(
        posmap,
        cols,
        (0..rows).map(|r| {
            (0..cols)
                .map(|c| Cell::value((r as i64) * cols as i64 + c as i64))
                .collect()
        }),
    )
    .expect("bulk load");
    let rect = Rect::new(0, 0, rows - 1, cols - 1);
    hs.add_region(rect, Box::new(rom)).expect("add region");
    hs
}

/// Load a dense sheet into a single RCV region (per-cell tuples).
pub fn dense_rcv(rows: u32, cols: u32, density: f64, posmap: PosMapKind) -> HybridSheet {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1);
    let mut hs = HybridSheet::with_posmap(posmap);
    let mut rcv = dataspread_engine::rcv::RcvTranslator::new(posmap);
    for r in 0..rows {
        for c in 0..cols {
            if density >= 1.0 || rng.gen_bool(density) {
                rcv.set_cell(r, c, Cell::value((r as i64) * cols as i64 + c as i64))
                    .expect("set");
            }
        }
    }
    hs.add_region(Rect::new(0, 0, rows - 1, cols - 1), Box::new(rcv))
        .expect("add region");
    hs
}

/// Dense ROM with random blanks (density sweeps of Figures 22–24).
pub fn sparse_rom(rows: u32, cols: u32, density: f64, posmap: PosMapKind) -> HybridSheet {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1);
    let mut hs = HybridSheet::with_posmap(posmap);
    let rom = RomTranslator::bulk_load_rows(
        posmap,
        cols,
        (0..rows).map(|r| {
            (0..cols)
                .map(|c| {
                    if density >= 1.0 || rng.gen_bool(density) {
                        Cell::value((r as i64) * cols as i64 + c as i64)
                    } else {
                        Cell::default()
                    }
                })
                .collect()
        }),
    )
    .expect("bulk load");
    hs.add_region(Rect::new(0, 0, rows - 1, cols - 1), Box::new(rom))
        .expect("add region");
    hs
}

/// Pretty milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.3} ms", d.as_secs_f64() * 1e3)
}

/// Normalize a series so the worst value is 100 (Figure 13's presentation).
pub fn normalize_to_worst(values: &[f64]) -> Vec<f64> {
    let worst = values.iter().cloned().fold(f64::MIN, f64::max);
    values
        .iter()
        .map(|v| if worst > 0.0 { v / worst * 100.0 } else { 0.0 })
        .collect()
}

/// Render an ASCII histogram line.
pub fn bar(fraction: f64, width: usize) -> String {
    let n = (fraction.clamp(0.0, 1.0) * width as f64).round() as usize;
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_grid::CellAddr;

    #[test]
    fn dense_rom_loads() {
        let hs = dense_rom(100, 10, PosMapKind::Hierarchical);
        assert_eq!(hs.filled_count(), 1000);
        assert!(hs.get_cell(CellAddr::new(99, 9)).is_some());
    }

    #[test]
    fn load_hybrid_preserves_cells() {
        let mut s = SparseSheet::new();
        for r in 0..10 {
            s.set_value(CellAddr::new(r, 0), r as i64);
        }
        let hs = load_hybrid(&s, &single_model(&s, ModelKind::Rom));
        assert_eq!(hs.snapshot(true), s);
    }

    #[test]
    fn normalization() {
        let n = normalize_to_worst(&[50.0, 100.0, 25.0]);
        assert_eq!(n, vec![50.0, 100.0, 25.0]);
    }
}
