//! Storage-level positional schemes for Table II and Figure 18.
//!
//! The paper's *position-as-is* baseline stores the position **inside each
//! tuple** (with a B+-tree on it), so one row insert physically rewrites
//! every subsequent tuple — that is the cascading update being measured.
//! The engine's translators never do this (they keep positions out of
//! tuples), so the faithful baselines are implemented here, directly
//! against the row store:
//!
//! * [`AsIsStore`] — explicit position column + B+-tree index; O(log N)
//!   fetch, O(N log N) insert/delete.
//! * [`MonotonicStore`] — gapped monotonic keys + B+-tree; O(N) positional
//!   fetch, O(log N) insert.
//! * [`HierarchicalStore`] — counted B+-tree of tuple pointers; O(log N)
//!   everything (the paper's scheme).

use std::ops::Bound;

use dataspread_posmap::{HierarchicalPosMap, PositionalMap};
use dataspread_relstore::{BPlusTree, ColumnDef, DataType, Datum, Schema, Table, TupleId};

/// A row of `width` integer cells used by the benchmarks.
fn payload_row(head: Datum, pos_or_key: i64, width: u32) -> Vec<Datum> {
    let mut row = Vec::with_capacity(width as usize + 1);
    row.push(head);
    for c in 0..width {
        row.push(Datum::Int(pos_or_key * 1000 + c as i64));
    }
    row
}

fn schema(width: u32) -> Schema {
    let mut cols = vec![ColumnDef::new("pos", DataType::Int)];
    for c in 0..width {
        cols.push(ColumnDef::new(format!("c{c}"), DataType::Int));
    }
    Schema::new(cols)
}

/// Position stored in every tuple; B+-tree on position.
pub struct AsIsStore {
    table: Table,
    index: BPlusTree<i64, TupleId>,
    len: u64,
    width: u32,
}

impl AsIsStore {
    pub fn build(rows: u64, width: u32) -> Self {
        let mut table = Table::new("asis", schema(width));
        let mut index = BPlusTree::new();
        for pos in 0..rows {
            let tid = table
                .insert(&payload_row(Datum::Int(pos as i64), pos as i64, width))
                .expect("insert");
            index.insert(pos as i64, tid);
        }
        AsIsStore {
            table,
            index,
            len: rows,
            width,
        }
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fetch `count` rows starting at `pos` through the index.
    pub fn fetch(&self, pos: u64, count: u64) -> Vec<Vec<Datum>> {
        self.index
            .range(
                Bound::Included(&(pos as i64)),
                Bound::Excluded(&((pos + count) as i64)),
            )
            .into_iter()
            .map(|(_, tid)| self.table.fetch(*tid).expect("live"))
            .collect()
    }

    /// Insert one row at `pos`: every subsequent tuple's position attribute
    /// is rewritten and re-indexed — the cascading update.
    pub fn insert_at(&mut self, pos: u64) {
        // Renumber from the tail down so index keys stay unique.
        for p in (pos..self.len).rev() {
            let tid = *self.index.get(&(p as i64)).expect("present");
            let mut row = self.table.fetch(tid).expect("live");
            row[0] = Datum::Int(p as i64 + 1);
            let new_tid = self.table.update(tid, &row).expect("update");
            self.index.remove(&(p as i64));
            self.index.insert(p as i64 + 1, new_tid);
        }
        let tid = self
            .table
            .insert(&payload_row(Datum::Int(pos as i64), pos as i64, self.width))
            .expect("insert");
        self.index.insert(pos as i64, tid);
        self.len += 1;
    }

    /// Delete the row at `pos`, renumbering the tail.
    pub fn delete_at(&mut self, pos: u64) {
        if let Some(&tid) = self.index.get(&(pos as i64)) {
            self.table.delete(tid);
            self.index.remove(&(pos as i64));
        }
        for p in pos + 1..self.len {
            let tid = *self.index.get(&(p as i64)).expect("present");
            let mut row = self.table.fetch(tid).expect("live");
            row[0] = Datum::Int(p as i64 - 1);
            let new_tid = self.table.update(tid, &row).expect("update");
            self.index.remove(&(p as i64));
            self.index.insert(p as i64 - 1, new_tid);
        }
        self.len -= 1;
    }
}

/// Gapped monotonic keys stored in tuples; positional fetch must discard
/// the first `n-1` index entries (online dynamic reordering baseline).
pub struct MonotonicStore {
    table: Table,
    index: BPlusTree<i64, TupleId>,
    len: u64,
    width: u32,
}

const GAP: i64 = 1 << 20;

impl MonotonicStore {
    pub fn build(rows: u64, width: u32) -> Self {
        let mut table = Table::new("mono", schema(width));
        let mut index = BPlusTree::new();
        for pos in 0..rows {
            let key = (pos as i64 + 1) * GAP;
            let tid = table
                .insert(&payload_row(Datum::Int(key), pos as i64, width))
                .expect("insert");
            index.insert(key, tid);
        }
        MonotonicStore {
            table,
            index,
            len: rows,
            width,
        }
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn key_at(&self, pos: u64) -> Option<i64> {
        self.index
            .entries()
            .into_iter()
            .nth(pos as usize)
            .map(|(k, _)| *k)
    }

    /// Positional fetch: O(pos) — skip the first `pos` entries.
    pub fn fetch(&self, pos: u64, count: u64) -> Vec<Vec<Datum>> {
        self.index
            .entries()
            .into_iter()
            .skip(pos as usize)
            .take(count as usize)
            .map(|(_, tid)| self.table.fetch(*tid).expect("live"))
            .collect()
    }

    /// Insert at `pos` by key bisection (renumber on gap exhaustion).
    pub fn insert_at(&mut self, pos: u64) {
        let pred = if pos == 0 { None } else { self.key_at(pos - 1) };
        let succ = self.key_at(pos);
        let key = match (pred, succ) {
            (None, None) => GAP,
            (Some(p), None) => p.saturating_add(GAP),
            (None, Some(s)) => s / 2,
            (Some(p), Some(s)) if s - p >= 2 => p + (s - p) / 2,
            _ => {
                self.renumber();
                return self.insert_at(pos);
            }
        };
        if self.index.contains_key(&key) {
            self.renumber();
            return self.insert_at(pos);
        }
        let tid = self
            .table
            .insert(&payload_row(Datum::Int(key), pos as i64, self.width))
            .expect("insert");
        self.index.insert(key, tid);
        self.len += 1;
    }

    pub fn delete_at(&mut self, pos: u64) {
        if let Some(key) = self.key_at(pos) {
            if let Some(tid) = self.index.remove(&key) {
                self.table.delete(tid);
                self.len -= 1;
            }
        }
    }

    fn renumber(&mut self) {
        let entries: Vec<(i64, TupleId)> = self
            .index
            .entries()
            .into_iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        self.index = BPlusTree::new();
        for (i, (_, tid)) in entries.into_iter().enumerate() {
            let key = (i as i64 + 1) * GAP;
            let mut row = self.table.fetch(tid).expect("live");
            row[0] = Datum::Int(key);
            let new_tid = self.table.update(tid, &row).expect("update");
            self.index.insert(key, new_tid);
        }
    }
}

/// Hierarchical positional mapping over tuple pointers (no positions in
/// tuples at all).
pub struct HierarchicalStore {
    table: Table,
    map: HierarchicalPosMap<TupleId>,
    width: u32,
}

impl HierarchicalStore {
    pub fn build(rows: u64, width: u32) -> Self {
        let mut table = Table::new("hier", schema(width));
        let tids: Vec<TupleId> = (0..rows)
            .map(|pos| {
                table
                    .insert(&payload_row(Datum::Null, pos as i64, width))
                    .expect("insert")
            })
            .collect();
        HierarchicalStore {
            table,
            map: HierarchicalPosMap::bulk_load(tids),
            width,
        }
    }

    pub fn len(&self) -> u64 {
        self.map.len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.map.len() == 0
    }

    pub fn fetch(&self, pos: u64, count: u64) -> Vec<Vec<Datum>> {
        self.map
            .range(pos as usize, count as usize)
            .into_iter()
            .map(|tid| self.table.fetch(*tid).expect("live"))
            .collect()
    }

    pub fn insert_at(&mut self, pos: u64) {
        let tid = self
            .table
            .insert(&payload_row(Datum::Null, pos as i64, self.width))
            .expect("insert");
        self.map.insert_at(pos as usize, tid);
    }

    pub fn delete_at(&mut self, pos: u64) {
        if let Some(tid) = self.map.remove_at(pos as usize) {
            self.table.delete(tid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_stores_agree_on_fetch() {
        let asis = AsIsStore::build(100, 4);
        let mono = MonotonicStore::build(100, 4);
        let hier = HierarchicalStore::build(100, 4);
        let a = asis.fetch(40, 5);
        let m = mono.fetch(40, 5);
        let h = hier.fetch(40, 5);
        assert_eq!(a.len(), 5);
        // Payload columns (1..) must agree across schemes.
        for i in 0..5 {
            assert_eq!(a[i][1..], m[i][1..]);
            assert_eq!(a[i][1..], h[i][1..]);
        }
    }

    #[test]
    fn asis_insert_renumbers() {
        let mut s = AsIsStore::build(50, 2);
        s.insert_at(10);
        assert_eq!(s.len(), 51);
        let rows = s.fetch(0, 51);
        assert_eq!(rows.len(), 51);
        // Positions are dense 0..51.
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], Datum::Int(i as i64));
        }
        s.delete_at(10);
        assert_eq!(s.fetch(0, 50).len(), 50);
    }

    #[test]
    fn monotonic_insert_and_renumber() {
        let mut s = MonotonicStore::build(10, 2);
        for _ in 0..40 {
            s.insert_at(5);
        }
        assert_eq!(s.len(), 50);
        assert_eq!(s.fetch(0, 50).len(), 50);
        s.delete_at(5);
        assert_eq!(s.len(), 49);
    }

    #[test]
    fn hierarchical_ops() {
        let mut s = HierarchicalStore::build(1000, 4);
        s.insert_at(500);
        assert_eq!(s.len(), 1001);
        s.delete_at(0);
        assert_eq!(s.len(), 1000);
        assert_eq!(s.fetch(999, 10).len(), 1);
    }
}
