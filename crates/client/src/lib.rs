//! Blocking TCP client for the DataSpread server.
//!
//! [`Client::connect`] dials the server, runs the version handshake, and
//! starts a demultiplexing reader thread; [`Client::session`] then hands
//! out cheap [`RemoteSession`] handles whose methods mirror the in-process
//! `dataspread_workspace::Session` API one-to-one — same names, same
//! request/response types ([`Edit`], [`EditReceipt`], [`WindowPatch`]),
//! same error enum (`WorkspaceError`, reconstructed from its wire code).
//! Code written against the local session API ports to the network by
//! swapping the handle type.
//!
//! Many sessions share one connection: every request carries a fresh id,
//! the reader thread routes each response frame to the caller parked on
//! that id, and callers on other sessions are never blocked behind a slow
//! request (e.g. an `await_commit` parked on a commit ticket).

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use dataspread_grid::{CellAddr, CellValue, Rect};
use dataspread_proto::{
    read_frame, write_frame, CheckpointSummary, Edit, EditReceipt, Request, Response, WindowPatch,
    WireStats, PROTOCOL_VERSION,
};
use dataspread_workspace::WorkspaceError;

fn io_err(context: &str, e: &std::io::Error) -> WorkspaceError {
    WorkspaceError::Io(format!("{context}: {e}"))
}

/// Pending-call table: request id → slot the reader fills.
#[derive(Default)]
struct Pending {
    slots: HashMap<u64, Option<Response>>,
    /// Set once the connection dies; every pending and future call fails
    /// with a clone of this.
    dead: Option<WorkspaceError>,
}

struct Inner {
    writer: Mutex<TcpStream>,
    pending: Mutex<Pending>,
    arrived: Condvar,
    next_id: AtomicU64,
}

impl Inner {
    fn fail_all(&self, err: WorkspaceError) {
        let mut p = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        if p.dead.is_none() {
            p.dead = Some(err);
        }
        self.arrived.notify_all();
    }

    /// Send `req` and park until its response arrives (or the connection
    /// dies).
    fn call(&self, req: &Request) -> Result<Response, WorkspaceError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut p = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(dead) = &p.dead {
                return Err(dead.clone());
            }
            p.slots.insert(id, None);
        }
        let send_result = {
            let payload = req.encode(id);
            let mut frame = Vec::with_capacity(4 + payload.len());
            write_frame(&mut frame, &payload).expect("vec write is infallible");
            let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
            w.write_all(&frame).and_then(|()| w.flush())
        };
        if let Err(e) = send_result {
            self.pending
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .slots
                .remove(&id);
            return Err(io_err("send", &e));
        }
        let mut p = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(Some(_)) = p.slots.get(&id) {
                return Ok(p.slots.remove(&id).flatten().expect("checked above"));
            }
            if let Some(dead) = &p.dead {
                let dead = dead.clone();
                p.slots.remove(&id);
                return Err(dead);
            }
            p = self.arrived.wait(p).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Reader thread: route each response frame to the caller parked on its
/// request id. Exits (failing all pending calls) when the stream ends.
fn read_loop(inner: &Inner, stream: &TcpStream) {
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            inner.fail_all(io_err("clone stream", &e));
            return;
        }
    });
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => {
                inner.fail_all(WorkspaceError::Io("connection closed by server".into()));
                return;
            }
            Err(e) => {
                inner.fail_all(io_err("read", &e));
                return;
            }
        };
        let (req_id, resp) = match Response::decode(&payload) {
            Ok(pair) => pair,
            Err(e) => {
                inner.fail_all(WorkspaceError::Protocol(format!("bad response frame: {e}")));
                return;
            }
        };
        let mut p = inner.pending.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(slot) = p.slots.get_mut(&req_id) {
            *slot = Some(resp);
            inner.arrived.notify_all();
        }
        // Unknown id: a response for a caller that already gave up —
        // drop it.
    }
}

/// A connection to a DataSpread server. Cheap to clone is the *session*
/// ([`Client::session`]); the client owns the socket and reader thread
/// and closes both on drop.
pub struct Client {
    inner: Arc<Inner>,
    stream: TcpStream,
}

impl Client {
    /// Dial `addr` and run the `Hello` version handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, WorkspaceError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", &e))?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().map_err(|e| io_err("clone stream", &e))?;
        let inner = Arc::new(Inner {
            writer: Mutex::new(writer),
            pending: Mutex::new(Pending::default()),
            arrived: Condvar::new(),
            next_id: AtomicU64::new(1),
        });
        {
            let inner = Arc::clone(&inner);
            let stream = stream.try_clone().map_err(|e| io_err("clone stream", &e))?;
            std::thread::spawn(move || read_loop(&inner, &stream));
        }
        let client = Client { inner, stream };
        match client.inner.call(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::Hello { version } if version == PROTOCOL_VERSION => Ok(client),
            Response::Hello { version } => Err(WorkspaceError::Protocol(format!(
                "server speaks protocol {version}, client speaks {PROTOCOL_VERSION}"
            ))),
            other => Err(unexpected("Hello", &other)),
        }
    }

    /// A new session over this connection — the network twin of
    /// `Workspace::session()`. Sessions are cheap clonable handles; all
    /// of them multiplex over the one socket.
    pub fn session(&self) -> RemoteSession {
        RemoteSession {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Round-trip a ping (liveness check).
    pub fn ping(&self) -> Result<(), WorkspaceError> {
        match self.inner.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Ping", &other)),
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Unblocks the reader thread, which then fails any stragglers.
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

fn unexpected(what: &str, resp: &Response) -> WorkspaceError {
    match resp {
        Response::Err(e) => WorkspaceError::from_wire(e.code, e.detail.clone()),
        other => WorkspaceError::Protocol(format!("unexpected response to {what}: {other:?}")),
    }
}

/// The session API over the wire, method-for-method compatible with
/// `dataspread_workspace::Session`. Outlives slow siblings: each call
/// parks only on its own request id.
#[derive(Clone)]
pub struct RemoteSession {
    inner: Arc<Inner>,
}

impl RemoteSession {
    pub fn open_sheet(&self, sheet: &str) -> Result<(), WorkspaceError> {
        match self.inner.call(&Request::OpenSheet {
            sheet: sheet.to_string(),
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("OpenSheet", &other)),
        }
    }

    pub fn fetch_window(&self, sheet: &str, rect: Rect) -> Result<WindowPatch, WorkspaceError> {
        match self.inner.call(&Request::FetchWindow {
            sheet: sheet.to_string(),
            rect,
        })? {
            Response::Window(patch) => Ok(patch),
            other => Err(unexpected("FetchWindow", &other)),
        }
    }

    pub fn value(&self, sheet: &str, addr: CellAddr) -> Result<CellValue, WorkspaceError> {
        match self.inner.call(&Request::Value {
            sheet: sheet.to_string(),
            addr,
        })? {
            Response::Value(v) => Ok(v),
            other => Err(unexpected("Value", &other)),
        }
    }

    pub fn apply_edit(&self, sheet: &str, edit: Edit) -> Result<EditReceipt, WorkspaceError> {
        match self.inner.call(&Request::ApplyEdit {
            sheet: sheet.to_string(),
            edit,
        })? {
            Response::Receipt(r) => Ok(r),
            other => Err(unexpected("ApplyEdit", &other)),
        }
    }

    /// Stage an edit without waiting for its fsync; pair with
    /// [`RemoteSession::await_commit`]. The server bounds the number of
    /// staged-but-unacknowledged edits per connection — a
    /// `WorkspaceError::Busy` return means "await, then retry".
    pub fn stage_edit(&self, sheet: &str, edit: Edit) -> Result<EditReceipt, WorkspaceError> {
        match self.inner.call(&Request::StageEdit {
            sheet: sheet.to_string(),
            edit,
        })? {
            Response::Receipt(r) => Ok(r),
            other => Err(unexpected("StageEdit", &other)),
        }
    }

    pub fn await_commit(&self, sheet: &str, ticket: u64) -> Result<(), WorkspaceError> {
        match self.inner.call(&Request::AwaitCommit {
            sheet: sheet.to_string(),
            ticket,
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected("AwaitCommit", &other)),
        }
    }

    pub fn import_rows(
        &self,
        sheet: &str,
        top_left: CellAddr,
        width: u32,
        rows: Vec<Vec<CellValue>>,
    ) -> Result<Rect, WorkspaceError> {
        match self.inner.call(&Request::ImportRows {
            sheet: sheet.to_string(),
            top_left,
            width,
            rows,
        })? {
            Response::Imported(rect) => Ok(rect),
            other => Err(unexpected("ImportRows", &other)),
        }
    }

    pub fn checkpoint(&self, sheet: &str) -> Result<Option<CheckpointSummary>, WorkspaceError> {
        match self.inner.call(&Request::Checkpoint {
            sheet: sheet.to_string(),
        })? {
            Response::Checkpoint(summary) => Ok(summary),
            other => Err(unexpected("Checkpoint", &other)),
        }
    }

    pub fn stats(&self, sheet: &str) -> Result<WireStats, WorkspaceError> {
        match self.inner.call(&Request::Stats {
            sheet: sheet.to_string(),
        })? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", &other)),
        }
    }
}
