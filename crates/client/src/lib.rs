//! Blocking TCP client for the DataSpread server, with reconnection.
//!
//! [`Client::connect`] dials the server, runs the version handshake, and
//! starts a demultiplexing reader thread; [`Client::session`] then hands
//! out cheap [`RemoteSession`] handles whose methods mirror the in-process
//! `dataspread_workspace::Session` API one-to-one — same names, same
//! request/response types ([`Edit`], [`EditReceipt`], [`WindowPatch`]),
//! same error enum (`WorkspaceError`, reconstructed from its wire code).
//! Code written against the local session API ports to the network by
//! swapping the handle type.
//!
//! Many sessions share one connection: every request carries a fresh id,
//! the reader thread routes each response frame to the caller parked on
//! that id, and callers on other sessions are never blocked behind a slow
//! request (e.g. an `await_commit` parked on a commit ticket).
//!
//! # Reconnection and the re-stage contract
//!
//! When the connection dies, the next call transparently redials (capped
//! exponential backoff, [`ClientConfig`]) and *reconciles*: every sheet
//! this client opened is re-opened, and its restart pair `(incarnation,
//! horizon)` is queried. An unchanged incarnation means the server never
//! restarted — everything staged is still held server-side and re-sending
//! would double-apply, so nothing is re-sent. A changed incarnation means
//! a restart: staged edits with tickets at or below the durable horizon
//! survived in the checkpoint image, and the rest are re-staged in order
//! under fresh tickets. Callers keep awaiting the tickets they originally
//! received; the client re-points them at their re-staged successors.
//!
//! What this guarantees: **an edit whose `stage_edit` receipt was
//! returned is never silently lost to a server restart** — it either
//! rides the recovered WAL/image or is re-staged on reconnect, and its
//! `await_commit` keeps meaning "durable" afterwards. What it does not
//! guarantee: a call that *errored* (connection died before the receipt
//! arrived) is in an unknown state — it is reported as an error, never
//! retried, and never re-staged; the caller decides. Likewise reads,
//! pings, and awaits are retried transparently (idempotent), while
//! `apply_edit` / `import_rows` / `checkpoint` surface transport errors
//! (the server may or may not have applied them).
//!
//! One honest caveat: reconciliation compares against the *latest*
//! incarnation. A client that stages edits, then makes no call at all
//! across **two or more** server restarts, may mis-classify tickets lost
//! in the first restart. In practice a client with staged-unacknowledged
//! edits is awaiting them, reconnects on the first restart, and
//! re-numbers its entries then.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dataspread_grid::{CellAddr, CellValue, Rect};
use dataspread_proto::{
    read_frame, write_frame, CheckpointSummary, Edit, EditReceipt, RegistrySnapshot, Request,
    Response, WindowPatch, WireStats, PROTOCOL_VERSION,
};
use dataspread_workspace::WorkspaceError;

fn io_err(context: &str, e: &std::io::Error) -> WorkspaceError {
    WorkspaceError::Io(format!("{context}: {e}"))
}

/// Tunables for dialing and redialing the server.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-address TCP connect timeout.
    pub connect_timeout: Duration,
    /// How long a call waits for its response frame before giving up
    /// (`None` = wait forever). A timed-out call fails; the connection
    /// stays up (a late response is dropped by request id).
    pub call_timeout: Option<Duration>,
    /// Redial attempts after a dead connection before a call gives up
    /// (0 disables reconnection entirely).
    pub reconnect_retries: u32,
    /// Backoff before redial attempt *n* is `backoff_base × 2^(n-1)`,
    /// capped at `backoff_cap`. The first attempt is immediate.
    pub backoff_base: Duration,
    pub backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            call_timeout: Some(Duration::from_secs(30)),
            reconnect_retries: 5,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

/// Pending-call table: request id → slot the reader fills.
#[derive(Default)]
struct Pending {
    slots: HashMap<u64, Option<Response>>,
    /// Set once the connection dies; every pending and future call fails
    /// with a clone of this.
    dead: Option<WorkspaceError>,
}

/// Why a call failed, below the application level.
enum CallError {
    /// The connection is unusable (send failed, stream closed, bad
    /// frame). Redialing may help.
    Transport(WorkspaceError),
    /// The response did not arrive within the call timeout. The
    /// connection may be fine; redialing is not warranted.
    Timeout(WorkspaceError),
}

impl CallError {
    fn into_error(self) -> WorkspaceError {
        match self {
            CallError::Transport(e) | CallError::Timeout(e) => e,
        }
    }
}

/// One TCP connection: shared writer, demultiplexing reader thread.
struct Conn {
    writer: Mutex<TcpStream>,
    /// Kept for shutdown (unblocks the reader thread).
    stream: TcpStream,
    pending: Mutex<Pending>,
    arrived: Condvar,
    next_id: AtomicU64,
}

impl Conn {
    fn dial(addrs: &[SocketAddr], timeout: Duration) -> Result<Arc<Conn>, WorkspaceError> {
        let mut last: Option<std::io::Error> = None;
        let mut stream = None;
        for addr in addrs {
            match TcpStream::connect_timeout(addr, timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        let Some(stream) = stream else {
            let e = last.unwrap_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no addresses")
            });
            return Err(io_err("connect", &e));
        };
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().map_err(|e| io_err("clone stream", &e))?;
        let reader = stream.try_clone().map_err(|e| io_err("clone stream", &e))?;
        let conn = Arc::new(Conn {
            writer: Mutex::new(writer),
            stream,
            pending: Mutex::new(Pending::default()),
            arrived: Condvar::new(),
            next_id: AtomicU64::new(1),
        });
        {
            let conn = Arc::clone(&conn);
            std::thread::spawn(move || read_loop(&conn, &reader));
        }
        Ok(conn)
    }

    fn is_dead(&self) -> bool {
        self.pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .dead
            .is_some()
    }

    fn fail_all(&self, err: WorkspaceError) {
        let mut p = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        if p.dead.is_none() {
            p.dead = Some(err);
        }
        self.arrived.notify_all();
    }

    fn shutdown(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Send `req` and park until its response arrives, the connection
    /// dies, or `timeout` elapses.
    fn call(&self, req: &Request, timeout: Option<Duration>) -> Result<Response, CallError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut p = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(dead) = &p.dead {
                return Err(CallError::Transport(dead.clone()));
            }
            p.slots.insert(id, None);
        }
        let send_result = {
            let payload = req.encode(id);
            let mut frame = Vec::with_capacity(4 + payload.len());
            write_frame(&mut frame, &payload).expect("vec write is infallible");
            let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
            w.write_all(&frame).and_then(|()| w.flush())
        };
        if let Err(e) = send_result {
            self.pending
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .slots
                .remove(&id);
            return Err(CallError::Transport(io_err("send", &e)));
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut p = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(Some(_)) = p.slots.get(&id) {
                return Ok(p.slots.remove(&id).flatten().expect("checked above"));
            }
            if let Some(dead) = &p.dead {
                let dead = dead.clone();
                p.slots.remove(&id);
                return Err(CallError::Transport(dead));
            }
            match deadline {
                None => p = self.arrived.wait(p).unwrap_or_else(|e| e.into_inner()),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        p.slots.remove(&id);
                        return Err(CallError::Timeout(WorkspaceError::Io(format!(
                            "timed out after {:?} waiting for a response",
                            timeout.expect("deadline implies timeout")
                        ))));
                    }
                    let (guard, _) = self
                        .arrived
                        .wait_timeout(p, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    p = guard;
                }
            }
        }
    }
}

/// Reader thread: route each response frame to the caller parked on its
/// request id. Exits (failing all pending calls) when the stream ends.
fn read_loop(conn: &Conn, stream: &TcpStream) {
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            conn.fail_all(io_err("clone stream", &e));
            return;
        }
    });
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => {
                conn.fail_all(WorkspaceError::Io("connection closed by server".into()));
                return;
            }
            Err(e) => {
                conn.fail_all(io_err("read", &e));
                return;
            }
        };
        let (req_id, resp) = match Response::decode(&payload) {
            Ok(pair) => pair,
            Err(e) => {
                conn.fail_all(WorkspaceError::Protocol(format!("bad response frame: {e}")));
                return;
            }
        };
        let mut p = conn.pending.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(slot) = p.slots.get_mut(&req_id) {
            *slot = Some(resp);
            conn.arrived.notify_all();
        }
        // Unknown id: a response for a caller that already gave up —
        // drop it.
    }
}

/// What the client remembers about one sheet, for reconciliation.
#[derive(Default)]
struct SheetState {
    /// The server-side incarnation this client last reconciled against
    /// (`None` until the first `DurableTicket` answer).
    incarnation: Option<u64>,
    /// The durable horizon reported alongside that incarnation.
    horizon: u64,
    /// Staged edits whose receipts were returned but whose durability was
    /// not yet acknowledged, ascending by *current* ticket. Pruned by
    /// successful `await_commit`s; re-staged (with fresh tickets) after a
    /// detected restart.
    staged: Vec<(u64, Edit)>,
    /// Caller-held ticket → current ticket, for entries re-staged under
    /// a new number. Entries are dropped once awaited.
    remap: HashMap<u64, u64>,
}

struct ClientState {
    conn: Option<Arc<Conn>>,
    sheets: HashMap<String, SheetState>,
}

struct Shared {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    state: Mutex<ClientState>,
}

impl Shared {
    /// The current connection, redialing (with backoff) and reconciling
    /// when it is dead or absent. Holds the state lock across the redial
    /// so exactly one caller pays for it; the rest queue behind the lock
    /// and find a live connection.
    fn live_conn(&self) -> Result<Arc<Conn>, WorkspaceError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(conn) = &st.conn {
            if !conn.is_dead() {
                return Ok(Arc::clone(conn));
            }
            conn.shutdown();
            st.conn = None;
        }
        let mut last = WorkspaceError::Io("not connected".into());
        for attempt in 0..=self.config.reconnect_retries {
            if attempt > 0 {
                let exp = self
                    .config
                    .backoff_base
                    .saturating_mul(1u32 << (attempt - 1).min(16));
                std::thread::sleep(exp.min(self.config.backoff_cap));
            }
            match self.establish(&mut st) {
                Ok(conn) => {
                    st.conn = Some(Arc::clone(&conn));
                    return Ok(conn);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Dial, handshake, reconcile. On any failure the half-built
    /// connection is torn down and the error returned for the redial
    /// loop to back off on.
    fn establish(&self, st: &mut ClientState) -> Result<Arc<Conn>, WorkspaceError> {
        let conn = Conn::dial(&self.addrs, self.config.connect_timeout)?;
        let result = self.handshake(&conn).and_then(|()| {
            let sheets: Vec<String> = st.sheets.keys().cloned().collect();
            for name in sheets {
                self.reconcile_sheet(&conn, st, &name)?;
            }
            Ok(())
        });
        match result {
            Ok(()) => Ok(conn),
            Err(e) => {
                conn.shutdown();
                Err(e)
            }
        }
    }

    fn handshake(&self, conn: &Conn) -> Result<(), WorkspaceError> {
        let req = Request::Hello {
            version: PROTOCOL_VERSION,
        };
        match conn
            .call(&req, self.config.call_timeout)
            .map_err(CallError::into_error)?
        {
            Response::Hello { version } if version == PROTOCOL_VERSION => Ok(()),
            Response::Hello { version } => Err(WorkspaceError::Protocol(format!(
                "server speaks protocol {version}, client speaks {PROTOCOL_VERSION}"
            ))),
            other => Err(unexpected("Hello", &other)),
        }
    }

    /// Re-open `name` on a fresh connection and re-stage what the
    /// restart (if there was one) lost.
    fn reconcile_sheet(
        &self,
        conn: &Conn,
        st: &mut ClientState,
        name: &str,
    ) -> Result<(), WorkspaceError> {
        let timeout = self.config.call_timeout;
        match conn
            .call(
                &Request::OpenSheet {
                    sheet: name.to_string(),
                },
                timeout,
            )
            .map_err(CallError::into_error)?
        {
            Response::Ok => {}
            other => return Err(unexpected("OpenSheet", &other)),
        }
        let (incarnation, horizon) = match conn
            .call(
                &Request::DurableTicket {
                    sheet: name.to_string(),
                },
                timeout,
            )
            .map_err(CallError::into_error)?
        {
            Response::Ticket {
                incarnation,
                horizon,
            } => (incarnation, horizon),
            other => return Err(unexpected("DurableTicket", &other)),
        };
        let sheet = st.sheets.entry(name.to_string()).or_default();
        if sheet.incarnation == Some(incarnation) {
            return Ok(()); // same server process: nothing was lost
        }
        // Restart detected. Entries at or below the horizon rode the
        // recovered image and are dropped here — their old ticket numbers
        // stay awaitable, because the sequence continues across restarts
        // and they are already durable. Entries above it were lost —
        // re-stage them in order under fresh tickets.
        let lost: Vec<(u64, Edit)> = sheet
            .staged
            .iter()
            .filter(|(t, _)| *t > horizon)
            .cloned()
            .collect();
        let mut renumbered: HashMap<u64, u64> = HashMap::new();
        let mut staged: Vec<(u64, Edit)> = Vec::new();
        for (old_ticket, edit) in lost {
            let receipt = match conn
                .call(
                    &Request::StageEdit {
                        sheet: name.to_string(),
                        edit: edit.clone(),
                    },
                    timeout,
                )
                .map_err(CallError::into_error)?
            {
                Response::Receipt(r) => r,
                other => return Err(unexpected("StageEdit", &other)),
            };
            renumbered.insert(old_ticket, receipt.ticket);
            if !receipt.durable {
                staged.push((receipt.ticket, edit));
            }
        }
        let sheet = st.sheets.get_mut(name).expect("inserted above");
        // Re-point caller-held tickets whose current number was just
        // renumbered, then record the fresh old→new pairs.
        for current in sheet.remap.values_mut() {
            if let Some(n) = renumbered.get(current) {
                *current = *n;
            }
        }
        sheet.remap.extend(renumbered);
        sheet.staged = staged;
        sheet.incarnation = Some(incarnation);
        sheet.horizon = horizon;
        Ok(())
    }

    /// Drop `conn` as the current connection (it proved dead).
    fn retire(&self, conn: &Arc<Conn>) {
        conn.shutdown();
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(current) = &st.conn {
            if Arc::ptr_eq(current, conn) {
                st.conn = None;
            }
        }
    }

    /// One attempt: no transparent retry. Transport errors retire the
    /// connection (the next call redials) and surface to the caller —
    /// the request may or may not have been applied server-side.
    fn call_once(&self, req: &Request) -> Result<Response, WorkspaceError> {
        let conn = self.live_conn()?;
        match conn.call(req, self.config.call_timeout) {
            Ok(resp) => Ok(resp),
            Err(CallError::Timeout(e)) => Err(e),
            Err(CallError::Transport(e)) => {
                self.retire(&conn);
                Err(e)
            }
        }
    }

    /// Idempotent call: transparently redial and retry on transport
    /// errors, up to the configured attempt budget.
    fn call_retry(&self, req: &Request) -> Result<Response, WorkspaceError> {
        let mut last = WorkspaceError::Io("not connected".into());
        for _ in 0..=self.config.reconnect_retries {
            let conn = self.live_conn()?;
            match conn.call(req, self.config.call_timeout) {
                Ok(resp) => return Ok(resp),
                Err(CallError::Timeout(e)) => return Err(e),
                Err(CallError::Transport(e)) => {
                    self.retire(&conn);
                    last = e;
                }
            }
        }
        Err(last)
    }

    /// Ensure `sheet` is tracked, learning its restart baseline on first
    /// contact (without a baseline a later reconnect could not tell a
    /// restart from a blip).
    fn ensure_sheet(&self, sheet: &str) -> Result<(), WorkspaceError> {
        {
            let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            if st
                .sheets
                .get(sheet)
                .is_some_and(|s| s.incarnation.is_some())
            {
                return Ok(());
            }
        }
        let (incarnation, horizon) = match self.call_retry(&Request::DurableTicket {
            sheet: sheet.to_string(),
        })? {
            Response::Ticket {
                incarnation,
                horizon,
            } => (incarnation, horizon),
            other => return Err(unexpected("DurableTicket", &other)),
        };
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let entry = st.sheets.entry(sheet.to_string()).or_default();
        if entry.incarnation.is_none() {
            entry.incarnation = Some(incarnation);
            entry.horizon = horizon;
        }
        Ok(())
    }
}

/// A connection to a DataSpread server. Cheap to clone is the *session*
/// ([`Client::session`]); the client owns the socket and reader thread
/// and closes both on drop.
pub struct Client {
    shared: Arc<Shared>,
}

impl Client {
    /// Dial `addr` and run the `Hello` version handshake with default
    /// [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, WorkspaceError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// [`Client::connect`] with explicit timeouts and redial policy.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Client, WorkspaceError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| io_err("resolve", &e))?
            .collect();
        if addrs.is_empty() {
            return Err(WorkspaceError::Io("address resolved to nothing".into()));
        }
        let shared = Arc::new(Shared {
            addrs,
            config,
            state: Mutex::new(ClientState {
                conn: None,
                sheets: HashMap::new(),
            }),
        });
        // Fail fast on an unreachable or incompatible server: the first
        // connection (handshake included) is established eagerly.
        shared.live_conn()?;
        Ok(Client { shared })
    }

    /// A new session over this connection — the network twin of
    /// `Workspace::session()`. Sessions are cheap clonable handles; all
    /// of them multiplex over the one socket.
    pub fn session(&self) -> RemoteSession {
        RemoteSession {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Round-trip a ping (liveness check; redials a dead connection).
    pub fn ping(&self) -> Result<(), WorkspaceError> {
        match self.shared.call_retry(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Ping", &other)),
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Unblocks the reader thread, which then fails any stragglers.
        let st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(conn) = &st.conn {
            conn.shutdown();
        }
    }
}

fn unexpected(what: &str, resp: &Response) -> WorkspaceError {
    match resp {
        Response::Err(e) => WorkspaceError::from_wire(e.code, e.detail.clone()),
        other => WorkspaceError::Protocol(format!("unexpected response to {what}: {other:?}")),
    }
}

/// The session API over the wire, method-for-method compatible with
/// `dataspread_workspace::Session`. Outlives slow siblings: each call
/// parks only on its own request id.
#[derive(Clone)]
pub struct RemoteSession {
    shared: Arc<Shared>,
}

impl RemoteSession {
    pub fn open_sheet(&self, sheet: &str) -> Result<(), WorkspaceError> {
        match self.shared.call_retry(&Request::OpenSheet {
            sheet: sheet.to_string(),
        })? {
            Response::Ok => {}
            other => return Err(unexpected("OpenSheet", &other)),
        }
        // Track the sheet (and its restart baseline) so a reconnect
        // re-opens it and can reconcile staged edits.
        self.shared.ensure_sheet(sheet)
    }

    pub fn fetch_window(&self, sheet: &str, rect: Rect) -> Result<WindowPatch, WorkspaceError> {
        match self.shared.call_retry(&Request::FetchWindow {
            sheet: sheet.to_string(),
            rect,
        })? {
            Response::Window(patch) => Ok(patch),
            other => Err(unexpected("FetchWindow", &other)),
        }
    }

    pub fn value(&self, sheet: &str, addr: CellAddr) -> Result<CellValue, WorkspaceError> {
        match self.shared.call_retry(&Request::Value {
            sheet: sheet.to_string(),
            addr,
        })? {
            Response::Value(v) => Ok(v),
            other => Err(unexpected("Value", &other)),
        }
    }

    /// Apply and durably commit one edit. Not retried on transport
    /// errors: a died-mid-call edit may or may not have been applied,
    /// and the error says exactly that.
    pub fn apply_edit(&self, sheet: &str, edit: Edit) -> Result<EditReceipt, WorkspaceError> {
        match self.shared.call_once(&Request::ApplyEdit {
            sheet: sheet.to_string(),
            edit,
        })? {
            Response::Receipt(r) => Ok(r),
            other => Err(unexpected("ApplyEdit", &other)),
        }
    }

    /// Stage an edit without waiting for its fsync; pair with
    /// [`RemoteSession::await_commit`]. The server bounds the number of
    /// staged-but-unacknowledged edits per connection — a
    /// `WorkspaceError::Busy` return means "await, then retry".
    ///
    /// A returned receipt is the client's re-stage obligation: if the
    /// server restarts before the edit is durable, the next reconnect
    /// re-sends it, and the receipt's ticket keeps working with
    /// [`RemoteSession::await_commit`]. An *errored* stage call carries
    /// no such promise — it is never re-sent.
    pub fn stage_edit(&self, sheet: &str, edit: Edit) -> Result<EditReceipt, WorkspaceError> {
        self.shared.ensure_sheet(sheet)?;
        // Snapshot the incarnation the stage will run against, to detect
        // the (rare) reconnect-plus-restart racing between the server's
        // reply and our bookkeeping below.
        let before = {
            let st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.sheets.get(sheet).and_then(|s| s.incarnation)
        };
        let receipt = match self.shared.call_once(&Request::StageEdit {
            sheet: sheet.to_string(),
            edit: edit.clone(),
        })? {
            Response::Receipt(r) => r,
            other => return Err(unexpected("StageEdit", &other)),
        };
        if receipt.durable {
            return Ok(receipt); // per-op commit mode: already fsynced
        }
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        let entry = st.sheets.entry(sheet.to_string()).or_default();
        if entry.incarnation == before {
            // Normal path: same incarnation as when we staged.
            let pos = entry.staged.partition_point(|(t, _)| *t < receipt.ticket);
            entry.staged.insert(pos, (receipt.ticket, edit));
            return Ok(receipt);
        }
        // A reconcile ran between the receipt and this bookkeeping. If
        // the restart kept our edit (ticket at or below the new horizon)
        // the receipt stands as durable state; otherwise re-stage it now
        // on the current connection and re-point the caller's ticket.
        if receipt.ticket <= entry.horizon {
            return Ok(receipt);
        }
        drop(st);
        let second = match self.shared.call_once(&Request::StageEdit {
            sheet: sheet.to_string(),
            edit: edit.clone(),
        })? {
            Response::Receipt(r) => r,
            other => return Err(unexpected("StageEdit", &other)),
        };
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        let entry = st.sheets.entry(sheet.to_string()).or_default();
        if !second.durable {
            let pos = entry.staged.partition_point(|(t, _)| *t < second.ticket);
            entry.staged.insert(pos, (second.ticket, edit));
            entry.remap.insert(receipt.ticket, second.ticket);
        }
        Ok(receipt)
    }

    /// Block until `ticket` (from [`RemoteSession::stage_edit`]) is
    /// crash-durable. Transparently redials and re-resolves the ticket
    /// through any restart re-staging, so the receipt a caller holds
    /// keeps meaning the same edit.
    pub fn await_commit(&self, sheet: &str, ticket: u64) -> Result<(), WorkspaceError> {
        let mut last = WorkspaceError::Io("not connected".into());
        for _ in 0..=self.shared.config.reconnect_retries {
            // Resolve *after* live_conn: a reconnect reconciles first,
            // so the remap is current for the connection we call on.
            let conn = self.shared.live_conn()?;
            let resolved = {
                let st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
                st.sheets
                    .get(sheet)
                    .and_then(|s| s.remap.get(&ticket).copied())
                    .unwrap_or(ticket)
            };
            let req = Request::AwaitCommit {
                sheet: sheet.to_string(),
                ticket: resolved,
            };
            match conn.call(&req, self.shared.config.call_timeout) {
                Ok(Response::Ok) => {
                    let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(entry) = st.sheets.get_mut(sheet) {
                        entry.staged.retain(|(t, _)| *t > resolved);
                        entry.remap.remove(&ticket);
                    }
                    return Ok(());
                }
                Ok(other) => return Err(unexpected("AwaitCommit", &other)),
                Err(CallError::Timeout(e)) => return Err(e),
                Err(CallError::Transport(e)) => {
                    self.shared.retire(&conn);
                    last = e;
                }
            }
        }
        Err(last)
    }

    /// Bulk-import rows. Not retried on transport errors (see
    /// [`RemoteSession::apply_edit`]).
    pub fn import_rows(
        &self,
        sheet: &str,
        top_left: CellAddr,
        width: u32,
        rows: Vec<Vec<CellValue>>,
    ) -> Result<Rect, WorkspaceError> {
        match self.shared.call_once(&Request::ImportRows {
            sheet: sheet.to_string(),
            top_left,
            width,
            rows,
        })? {
            Response::Imported(rect) => Ok(rect),
            other => Err(unexpected("ImportRows", &other)),
        }
    }

    pub fn checkpoint(&self, sheet: &str) -> Result<Option<CheckpointSummary>, WorkspaceError> {
        match self.shared.call_once(&Request::Checkpoint {
            sheet: sheet.to_string(),
        })? {
            Response::Checkpoint(summary) => Ok(summary),
            other => Err(unexpected("Checkpoint", &other)),
        }
    }

    pub fn stats(&self, sheet: &str) -> Result<WireStats, WorkspaceError> {
        match self.shared.call_retry(&Request::Stats {
            sheet: sheet.to_string(),
        })? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// A point-in-time [`RegistrySnapshot`] of the server's whole metrics
    /// registry: counters, gauges, latency histograms, the slow-op event
    /// ring, and per-sheet health. Idempotent, so transparently retried
    /// across reconnects. Render it with
    /// [`RegistrySnapshot::render_text`] for a Prometheus-style text
    /// exposition.
    pub fn metrics(&self) -> Result<RegistrySnapshot, WorkspaceError> {
        match self.shared.call_retry(&Request::Metrics)? {
            Response::Metrics(snap) => Ok(snap),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// The sheet's restart pair `(incarnation, horizon)` as the server
    /// reports it right now (see the crate docs for semantics).
    pub fn durable_ticket(&self, sheet: &str) -> Result<(u64, u64), WorkspaceError> {
        match self.shared.call_retry(&Request::DurableTicket {
            sheet: sheet.to_string(),
        })? {
            Response::Ticket {
                incarnation,
                horizon,
            } => Ok((incarnation, horizon)),
            other => Err(unexpected("DurableTicket", &other)),
        }
    }
}
