//! The four corpus presets, calibrated to the Table I statistics.
//!
//! | corpus | character | key targets |
//! |---|---|---|
//! | Internet | data publication, dense | ~29% sheets with formulas, most sheets density ≥ 0.5, large ranges per formula |
//! | ClueWeb09 | data publication | ~42% formula sheets, ~47% sheets below 0.5 density |
//! | Enron | email data exchange | ~40% formula sheets, ~50% below 0.5 density |
//! | Academic | data management/forms | ~91% formula sheets, ~91% below 0.5 density, tiny formulas (~3 cells) |

use rand::rngs::StdRng;
use rand::SeedableRng;

use dataspread_grid::SparseSheet;

use crate::gen::{generate_sheet, FormulaStyle, SheetSpec};

/// The four corpora of the paper's empirical study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusName {
    Internet,
    ClueWeb09,
    Enron,
    Academic,
}

impl CorpusName {
    pub const ALL: [CorpusName; 4] = [
        CorpusName::Internet,
        CorpusName::ClueWeb09,
        CorpusName::Enron,
        CorpusName::Academic,
    ];
}

impl std::fmt::Display for CorpusName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CorpusName::Internet => "Internet",
            CorpusName::ClueWeb09 => "ClueWeb09",
            CorpusName::Enron => "Enron",
            CorpusName::Academic => "Academic",
        })
    }
}

/// The generator preset for a corpus.
pub fn corpus_preset(name: CorpusName) -> SheetSpec {
    match name {
        // Dense published tables; formulas are range aggregations. One
        // table per sheet keeps the bounding box tight (the corpus is
        // dominated by single-table published data).
        CorpusName::Internet => SheetSpec {
            tables: (1, 1),
            table_rows: (10, 120),
            table_cols: (3, 12),
            table_fill: 0.97,
            scatter_cells: (0, 4),
            canvas_rows: 140,
            canvas_cols: 16,
            scatter_near_tables: true,
            messy_prob: 0.45,
            heavy_formula_prob: 0.7,
            formula_sheet_prob: 0.29,
            formula_cell_frac: 0.02,
            formula_style: FormulaStyle::LargeRanges,
        },
        // Similar to Internet but messier: more scatter, more sheets
        // below 0.5 density.
        CorpusName::ClueWeb09 => SheetSpec {
            tables: (1, 2),
            table_rows: (8, 60),
            table_cols: (2, 10),
            table_fill: 0.92,
            scatter_cells: (2, 18),
            canvas_rows: 90,
            canvas_cols: 24,
            scatter_near_tables: true,
            messy_prob: 0.2,
            heavy_formula_prob: 0.65,
            formula_sheet_prob: 0.42,
            formula_cell_frac: 0.04,
            formula_style: FormulaStyle::LargeRanges,
        },
        // Data exchanged over email: mid-density, moderate formulas.
        CorpusName::Enron => SheetSpec {
            tables: (1, 2),
            table_rows: (5, 50),
            table_cols: (2, 8),
            table_fill: 0.9,
            scatter_cells: (2, 24),
            canvas_rows: 70,
            canvas_cols: 24,
            scatter_near_tables: true,
            messy_prob: 0.2,
            heavy_formula_prob: 0.75,
            formula_sheet_prob: 0.40,
            formula_cell_frac: 0.05,
            formula_style: FormulaStyle::Mixed,
        },
        // Forms and derived columns: sparse, almost every sheet computes.
        CorpusName::Academic => SheetSpec {
            tables: (0, 1),
            table_rows: (5, 12),
            table_cols: (2, 4),
            table_fill: 0.85,
            scatter_cells: (10, 60),
            canvas_rows: 30,
            canvas_cols: 14,
            scatter_near_tables: false,
            messy_prob: 1.0,
            heavy_formula_prob: 0.75,
            formula_sheet_prob: 0.92,
            formula_cell_frac: 0.30,
            formula_style: FormulaStyle::DerivedColumns,
        },
    }
}

/// Generate `n` sheets of a corpus, deterministically from `seed`.
pub fn generate_corpus(name: CorpusName, n: usize, seed: u64) -> Vec<SparseSheet> {
    let spec = corpus_preset(name);
    let mut rng = StdRng::seed_from_u64(seed ^ (name as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..n).map(|_| generate_sheet(&spec, &mut rng).0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_analysis::{analyze_corpus, analyze_sheet, TabularConfig};

    fn stats(name: CorpusName) -> dataspread_analysis::CorpusStats {
        let sheets = generate_corpus(name, 120, 1);
        let analyses: Vec<_> = sheets
            .iter()
            .map(|s| analyze_sheet(s, &TabularConfig::default()))
            .collect();
        analyze_corpus(&analyses)
    }

    #[test]
    fn internet_matches_table1_shape() {
        let s = stats(CorpusName::Internet);
        assert!(
            (20.0..40.0).contains(&s.pct_sheets_with_formulae),
            "formula sheets {}",
            s.pct_sheets_with_formulae
        );
        assert!(
            s.pct_density_below_half < 40.0,
            "Internet sheets are mostly dense, got {}% below 0.5",
            s.pct_density_below_half
        );
        assert!(s.pct_coverage > 50.0, "coverage {}", s.pct_coverage);
        assert!(s.cells_per_formula > 20.0, "large ranges expected");
    }

    #[test]
    fn academic_matches_table1_shape() {
        let s = stats(CorpusName::Academic);
        assert!(
            s.pct_sheets_with_formulae > 80.0,
            "formula sheets {}",
            s.pct_sheets_with_formulae
        );
        assert!(
            s.pct_density_below_half > 70.0,
            "Academic sheets are sparse, got {}%",
            s.pct_density_below_half
        );
        assert!(
            s.cells_per_formula < 10.0,
            "tiny derived formulas expected, got {}",
            s.cells_per_formula
        );
        assert!(s.pct_coverage < 60.0, "low tabular coverage expected");
    }

    #[test]
    fn corpora_are_distinct_and_deterministic() {
        let a = generate_corpus(CorpusName::Enron, 5, 9);
        let b = generate_corpus(CorpusName::Enron, 5, 9);
        assert_eq!(a, b);
        let c = generate_corpus(CorpusName::ClueWeb09, 5, 9);
        assert_ne!(a, c);
    }
}
