//! Parameterized single-sheet generator.

use rand::rngs::StdRng;
use rand::Rng;

use dataspread_grid::addr::col_to_letters;
use dataspread_grid::{Cell, CellAddr, Rect, SparseSheet};

/// How formulas are laid out on a generated sheet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormulaStyle {
    /// Aggregations over table ranges (totals rows, SUM/AVERAGE/VLOOKUP) —
    /// the publication/exchange corpora.
    LargeRanges,
    /// Derived columns touching a few neighbour cells — the Academic
    /// corpus's style (≈3 cells per formula).
    DerivedColumns,
    /// A blend of both.
    Mixed,
}

/// Parameters for one synthetic sheet.
#[derive(Debug, Clone)]
pub struct SheetSpec {
    /// Number of dense tables, chosen uniformly in this range.
    pub tables: (u32, u32),
    pub table_rows: (u32, u32),
    pub table_cols: (u32, u32),
    /// Fill probability inside a table.
    pub table_fill: f64,
    /// Stray filled cells scattered over the canvas.
    pub scatter_cells: (u32, u32),
    pub canvas_rows: u32,
    pub canvas_cols: u32,
    /// Whether stray cells hug the tables (titles/notes of published data)
    /// or spread across the whole canvas (form-style layouts).
    pub scatter_near_tables: bool,
    /// Probability that a sheet is "messy": its scatter ignores
    /// `scatter_near_tables` and spreads over the whole canvas.
    pub messy_prob: f64,
    /// Probability that a formula-carrying sheet is formula-heavy
    /// (formulas >20% of filled cells — Table I column 4).
    pub heavy_formula_prob: f64,
    /// Probability that this sheet carries formulas at all.
    pub formula_sheet_prob: f64,
    /// Formula cells as a fraction of the sheet's filled cells.
    pub formula_cell_frac: f64,
    pub formula_style: FormulaStyle,
}

/// Generate a sheet. Also returns the table rectangles actually placed
/// (callers use them to direct formulas/workloads at real data).
pub fn generate_sheet(spec: &SheetSpec, rng: &mut StdRng) -> (SparseSheet, Vec<Rect>) {
    let mut sheet = SparseSheet::new();
    let mut tables: Vec<Rect> = Vec::new();
    let n_tables = rng.gen_range(spec.tables.0..=spec.tables.1);
    let mut attempts = 0;
    while (tables.len() as u32) < n_tables && attempts < 200 {
        attempts += 1;
        let rows = rng.gen_range(spec.table_rows.0..=spec.table_rows.1);
        let cols = rng.gen_range(spec.table_cols.0..=spec.table_cols.1);
        if rows > spec.canvas_rows || cols > spec.canvas_cols {
            continue;
        }
        let r0 = rng.gen_range(0..=spec.canvas_rows - rows);
        let c0 = rng.gen_range(0..=spec.canvas_cols - cols);
        let rect = Rect::new(r0, c0, r0 + rows - 1, c0 + cols - 1);
        // Keep tables separated by at least one empty row/col so they stay
        // distinct components.
        let dilated = Rect {
            r1: rect.r1.saturating_sub(1),
            c1: rect.c1.saturating_sub(1),
            r2: rect.r2 + 1,
            c2: rect.c2 + 1,
        };
        if tables.iter().any(|t| t.intersects(&dilated)) {
            continue;
        }
        for addr in rect.iter() {
            if rng.gen_bool(spec.table_fill) {
                sheet.set_value(addr, rng.gen_range(0..10_000) as i64);
            }
        }
        tables.push(rect);
    }
    // Scatter cells go *near* the tables (titles, notes, stray entries) so
    // they do not blow up the bounding box the way uniform placement would;
    // sheets without tables scatter over the whole canvas (form-style).
    let n_scatter = rng.gen_range(spec.scatter_cells.0..=spec.scatter_cells.1);
    let whole_canvas = Rect::new(0, 0, spec.canvas_rows - 1, spec.canvas_cols - 1);
    let messy = rng.gen_bool(spec.messy_prob);
    let scatter_zone = if spec.scatter_near_tables && !messy {
        tables
            .iter()
            .fold(None::<Rect>, |acc, t| {
                Some(match acc {
                    Some(a) => a.bbox_union(t),
                    None => *t,
                })
            })
            .map(|b| Rect {
                r1: b.r1.saturating_sub(2),
                c1: b.c1.saturating_sub(1),
                r2: (b.r2 + 3).min(spec.canvas_rows - 1),
                c2: (b.c2 + 2).min(spec.canvas_cols - 1),
            })
            .unwrap_or(whole_canvas)
    } else {
        whole_canvas
    };
    for _ in 0..n_scatter {
        let r = rng.gen_range(scatter_zone.r1..=scatter_zone.r2);
        let c = rng.gen_range(scatter_zone.c1..=scatter_zone.c2);
        sheet.set_value(CellAddr::new(r, c), rng.gen_range(0..100) as i64);
    }
    if rng.gen_bool(spec.formula_sheet_prob) && !sheet.is_empty() {
        add_formulas(&mut sheet, &tables, spec, rng);
    }
    (sheet, tables)
}

fn add_formulas(sheet: &mut SparseSheet, tables: &[Rect], spec: &SheetSpec, rng: &mut StdRng) {
    // The corpora are bimodal (Table I cols 3-4): most sheets carrying
    // formulas carry a *lot* of them (>20% of filled cells).
    let frac = if rng.gen_bool(spec.heavy_formula_prob) {
        rng.gen_range(0.22..0.40)
    } else {
        spec.formula_cell_frac
    };
    let n_formulas = ((sheet.filled_count() as f64 * frac).round() as usize).max(1);
    for i in 0..n_formulas {
        let style = match spec.formula_style {
            FormulaStyle::LargeRanges => FormulaStyle::LargeRanges,
            FormulaStyle::DerivedColumns => FormulaStyle::DerivedColumns,
            FormulaStyle::Mixed => {
                if rng.gen_bool(0.5) {
                    FormulaStyle::LargeRanges
                } else {
                    FormulaStyle::DerivedColumns
                }
            }
        };
        match style {
            FormulaStyle::LargeRanges if !tables.is_empty() => {
                // A totals formula below a table: SUM/AVERAGE over one of
                // its columns, or a VLOOKUP into it.
                let t = tables[rng.gen_range(0..tables.len())];
                // Spread formulas over a growing totals block under the
                // table so each formula occupies a distinct cell.
                let cols_n = t.cols() as u32;
                let col = t.c1 + (i as u32 % cols_n);
                let col_a1 = col_to_letters(col);
                let target = CellAddr::new(t.r2 + 2 + (i as u32 / cols_n), col);
                let mut src = match rng.gen_range(0..4) {
                    0 => format!("SUM({col_a1}{}:{col_a1}{})", t.r1 + 1, t.r2 + 1),
                    1 => format!("AVERAGE({col_a1}{}:{col_a1}{})", t.r1 + 1, t.r2 + 1),
                    2 => format!(
                        "VLOOKUP({}{},{}:{},{})",
                        col_to_letters(t.c1),
                        t.r1 + 1,
                        CellAddr::new(t.r1, t.c1).to_a1(),
                        CellAddr::new(t.r2, t.c2).to_a1(),
                        rng.gen_range(1..=t.cols())
                    ),
                    _ => format!("IF(SUM({col_a1}{}:{col_a1}{})>0,1,0)", t.r1 + 1, t.r2 + 1),
                };
                // Most real formulas touch a second contiguous area — a key
                // cell, a rate constant, or another table (Table I col 11:
                // 1.5-2.5 regions per formula).
                if rng.gen_bool(0.65) {
                    let extra = if tables.len() > 1 && rng.gen_bool(0.4) {
                        let o = tables[rng.gen_range(0..tables.len())];
                        let oc = col_to_letters(rng.gen_range(o.c1..=o.c2));
                        format!("SUM({oc}{}:{oc}{})", o.r1 + 1, o.r2 + 1)
                    } else {
                        // A lone parameter cell above the table.
                        CellAddr::new(t.r1.saturating_sub(2), t.c2 + 2).to_a1()
                    };
                    src = format!("{src}+{extra}");
                }
                sheet.set(target, Cell::formula(src));
            }
            _ => {
                // Derived cell: arithmetic over 2–3 nearby cells, spread
                // over a widening band of derived columns.
                let (r, c) = match tables.first() {
                    Some(t) => {
                        let rows_n = t.rows() as u32;
                        (t.r1 + (i as u32 % rows_n), t.c2 + 2 + (i as u32 / rows_n))
                    }
                    None => (
                        rng.gen_range(0..spec.canvas_rows),
                        rng.gen_range(0..spec.canvas_cols),
                    ),
                };
                let a = CellAddr::new(r, c.saturating_sub(2)).to_a1();
                let b = CellAddr::new(r, c.saturating_sub(1)).to_a1();
                let src = match rng.gen_range(0..3) {
                    0 => format!("{a}+{b}"),
                    1 => format!("({a}+{b})/2"),
                    _ => format!("IF(ISBLANK({a}),0,{a}*{b})"),
                };
                sheet.set(CellAddr::new(r, c), Cell::formula(src));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn spec() -> SheetSpec {
        SheetSpec {
            tables: (1, 3),
            table_rows: (5, 15),
            table_cols: (2, 6),
            table_fill: 0.95,
            scatter_cells: (0, 5),
            scatter_near_tables: true,
            messy_prob: 0.1,
            heavy_formula_prob: 0.3,
            canvas_rows: 60,
            canvas_cols: 30,
            formula_sheet_prob: 1.0,
            formula_cell_frac: 0.05,
            formula_style: FormulaStyle::Mixed,
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (a, _) = generate_sheet(&spec(), &mut StdRng::seed_from_u64(7));
        let (b, _) = generate_sheet(&spec(), &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let (c, _) = generate_sheet(&spec(), &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn tables_are_disjoint_and_dense() {
        let (sheet, tables) = generate_sheet(&spec(), &mut StdRng::seed_from_u64(42));
        assert!(!tables.is_empty());
        for (i, a) in tables.iter().enumerate() {
            for b in &tables[i + 1..] {
                assert!(!a.intersects(b));
            }
        }
        assert!(sheet.filled_count() > 0);
    }

    #[test]
    fn formulas_parse() {
        let (sheet, _) = generate_sheet(&spec(), &mut StdRng::seed_from_u64(3));
        let mut n = 0;
        for (_, cell) in sheet.iter() {
            if let Some(src) = &cell.formula {
                assert!(
                    dataspread_formula::parse(src).is_ok(),
                    "generated formula must parse: {src}"
                );
                n += 1;
            }
        }
        assert!(n > 0, "formula_sheet_prob=1 must yield formulas");
    }
}
