//! Synthetic spreadsheet corpora and workload generators.
//!
//! The paper evaluates on four crawled corpora (Internet, ClueWeb09, Enron,
//! Academic — Table I), on large synthetic multi-table sheets (§VII-B.e),
//! on a genomics VCF file (Example 1), and on a retail customer-management
//! database (Example 2), plus a user-operation mix for incremental
//! maintenance (Appendix C-A2). None of the originals are redistributable,
//! so this crate generates seeded synthetic equivalents calibrated to the
//! published structural statistics — see DESIGN.md §2 for the substitution
//! argument.

pub mod corpora;
pub mod gen;
pub mod ops;
pub mod retail;
pub mod synth;
pub mod vcf;

pub use corpora::{corpus_preset, generate_corpus, CorpusName};
pub use gen::{generate_sheet, FormulaStyle, SheetSpec};
pub use ops::{apply_op, OpMix, UserOp};
pub use synth::{dense_sheet, multi_table_sheet, SynthSheet};
