//! User-operation workloads (paper Appendix C-A2).
//!
//! "We consider the following four operations. (i) Change the value of an
//! existing cell. (ii) Add a new cell at an arbitrary location. (iii) Add a
//! new row. (iv) Add a new column. … performed with probabilities 0.6, 0.2,
//! 0.1999, and 0.0001 respectively" — derived from the user survey
//! (Figure 6).

use rand::rngs::StdRng;
use rand::Rng;

use dataspread_grid::{CellAddr, SparseSheet};

/// One user edit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserOp {
    /// Change the value of an existing (filled) cell.
    UpdateCell(CellAddr),
    /// Fill a new cell at an arbitrary location.
    AddCell(CellAddr),
    /// Insert a blank row before this index.
    AddRow(u32),
    /// Insert a blank column before this index.
    AddCol(u32),
}

/// Operation mix probabilities (must sum to 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    pub update_cell: f64,
    pub add_cell: f64,
    pub add_row: f64,
    pub add_col: f64,
}

impl Default for OpMix {
    /// The paper's mix.
    fn default() -> Self {
        OpMix {
            update_cell: 0.6,
            add_cell: 0.2,
            add_row: 0.1999,
            add_col: 0.0001,
        }
    }
}

impl OpMix {
    /// Sample one operation against the current sheet state.
    pub fn sample(&self, sheet: &SparseSheet, rng: &mut StdRng) -> UserOp {
        let bbox = sheet.bounding_box();
        let (rows, cols) = match bbox {
            Some(b) => (b.r2 + 2, b.c2 + 2),
            None => (10, 10),
        };
        let x: f64 = rng.gen();
        if x < self.update_cell {
            // Pick an existing filled cell (uniform over filled cells).
            let filled = sheet.filled_count();
            if filled > 0 {
                let idx = rng.gen_range(0..filled);
                if let Some((addr, _)) = sheet.iter().nth(idx) {
                    return UserOp::UpdateCell(addr);
                }
            }
            UserOp::AddCell(CellAddr::new(
                rng.gen_range(0..rows),
                rng.gen_range(0..cols),
            ))
        } else if x < self.update_cell + self.add_cell {
            UserOp::AddCell(CellAddr::new(
                rng.gen_range(0..rows),
                rng.gen_range(0..cols),
            ))
        } else if x < self.update_cell + self.add_cell + self.add_row {
            UserOp::AddRow(rng.gen_range(0..rows))
        } else {
            UserOp::AddCol(rng.gen_range(0..cols))
        }
    }
}

/// Apply an operation to a sheet (the oracle semantics).
pub fn apply_op(sheet: &mut SparseSheet, op: UserOp, rng: &mut StdRng) {
    match op {
        UserOp::UpdateCell(a) | UserOp::AddCell(a) => {
            sheet.set_value(a, rng.gen_range(0..100_000) as i64);
        }
        UserOp::AddRow(at) => {
            sheet.insert_rows(at, 1).expect("insert row");
            // A new row usually gets some content in the columns that are
            // already in use around it (the paper's generative model adds
            // rows as part of editing tables).
            if let Some(b) = sheet.bounding_box() {
                for c in b.c1..=b.c2 {
                    let above = at > 0 && sheet.get(CellAddr::new(at - 1, c)).is_some();
                    let below = sheet.get(CellAddr::new(at + 1, c)).is_some();
                    if above && below {
                        sheet.set_value(CellAddr::new(at, c), rng.gen_range(0..100_000) as i64);
                    }
                }
            }
        }
        UserOp::AddCol(at) => {
            sheet.insert_cols(at, 1).expect("insert col");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_roughly_matches_probabilities() {
        let mut sheet = SparseSheet::new();
        for r in 0..20 {
            for c in 0..5 {
                sheet.set_value(CellAddr::new(r, c), 1i64);
            }
        }
        let mix = OpMix::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..10_000 {
            match mix.sample(&sheet, &mut rng) {
                UserOp::UpdateCell(_) => counts[0] += 1,
                UserOp::AddCell(_) => counts[1] += 1,
                UserOp::AddRow(_) => counts[2] += 1,
                UserOp::AddCol(_) => counts[3] += 1,
            }
        }
        assert!((counts[0] as f64 / 10_000.0 - 0.6).abs() < 0.05);
        assert!((counts[1] as f64 / 10_000.0 - 0.2).abs() < 0.05);
        assert!((counts[2] as f64 / 10_000.0 - 0.2).abs() < 0.05);
        assert!(counts[3] < 50);
    }

    #[test]
    fn apply_ops_keeps_sheet_valid() {
        let mut sheet = SparseSheet::new();
        for r in 0..10 {
            for c in 0..4 {
                sheet.set_value(CellAddr::new(r, c), 1i64);
            }
        }
        let mix = OpMix::default();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let op = mix.sample(&sheet, &mut rng);
            apply_op(&mut sheet, op, &mut rng);
        }
        assert!(sheet.filled_count() > 0);
        assert!(sheet.bounding_box().is_some());
    }

    #[test]
    fn add_row_fills_interior_gap() {
        let mut sheet = SparseSheet::new();
        for r in 0..5 {
            sheet.set_value(CellAddr::new(r, 0), r as i64);
        }
        let mut rng = StdRng::seed_from_u64(1);
        apply_op(&mut sheet, UserOp::AddRow(2), &mut rng);
        assert!(
            sheet.get(CellAddr::new(2, 0)).is_some(),
            "interior row insert is populated"
        );
    }
}
