//! Retail customer-management data (paper Example 2, Figure 19).
//!
//! The small-business owner's MySQL schema: customers, suppliers, invoices,
//! and payments. Used by the `customer_management` example and the
//! qualitative evaluation of linkTable + sql().

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataspread_relstore::{ColumnDef, DataType, Database, Datum, Schema, StoreError};

/// Create and populate the retail schema inside `db`:
/// `customer(id, name, city)`, `supp(id, name)`,
/// `invoice(id, supp_id, customer_id, amount, due_in_days, paid)`,
/// `payment(id, invoice_id, amount)`.
pub fn populate_retail(db: &mut Database, n_invoices: usize, seed: u64) -> Result<(), StoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let customers = ["wilde", "poe", "woolf", "kafka", "borges", "morrison"];
    let cities = ["Champaign", "Urbana", "Savoy", "Mahomet"];
    let supps = ["acme", "globex", "initech", "umbrella"];

    let t = db.create_table(
        "customer",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("city", DataType::Text),
        ]),
    )?;
    for (i, name) in customers.iter().enumerate() {
        t.insert(&[
            Datum::Int(i as i64 + 1),
            Datum::Text(name.to_string()),
            Datum::Text(cities[i % cities.len()].to_string()),
        ])?;
    }

    let t = db.create_table(
        "supp",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("name", DataType::Text),
        ]),
    )?;
    for (i, name) in supps.iter().enumerate() {
        t.insert(&[Datum::Int(i as i64 + 1), Datum::Text(name.to_string())])?;
    }

    let t = db.create_table(
        "invoice",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("supp_id", DataType::Int),
            ColumnDef::new("customer_id", DataType::Int),
            ColumnDef::new("amount", DataType::Float),
            ColumnDef::new("due_in_days", DataType::Int),
            ColumnDef::new("paid", DataType::Bool),
        ]),
    )?;
    for i in 0..n_invoices {
        t.insert(&[
            Datum::Int(i as i64 + 1),
            Datum::Int(rng.gen_range(1..=supps.len() as i64)),
            Datum::Int(rng.gen_range(1..=customers.len() as i64)),
            Datum::Float((rng.gen_range(10.0..5_000.0f64) * 100.0).round() / 100.0),
            Datum::Int(rng.gen_range(-30..60)),
            Datum::Bool(rng.gen_bool(0.7)),
        ])?;
    }

    let invoice_rows: Vec<(i64, f64, bool)> = db
        .table("invoice")?
        .scan()
        .map(|(_, row)| {
            (
                row[0].as_i64().expect("id"),
                row[3].as_f64().expect("amount"),
                row[5].as_bool().expect("paid"),
            )
        })
        .collect();
    let t = db.create_table(
        "payment",
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("invoice_id", DataType::Int),
            ColumnDef::new("amount", DataType::Float),
        ]),
    )?;
    let mut pid = 1i64;
    for (inv_id, amount, paid) in invoice_rows {
        if paid {
            t.insert(&[Datum::Int(pid), Datum::Int(inv_id), Datum::Float(amount)])?;
            pid += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populates_consistent_schema() {
        let mut db = Database::new();
        populate_retail(&mut db, 50, 7).unwrap();
        assert_eq!(db.table("customer").unwrap().row_count(), 6);
        assert_eq!(db.table("supp").unwrap().row_count(), 4);
        assert_eq!(db.table("invoice").unwrap().row_count(), 50);
        let paid = db
            .table("invoice")
            .unwrap()
            .scan()
            .filter(|(_, r)| r[5] == Datum::Bool(true))
            .count() as u64;
        assert_eq!(db.table("payment").unwrap().row_count(), paid);
    }

    #[test]
    fn deterministic() {
        let mut a = Database::new();
        populate_retail(&mut a, 20, 3).unwrap();
        let mut b = Database::new();
        populate_retail(&mut b, 20, 3).unwrap();
        let rows = |db: &Database| -> Vec<Vec<Datum>> {
            db.table("invoice")
                .unwrap()
                .scan()
                .map(|(_, r)| r)
                .collect()
        };
        assert_eq!(rows(&a), rows(&b));
    }
}
