//! Large synthetic sheets (paper §VII-B.e and §VII-C).
//!
//! * [`dense_sheet`] — a fully filled `rows × cols` region, the positional
//!   mapping workload of Figure 18 and Figures 22–24.
//! * [`multi_table_sheet`] — "twenty dense rectangular regions to simulate
//!   randomly placed tables … 100 randomly generated formulae that access
//!   rectangular ranges of these tables" (Figure 17), with a density knob.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataspread_grid::{Cell, CellAddr, Rect, SparseSheet};

/// A synthetic sheet plus its placed tables and formula cells.
#[derive(Debug, Clone)]
pub struct SynthSheet {
    pub sheet: SparseSheet,
    pub tables: Vec<Rect>,
    /// Addresses of the generated formulas.
    pub formulas: Vec<CellAddr>,
}

/// Fully dense `rows × cols` sheet with integer payloads.
pub fn dense_sheet(rows: u32, cols: u32) -> SparseSheet {
    let mut s = SparseSheet::new();
    for r in 0..rows {
        for c in 0..cols {
            s.set_value(CellAddr::new(r, c), (r as i64) * cols as i64 + c as i64);
        }
    }
    s
}

/// Multi-table synthetic sheet.
///
/// Places `n_tables` dense regions of about `table_rows × table_cols` on a
/// canvas sized so that the overall bounding-box density is approximately
/// `density`, then adds `n_formulas` range formulas over random tables.
pub fn multi_table_sheet(
    n_tables: u32,
    table_rows: u32,
    table_cols: u32,
    density: f64,
    n_formulas: u32,
    seed: u64,
) -> SynthSheet {
    assert!(density > 0.0 && density <= 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    // Slot-grid placement: tables live in a jittered grid of slots whose
    // size is scaled so the overall bounding-box density lands near the
    // target. Rejection sampling fails at high densities; this always
    // places all `n_tables`.
    let scale = (1.0 / density).sqrt();
    let slot_rows = ((table_rows as f64) * scale).ceil() as u32;
    let slot_cols = ((table_cols as f64) * scale).ceil() as u32;
    let grid_cols = (n_tables as f64).sqrt().ceil() as u32;
    let grid_rows = n_tables.div_ceil(grid_cols);

    let mut sheet = SparseSheet::new();
    let mut tables = Vec::new();
    'place: for gr in 0..grid_rows {
        for gc in 0..grid_cols {
            if tables.len() as u32 >= n_tables {
                break 'place;
            }
            let jr = rng.gen_range(0..=(slot_rows - table_rows));
            let jc = rng.gen_range(0..=(slot_cols - table_cols));
            let r0 = gr * slot_rows + jr;
            let c0 = gc * slot_cols + jc;
            let rect = Rect::new(r0, c0, r0 + table_rows - 1, c0 + table_cols - 1);
            for addr in rect.iter() {
                sheet.set_value(addr, rng.gen_range(0..1_000_000) as i64);
            }
            tables.push(rect);
        }
    }
    let canvas_cols = grid_cols * slot_cols;
    let mut formulas = Vec::new();
    if !tables.is_empty() {
        // Formulas draw from their own stream so the *workload* is
        // comparable across density settings (placement consumes a
        // density-dependent amount of randomness).
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF0F0_F0F0);
        for i in 0..n_formulas {
            let t = tables[rng.gen_range(0..tables.len())];
            // A random rectangular sub-range of the table.
            let r1 = rng.gen_range(t.r1..=t.r2);
            let r2 = rng.gen_range(r1..=t.r2);
            let c1 = rng.gen_range(t.c1..=t.c2);
            let c2 = rng.gen_range(c1..=t.c2);
            let range = Rect::new(r1, c1, r2, c2);
            let func = ["SUM", "AVERAGE", "COUNT", "MIN", "MAX"][rng.gen_range(0..5)];
            // Formulas live in a column strip right of the canvas so they
            // never collide with tables.
            let addr = CellAddr::new(i, canvas_cols + 2);
            sheet.set(addr, Cell::formula(format!("{func}({})", range.to_a1())));
            formulas.push(addr);
        }
    }
    SynthSheet {
        sheet,
        tables,
        formulas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_sheet_is_dense() {
        let s = dense_sheet(20, 10);
        assert_eq!(s.filled_count(), 200);
        assert_eq!(s.density(), 1.0);
    }

    #[test]
    fn multi_table_hits_density_target() {
        for target in [0.8, 0.4, 0.1] {
            let synth = multi_table_sheet(20, 20, 10, target, 0, 5);
            assert_eq!(
                synth.tables.len(),
                20,
                "all tables placed at density {target}"
            );
            let d = synth.sheet.density();
            assert!(d > target * 0.5 && d <= 1.0, "target {target}, got {d}");
        }
    }

    #[test]
    fn formulas_reference_tables_and_parse() {
        let synth = multi_table_sheet(5, 10, 5, 0.5, 30, 11);
        assert_eq!(synth.formulas.len(), 30);
        for addr in &synth.formulas {
            let cell = synth.sheet.get(*addr).expect("formula cell exists");
            let src = cell.formula.as_ref().expect("is a formula");
            let expr = dataspread_formula::parse(src).expect("parses");
            let ranges = dataspread_formula::refs::collect_ranges(&expr);
            assert_eq!(ranges.len(), 1);
            assert!(
                synth.tables.iter().any(|t| t.contains_rect(&ranges[0])),
                "range {} inside some table",
                ranges[0]
            );
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = multi_table_sheet(5, 8, 4, 0.6, 10, 3);
        let b = multi_table_sheet(5, 8, 4, 0.6, 10, 3);
        assert_eq!(a.sheet, b.sheet);
    }
}
