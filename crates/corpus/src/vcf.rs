//! VCF-like genomics data (paper Example 1, Figure 16).
//!
//! The paper's collaborators work with variant-call-format files of
//! ~1.3M rows × 284 columns. We generate rows with the same shape: the
//! eight fixed VCF columns plus FORMAT and per-sample genotype columns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataspread_grid::CellValue;

/// Column headers for a VCF-like table with `n_samples` genotype columns.
pub fn vcf_header(n_samples: usize) -> Vec<String> {
    let mut h: Vec<String> = [
        "CHROM", "POS", "ID", "REF", "ALT", "QUAL", "FILTER", "INFO", "FORMAT",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for i in 0..n_samples {
        h.push(format!("SAMPLE_{i:04}"));
    }
    h
}

/// An iterator of VCF-like rows (deterministic per seed). Each row has
/// `9 + n_samples` values.
pub fn vcf_rows(
    n_rows: usize,
    n_samples: usize,
    seed: u64,
) -> impl Iterator<Item = Vec<CellValue>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bases = ["A", "C", "G", "T"];
    let genotypes = ["0/0", "0/1", "1/1", "./."];
    (0..n_rows).map(move |i| {
        let mut row: Vec<CellValue> = Vec::with_capacity(9 + n_samples);
        row.push(CellValue::Text(format!("chr{}", 1 + (i % 22))));
        row.push(CellValue::Number((10_000 + i * 137) as f64));
        row.push(CellValue::Text(format!("rs{}", 100_000 + i)));
        row.push(CellValue::Text(bases[rng.gen_range(0..4)].to_string()));
        row.push(CellValue::Text(bases[rng.gen_range(0..4)].to_string()));
        row.push(CellValue::Number(
            (rng.gen_range(10.0..99.0f64) * 10.0).round() / 10.0,
        ));
        row.push(CellValue::Text("PASS".to_string()));
        row.push(CellValue::Text(format!(
            "DP={};AF={:.3}",
            rng.gen_range(5..500),
            rng.gen_range(0.0..1.0f64)
        )));
        row.push(CellValue::Text("GT".to_string()));
        for _ in 0..n_samples {
            row.push(CellValue::Text(genotypes[rng.gen_range(0..4)].to_string()));
        }
        row
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_shape() {
        let h = vcf_header(3);
        assert_eq!(h.len(), 12);
        assert_eq!(h[0], "CHROM");
        assert_eq!(h[9], "SAMPLE_0000");
    }

    #[test]
    fn rows_have_fixed_arity_and_are_deterministic() {
        let rows: Vec<_> = vcf_rows(100, 5, 1).collect();
        assert_eq!(rows.len(), 100);
        assert!(rows.iter().all(|r| r.len() == 14));
        let again: Vec<_> = vcf_rows(100, 5, 1).collect();
        assert_eq!(rows, again);
        // Position column is monotonically increasing.
        let pos = |r: &Vec<CellValue>| match &r[1] {
            CellValue::Number(n) => *n,
            _ => panic!("POS must be numeric"),
        };
        assert!(rows.windows(2).all(|w| pos(&w[0]) < pos(&w[1])));
    }
}
