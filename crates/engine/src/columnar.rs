//! Columnar compressed region storage — the third physical layout
//! (ROADMAP item 3, post-paper).
//!
//! A [`ColumnarTranslator`] stores its region as per-column typed arrays:
//! run-length-encoded *tag runs* (null / number / bool / text / error)
//! carry the row structure, and each tag's payload lives in a dense typed
//! store — numbers in an `f64` array or a bit-packed integer array, bools
//! in a bitmap, strings as codes into a per-column dictionary (themselves
//! RLE'd when repetitive), errors as code bytes. Formulas are sparse
//! (`row → source`), since large imported regions hold almost none.
//!
//! Writes go to a small sorted overlay checked before the base columns;
//! past a threshold the overlay compacts back into the affected columns.
//! That keeps the layout honest for *read-mostly* — not read-only —
//! regions: point edits stay O(log overlay), scans stay columnar.
//!
//! The byte encoding (via `relstore::codec`) is the checkpoint payload
//! itself: [`ColumnarTranslator::to_bytes`] / [`ColumnarTranslator::from_bytes`]
//! round-trip byte-identically, so v2 images store the compressed pages
//! directly and recovery restores a region without per-cell replay.

use std::collections::{BTreeMap, HashMap};

use dataspread_grid::value::CellError;
use dataspread_grid::{Cell, CellAddr, CellValue, Rect};
use dataspread_hybrid::ModelKind;
use dataspread_relstore::{codec, StoreError};

use crate::error::EngineError;
use crate::translator::Translator;

/// Overlay entries before the next write compacts them into the columns.
const OVERLAY_COMPACT: usize = 4096;

const TAG_NULL: u8 = 0;
const TAG_NUM: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_ERR: u8 = 4;

const ENC_VERSION: u8 = 1;

fn error_code(e: CellError) -> u8 {
    match e {
        CellError::Div0 => 0,
        CellError::Value => 1,
        CellError::Ref => 2,
        CellError::Name => 3,
        CellError::Na => 4,
        CellError::Num => 5,
        CellError::Circular => 6,
    }
}

fn code_error(c: u8) -> Result<CellError, StoreError> {
    Ok(match c {
        0 => CellError::Div0,
        1 => CellError::Value,
        2 => CellError::Ref,
        3 => CellError::Name,
        4 => CellError::Na,
        5 => CellError::Num,
        6 => CellError::Circular,
        _ => return Err(codec::corrupt(format!("unknown error code {c}"))),
    })
}

/// Borrowed view of one cell's value during a columnar scan — what the
/// window emitter and aggregate fast path consume without materializing
/// [`Cell`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScanValue<'a> {
    Empty,
    Number(f64),
    Bool(bool),
    Text(&'a str),
    Error(CellError),
}

impl ScanValue<'_> {
    /// Materialize into an owned [`CellValue`] (texts clone).
    pub fn to_value(self) -> CellValue {
        match self {
            ScanValue::Empty => CellValue::Empty,
            ScanValue::Number(n) => CellValue::Number(n),
            ScanValue::Bool(b) => CellValue::Bool(b),
            ScanValue::Text(s) => CellValue::Text(s.to_string()),
            ScanValue::Error(e) => CellValue::Error(e),
        }
    }

    fn of(v: &CellValue) -> ScanValue<'_> {
        match v {
            CellValue::Empty => ScanValue::Empty,
            CellValue::Number(n) => ScanValue::Number(*n),
            CellValue::Bool(b) => ScanValue::Bool(*b),
            CellValue::Text(s) => ScanValue::Text(s),
            CellValue::Error(e) => ScanValue::Error(*e),
        }
    }
}

/// Result of the single-column aggregate fast path: the exact sequential
/// row-order folds the evaluator would have produced cell-by-cell.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ColumnAgg {
    /// `acc = acc + n` over `Number` values in row order from `0.0` —
    /// bit-identical to the evaluator's fold.
    pub sum: f64,
    /// Count of `Number` values.
    pub numbers: u64,
    /// Count of non-`Empty` values (what `COUNTA` sees).
    pub nonempty: u64,
    /// First `Error` value in row order; when set, the scan stopped there
    /// (the evaluator aborts on the first error).
    pub error: Option<CellError>,
}

impl From<ColumnAgg> for dataspread_formula::RangeAgg {
    fn from(agg: ColumnAgg) -> Self {
        dataspread_formula::RangeAgg {
            sum: agg.sum,
            numbers: agg.numbers,
            nonempty: agg.nonempty,
            error: agg.error,
        }
    }
}

// ------------------------------------------------------------ tag runs --

/// One run of same-tagged rows. `start_row`/`start_idx` are derived (not
/// encoded): the row the run begins at, and the offset of its first value
/// in the tag's typed store.
#[derive(Debug, Clone, Copy)]
struct Run {
    tag: u8,
    len: u32,
    start_row: u32,
    start_idx: u32,
}

// ------------------------------------------------------- typed stores --

/// Number storage: raw doubles, or bit-packed offsets from a minimum when
/// every value in the column is exactly an integer (`bits == 0` encodes a
/// constant column with no payload words at all).
#[derive(Debug, Clone, PartialEq)]
enum NumStore {
    F64(Vec<f64>),
    Packed {
        min: i64,
        bits: u8,
        len: u32,
        words: Vec<u64>,
    },
}

impl NumStore {
    fn len(&self) -> u32 {
        match self {
            NumStore::F64(v) => v.len() as u32,
            NumStore::Packed { len, .. } => *len,
        }
    }

    fn get(&self, i: u32) -> f64 {
        match self {
            NumStore::F64(v) => v[i as usize],
            NumStore::Packed {
                min, bits, words, ..
            } => {
                if *bits == 0 {
                    return *min as f64;
                }
                let bit = i as u64 * *bits as u64;
                let word = (bit / 64) as usize;
                let off = (bit % 64) as u32;
                let mut raw = words[word] >> off;
                if off + *bits as u32 > 64 {
                    raw |= words[word + 1] << (64 - off);
                }
                let mask = (1u64 << *bits) - 1;
                (min + (raw & mask) as i64) as f64
            }
        }
    }

    fn bytes(&self) -> u64 {
        match self {
            NumStore::F64(v) => 8 * v.len() as u64,
            NumStore::Packed { words, .. } => 16 + 8 * words.len() as u64,
        }
    }

    /// Canonical build: pack when every value is exactly an integer whose
    /// magnitude is exact in `f64` (excluding `-0.0`, whose sign bit the
    /// packed form cannot keep).
    fn build(vals: Vec<f64>) -> NumStore {
        let packable = !vals.is_empty()
            && vals.iter().all(|&v| {
                v.is_finite()
                    && v == v.trunc()
                    && v.abs() <= 9e15
                    && v.to_bits() != (-0.0f64).to_bits()
            });
        if !packable {
            return NumStore::F64(vals);
        }
        let ints: Vec<i64> = vals.iter().map(|&v| v as i64).collect();
        let min = *ints.iter().min().expect("non-empty");
        let max = *ints.iter().max().expect("non-empty");
        let width = (max - min) as u64;
        let bits = (64 - width.leading_zeros()) as u8;
        let len = ints.len() as u32;
        if bits == 0 {
            return NumStore::Packed {
                min,
                bits,
                len,
                words: Vec::new(),
            };
        }
        let n_words = ((len as u64 * bits as u64).div_ceil(64)) as usize;
        let mut words = vec![0u64; n_words];
        for (i, &v) in ints.iter().enumerate() {
            let raw = (v - min) as u64;
            let bit = i as u64 * bits as u64;
            let word = (bit / 64) as usize;
            let off = (bit % 64) as u32;
            words[word] |= raw << off;
            if off + bits as u32 > 64 {
                words[word + 1] |= raw >> (64 - off);
            }
        }
        NumStore::Packed {
            min,
            bits,
            len,
            words,
        }
    }
}

/// Bool storage: a bitmap.
#[derive(Debug, Clone, Default, PartialEq)]
struct Bits {
    words: Vec<u64>,
    len: u32,
}

impl Bits {
    fn push(&mut self, b: bool) {
        let i = self.len as usize;
        if i / 64 >= self.words.len() {
            self.words.push(0);
        }
        if b {
            self.words[i / 64] |= 1 << (i % 64);
        }
        self.len += 1;
    }

    fn get(&self, i: u32) -> bool {
        (self.words[i as usize / 64] >> (i % 64)) & 1 == 1
    }
}

/// Dictionary-code storage: plain codes, bit-packed codes sized to the
/// dictionary (a 4-entry dictionary needs 2 bits per cell, not 32), or
/// RLE runs. The canonical rule is byte-driven: the smallest payload
/// wins, RLE preferred on a strict win, then packing.
#[derive(Debug, Clone, PartialEq)]
enum CodeStore {
    Plain(Vec<u32>),
    Packed {
        bits: u8,
        len: u32,
        words: Vec<u64>,
    },
    Rle {
        runs: Vec<(u32, u32)>,
        /// Cumulative end offsets of `runs` for O(log) random access
        /// (derived, not encoded).
        ends: Vec<u32>,
    },
}

impl CodeStore {
    fn len(&self) -> u32 {
        match self {
            CodeStore::Plain(v) => v.len() as u32,
            CodeStore::Packed { len, .. } => *len,
            CodeStore::Rle { ends, .. } => ends.last().copied().unwrap_or(0),
        }
    }

    fn get(&self, i: u32) -> u32 {
        match self {
            CodeStore::Plain(v) => v[i as usize],
            CodeStore::Packed { bits, words, .. } => {
                if *bits == 0 {
                    return 0;
                }
                let bit = i as u64 * *bits as u64;
                let word = (bit / 64) as usize;
                let off = (bit % 64) as u32;
                let mut raw = words[word] >> off;
                if off + *bits as u32 > 64 {
                    raw |= words[word + 1] << (64 - off);
                }
                (raw & ((1u64 << *bits) - 1)) as u32
            }
            CodeStore::Rle { runs, ends } => {
                let k = ends.partition_point(|&e| e <= i);
                runs[k].0
            }
        }
    }

    fn bytes(&self) -> u64 {
        match self {
            CodeStore::Plain(v) => 4 * v.len() as u64,
            CodeStore::Packed { words, .. } => 8 + 8 * words.len() as u64,
            CodeStore::Rle { runs, .. } => 8 * runs.len() as u64,
        }
    }

    fn build(codes: Vec<u32>) -> CodeStore {
        if codes.is_empty() {
            return CodeStore::Plain(codes);
        }
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for &c in &codes {
            match runs.last_mut() {
                Some((code, len)) if *code == c => *len += 1,
                _ => runs.push((c, 1)),
            }
        }
        let max = *codes.iter().max().expect("non-empty");
        let bits = (32 - max.leading_zeros()) as u8;
        let packed_bytes = 8 * (codes.len() as u64 * bits as u64).div_ceil(64);
        let rle_bytes = 8 * runs.len() as u64;
        let plain_bytes = 4 * codes.len() as u64;
        if rle_bytes < packed_bytes.min(plain_bytes) {
            let mut ends = Vec::with_capacity(runs.len());
            let mut acc = 0u32;
            for &(_, len) in &runs {
                acc += len;
                ends.push(acc);
            }
            CodeStore::Rle { runs, ends }
        } else if packed_bytes < plain_bytes {
            let len = codes.len() as u32;
            let n_words = (len as u64 * bits as u64).div_ceil(64) as usize;
            let mut words = vec![0u64; n_words];
            if bits > 0 {
                for (i, &c) in codes.iter().enumerate() {
                    let bit = i as u64 * bits as u64;
                    let word = (bit / 64) as usize;
                    let off = (bit % 64) as u32;
                    words[word] |= (c as u64) << off;
                    if off + bits as u32 > 64 {
                        words[word + 1] |= (c as u64) >> (64 - off);
                    }
                }
            }
            CodeStore::Packed { bits, len, words }
        } else {
            CodeStore::Plain(codes)
        }
    }
}

// ------------------------------------------------------------- column --

#[derive(Debug, Clone)]
struct Column {
    runs: Vec<Run>,
    nums: NumStore,
    bools: Bits,
    dict: Vec<String>,
    codes: CodeStore,
    errors: Vec<u8>,
    /// Sparse formula sources by row.
    formulas: BTreeMap<u32, String>,
}

impl Column {
    fn empty(rows: u32) -> Column {
        let runs = if rows == 0 {
            Vec::new()
        } else {
            vec![Run {
                tag: TAG_NULL,
                len: rows,
                start_row: 0,
                start_idx: 0,
            }]
        };
        Column {
            runs,
            nums: NumStore::F64(Vec::new()),
            bools: Bits::default(),
            dict: Vec::new(),
            codes: CodeStore::Plain(Vec::new()),
            errors: Vec::new(),
            formulas: BTreeMap::new(),
        }
    }

    fn rows(&self) -> u32 {
        self.runs.last().map_or(0, |r| r.start_row + r.len)
    }

    /// Recompute the derived `start_row`/`start_idx` fields from the
    /// `(tag, len)` sequence.
    fn reindex(&mut self) {
        let mut row = 0u32;
        let mut idx = [0u32; 5];
        for run in &mut self.runs {
            run.start_row = row;
            run.start_idx = idx[run.tag as usize];
            row += run.len;
            idx[run.tag as usize] += run.len;
        }
    }

    fn run_at(&self, row: u32) -> usize {
        debug_assert!(row < self.rows());
        self.runs.partition_point(|r| r.start_row + r.len <= row)
    }

    /// The value at `row` from the base columns (overlay not consulted).
    fn base_value(&self, row: u32) -> ScanValue<'_> {
        let run = &self.runs[self.run_at(row)];
        let i = run.start_idx + (row - run.start_row);
        match run.tag {
            TAG_NULL => ScanValue::Empty,
            TAG_NUM => ScanValue::Number(self.nums.get(i)),
            TAG_BOOL => ScanValue::Bool(self.bools.get(i)),
            TAG_TEXT => ScanValue::Text(&self.dict[self.codes.get(i) as usize]),
            _ => ScanValue::Error(code_error(self.errors[i as usize]).expect("validated on build")),
        }
    }

    /// Visit `r1..=r2` in row order without per-row binary searches.
    fn for_each_base<'a>(&'a self, r1: u32, r2: u32, mut f: impl FnMut(u32, ScanValue<'a>)) {
        if self.rows() == 0 || r1 > r2 || r1 >= self.rows() {
            return;
        }
        let r2 = r2.min(self.rows() - 1);
        let mut k = self.run_at(r1);
        let mut row = r1;
        while row <= r2 {
            let run = &self.runs[k];
            let end = (run.start_row + run.len - 1).min(r2);
            let mut i = run.start_idx + (row - run.start_row);
            while row <= end {
                let v = match run.tag {
                    TAG_NULL => ScanValue::Empty,
                    TAG_NUM => ScanValue::Number(self.nums.get(i)),
                    TAG_BOOL => ScanValue::Bool(self.bools.get(i)),
                    TAG_TEXT => ScanValue::Text(&self.dict[self.codes.get(i) as usize]),
                    _ => ScanValue::Error(
                        code_error(self.errors[i as usize]).expect("validated on build"),
                    ),
                };
                f(row, v);
                row += 1;
                i += 1;
            }
            k += 1;
        }
    }

    /// Non-blank cells counted from the base alone.
    fn base_filled(&self) -> u64 {
        let mut filled: u64 = self
            .runs
            .iter()
            .filter(|r| r.tag != TAG_NULL)
            .map(|r| r.len as u64)
            .sum();
        // Formula cells whose value is empty are still non-blank.
        filled += self
            .formulas
            .keys()
            .filter(|&&row| self.runs[self.run_at(row)].tag == TAG_NULL)
            .count() as u64;
        filled
    }

    fn resident_bytes(&self) -> u64 {
        9 * self.runs.len() as u64
            + self.nums.bytes()
            + 8 * self.bools.words.len() as u64
            + self.dict.iter().map(|s| 4 + s.len() as u64).sum::<u64>()
            + self.codes.bytes()
            + self.errors.len() as u64
            + self
                .formulas
                .values()
                .map(|s| 8 + s.len() as u64)
                .sum::<u64>()
    }
}

/// Streaming column builder: push cells in row order, then `finish`.
struct ColumnBuilder {
    runs: Vec<(u8, u32)>,
    nums: Vec<f64>,
    bools: Bits,
    dict: Vec<String>,
    lookup: HashMap<String, u32>,
    codes: Vec<u32>,
    errors: Vec<u8>,
    formulas: BTreeMap<u32, String>,
    row: u32,
}

impl ColumnBuilder {
    fn new() -> ColumnBuilder {
        ColumnBuilder {
            runs: Vec::new(),
            nums: Vec::new(),
            bools: Bits::default(),
            dict: Vec::new(),
            lookup: HashMap::new(),
            codes: Vec::new(),
            errors: Vec::new(),
            formulas: BTreeMap::new(),
            row: 0,
        }
    }

    fn push_tag(&mut self, tag: u8) {
        match self.runs.last_mut() {
            Some((t, len)) if *t == tag => *len += 1,
            _ => self.runs.push((tag, 1)),
        }
        self.row += 1;
    }

    fn push(&mut self, value: ScanValue<'_>, formula: Option<&str>) {
        if let Some(src) = formula {
            self.formulas.insert(self.row, src.to_string());
        }
        match value {
            ScanValue::Empty => self.push_tag(TAG_NULL),
            ScanValue::Number(n) => {
                self.nums.push(n);
                self.push_tag(TAG_NUM);
            }
            ScanValue::Bool(b) => {
                self.bools.push(b);
                self.push_tag(TAG_BOOL);
            }
            ScanValue::Text(s) => {
                let code = match self.lookup.get(s) {
                    Some(&c) => c,
                    None => {
                        let c = self.dict.len() as u32;
                        self.dict.push(s.to_string());
                        self.lookup.insert(s.to_string(), c);
                        c
                    }
                };
                self.codes.push(code);
                self.push_tag(TAG_TEXT);
            }
            ScanValue::Error(e) => {
                self.errors.push(error_code(e));
                self.push_tag(TAG_ERR);
            }
        }
    }

    fn push_cell(&mut self, cell: Option<&Cell>) {
        match cell {
            Some(c) => self.push(ScanValue::of(&c.value), c.formula.as_deref()),
            None => self.push(ScanValue::Empty, None),
        }
    }

    fn finish(self) -> Column {
        let mut col = Column {
            runs: self
                .runs
                .into_iter()
                .map(|(tag, len)| Run {
                    tag,
                    len,
                    start_row: 0,
                    start_idx: 0,
                })
                .collect(),
            nums: NumStore::build(self.nums),
            bools: self.bools,
            dict: self.dict,
            codes: CodeStore::build(self.codes),
            errors: self.errors,
            formulas: self.formulas,
        };
        col.reindex();
        col
    }
}

// --------------------------------------------------------- translator --

/// Columnar compressed storage for one region.
pub struct ColumnarTranslator {
    rows: u32,
    columns: Vec<Column>,
    /// Sorted write overlay keyed `(col, row)` (column-major so column
    /// scans can range over it); a blank [`Cell`] entry masks the base
    /// cell as deleted.
    overlay: BTreeMap<(u32, u32), Cell>,
    overlay_limit: usize,
}

impl std::fmt::Debug for ColumnarTranslator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnarTranslator")
            .field("rows", &self.rows)
            .field("cols", &self.columns.len())
            .field("overlay", &self.overlay.len())
            .field("resident_bytes", &self.resident_bytes())
            .finish()
    }
}

impl ColumnarTranslator {
    /// An empty region of the given extent.
    pub fn new(rows: u32, cols: u32) -> ColumnarTranslator {
        ColumnarTranslator {
            rows,
            columns: (0..cols).map(|_| Column::empty(rows)).collect(),
            overlay: BTreeMap::new(),
            overlay_limit: OVERLAY_COMPACT,
        }
    }

    /// Bulk-build from rows of cells (the import / migration fast path):
    /// `width` columns, one `Vec<Cell>` per row (short rows pad with
    /// blanks).
    pub fn bulk_load_rows(
        width: u32,
        rows: impl IntoIterator<Item = Vec<Cell>>,
    ) -> ColumnarTranslator {
        let mut builders: Vec<ColumnBuilder> = (0..width).map(|_| ColumnBuilder::new()).collect();
        let mut n_rows = 0u32;
        for row in rows {
            for (c, b) in builders.iter_mut().enumerate() {
                b.push_cell(row.get(c));
            }
            n_rows += 1;
        }
        ColumnarTranslator {
            rows: n_rows,
            columns: builders.into_iter().map(ColumnBuilder::finish).collect(),
            overlay: BTreeMap::new(),
            overlay_limit: OVERLAY_COMPACT,
        }
    }

    /// Build from unordered `(local addr, cell)` pairs over a fixed extent
    /// (the migration path from another translator).
    pub fn from_cells(
        rows: u32,
        cols: u32,
        cells: impl IntoIterator<Item = (CellAddr, Cell)>,
    ) -> ColumnarTranslator {
        let mut by_col: Vec<BTreeMap<u32, Cell>> = (0..cols).map(|_| BTreeMap::new()).collect();
        let mut rows = rows;
        for (addr, cell) in cells {
            rows = rows.max(addr.row + 1);
            if let Some(m) = by_col.get_mut(addr.col as usize) {
                m.insert(addr.row, cell);
            }
        }
        let columns = by_col
            .into_iter()
            .map(|m| {
                let mut b = ColumnBuilder::new();
                for row in 0..rows {
                    b.push_cell(m.get(&row));
                }
                b.finish()
            })
            .collect();
        ColumnarTranslator {
            rows,
            columns,
            overlay: BTreeMap::new(),
            overlay_limit: OVERLAY_COMPACT,
        }
    }

    /// Cap the write overlay before compaction (tests exercise small
    /// thresholds; the default is [`OVERLAY_COMPACT`]).
    #[doc(hidden)]
    pub fn set_overlay_limit(&mut self, n: usize) {
        self.overlay_limit = n.max(1);
    }

    /// Overlay entries currently pending compaction.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    fn ensure_extent(&mut self, rows: u32, cols: u32) {
        if rows > self.rows {
            let grow = rows - self.rows;
            for col in &mut self.columns {
                match col.runs.last_mut() {
                    Some(run) if run.tag == TAG_NULL => run.len += grow,
                    _ => {
                        let start_row = col.rows();
                        col.runs.push(Run {
                            tag: TAG_NULL,
                            len: grow,
                            start_row,
                            start_idx: 0,
                        });
                        col.reindex();
                    }
                }
            }
            self.rows = rows;
        }
        while (self.columns.len() as u32) < cols {
            self.columns.push(Column::empty(self.rows));
        }
    }

    /// The effective (overlay-merged) value reference at a position.
    fn effective(&self, row: u32, col: u32) -> Option<Cell> {
        if let Some(cell) = self.overlay.get(&(col, row)) {
            return if cell.is_blank() {
                None
            } else {
                Some(cell.clone())
            };
        }
        let c = self.columns.get(col as usize)?;
        if row >= c.rows() {
            return None;
        }
        let value = c.base_value(row).to_value();
        let formula = c.formulas.get(&row).cloned();
        if value.is_empty() && formula.is_none() {
            None
        } else {
            Some(Cell { value, formula })
        }
    }

    /// Fold the overlay back into the base columns (rebuilding only the
    /// columns that have overlay entries), leaving the overlay empty.
    pub fn compact(&mut self) {
        if self.overlay.is_empty() {
            return;
        }
        let overlay = std::mem::take(&mut self.overlay);
        let mut per_col: BTreeMap<u32, BTreeMap<u32, Cell>> = BTreeMap::new();
        for ((col, row), cell) in overlay {
            per_col.entry(col).or_default().insert(row, cell);
        }
        for (col, edits) in per_col {
            let Some(old) = self.columns.get(col as usize) else {
                continue;
            };
            let mut b = ColumnBuilder::new();
            let rows = self.rows;
            let mut edit_iter = edits.iter().peekable();
            let mut push_row = |b: &mut ColumnBuilder, row: u32, v: ScanValue<'_>| {
                if let Some((_, cell)) = edit_iter.next_if(|(&r, _)| r == row) {
                    b.push(ScanValue::of(&cell.value), cell.formula.as_deref());
                } else {
                    b.push(v, old.formulas.get(&row).map(String::as_str));
                }
            };
            if old.rows() == 0 {
                for row in 0..rows {
                    push_row(&mut b, row, ScanValue::Empty);
                }
            } else {
                old.for_each_base(0, rows - 1, |row, v| push_row(&mut b, row, v));
            }
            self.columns[col as usize] = b.finish();
        }
    }

    /// Rebuild every column from an edit on the row axis: `keep` maps an
    /// old row to its new row (`None` = dropped), `new_rows` is the new
    /// extent, and rows not produced by `keep` come out blank.
    fn rebuild_rows(&mut self, new_rows: u32, keep: impl Fn(u32) -> Option<u32>) {
        self.compact();
        let old_rows = self.rows;
        self.columns = self
            .columns
            .iter()
            .map(|old| {
                let mut kept: BTreeMap<u32, (ScanValue<'_>, Option<&str>)> = BTreeMap::new();
                if old_rows > 0 {
                    old.for_each_base(0, old_rows - 1, |row, v| {
                        if let Some(new) = keep(row) {
                            kept.insert(new, (v, old.formulas.get(&row).map(String::as_str)));
                        }
                    });
                }
                let mut b = ColumnBuilder::new();
                for row in 0..new_rows {
                    match kept.get(&row) {
                        Some(&(v, f)) => b.push(v, f),
                        None => b.push(ScanValue::Empty, None),
                    }
                }
                b.finish()
            })
            .collect();
        self.rows = new_rows;
    }

    /// Single-column aggregate over local rows `r1..=r2`, overlay-merged,
    /// with the evaluator's exact row-order fold and first-error abort.
    pub fn column_agg(&self, col: u32, r1: u32, r2: u32) -> ColumnAgg {
        let mut agg = ColumnAgg::default();
        let Some(c) = self.columns.get(col as usize) else {
            return agg;
        };
        let mut over = self
            .overlay
            .range((col, r1)..=(col, r2))
            .map(|(&(_, row), cell)| (row, cell))
            .peekable();
        let fold = |agg: &mut ColumnAgg, v: ScanValue<'_>| -> bool {
            match v {
                ScanValue::Empty => {}
                ScanValue::Number(n) => {
                    agg.sum += n;
                    agg.numbers += 1;
                    agg.nonempty += 1;
                }
                ScanValue::Error(e) => {
                    agg.error = Some(e);
                    return false;
                }
                _ => agg.nonempty += 1,
            }
            true
        };
        let r2 = r2.min(self.rows.saturating_sub(1));
        let mut row = r1;
        while row <= r2 {
            // Base runs up to the next overlay edit, then the edit itself.
            let next_edit = over.peek().map(|&(r, _)| r).unwrap_or(r2 + 1);
            if row < next_edit {
                let mut ok = true;
                c.for_each_base(row, next_edit.min(r2 + 1) - 1, |_, v| {
                    if ok {
                        ok = fold(&mut agg, v);
                    }
                });
                if !ok {
                    return agg;
                }
                row = next_edit;
                continue;
            }
            let (_, cell) = over.next().expect("peeked");
            if !fold(&mut agg, ScanValue::of(&cell.value)) {
                return agg;
            }
            row += 1;
        }
        agg
    }

    /// Row-major scan of a local rectangle, overlay-merged, including
    /// empty positions — the window emitter's source. `f` receives
    /// `(local row, local col, value, formula)`.
    pub fn scan_rect(&self, rect: Rect, mut f: impl FnMut(u32, u32, ScanValue<'_>, Option<&str>)) {
        for row in rect.r1..=rect.r2 {
            for col in rect.c1..=rect.c2 {
                if let Some(cell) = self.overlay.get(&(col, row)) {
                    f(
                        row,
                        col,
                        ScanValue::of(&cell.value),
                        cell.formula.as_deref(),
                    );
                    continue;
                }
                match self.columns.get(col as usize) {
                    Some(c) if row < c.rows() => {
                        f(
                            row,
                            col,
                            c.base_value(row),
                            c.formulas.get(&row).map(String::as_str),
                        );
                    }
                    _ => f(row, col, ScanValue::Empty, None),
                }
            }
        }
    }

    /// Visit every formula cell as `(local row, local col, source)` —
    /// overlay-merged (an overlay write without a formula masks the base
    /// formula at that position).
    pub fn for_each_formula(&self, mut f: impl FnMut(u32, u32, &str)) {
        for (c, col) in self.columns.iter().enumerate() {
            for (&row, src) in &col.formulas {
                if !self.overlay.contains_key(&(c as u32, row)) {
                    f(row, c as u32, src);
                }
            }
        }
        for (&(col, row), cell) in &self.overlay {
            if let Some(src) = &cell.formula {
                f(row, col, src);
            }
        }
    }

    // ---------------------------------------------------------- codec --

    /// Canonical byte encoding: the checkpoint payload. Decoding with
    /// [`ColumnarTranslator::from_bytes`] and re-encoding is
    /// byte-identical.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        codec::put_u8(&mut out, ENC_VERSION);
        codec::put_u32(&mut out, self.rows);
        codec::put_u32(&mut out, self.columns.len() as u32);
        for col in &self.columns {
            codec::put_u32(&mut out, col.runs.len() as u32);
            for run in &col.runs {
                codec::put_u8(&mut out, run.tag);
                codec::put_u32(&mut out, run.len);
            }
            match &col.nums {
                NumStore::F64(v) => {
                    codec::put_u8(&mut out, 0);
                    codec::put_u32(&mut out, v.len() as u32);
                    for &n in v {
                        codec::put_f64(&mut out, n);
                    }
                }
                NumStore::Packed {
                    min,
                    bits,
                    len,
                    words,
                } => {
                    codec::put_u8(&mut out, 1);
                    codec::put_u64(&mut out, *min as u64);
                    codec::put_u8(&mut out, *bits);
                    codec::put_u32(&mut out, *len);
                    for &w in words {
                        codec::put_u64(&mut out, w);
                    }
                }
            }
            codec::put_u32(&mut out, col.bools.len);
            for &w in &col.bools.words {
                codec::put_u64(&mut out, w);
            }
            codec::put_u32(&mut out, col.dict.len() as u32);
            for s in &col.dict {
                codec::put_str(&mut out, s);
            }
            match &col.codes {
                CodeStore::Plain(v) => {
                    codec::put_u8(&mut out, 0);
                    codec::put_u32(&mut out, v.len() as u32);
                    for &c in v {
                        codec::put_u32(&mut out, c);
                    }
                }
                CodeStore::Packed { bits, len, words } => {
                    codec::put_u8(&mut out, 2);
                    codec::put_u8(&mut out, *bits);
                    codec::put_u32(&mut out, *len);
                    for &w in words {
                        codec::put_u64(&mut out, w);
                    }
                }
                CodeStore::Rle { runs, .. } => {
                    codec::put_u8(&mut out, 1);
                    codec::put_u32(&mut out, runs.len() as u32);
                    for &(code, len) in runs {
                        codec::put_u32(&mut out, code);
                        codec::put_u32(&mut out, len);
                    }
                }
            }
            codec::put_u32(&mut out, col.errors.len() as u32);
            for &e in &col.errors {
                codec::put_u8(&mut out, e);
            }
            codec::put_u32(&mut out, col.formulas.len() as u32);
            for (&row, src) in &col.formulas {
                codec::put_u32(&mut out, row);
                codec::put_str(&mut out, src);
            }
        }
        codec::put_u32(&mut out, self.overlay.len() as u32);
        for (&(col, row), cell) in &self.overlay {
            codec::put_u32(&mut out, col);
            codec::put_u32(&mut out, row);
            put_cell(&mut out, cell);
        }
        out
    }

    /// Decode a payload produced by [`ColumnarTranslator::to_bytes`],
    /// validating every structural invariant (run extents, payload
    /// lengths, dictionary codes, overlay ordering).
    pub fn from_bytes(bytes: &[u8]) -> Result<ColumnarTranslator, StoreError> {
        let mut r = codec::Reader::new(bytes);
        let version = r.u8()?;
        if version != ENC_VERSION {
            return Err(codec::corrupt(format!(
                "unknown columnar payload version {version}"
            )));
        }
        let rows = r.u32()?;
        let n_cols = r.u32()?;
        if n_cols as u64 > bytes.len() as u64 {
            return Err(codec::corrupt("columnar column count exceeds payload"));
        }
        let mut columns = Vec::with_capacity(n_cols as usize);
        for _ in 0..n_cols {
            columns.push(read_column(&mut r, rows)?);
        }
        let n_overlay = r.u32()?;
        let mut overlay = BTreeMap::new();
        let mut prev: Option<(u32, u32)> = None;
        for _ in 0..n_overlay {
            let col = r.u32()?;
            let row = r.u32()?;
            if row >= rows || col >= n_cols {
                return Err(codec::corrupt("columnar overlay entry out of bounds"));
            }
            let key = (col, row);
            if prev.is_some_and(|p| p >= key) {
                return Err(codec::corrupt("columnar overlay out of order"));
            }
            prev = Some(key);
            overlay.insert(key, read_cell(&mut r)?);
        }
        r.expect_done("columnar region payload")?;
        Ok(ColumnarTranslator {
            rows,
            columns,
            overlay,
            overlay_limit: OVERLAY_COMPACT,
        })
    }
}

fn put_cell(out: &mut Vec<u8>, cell: &Cell) {
    let mut flags = 0u8;
    if cell.formula.is_some() {
        flags |= 1;
    }
    codec::put_u8(out, flags);
    match &cell.value {
        CellValue::Empty => codec::put_u8(out, TAG_NULL),
        CellValue::Number(n) => {
            codec::put_u8(out, TAG_NUM);
            codec::put_f64(out, *n);
        }
        CellValue::Bool(b) => {
            codec::put_u8(out, TAG_BOOL);
            codec::put_u8(out, *b as u8);
        }
        CellValue::Text(s) => {
            codec::put_u8(out, TAG_TEXT);
            codec::put_str(out, s);
        }
        CellValue::Error(e) => {
            codec::put_u8(out, TAG_ERR);
            codec::put_u8(out, error_code(*e));
        }
    }
    if let Some(src) = &cell.formula {
        codec::put_str(out, src);
    }
}

fn read_cell(r: &mut codec::Reader<'_>) -> Result<Cell, StoreError> {
    let flags = r.u8()?;
    if flags > 1 {
        return Err(codec::corrupt(format!("bad cell flags {flags}")));
    }
    let value = match r.u8()? {
        TAG_NULL => CellValue::Empty,
        TAG_NUM => CellValue::Number(r.f64()?),
        TAG_BOOL => CellValue::Bool(r.u8()? != 0),
        TAG_TEXT => CellValue::Text(r.str()?),
        TAG_ERR => CellValue::Error(code_error(r.u8()?)?),
        t => return Err(codec::corrupt(format!("bad value tag {t}"))),
    };
    let formula = if flags & 1 != 0 { Some(r.str()?) } else { None };
    Ok(Cell { value, formula })
}

fn read_column(r: &mut codec::Reader<'_>, rows: u32) -> Result<Column, StoreError> {
    let n_runs = r.u32()?;
    if n_runs as u64 > rows as u64 {
        return Err(codec::corrupt("more runs than rows"));
    }
    let mut runs = Vec::with_capacity(n_runs as usize);
    let mut covered = 0u64;
    let mut counts = [0u64; 5];
    let mut prev_tag: Option<u8> = None;
    for _ in 0..n_runs {
        let tag = r.u8()?;
        let len = r.u32()?;
        if tag > TAG_ERR {
            return Err(codec::corrupt(format!("bad run tag {tag}")));
        }
        if len == 0 {
            return Err(codec::corrupt("empty run"));
        }
        if prev_tag == Some(tag) {
            return Err(codec::corrupt("adjacent runs share a tag"));
        }
        prev_tag = Some(tag);
        covered += len as u64;
        counts[tag as usize] += len as u64;
        runs.push(Run {
            tag,
            len,
            start_row: 0,
            start_idx: 0,
        });
    }
    if covered != rows as u64 {
        return Err(codec::corrupt(format!(
            "runs cover {covered} rows, region has {rows}"
        )));
    }
    let nums = match r.u8()? {
        0 => {
            let n = r.u32()?;
            let mut v = Vec::with_capacity((n as usize).min(1 << 20));
            for _ in 0..n {
                v.push(r.f64()?);
            }
            NumStore::F64(v)
        }
        1 => {
            let min = r.u64()? as i64;
            let bits = r.u8()?;
            let len = r.u32()?;
            if bits > 63 {
                return Err(codec::corrupt(format!("bad pack width {bits}")));
            }
            let n_words = (len as u64 * bits as u64).div_ceil(64) as usize;
            let mut words = Vec::with_capacity(n_words.min(1 << 20));
            for _ in 0..n_words {
                words.push(r.u64()?);
            }
            NumStore::Packed {
                min,
                bits,
                len,
                words,
            }
        }
        t => return Err(codec::corrupt(format!("bad number store variant {t}"))),
    };
    if nums.len() as u64 != counts[TAG_NUM as usize] {
        return Err(codec::corrupt("number payload length mismatch"));
    }
    let bool_len = r.u32()?;
    if bool_len as u64 != counts[TAG_BOOL as usize] {
        return Err(codec::corrupt("bool payload length mismatch"));
    }
    let n_words = (bool_len as u64).div_ceil(64) as usize;
    let mut words = Vec::with_capacity(n_words.min(1 << 20));
    for _ in 0..n_words {
        words.push(r.u64()?);
    }
    let bools = Bits {
        words,
        len: bool_len,
    };
    let n_dict = r.u32()?;
    let mut dict = Vec::with_capacity((n_dict as usize).min(1 << 20));
    for _ in 0..n_dict {
        dict.push(r.str()?);
    }
    let codes = match r.u8()? {
        0 => {
            let n = r.u32()?;
            let mut v = Vec::with_capacity((n as usize).min(1 << 20));
            for _ in 0..n {
                v.push(r.u32()?);
            }
            CodeStore::Plain(v)
        }
        1 => {
            let n = r.u32()?;
            let mut code_runs = Vec::with_capacity((n as usize).min(1 << 20));
            let mut ends = Vec::with_capacity((n as usize).min(1 << 20));
            let mut acc = 0u64;
            for _ in 0..n {
                let code = r.u32()?;
                let len = r.u32()?;
                if len == 0 {
                    return Err(codec::corrupt("empty code run"));
                }
                acc += len as u64;
                if acc > u32::MAX as u64 {
                    return Err(codec::corrupt("code runs overflow"));
                }
                code_runs.push((code, len));
                ends.push(acc as u32);
            }
            CodeStore::Rle {
                runs: code_runs,
                ends,
            }
        }
        2 => {
            let bits = r.u8()?;
            let len = r.u32()?;
            if bits > 32 {
                return Err(codec::corrupt(format!("bad code pack width {bits}")));
            }
            let n_words = (len as u64 * bits as u64).div_ceil(64) as usize;
            let mut words = Vec::with_capacity(n_words.min(1 << 20));
            for _ in 0..n_words {
                words.push(r.u64()?);
            }
            CodeStore::Packed { bits, len, words }
        }
        t => return Err(codec::corrupt(format!("bad code store variant {t}"))),
    };
    if codes.len() as u64 != counts[TAG_TEXT as usize] {
        return Err(codec::corrupt("text code length mismatch"));
    }
    match &codes {
        CodeStore::Plain(v) => {
            if v.iter().any(|&c| c as usize >= dict.len()) {
                return Err(codec::corrupt("dictionary code out of range"));
            }
        }
        CodeStore::Packed { len, .. } => {
            if (0..*len).any(|i| codes.get(i) as usize >= dict.len()) {
                return Err(codec::corrupt("dictionary code out of range"));
            }
        }
        CodeStore::Rle { runs, .. } => {
            if runs.iter().any(|&(c, _)| c as usize >= dict.len()) {
                return Err(codec::corrupt("dictionary code out of range"));
            }
        }
    }
    let n_errors = r.u32()?;
    if n_errors as u64 != counts[TAG_ERR as usize] {
        return Err(codec::corrupt("error payload length mismatch"));
    }
    let mut errors = Vec::with_capacity((n_errors as usize).min(1 << 20));
    for _ in 0..n_errors {
        let e = r.u8()?;
        code_error(e)?;
        errors.push(e);
    }
    let n_formulas = r.u32()?;
    let mut formulas = BTreeMap::new();
    let mut prev_row: Option<u32> = None;
    for _ in 0..n_formulas {
        let row = r.u32()?;
        if row >= rows {
            return Err(codec::corrupt("formula row out of bounds"));
        }
        if prev_row.is_some_and(|p| p >= row) {
            return Err(codec::corrupt("formula rows out of order"));
        }
        prev_row = Some(row);
        formulas.insert(row, r.str()?);
    }
    let mut col = Column {
        runs,
        nums,
        bools,
        dict,
        codes,
        errors,
        formulas,
    };
    col.reindex();
    Ok(col)
}

impl Translator for ColumnarTranslator {
    fn kind(&self) -> ModelKind {
        ModelKind::Columnar
    }

    fn rows(&self) -> u32 {
        self.rows
    }

    fn cols(&self) -> u32 {
        self.columns.len() as u32
    }

    fn get_cell(&self, row: u32, col: u32) -> Option<Cell> {
        self.effective(row, col)
    }

    fn set_cell(&mut self, row: u32, col: u32, cell: Cell) -> Result<(), EngineError> {
        self.ensure_extent(row + 1, col + 1);
        self.overlay.insert((col, row), cell);
        if self.overlay.len() >= self.overlay_limit {
            self.compact();
        }
        Ok(())
    }

    fn clear_cell(&mut self, row: u32, col: u32) -> Result<(), EngineError> {
        if row >= self.rows || col as usize >= self.columns.len() {
            return Ok(());
        }
        let base_blank = {
            let c = &self.columns[col as usize];
            matches!(c.base_value(row), ScanValue::Empty) && !c.formulas.contains_key(&row)
        };
        if base_blank {
            // Nothing underneath: dropping any overlay entry restores blank
            // without growing the overlay.
            self.overlay.remove(&(col, row));
        } else {
            self.overlay.insert((col, row), Cell::default());
            if self.overlay.len() >= self.overlay_limit {
                self.compact();
            }
        }
        Ok(())
    }

    fn get_range(&self, rect: Rect) -> Vec<(CellAddr, Cell)> {
        let mut out = Vec::new();
        if self.rows == 0 || self.columns.is_empty() {
            return out;
        }
        let rect = Rect::new(
            rect.r1,
            rect.c1,
            rect.r2.min(self.rows - 1),
            rect.c2.min(self.columns.len() as u32 - 1),
        );
        if rect.r1 > rect.r2 || rect.c1 > rect.c2 {
            return out;
        }
        self.scan_rect(rect, |row, col, v, formula| {
            let formula = formula.map(str::to_string);
            if matches!(v, ScanValue::Empty) && formula.is_none() {
                return;
            }
            out.push((
                CellAddr::new(row, col),
                Cell {
                    value: v.to_value(),
                    formula,
                },
            ));
        });
        out
    }

    fn insert_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        if n == 0 {
            return Ok(());
        }
        if at >= self.rows {
            self.ensure_extent(at + n, self.columns.len() as u32);
            return Ok(());
        }
        // Cheap splice: nulls carry no payload, so inserting blank rows is
        // a run edit — no store rebuilds. The overlay and formula maps
        // shift their row keys.
        self.compact();
        for col in &mut self.columns {
            let k = col.run_at(at);
            let run = col.runs[k];
            if run.tag == TAG_NULL {
                col.runs[k].len += n;
            } else if run.start_row == at {
                // The predecessor (if any) may itself be a null run —
                // extend it rather than creating an adjacent same-tag
                // pair (the encoding requires canonical runs).
                if k > 0 && col.runs[k - 1].tag == TAG_NULL {
                    col.runs[k - 1].len += n;
                } else {
                    col.runs.insert(
                        k,
                        Run {
                            tag: TAG_NULL,
                            len: n,
                            start_row: 0,
                            start_idx: 0,
                        },
                    );
                }
            } else {
                let head = at - run.start_row;
                col.runs[k].len = head;
                col.runs.splice(
                    k + 1..k + 1,
                    [
                        Run {
                            tag: TAG_NULL,
                            len: n,
                            start_row: 0,
                            start_idx: 0,
                        },
                        Run {
                            tag: run.tag,
                            len: run.len - head,
                            start_row: 0,
                            start_idx: 0,
                        },
                    ],
                );
            }
            col.reindex();
            let moved: Vec<(u32, String)> = col.formulas.split_off(&at).into_iter().collect();
            for (row, src) in moved {
                col.formulas.insert(row + n, src);
            }
        }
        self.rows += n;
        Ok(())
    }

    fn delete_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        if n == 0 || at >= self.rows {
            return Ok(());
        }
        let end = at.saturating_add(n).min(self.rows);
        let removed = end - at;
        self.rebuild_rows(self.rows - removed, |row| {
            if row < at {
                Some(row)
            } else if row < end {
                None
            } else {
                Some(row - removed)
            }
        });
        Ok(())
    }

    fn insert_cols(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        if n == 0 {
            return Ok(());
        }
        self.compact();
        let at = (at as usize).min(self.columns.len());
        self.columns
            .splice(at..at, (0..n).map(|_| Column::empty(self.rows)));
        Ok(())
    }

    fn delete_cols(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        if n == 0 || at as usize >= self.columns.len() {
            return Ok(());
        }
        self.compact();
        let end = (at as usize + n as usize).min(self.columns.len());
        self.columns.drain(at as usize..end);
        Ok(())
    }

    fn storage_bytes(&self) -> u64 {
        self.resident_bytes()
    }

    fn filled_count(&self) -> u64 {
        let mut filled: u64 = self.columns.iter().map(Column::base_filled).sum();
        for (&(col, row), cell) in &self.overlay {
            let base_blank = match self.columns.get(col as usize) {
                Some(c) if row < c.rows() => {
                    matches!(c.base_value(row), ScanValue::Empty) && !c.formulas.contains_key(&row)
                }
                _ => true,
            };
            match (base_blank, cell.is_blank()) {
                (true, false) => filled += 1,
                (false, true) => filled -= 1,
                _ => {}
            }
        }
        filled
    }

    fn resident_bytes(&self) -> u64 {
        let base: u64 = self.columns.iter().map(Column::resident_bytes).sum();
        let overlay: u64 = self
            .overlay
            .values()
            .map(|c| {
                16 + match &c.value {
                    CellValue::Text(s) => s.len() as u64,
                    _ => 8,
                } + c.formula.as_ref().map_or(0, |f| f.len() as u64)
            })
            .sum();
        base + overlay
    }

    fn encoded_image(&self) -> Option<Vec<u8>> {
        Some(self.to_bytes())
    }

    fn as_columnar(&self) -> Option<&ColumnarTranslator> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_n(n: f64) -> Cell {
        Cell::value(n)
    }

    fn sample() -> ColumnarTranslator {
        let rows = (0..100u32).map(|r| {
            vec![
                cell_n(r as f64),
                Cell::value(if r % 3 == 0 { "PASS" } else { "FAIL" }),
                Cell::value(r % 2 == 0),
                if r == 50 {
                    Cell::default()
                } else {
                    cell_n(r as f64 * 0.5)
                },
            ]
        });
        ColumnarTranslator::bulk_load_rows(4, rows)
    }

    #[test]
    fn bulk_load_and_read_back() {
        let t = sample();
        assert_eq!(t.rows(), 100);
        assert_eq!(t.cols(), 4);
        assert_eq!(t.get_cell(7, 0).unwrap().value, CellValue::Number(7.0));
        assert_eq!(
            t.get_cell(9, 1).unwrap().value,
            CellValue::Text("PASS".into())
        );
        assert_eq!(t.get_cell(9, 2).unwrap().value, CellValue::Bool(false));
        assert_eq!(t.get_cell(50, 3), None);
        assert_eq!(t.filled_count(), 399);
    }

    #[test]
    fn integer_columns_bit_pack() {
        let t = ColumnarTranslator::bulk_load_rows(
            1,
            (0..1000u32).map(|r| vec![cell_n((r % 7) as f64)]),
        );
        // 0..6 needs 3 bits: 1000 values in ~47 words, far below 8000 bytes.
        assert!(t.resident_bytes() < 1000, "{} bytes", t.resident_bytes());
        for r in 0..1000u32 {
            assert_eq!(
                t.get_cell(r, 0).unwrap().value,
                CellValue::Number((r % 7) as f64)
            );
        }
    }

    #[test]
    fn dictionary_rle_compresses_repeats() {
        let t = ColumnarTranslator::bulk_load_rows(
            1,
            (0..10_000u32).map(|_| vec![Cell::value("PASS")]),
        );
        assert!(t.resident_bytes() < 128, "{} bytes", t.resident_bytes());
    }

    #[test]
    fn overlay_write_read_clear() {
        let mut t = sample();
        t.set_cell(10, 0, Cell::value("edited")).unwrap();
        assert_eq!(
            t.get_cell(10, 0).unwrap().value,
            CellValue::Text("edited".into())
        );
        assert_eq!(t.overlay_len(), 1);
        t.clear_cell(10, 0).unwrap();
        assert_eq!(t.get_cell(10, 0), None);
        // Clearing a base-blank position must not grow the overlay.
        t.clear_cell(50, 3).unwrap();
        assert_eq!(t.get_cell(50, 3), None);
        assert_eq!(t.filled_count(), 398);
    }

    #[test]
    fn compaction_preserves_content() {
        let mut t = sample();
        t.set_overlay_limit(8);
        let before: Vec<_> = (0..100u32)
            .map(|r| (0..4).map(|c| t.get_cell(r, c)).collect::<Vec<_>>())
            .collect();
        for r in 0..20u32 {
            t.set_cell(r, 1, Cell::value(format!("edit{r}"))).unwrap();
        }
        assert!(t.overlay_len() < 8, "compaction must have run");
        for r in 0..100u32 {
            for c in 0..4u32 {
                let want = if c == 1 && r < 20 {
                    Some(Cell::value(format!("edit{r}")))
                } else {
                    before[r as usize][c as usize].clone()
                };
                assert_eq!(t.get_cell(r, c), want, "({r},{c})");
            }
        }
    }

    #[test]
    fn byte_roundtrip_is_identical() {
        let mut t = sample();
        t.set_cell(3, 2, Cell::value(9.5)).unwrap();
        t.set_cell(
            4,
            1,
            Cell {
                value: CellValue::Number(1.0),
                formula: Some("A1+1".into()),
            },
        )
        .unwrap();
        t.set_cell(5, 0, Cell::default()).unwrap();
        let bytes = t.to_bytes();
        let back = ColumnarTranslator::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes);
        for r in 0..100u32 {
            for c in 0..4u32 {
                assert_eq!(back.get_cell(r, c), t.get_cell(r, c), "({r},{c})");
            }
        }
        assert_eq!(back.filled_count(), t.filled_count());
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        let t = sample();
        let bytes = t.to_bytes();
        assert!(ColumnarTranslator::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes.clone();
        bad[0] = 99; // version
        assert!(ColumnarTranslator::from_bytes(&bad).is_err());
    }

    #[test]
    fn insert_rows_splices_null_runs() {
        let mut t = sample();
        t.insert_rows(10, 5).unwrap();
        assert_eq!(t.rows(), 105);
        assert_eq!(t.get_cell(9, 0).unwrap().value, CellValue::Number(9.0));
        for r in 10..15u32 {
            assert_eq!(t.get_cell(r, 0), None, "inserted row {r}");
        }
        assert_eq!(t.get_cell(15, 0).unwrap().value, CellValue::Number(10.0));
    }

    #[test]
    fn delete_rows_rebuilds() {
        let mut t = sample();
        t.delete_rows(10, 5).unwrap();
        assert_eq!(t.rows(), 95);
        assert_eq!(t.get_cell(9, 0).unwrap().value, CellValue::Number(9.0));
        assert_eq!(t.get_cell(10, 0).unwrap().value, CellValue::Number(15.0));
    }

    #[test]
    fn insert_delete_cols() {
        let mut t = sample();
        t.insert_cols(1, 2).unwrap();
        assert_eq!(t.cols(), 6);
        assert_eq!(t.get_cell(3, 0).unwrap().value, CellValue::Number(3.0));
        assert_eq!(t.get_cell(3, 1), None);
        assert_eq!(
            t.get_cell(3, 3).unwrap().value,
            CellValue::Text("PASS".into())
        );
        t.delete_cols(1, 2).unwrap();
        assert_eq!(t.cols(), 4);
        assert_eq!(
            t.get_cell(3, 1).unwrap().value,
            CellValue::Text("PASS".into())
        );
    }

    #[test]
    fn column_agg_matches_sequential_fold() {
        let mut t = sample();
        t.set_cell(17, 0, Cell::value(100.5)).unwrap();
        let agg = t.column_agg(0, 0, 99);
        let mut sum = 0.0;
        let mut numbers = 0u64;
        for r in 0..100u32 {
            if let Some(c) = t.get_cell(r, 0) {
                if let CellValue::Number(n) = c.value {
                    sum += n;
                    numbers += 1;
                }
            }
        }
        assert_eq!(agg.sum.to_bits(), sum.to_bits());
        assert_eq!(agg.numbers, numbers);
        assert_eq!(agg.nonempty, 100);
        assert_eq!(agg.error, None);
    }

    #[test]
    fn column_agg_stops_at_first_error() {
        let mut t = sample();
        t.set_cell(30, 0, Cell::value(CellValue::Error(CellError::Div0)))
            .unwrap();
        t.set_cell(60, 0, Cell::value(CellValue::Error(CellError::Ref)))
            .unwrap();
        let agg = t.column_agg(0, 0, 99);
        assert_eq!(agg.error, Some(CellError::Div0));
        assert_eq!(agg.numbers, 30, "stops before the error row");
    }

    #[test]
    fn get_range_is_row_major_and_skips_blanks() {
        let t = sample();
        let got = t.get_range(Rect::new(49, 0, 51, 3));
        let addrs: Vec<(u32, u32)> = got.iter().map(|(a, _)| (a.row, a.col)).collect();
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        assert_eq!(addrs, sorted);
        assert!(!addrs.contains(&(50, 3)), "blank cell must be skipped");
        assert_eq!(got.len(), 11);
    }
}
