//! The column-oriented translator (paper §IV-B, Figure 8b) — the exact
//! transpose of ROM: one tuple per sheet *column*, so column operations are
//! tuple operations and row operations are schema operations.

use dataspread_grid::{Cell, CellAddr, Rect};
use dataspread_hybrid::ModelKind;
use dataspread_posmap::PosMapKind;

use crate::error::EngineError;
use crate::rom::RomTranslator;
use crate::translator::Translator;

/// Column-oriented storage: a transposed [`RomTranslator`].
#[derive(Debug)]
pub struct ComTranslator {
    inner: RomTranslator,
}

impl ComTranslator {
    pub fn new(posmap_kind: PosMapKind) -> Self {
        ComTranslator {
            inner: RomTranslator::new(posmap_kind),
        }
    }
}

fn transpose(rect: Rect) -> Rect {
    Rect::new(rect.c1, rect.r1, rect.c2, rect.r2)
}

impl Translator for ComTranslator {
    fn kind(&self) -> ModelKind {
        ModelKind::Com
    }

    fn rows(&self) -> u32 {
        self.inner.cols()
    }

    fn cols(&self) -> u32 {
        self.inner.rows()
    }

    fn get_cell(&self, row: u32, col: u32) -> Option<Cell> {
        self.inner.get_cell(col, row)
    }

    fn set_cell(&mut self, row: u32, col: u32, cell: Cell) -> Result<(), EngineError> {
        self.inner.set_cell(col, row, cell)
    }

    fn clear_cell(&mut self, row: u32, col: u32) -> Result<(), EngineError> {
        self.inner.clear_cell(col, row)
    }

    fn get_range(&self, rect: Rect) -> Vec<(CellAddr, Cell)> {
        let mut cells: Vec<(CellAddr, Cell)> = self
            .inner
            .get_range(transpose(rect))
            .into_iter()
            .map(|(a, c)| (CellAddr::new(a.col, a.row), c))
            .collect();
        cells.sort_by_key(|(a, _)| (a.row, a.col));
        cells
    }

    fn insert_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        self.inner.insert_cols(at, n)
    }

    fn delete_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        self.inner.delete_cols(at, n)
    }

    fn insert_cols(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        self.inner.insert_rows(at, n)
    }

    fn delete_cols(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        self.inner.delete_rows(at, n)
    }

    fn storage_bytes(&self) -> u64 {
        self.inner.storage_bytes()
    }

    fn filled_count(&self) -> u64 {
        self.inner.filled_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_grid::CellValue;

    #[test]
    fn transposed_semantics_match_rom() {
        let mut com = ComTranslator::new(PosMapKind::Hierarchical);
        let mut rom = RomTranslator::new(PosMapKind::Hierarchical);
        for r in 0..5 {
            for c in 0..3 {
                let v = Cell::value((r * 10 + c) as i64);
                com.set_cell(r, c, v.clone()).unwrap();
                rom.set_cell(r, c, v).unwrap();
            }
        }
        assert_eq!(com.rows(), 5);
        assert_eq!(com.cols(), 3);
        for r in 0..5 {
            for c in 0..3 {
                assert_eq!(com.get_cell(r, c), rom.get_cell(r, c));
            }
        }
        let a = com.get_range(Rect::new(1, 0, 3, 2));
        let b = rom.get_range(Rect::new(1, 0, 3, 2));
        assert_eq!(a, b, "row-major ordering must match");
    }

    #[test]
    fn row_insert_in_com_is_schema_level() {
        let mut com = ComTranslator::new(PosMapKind::Hierarchical);
        for r in 0..4 {
            com.set_cell(r, 0, Cell::value(r as i64)).unwrap();
        }
        com.insert_rows(2, 1).unwrap();
        assert_eq!(com.rows(), 5);
        assert_eq!(com.get_cell(1, 0).unwrap().value, CellValue::Number(1.0));
        assert_eq!(com.get_cell(2, 0), None);
        assert_eq!(com.get_cell(3, 0).unwrap().value, CellValue::Number(2.0));
    }

    #[test]
    fn col_ops_are_tuple_level() {
        let mut com = ComTranslator::new(PosMapKind::Hierarchical);
        for c in 0..4 {
            com.set_cell(0, c, Cell::value(c as i64)).unwrap();
        }
        com.insert_cols(1, 2).unwrap();
        assert_eq!(com.cols(), 6);
        assert_eq!(com.get_cell(0, 0).unwrap().value, CellValue::Number(0.0));
        assert_eq!(com.get_cell(0, 1), None);
        assert_eq!(com.get_cell(0, 3).unwrap().value, CellValue::Number(1.0));
        com.delete_cols(0, 1).unwrap();
        assert_eq!(com.get_cell(0, 0), None);
        assert_eq!(com.filled_count(), 3, "column 0 held the value 0");
    }
}
