//! Durable paged persistence for [`SheetEngine`](crate::SheetEngine).
//!
//! A durable sheet lives in a directory with two files:
//!
//! * `pages.db` — the *image*: the last checkpointed logical sheet state,
//!   serialized and chunked into 8 KB pages managed by a
//!   [`Pager`](dataspread_relstore::Pager) (page 0 is a header with a
//!   CRC over the payload; pages 1.. hold the cell payload);
//! * `wal.log` — a [`Wal`](dataspread_relstore::Wal) of CRC-framed records.
//!
//! Three record kinds share the log:
//!
//! | tag | record | written by |
//! |---|---|---|
//! | 0 | [`LoggedOp`] — a logical sheet mutation | every engine op |
//! | 1 | checkpoint-begin (old page count) | [`DurableStore::checkpoint`] |
//! | 2 | undo page image (page no + old bytes) | [`DurableStore::checkpoint`] |
//!
//! **Commit protocol.** Each engine mutation appends a [`LoggedOp`] before
//! returning; `save()` fsyncs the log (the fsync-point = the commit point).
//! **Checkpoint protocol.** The current state is serialized and diffed
//! against the image page-by-page; the pre-images of every page about to
//! change are journaled to the WAL (tag 1 + 2 records) and fsynced, *then*
//! the dirty pages are written in place and fsynced, *then* the WAL is
//! truncated. **Recovery.** On open, if the WAL ends in an unfinished
//! checkpoint journal, the undo pages are written back first (rolling the
//! image to its pre-checkpoint bytes); the image is then loaded
//! (CRC-verified) and the logged ops are replayed. A crash at *any* byte
//! therefore yields the state as of some logged-op prefix — never a torn
//! cell — which is exactly what the byte-boundary recovery suite asserts.

use std::path::{Path, PathBuf};

use dataspread_grid::value::CellError;
use dataspread_grid::{Cell, CellAddr, CellValue};
use dataspread_posmap::PosMapKind;
use dataspread_relstore::pager::PagerStats;
use dataspread_relstore::wal::crc32;
use dataspread_relstore::{Pager, StoreError, Wal, PAGE_SIZE};

use crate::error::EngineError;

/// File name of the checkpoint image inside a durable sheet directory.
pub const IMAGE_FILE: &str = "pages.db";
/// File name of the write-ahead log inside a durable sheet directory.
pub const WAL_FILE: &str = "wal.log";

const IMAGE_MAGIC: &[u8; 4] = b"DSIM";
const IMAGE_VERSION: u32 = 1;
/// Serialized image header length (magic, version, posmap, len, crc).
const HEADER_LEN: usize = 4 + 4 + 1 + 8 + 4;

// WAL payload kind tags.
const REC_OP: u8 = 0;
const REC_CKPT_BEGIN: u8 = 1;
const REC_UNDO_PAGE: u8 = 2;

/// Path of the image file for a durable sheet directory.
pub fn image_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(IMAGE_FILE)
}

/// Path of the WAL file for a durable sheet directory.
pub fn wal_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(WAL_FILE)
}

/// A logical sheet mutation, as logged to the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum LoggedOp {
    /// `updateCell(row, col, input)` — the raw user input (formula, literal,
    /// or empty-string clear), replayed through the same interpretation
    /// path on recovery.
    SetCell {
        row: u32,
        col: u32,
        input: String,
    },
    /// A computed value written directly (e.g. `index()` dereferencing a
    /// composite), logged as the exact [`CellValue`] to avoid re-parsing
    /// text through literal inference.
    SetValue {
        row: u32,
        col: u32,
        value: CellValue,
    },
    InsertRows {
        at: u32,
        n: u32,
    },
    DeleteRows {
        at: u32,
        n: u32,
    },
    InsertCols {
        at: u32,
        n: u32,
    },
    DeleteCols {
        at: u32,
        n: u32,
    },
}

// ------------------------------------------------------------ encoding --

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, off: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], EngineError> {
        let end = self.off.checked_add(n).filter(|e| *e <= self.bytes.len());
        let Some(end) = end else {
            return Err(corrupt("truncated record"));
        };
        let s = &self.bytes[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, EngineError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, EngineError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, EngineError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn f64(&mut self) -> Result<f64, EngineError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn str(&mut self) -> Result<String, EngineError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid utf-8"))
    }

    fn done(&self) -> bool {
        self.off == self.bytes.len()
    }
}

fn corrupt(msg: &str) -> EngineError {
    EngineError::Store(StoreError::Corrupt(msg.to_string()))
}

fn put_value(out: &mut Vec<u8>, v: &CellValue) {
    match v {
        CellValue::Empty => out.push(0),
        CellValue::Number(n) => {
            out.push(1);
            out.extend_from_slice(&n.to_le_bytes());
        }
        CellValue::Text(s) => {
            out.push(2);
            put_str(out, s);
        }
        CellValue::Bool(b) => {
            out.push(3);
            out.push(*b as u8);
        }
        CellValue::Error(e) => {
            out.push(4);
            out.push(error_code(*e));
        }
    }
}

fn read_value(cur: &mut Cursor<'_>) -> Result<CellValue, EngineError> {
    Ok(match cur.u8()? {
        0 => CellValue::Empty,
        1 => CellValue::Number(cur.f64()?),
        2 => CellValue::Text(cur.str()?),
        3 => CellValue::Bool(cur.u8()? != 0),
        4 => CellValue::Error(code_error(cur.u8()?)?),
        t => return Err(corrupt(&format!("unknown value tag {t}"))),
    })
}

fn error_code(e: CellError) -> u8 {
    match e {
        CellError::Div0 => 0,
        CellError::Value => 1,
        CellError::Ref => 2,
        CellError::Name => 3,
        CellError::Na => 4,
        CellError::Num => 5,
        CellError::Circular => 6,
    }
}

fn code_error(c: u8) -> Result<CellError, EngineError> {
    Ok(match c {
        0 => CellError::Div0,
        1 => CellError::Value,
        2 => CellError::Ref,
        3 => CellError::Name,
        4 => CellError::Na,
        5 => CellError::Num,
        6 => CellError::Circular,
        t => return Err(corrupt(&format!("unknown error code {t}"))),
    })
}

fn posmap_code(k: PosMapKind) -> u8 {
    match k {
        PosMapKind::AsIs => 0,
        PosMapKind::Monotonic => 1,
        PosMapKind::Hierarchical => 2,
    }
}

fn code_posmap(c: u8) -> Result<PosMapKind, EngineError> {
    Ok(match c {
        0 => PosMapKind::AsIs,
        1 => PosMapKind::Monotonic,
        2 => PosMapKind::Hierarchical,
        t => return Err(corrupt(&format!("unknown posmap code {t}"))),
    })
}

impl LoggedOp {
    /// Encode as a WAL payload (including the record-kind tag).
    fn encode(&self) -> Vec<u8> {
        let mut out = vec![REC_OP];
        match self {
            LoggedOp::SetCell { row, col, input } => {
                out.push(0);
                put_u32(&mut out, *row);
                put_u32(&mut out, *col);
                put_str(&mut out, input);
            }
            LoggedOp::SetValue { row, col, value } => {
                out.push(1);
                put_u32(&mut out, *row);
                put_u32(&mut out, *col);
                put_value(&mut out, value);
            }
            LoggedOp::InsertRows { at, n } => {
                out.push(2);
                put_u32(&mut out, *at);
                put_u32(&mut out, *n);
            }
            LoggedOp::DeleteRows { at, n } => {
                out.push(3);
                put_u32(&mut out, *at);
                put_u32(&mut out, *n);
            }
            LoggedOp::InsertCols { at, n } => {
                out.push(4);
                put_u32(&mut out, *at);
                put_u32(&mut out, *n);
            }
            LoggedOp::DeleteCols { at, n } => {
                out.push(5);
                put_u32(&mut out, *at);
                put_u32(&mut out, *n);
            }
        }
        out
    }

    /// Decode the body of a `REC_OP` payload (tag byte already consumed).
    fn decode(cur: &mut Cursor<'_>) -> Result<LoggedOp, EngineError> {
        let op = match cur.u8()? {
            0 => LoggedOp::SetCell {
                row: cur.u32()?,
                col: cur.u32()?,
                input: cur.str()?,
            },
            1 => LoggedOp::SetValue {
                row: cur.u32()?,
                col: cur.u32()?,
                value: read_value(cur)?,
            },
            2 => LoggedOp::InsertRows {
                at: cur.u32()?,
                n: cur.u32()?,
            },
            3 => LoggedOp::DeleteRows {
                at: cur.u32()?,
                n: cur.u32()?,
            },
            4 => LoggedOp::InsertCols {
                at: cur.u32()?,
                n: cur.u32()?,
            },
            5 => LoggedOp::DeleteCols {
                at: cur.u32()?,
                n: cur.u32()?,
            },
            t => return Err(corrupt(&format!("unknown op tag {t}"))),
        };
        if !cur.done() {
            return Err(corrupt("trailing bytes after op"));
        }
        Ok(op)
    }
}

fn encode_cells(cells: &[(CellAddr, Cell)]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, cells.len() as u64);
    for (addr, cell) in cells {
        put_u32(&mut out, addr.row);
        put_u32(&mut out, addr.col);
        match &cell.formula {
            Some(src) => {
                out.push(1);
                put_str(&mut out, src);
            }
            None => out.push(0),
        }
        put_value(&mut out, &cell.value);
    }
    out
}

fn decode_cells(payload: &[u8]) -> Result<Vec<(CellAddr, Cell)>, EngineError> {
    let mut cur = Cursor::new(payload);
    let count = cur.u64()?;
    let mut cells = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let row = cur.u32()?;
        let col = cur.u32()?;
        let formula = match cur.u8()? {
            0 => None,
            1 => Some(cur.str()?),
            t => return Err(corrupt(&format!("unknown formula flag {t}"))),
        };
        let value = read_value(&mut cur)?;
        cells.push((CellAddr::new(row, col), Cell { value, formula }));
    }
    if !cur.done() {
        return Err(corrupt("trailing bytes after cells"));
    }
    Ok(cells)
}

fn encode_header(kind: PosMapKind, payload_len: u64, payload_crc: u32) -> Vec<u8> {
    let mut page = Vec::with_capacity(PAGE_SIZE);
    page.extend_from_slice(IMAGE_MAGIC);
    put_u32(&mut page, IMAGE_VERSION);
    page.push(posmap_code(kind));
    put_u64(&mut page, payload_len);
    put_u32(&mut page, payload_crc);
    debug_assert_eq!(page.len(), HEADER_LEN);
    page.resize(PAGE_SIZE, 0);
    page
}

// ------------------------------------------------------- durable store --

/// What [`DurableStore::open`] found on disk.
#[derive(Debug)]
pub struct RecoveredState {
    /// Positional-map scheme of the stored image; `None` for a fresh store.
    pub posmap: Option<PosMapKind>,
    /// Cells of the last durable checkpoint.
    pub cells: Vec<(CellAddr, Cell)>,
    /// Committed logical ops appended after that checkpoint, oldest first.
    pub ops: Vec<LoggedOp>,
    /// Whether an interrupted checkpoint had to be rolled back.
    pub rolled_back_checkpoint: bool,
}

/// Outcome of one checkpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Pages whose bytes changed and were rewritten.
    pub pages_written: u64,
    /// Pre-images journaled to the WAL before the overwrite.
    pub undo_pages: u64,
    /// Image size after the checkpoint, in pages.
    pub page_count: u64,
    /// Serialized cell payload size in bytes.
    pub payload_bytes: u64,
}

/// Counters describing the persistence layer (for benches and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistenceStats {
    /// Valid WAL bytes on disk (header included).
    pub wal_bytes: u64,
    /// Ops logged since the last checkpoint.
    pub ops_since_checkpoint: u64,
    /// Checkpoints taken through this handle.
    pub checkpoints: u64,
    /// Image size in pages.
    pub image_pages: u64,
    /// Pager cache / I/O counters.
    pub pager: PagerStats,
}

/// The engine-facing persistence handle: one WAL + one paged image.
pub struct DurableStore {
    dir: PathBuf,
    wal: Wal,
    pager: Pager,
    ops_since_checkpoint: u64,
    checkpoints: u64,
    auto_checkpoint_ops: Option<u64>,
    /// Set when a WAL append failed mid-op: the on-disk tape has a hole, so
    /// further logging is refused until a successful checkpoint
    /// re-serializes the full in-memory state and truncates the log.
    poisoned: Option<String>,
}

/// Best-effort fsync of a directory so freshly created files (and renames)
/// survive a machine crash. Directory handles cannot be opened for sync on
/// all platforms, hence best-effort.
fn sync_dir(dir: &Path) {
    if let Ok(handle) = std::fs::File::open(dir) {
        handle.sync_all().ok();
    }
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("image_pages", &self.pager.page_count())
            .field("ops_since_checkpoint", &self.ops_since_checkpoint)
            .finish()
    }
}

impl DurableStore {
    /// Open (or create) the durable directory, running crash recovery:
    /// undo any interrupted checkpoint, load and verify the image, and
    /// return the committed op tail for the caller to replay.
    pub fn open(dir: impl AsRef<Path>) -> Result<(DurableStore, RecoveredState), EngineError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(StoreError::from)?;
        let mut wal = Wal::open(wal_path(&dir))?;
        let mut pager = Pager::open(image_path(&dir))?;
        // Pin the directory entries for the two files we may just have
        // created; without this a machine crash could drop the whole WAL.
        sync_dir(&dir);

        // Partition the committed records: logical ops, then (optionally)
        // an unfinished checkpoint journal.
        let mut ops = Vec::new();
        let mut ckpt_old_count: Option<u64> = None;
        let mut undo: Vec<(u64, Vec<u8>)> = Vec::new();
        for record in wal.take_recovered() {
            let mut cur = Cursor::new(&record);
            match cur.u8()? {
                REC_OP => {
                    let op = LoggedOp::decode(&mut cur)?;
                    if ckpt_old_count.is_none() {
                        ops.push(op);
                    }
                    // Ops after a checkpoint-begin cannot occur (the writer
                    // blocks inside checkpoint); tolerate by ignoring.
                }
                REC_CKPT_BEGIN => {
                    ckpt_old_count = Some(cur.u64()?);
                }
                REC_UNDO_PAGE => {
                    let page_no = cur.u64()?;
                    let bytes = cur.take(PAGE_SIZE)?.to_vec();
                    undo.push((page_no, bytes));
                }
                t => return Err(corrupt(&format!("unknown wal record kind {t}"))),
            }
        }

        // Roll back an interrupted checkpoint: restore pre-images, shrink
        // back to the pre-checkpoint page count.
        let rolled_back = ckpt_old_count.is_some();
        if let Some(old_count) = ckpt_old_count {
            for (page_no, bytes) in &undo {
                pager.write_page(*page_no, bytes)?;
            }
            pager.truncate(old_count)?;
            pager.flush()?;
        }

        // Load the image.
        let (posmap, cells) = if pager.page_count() == 0 {
            (None, Vec::new())
        } else {
            let header = pager.read_page(0)?.to_vec();
            let mut cur = Cursor::new(&header[..HEADER_LEN]);
            if cur.take(4)? != IMAGE_MAGIC {
                return Err(corrupt("image: bad magic"));
            }
            let version = cur.u32()?;
            if version != IMAGE_VERSION {
                return Err(corrupt(&format!("image: unsupported version {version}")));
            }
            let kind = code_posmap(cur.u8()?)?;
            let payload_len = cur.u64()? as usize;
            let payload_crc = cur.u32()?;
            let payload_pages = payload_len.div_ceil(PAGE_SIZE) as u64;
            if pager.page_count() < 1 + payload_pages {
                return Err(corrupt("image: payload pages missing"));
            }
            let mut payload = Vec::with_capacity(payload_len);
            for p in 0..payload_pages {
                let page = pager.read_page(1 + p)?;
                let want = (payload_len - payload.len()).min(PAGE_SIZE);
                payload.extend_from_slice(&page[..want]);
            }
            if crc32(&payload) != payload_crc {
                return Err(corrupt("image: payload checksum mismatch"));
            }
            (Some(kind), decode_cells(&payload)?)
        };

        Ok((
            DurableStore {
                dir,
                wal,
                pager,
                ops_since_checkpoint: ops.len() as u64,
                checkpoints: 0,
                auto_checkpoint_ops: None,
                poisoned: None,
            },
            RecoveredState {
                posmap,
                cells,
                ops,
                rolled_back_checkpoint: rolled_back,
            },
        ))
    }

    /// Append a logical op to the WAL. The op is committed at the next
    /// [`DurableStore::sync`] (or checkpoint).
    ///
    /// A failed append poisons the store: the caller has already applied
    /// the op in memory, so the on-disk tape now has a hole. Accepting
    /// later appends would make recovery silently skip the missing op, so
    /// every subsequent `log` fails until a checkpoint re-serializes the
    /// full state and truncates the log.
    pub fn log(&mut self, op: &LoggedOp) -> Result<(), EngineError> {
        if let Some(cause) = &self.poisoned {
            return Err(EngineError::Store(StoreError::Io(format!(
                "durable log disabled by an earlier append failure ({cause}); \
                 call checkpoint() to restore durability"
            ))));
        }
        if let Err(e) = self.wal.append(&op.encode()) {
            self.poisoned = Some(e.to_string());
            return Err(e.into());
        }
        self.ops_since_checkpoint += 1;
        Ok(())
    }

    /// The fsync-point: make every logged op crash-durable.
    pub fn sync(&mut self) -> Result<(), EngineError> {
        self.wal.sync()?;
        Ok(())
    }

    /// Checkpoint: fold the logical state `cells` into the paged image and
    /// truncate the WAL. Only pages whose bytes changed are written; their
    /// pre-images are journaled first so a crash mid-checkpoint rolls back
    /// cleanly on the next open.
    pub fn checkpoint(
        &mut self,
        kind: PosMapKind,
        cells: &[(CellAddr, Cell)],
    ) -> Result<CheckpointReport, EngineError> {
        // A failed append may have left garbage bytes past the valid
        // prefix; drop them so the journal below lands in a clean log.
        if self.poisoned.is_some() {
            self.wal.truncate_to_valid()?;
        }
        let payload = encode_cells(cells);
        let header = encode_header(kind, payload.len() as u64, crc32(&payload));
        let new_count = 1 + payload.len().div_ceil(PAGE_SIZE) as u64;
        let old_count = self.pager.page_count();

        // Diff new image against old, collecting changed pages + undo.
        let mut changed: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut undo: Vec<(u64, Vec<u8>)> = Vec::new();
        for page_no in 0..new_count.max(old_count) {
            let new_bytes: Option<Vec<u8>> = if page_no == 0 {
                Some(header.clone())
            } else if page_no < new_count {
                let start = (page_no as usize - 1) * PAGE_SIZE;
                let end = (start + PAGE_SIZE).min(payload.len());
                let mut chunk = payload[start..end].to_vec();
                chunk.resize(PAGE_SIZE, 0);
                Some(chunk)
            } else {
                None
            };
            let old_bytes: Option<Vec<u8>> = if page_no < old_count {
                Some(self.pager.read_page(page_no)?.to_vec())
            } else {
                None
            };
            match (new_bytes, old_bytes) {
                (Some(new), Some(old)) => {
                    if new != old {
                        undo.push((page_no, old));
                        changed.push((page_no, new));
                    }
                }
                (Some(new), None) => changed.push((page_no, new)),
                (None, Some(old)) => undo.push((page_no, old)), // truncated tail
                (None, None) => unreachable!("page beyond both images"),
            }
        }

        let report = CheckpointReport {
            pages_written: changed.len() as u64,
            undo_pages: undo.len() as u64,
            page_count: new_count,
            payload_bytes: payload.len() as u64,
        };

        if changed.is_empty() && new_count == old_count {
            // Image already current — just fold the op tail away.
            self.wal.truncate()?;
            self.ops_since_checkpoint = 0;
            self.checkpoints += 1;
            self.poisoned = None;
            return Ok(report);
        }

        // 1. Journal pre-images, durably.
        let mut begin = vec![REC_CKPT_BEGIN];
        put_u64(&mut begin, old_count);
        self.wal.append(&begin)?;
        for (page_no, old) in &undo {
            let mut rec = Vec::with_capacity(1 + 8 + PAGE_SIZE);
            rec.push(REC_UNDO_PAGE);
            put_u64(&mut rec, *page_no);
            rec.extend_from_slice(old);
            self.wal.append(&rec)?;
        }
        self.wal.sync()?;
        // 2. Overwrite in place, durably.
        for (page_no, new) in &changed {
            self.pager.write_page(*page_no, new)?;
        }
        if new_count < old_count {
            self.pager.truncate(new_count)?;
        }
        self.pager.flush()?;
        // 3. The checkpoint is now the truth; drop the log.
        self.wal.truncate()?;
        self.ops_since_checkpoint = 0;
        self.checkpoints += 1;
        self.poisoned = None;
        Ok(report)
    }

    /// Arrange for the owner to checkpoint automatically every `ops` logged
    /// operations (`None` disables; the default).
    pub fn set_auto_checkpoint(&mut self, ops: Option<u64>) {
        self.auto_checkpoint_ops = ops;
    }

    /// True when the auto-checkpoint threshold has been reached.
    pub fn should_checkpoint(&self) -> bool {
        self.auto_checkpoint_ops
            .is_some_and(|n| self.ops_since_checkpoint >= n)
    }

    pub fn stats(&self) -> PersistenceStats {
        PersistenceStats {
            wal_bytes: self.wal.len_bytes(),
            ops_since_checkpoint: self.ops_since_checkpoint,
            checkpoints: self.checkpoints,
            image_pages: self.pager.page_count(),
            pager: self.pager.stats(),
        }
    }

    /// The durable directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dataspread-durable-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn cell(v: f64) -> Cell {
        Cell::value(v)
    }

    #[test]
    fn op_codec_roundtrip() {
        let ops = vec![
            LoggedOp::SetCell {
                row: 3,
                col: 9,
                input: "=SUM(A1:A9)".into(),
            },
            LoggedOp::SetValue {
                row: 0,
                col: 0,
                value: CellValue::Text("x".into()),
            },
            LoggedOp::SetValue {
                row: 1,
                col: 1,
                value: CellValue::Error(CellError::Div0),
            },
            LoggedOp::InsertRows { at: 5, n: 2 },
            LoggedOp::DeleteRows { at: 0, n: 1 },
            LoggedOp::InsertCols { at: 7, n: 3 },
            LoggedOp::DeleteCols { at: 2, n: 2 },
        ];
        for op in ops {
            let enc = op.encode();
            assert_eq!(enc[0], REC_OP);
            let mut cur = Cursor::new(&enc[1..]);
            assert_eq!(LoggedOp::decode(&mut cur).unwrap(), op);
        }
    }

    #[test]
    fn cells_codec_roundtrip() {
        let cells = vec![
            (CellAddr::new(0, 0), cell(1.5)),
            (
                CellAddr::new(2, 3),
                Cell {
                    value: CellValue::Number(42.0),
                    formula: Some("A1*2".into()),
                },
            ),
            (CellAddr::new(9, 9), Cell::value("text")),
            (CellAddr::new(4, 4), Cell::value(true)),
            (
                CellAddr::new(5, 5),
                Cell {
                    value: CellValue::Error(CellError::Circular),
                    formula: Some("A6".into()),
                },
            ),
        ];
        let enc = encode_cells(&cells);
        assert_eq!(decode_cells(&enc).unwrap(), cells);
    }

    #[test]
    fn fresh_open_then_log_then_recover() {
        let dir = temp_dir("log-recover");
        {
            let (mut store, recovered) = DurableStore::open(&dir).unwrap();
            assert!(recovered.posmap.is_none());
            assert!(recovered.cells.is_empty() && recovered.ops.is_empty());
            store
                .log(&LoggedOp::SetCell {
                    row: 1,
                    col: 1,
                    input: "7".into(),
                })
                .unwrap();
            store.log(&LoggedOp::InsertRows { at: 0, n: 2 }).unwrap();
            store.sync().unwrap();
        }
        let (_, recovered) = DurableStore::open(&dir).unwrap();
        assert_eq!(recovered.ops.len(), 2);
        assert_eq!(
            recovered.ops[0],
            LoggedOp::SetCell {
                row: 1,
                col: 1,
                input: "7".into()
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_persists_cells_and_truncates_wal() {
        let dir = temp_dir("ckpt");
        let cells = vec![
            (CellAddr::new(0, 0), cell(1.0)),
            (CellAddr::new(1, 0), cell(2.0)),
        ];
        {
            let (mut store, _) = DurableStore::open(&dir).unwrap();
            store
                .log(&LoggedOp::SetCell {
                    row: 0,
                    col: 0,
                    input: "1".into(),
                })
                .unwrap();
            let report = store.checkpoint(PosMapKind::Hierarchical, &cells).unwrap();
            assert_eq!(report.page_count, 2); // header + 1 payload page
            assert!(report.pages_written >= 1);
            assert_eq!(store.stats().ops_since_checkpoint, 0);
        }
        let (store, recovered) = DurableStore::open(&dir).unwrap();
        assert_eq!(recovered.posmap, Some(PosMapKind::Hierarchical));
        assert_eq!(recovered.cells, cells);
        assert!(recovered.ops.is_empty());
        assert!(!recovered.rolled_back_checkpoint);
        assert_eq!(store.stats().image_pages, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unchanged_checkpoint_writes_no_pages() {
        let dir = temp_dir("ckpt-noop");
        let cells = vec![(CellAddr::new(0, 0), cell(5.0))];
        let (mut store, _) = DurableStore::open(&dir).unwrap();
        store.checkpoint(PosMapKind::Hierarchical, &cells).unwrap();
        let second = store.checkpoint(PosMapKind::Hierarchical, &cells).unwrap();
        assert_eq!(second.pages_written, 0);
        assert_eq!(second.undo_pages, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_checkpoint_rolls_back() {
        let dir = temp_dir("ckpt-undo");
        let before = vec![(CellAddr::new(0, 0), cell(1.0))];
        {
            let (mut store, _) = DurableStore::open(&dir).unwrap();
            store.checkpoint(PosMapKind::Hierarchical, &before).unwrap();
            store
                .log(&LoggedOp::SetCell {
                    row: 0,
                    col: 0,
                    input: "2".into(),
                })
                .unwrap();
            store.sync().unwrap();
        }
        // Simulate a crash *inside* checkpoint: journal written, image
        // pages half-overwritten, WAL not yet truncated.
        let wal_before = std::fs::read(wal_path(&dir)).unwrap();
        let after = vec![(CellAddr::new(0, 0), cell(2.0))];
        {
            let (mut store, _) = DurableStore::open(&dir).unwrap();
            // Manually run the journal + overwrite but "crash" before the
            // WAL truncate by writing the old WAL contents back… easier:
            // do a real checkpoint, then reconstruct the mid-crash state.
            let payload = encode_cells(&after);
            let header = encode_header(
                PosMapKind::Hierarchical,
                payload.len() as u64,
                crc32(&payload),
            );
            // Journal (as checkpoint would).
            let mut begin = vec![REC_CKPT_BEGIN];
            put_u64(&mut begin, store.pager.page_count());
            store.wal.append(&begin).unwrap();
            let old0 = store.pager.read_page(0).unwrap().to_vec();
            let mut rec = vec![REC_UNDO_PAGE];
            put_u64(&mut rec, 0);
            rec.extend_from_slice(&old0);
            store.wal.append(&rec).unwrap();
            store.wal.sync().unwrap();
            // Tear: overwrite the header page with the *new* header but
            // never touch the payload page or truncate the WAL.
            store.pager.write_page(0, &header).unwrap();
            store.pager.flush().unwrap();
        }
        drop(wal_before);
        // Recovery must roll the header back and replay the logged op.
        let (_, recovered) = DurableStore::open(&dir).unwrap();
        assert!(recovered.rolled_back_checkpoint);
        assert_eq!(recovered.cells, vec![(CellAddr::new(0, 0), cell(1.0))]);
        assert_eq!(recovered.ops.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn image_shrinks_when_cells_shrink() {
        let dir = temp_dir("shrink");
        let big: Vec<(CellAddr, Cell)> = (0..2000u32)
            .map(|i| (CellAddr::new(i, 0), Cell::value(format!("row-{i}"))))
            .collect();
        let (mut store, _) = DurableStore::open(&dir).unwrap();
        let r1 = store.checkpoint(PosMapKind::Hierarchical, &big).unwrap();
        assert!(r1.page_count > 2);
        let small = vec![(CellAddr::new(0, 0), cell(1.0))];
        let r2 = store.checkpoint(PosMapKind::Hierarchical, &small).unwrap();
        assert_eq!(r2.page_count, 2);
        assert!(r2.undo_pages >= r1.page_count - r2.page_count);
        drop(store);
        let (_, recovered) = DurableStore::open(&dir).unwrap();
        assert_eq!(recovered.cells, small);
        std::fs::remove_dir_all(&dir).ok();
    }
}
