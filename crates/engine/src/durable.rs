//! Durable paged persistence for [`SheetEngine`](crate::SheetEngine).
//!
//! A durable sheet lives in a directory with an image file and a WAL
//! segment chain:
//!
//! * `pages.db` — the *image*: the last checkpointed logical sheet state,
//!   stored **region-granularly** in 8 KB pages managed by a
//!   [`Pager`](dataspread_relstore::Pager). Page 0 is the header (format
//!   version, posmap scheme, and the location of the page-allocation map);
//!   the map assigns each [`HybridSheet`](crate::HybridSheet) region —
//!   plus the RCV catch-all as pseudo-region 0 — its own run of payload
//!   pages, so a checkpoint re-serializes and rewrites **only the regions
//!   touched since the last one** (the per-region dirty flags maintained
//!   by the hybrid layer's mutators);
//! * `wal.log` (+ rotated `wal.log.N` segments) — a
//!   [`Wal`](dataspread_relstore::Wal) of CRC-framed records.
//!
//! Three record kinds share the log:
//!
//! | tag | record | written by |
//! |---|---|---|
//! | 0 | [`LoggedOp`] — a logical sheet mutation | every engine op |
//! | 1 | checkpoint-begin (old page count) | [`DurableStore::checkpoint`] |
//! | 2 | undo page image (page no + old bytes) | [`DurableStore::checkpoint`] |
//!
//! **Commit protocol.** Each engine mutation appends a [`LoggedOp`] before
//! returning; `save()` fsyncs the log (the fsync-point = the commit point).
//! Bulk imports are one [`LoggedOp::ImportRows`] record, replayed like any
//! other op.
//! **Checkpoint protocol.** Dirty regions are serialized and assigned
//! pages from the free pool; the pre-images of every page about to change
//! (dirty region pages, the rewritten map and header, zeroed freed pages)
//! are journaled to the WAL (tag 1 + 2 records) and fsynced, *then* the
//! changed pages are written in place and fsynced, *then* the WAL is
//! truncated. Clean regions keep their pages untouched — after a
//! single-cell edit the checkpoint cost is O(dirty regions), not O(sheet).
//! **Recovery.** On open, if the WAL ends in an unfinished checkpoint
//! journal, the undo pages are written back first (rolling the image to
//! its pre-checkpoint bytes); the image is then loaded (each region's
//! payload CRC-verified) and the logged ops are replayed. A crash at *any*
//! byte therefore yields the state as of some logged-op prefix — never a
//! torn cell — which is exactly what the byte-boundary recovery suite
//! asserts. Version-1 (whole-sheet) images are migrated transparently: the
//! cells load as the catch-all, everything is marked dirty, and the next
//! checkpoint rewrites the file in the region-keyed layout.
//!
//! On-disk layout of the version-2 image:
//!
//! ```text
//! page 0      magic "DSIM" | version=2 u32 | posmap u8 |
//!             map_len u64 | map_crc u32 | map_page_count u32 |
//!             map page numbers u64 × n
//! map pages   region_count u32, then per region (ascending id):
//!             id u64 | kind u8 | rect u32×4 |
//!             payload_len u64 | payload_crc u32 |
//!             page_count u32 | page numbers u64 × n
//! data pages  each region's length-prefixed cell payload, chunked
//! ```
//!
//! Freed pages are zeroed (free pages are always all-zero on disk), so the
//! same logical state always serializes to the same image bytes no matter
//! the edit history — the recovery suite compares images byte-for-byte.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use dataspread_grid::value::CellError;
use dataspread_grid::{Cell, CellAddr, CellValue, Rect};
use dataspread_hybrid::ModelKind;
use dataspread_posmap::PosMapKind;
use dataspread_relstore::codec::{self, Reader};
use dataspread_relstore::pager::PagerStats;
use dataspread_relstore::wal::crc32;
use dataspread_relstore::{
    real_fs, OpenMode, Pager, SharedWal, StorageFs, StoreError, Wal, PAGE_SIZE,
};
use std::sync::Arc;

use crate::error::EngineError;
use crate::hybrid::{RegionImage, RegionPayload, CATCHALL_REGION_ID};

/// File name of the checkpoint image inside a durable sheet directory.
pub const IMAGE_FILE: &str = "pages.db";
/// File name of the write-ahead log inside a durable sheet directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the commit-ticket metadata inside a durable sheet
/// directory: `(wal epoch, ticket base)` persisted at every WAL truncate
/// so ticket numbering continues across restarts (see
/// [`DurableStore::recovery_horizon`]).
pub const TICKET_FILE: &str = "tickets.meta";

/// Rotate the WAL to a fresh segment once the current one exceeds this
/// (engine default; override with `set_wal_segment_limit`).
pub const DEFAULT_WAL_SEGMENT_BYTES: u64 = 64 << 20;

/// Largest op record the store will log (safely under the WAL's hard
/// record cap, framing included). A bulk import can exceed this; the
/// engine then captures it via an immediate checkpoint instead of a log
/// record.
pub const MAX_LOGGED_OP_BYTES: usize = 48 << 20;

const IMAGE_MAGIC: &[u8; 4] = b"DSIM";
const IMAGE_VERSION: u32 = 2;
/// Fixed part of the v2 header (magic, version, posmap, map len/crc/count).
const HEADER_FIXED_LEN: usize = 4 + 4 + 1 + 8 + 4 + 4;
/// Page numbers that fit in the header after the fixed fields.
const MAX_MAP_PAGES: usize = (PAGE_SIZE - HEADER_FIXED_LEN) / 8;
/// Serialized v1 header length (magic, version, posmap, len, crc).
const V1_HEADER_LEN: usize = 4 + 4 + 1 + 8 + 4;

// WAL payload kind tags.
const REC_OP: u8 = 0;
const REC_CKPT_BEGIN: u8 = 1;
const REC_UNDO_PAGE: u8 = 2;

// Region kind tags in the page-allocation map.
const KIND_ROM: u8 = 0;
const KIND_COM: u8 = 1;
const KIND_RCV: u8 = 2;
const KIND_TOM: u8 = 3;
const KIND_CATCHALL: u8 = 4;
/// Columnar regions store their native compressed encoding as the page
/// payload (no per-cell codec).
const KIND_COLUMNAR: u8 = 5;

/// Path of the image file for a durable sheet directory.
pub fn image_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(IMAGE_FILE)
}

/// Path of the WAL file for a durable sheet directory.
pub fn wal_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(WAL_FILE)
}

/// Path of the ticket-metadata file for a durable sheet directory.
pub fn ticket_path(dir: impl AsRef<Path>) -> PathBuf {
    dir.as_ref().join(TICKET_FILE)
}

const TICKET_MAGIC: &[u8; 4] = b"DSTK";
const TICKET_META_LEN: usize = 4 + 8 + 8 + 4;

fn encode_ticket_meta(epoch: u64, base: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(TICKET_META_LEN);
    codec::put_bytes(&mut out, TICKET_MAGIC);
    codec::put_u64(&mut out, epoch);
    codec::put_u64(&mut out, base);
    let crc = crc32(&out[4..]);
    codec::put_u32(&mut out, crc);
    out
}

/// Read `tickets.meta`, returning `(epoch, base)`. Absent, torn, or
/// corrupt files yield `None`: the store then falls back to a fresh
/// ticket sequence, which can only *under*-state the durable horizon
/// (clients re-stage more than needed — duplicates, never silent loss —
/// and the incarnation check gates re-staging anyway).
fn read_ticket_meta(fs: &dyn StorageFs, dir: &Path) -> Option<(u64, u64)> {
    let bytes = fs.read(&ticket_path(dir)).ok()?;
    if bytes.len() != TICKET_META_LEN || &bytes[..4] != TICKET_MAGIC {
        return None;
    }
    let epoch = u64::from_le_bytes(bytes[4..12].try_into().ok()?);
    let base = u64::from_le_bytes(bytes[12..20].try_into().ok()?);
    let crc = u32::from_le_bytes(bytes[20..24].try_into().ok()?);
    (crc32(&bytes[4..20]) == crc).then_some((epoch, base))
}

/// A logical sheet mutation, as logged to the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum LoggedOp {
    /// `updateCell(row, col, input)` — the raw user input (formula, literal,
    /// or empty-string clear), replayed through the same interpretation
    /// path on recovery.
    SetCell {
        row: u32,
        col: u32,
        input: String,
    },
    /// A computed value written directly (e.g. `index()` dereferencing a
    /// composite), logged as the exact [`CellValue`] to avoid re-parsing
    /// text through literal inference.
    SetValue {
        row: u32,
        col: u32,
        value: CellValue,
    },
    InsertRows {
        at: u32,
        n: u32,
    },
    DeleteRows {
        at: u32,
        n: u32,
    },
    InsertCols {
        at: u32,
        n: u32,
    },
    DeleteCols {
        at: u32,
        n: u32,
    },
    /// A bulk `import_rows` call, logged as a single record instead of
    /// forcing an immediate checkpoint; recovery replays it through the
    /// same ROM bulk-load path.
    ImportRows {
        row: u32,
        col: u32,
        width: u32,
        rows: Vec<Vec<CellValue>>,
    },
}

// ------------------------------------------------------------ encoding --

fn corrupt(msg: &str) -> EngineError {
    EngineError::Store(StoreError::Corrupt(msg.to_string()))
}

fn put_value(out: &mut Vec<u8>, v: &CellValue) {
    match v {
        CellValue::Empty => codec::put_u8(out, 0),
        CellValue::Number(n) => {
            codec::put_u8(out, 1);
            codec::put_f64(out, *n);
        }
        CellValue::Text(s) => {
            codec::put_u8(out, 2);
            codec::put_str(out, s);
        }
        CellValue::Bool(b) => {
            codec::put_u8(out, 3);
            codec::put_u8(out, *b as u8);
        }
        CellValue::Error(e) => {
            codec::put_u8(out, 4);
            codec::put_u8(out, error_code(*e));
        }
    }
}

fn read_value(cur: &mut Reader<'_>) -> Result<CellValue, EngineError> {
    Ok(match cur.u8()? {
        0 => CellValue::Empty,
        1 => CellValue::Number(cur.f64()?),
        2 => CellValue::Text(cur.str()?),
        3 => CellValue::Bool(cur.u8()? != 0),
        4 => CellValue::Error(code_error(cur.u8()?)?),
        t => return Err(corrupt(&format!("unknown value tag {t}"))),
    })
}

fn error_code(e: CellError) -> u8 {
    match e {
        CellError::Div0 => 0,
        CellError::Value => 1,
        CellError::Ref => 2,
        CellError::Name => 3,
        CellError::Na => 4,
        CellError::Num => 5,
        CellError::Circular => 6,
    }
}

fn code_error(c: u8) -> Result<CellError, EngineError> {
    Ok(match c {
        0 => CellError::Div0,
        1 => CellError::Value,
        2 => CellError::Ref,
        3 => CellError::Name,
        4 => CellError::Na,
        5 => CellError::Num,
        6 => CellError::Circular,
        t => return Err(corrupt(&format!("unknown error code {t}"))),
    })
}

fn posmap_code(k: PosMapKind) -> u8 {
    match k {
        PosMapKind::AsIs => 0,
        PosMapKind::Monotonic => 1,
        PosMapKind::Hierarchical => 2,
    }
}

fn code_posmap(c: u8) -> Result<PosMapKind, EngineError> {
    Ok(match c {
        0 => PosMapKind::AsIs,
        1 => PosMapKind::Monotonic,
        2 => PosMapKind::Hierarchical,
        t => return Err(corrupt(&format!("unknown posmap code {t}"))),
    })
}

fn model_code(id: u64, kind: ModelKind) -> u8 {
    if id == CATCHALL_REGION_ID {
        return KIND_CATCHALL;
    }
    match kind {
        ModelKind::Rom => KIND_ROM,
        ModelKind::Com => KIND_COM,
        ModelKind::Rcv => KIND_RCV,
        ModelKind::Tom => KIND_TOM,
        ModelKind::Columnar => KIND_COLUMNAR,
    }
}

fn code_model(c: u8) -> Result<ModelKind, EngineError> {
    Ok(match c {
        KIND_ROM => ModelKind::Rom,
        KIND_COM => ModelKind::Com,
        KIND_RCV | KIND_CATCHALL => ModelKind::Rcv,
        KIND_TOM => ModelKind::Tom,
        KIND_COLUMNAR => ModelKind::Columnar,
        t => return Err(corrupt(&format!("unknown region kind {t}"))),
    })
}

impl LoggedOp {
    /// Encode as a WAL payload (including the record-kind tag).
    fn encode(&self) -> Vec<u8> {
        let mut out = vec![REC_OP];
        match self {
            LoggedOp::SetCell { row, col, input } => {
                codec::put_u8(&mut out, 0);
                codec::put_u32(&mut out, *row);
                codec::put_u32(&mut out, *col);
                codec::put_str(&mut out, input);
            }
            LoggedOp::SetValue { row, col, value } => {
                codec::put_u8(&mut out, 1);
                codec::put_u32(&mut out, *row);
                codec::put_u32(&mut out, *col);
                put_value(&mut out, value);
            }
            LoggedOp::InsertRows { at, n } => {
                codec::put_u8(&mut out, 2);
                codec::put_u32(&mut out, *at);
                codec::put_u32(&mut out, *n);
            }
            LoggedOp::DeleteRows { at, n } => {
                codec::put_u8(&mut out, 3);
                codec::put_u32(&mut out, *at);
                codec::put_u32(&mut out, *n);
            }
            LoggedOp::InsertCols { at, n } => {
                codec::put_u8(&mut out, 4);
                codec::put_u32(&mut out, *at);
                codec::put_u32(&mut out, *n);
            }
            LoggedOp::DeleteCols { at, n } => {
                codec::put_u8(&mut out, 5);
                codec::put_u32(&mut out, *at);
                codec::put_u32(&mut out, *n);
            }
            LoggedOp::ImportRows {
                row,
                col,
                width,
                rows,
            } => {
                codec::put_u8(&mut out, 6);
                codec::put_u32(&mut out, *row);
                codec::put_u32(&mut out, *col);
                codec::put_u32(&mut out, *width);
                codec::put_u32(&mut out, rows.len() as u32);
                for r in rows {
                    codec::put_u32(&mut out, r.len() as u32);
                    for v in r {
                        put_value(&mut out, v);
                    }
                }
            }
        }
        out
    }

    /// Decode the body of a `REC_OP` payload (tag byte already consumed).
    fn decode(cur: &mut Reader<'_>) -> Result<LoggedOp, EngineError> {
        let op = match cur.u8()? {
            0 => LoggedOp::SetCell {
                row: cur.u32()?,
                col: cur.u32()?,
                input: cur.str()?,
            },
            1 => LoggedOp::SetValue {
                row: cur.u32()?,
                col: cur.u32()?,
                value: read_value(cur)?,
            },
            2 => LoggedOp::InsertRows {
                at: cur.u32()?,
                n: cur.u32()?,
            },
            3 => LoggedOp::DeleteRows {
                at: cur.u32()?,
                n: cur.u32()?,
            },
            4 => LoggedOp::InsertCols {
                at: cur.u32()?,
                n: cur.u32()?,
            },
            5 => LoggedOp::DeleteCols {
                at: cur.u32()?,
                n: cur.u32()?,
            },
            6 => {
                let row = cur.u32()?;
                let col = cur.u32()?;
                let width = cur.u32()?;
                let n_rows = cur.u32()?;
                let mut rows = Vec::with_capacity(n_rows.min(1 << 20) as usize);
                for _ in 0..n_rows {
                    let n_vals = cur.u32()?;
                    let mut vals = Vec::with_capacity(n_vals.min(1 << 16) as usize);
                    for _ in 0..n_vals {
                        vals.push(read_value(cur)?);
                    }
                    rows.push(vals);
                }
                LoggedOp::ImportRows {
                    row,
                    col,
                    width,
                    rows,
                }
            }
            t => return Err(corrupt(&format!("unknown op tag {t}"))),
        };
        cur.expect_done("op").map_err(EngineError::Store)?;
        Ok(op)
    }
}

/// Canonical serialization of one region's cells (count + per-cell
/// address, optional formula source, value).
fn encode_cells(cells: &[(CellAddr, Cell)]) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_u64(&mut out, cells.len() as u64);
    for (addr, cell) in cells {
        codec::put_u32(&mut out, addr.row);
        codec::put_u32(&mut out, addr.col);
        match &cell.formula {
            Some(src) => {
                codec::put_u8(&mut out, 1);
                codec::put_str(&mut out, src);
            }
            None => codec::put_u8(&mut out, 0),
        }
        put_value(&mut out, &cell.value);
    }
    out
}

fn decode_cells(payload: &[u8]) -> Result<Vec<(CellAddr, Cell)>, EngineError> {
    let mut cur = Reader::new(payload);
    let count = cur.u64()?;
    let mut cells = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let row = cur.u32()?;
        let col = cur.u32()?;
        let formula = match cur.u8()? {
            0 => None,
            1 => Some(cur.str()?),
            t => return Err(corrupt(&format!("unknown formula flag {t}"))),
        };
        let value = read_value(&mut cur)?;
        cells.push((CellAddr::new(row, col), Cell { value, formula }));
    }
    cur.expect_done("cells").map_err(EngineError::Store)?;
    Ok(cells)
}

// ---------------------------------------------------- page-allocation map --

/// One region's entry in the page-allocation map.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StoredRegion {
    kind: u8,
    rect: Rect,
    payload_len: u64,
    payload_crc: u32,
    pages: Vec<u64>,
}

fn encode_map(map: &BTreeMap<u64, StoredRegion>) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_u32(&mut out, map.len() as u32);
    for (id, sr) in map {
        codec::put_u64(&mut out, *id);
        codec::put_u8(&mut out, sr.kind);
        codec::put_u32(&mut out, sr.rect.r1);
        codec::put_u32(&mut out, sr.rect.c1);
        codec::put_u32(&mut out, sr.rect.r2);
        codec::put_u32(&mut out, sr.rect.c2);
        codec::put_u64(&mut out, sr.payload_len);
        codec::put_u32(&mut out, sr.payload_crc);
        codec::put_u32(&mut out, sr.pages.len() as u32);
        for p in &sr.pages {
            codec::put_u64(&mut out, *p);
        }
    }
    out
}

fn decode_map(bytes: &[u8]) -> Result<BTreeMap<u64, StoredRegion>, EngineError> {
    let mut cur = Reader::new(bytes);
    let count = cur.u32()?;
    let mut map = BTreeMap::new();
    for _ in 0..count {
        let id = cur.u64()?;
        let kind = cur.u8()?;
        let rect = Rect::new(cur.u32()?, cur.u32()?, cur.u32()?, cur.u32()?);
        let payload_len = cur.u64()?;
        let payload_crc = cur.u32()?;
        let n_pages = cur.u32()?;
        let mut pages = Vec::with_capacity(n_pages.min(1 << 20) as usize);
        for _ in 0..n_pages {
            pages.push(cur.u64()?);
        }
        if map
            .insert(
                id,
                StoredRegion {
                    kind,
                    rect,
                    payload_len,
                    payload_crc,
                    pages,
                },
            )
            .is_some()
        {
            return Err(corrupt(&format!("duplicate region id {id} in page map")));
        }
    }
    cur.expect_done("page map").map_err(EngineError::Store)?;
    Ok(map)
}

fn encode_header(kind: PosMapKind, map_len: u64, map_crc: u32, map_pages: &[u64]) -> Vec<u8> {
    let mut page = Vec::with_capacity(PAGE_SIZE);
    codec::put_bytes(&mut page, IMAGE_MAGIC);
    codec::put_u32(&mut page, IMAGE_VERSION);
    codec::put_u8(&mut page, posmap_code(kind));
    codec::put_u64(&mut page, map_len);
    codec::put_u32(&mut page, map_crc);
    codec::put_u32(&mut page, map_pages.len() as u32);
    for p in map_pages {
        codec::put_u64(&mut page, *p);
    }
    debug_assert!(page.len() <= PAGE_SIZE);
    page.resize(PAGE_SIZE, 0);
    page
}

/// Read a payload stored as `pages` (each fully read from the pager),
/// truncated to `len` bytes.
fn read_paged_payload(pager: &mut Pager, pages: &[u64], len: u64) -> Result<Vec<u8>, EngineError> {
    let mut out = Vec::with_capacity(len as usize);
    for p in pages {
        if out.len() >= len as usize {
            return Err(corrupt("page map lists more pages than the payload needs"));
        }
        let page = pager.read_page(*p)?;
        let want = (len as usize - out.len()).min(PAGE_SIZE);
        out.extend_from_slice(&page[..want]);
    }
    if out.len() != len as usize {
        return Err(corrupt("payload pages missing from page map"));
    }
    Ok(out)
}

/// Split `payload` into page-sized chunks written at `pages`.
fn chunk_payload(payload: &[u8], pages: &[u64], writes: &mut Vec<(u64, Vec<u8>)>) {
    for (i, p) in pages.iter().enumerate() {
        let start = i * PAGE_SIZE;
        let end = (start + PAGE_SIZE).min(payload.len());
        let mut chunk = payload[start..end].to_vec();
        chunk.resize(PAGE_SIZE, 0);
        writes.push((*p, chunk));
    }
}

/// Pop the lowest `n` pages from `free`, growing the file at `grow` when
/// the pool runs dry. Deterministic: the same pre-state and demand always
/// yields the same assignment (checkpoint images are compared
/// byte-for-byte by the recovery suite).
fn alloc_pages(n: usize, free: &mut BTreeSet<u64>, grow: &mut u64) -> Vec<u64> {
    let mut pages = Vec::with_capacity(n);
    for _ in 0..n {
        if let Some(p) = free.iter().next().copied() {
            free.remove(&p);
            pages.push(p);
        } else {
            pages.push(*grow);
            *grow += 1;
        }
    }
    pages
}

// ------------------------------------------------------- durable store --

/// One region recovered from the checkpoint image (cells in local
/// coordinates; the catch-all is reported separately).
#[derive(Debug)]
pub struct RecoveredRegionImage {
    pub id: u64,
    pub kind: ModelKind,
    pub rect: Rect,
    /// Per-cell payload; empty for columnar regions (see `encoded`).
    pub cells: Vec<(CellAddr, Cell)>,
    /// A columnar region's raw native payload, decoded by the translator
    /// itself on restore (`None` for every other kind).
    pub encoded: Option<Vec<u8>>,
}

/// What [`DurableStore::open`] found on disk.
#[derive(Debug)]
pub struct RecoveredState {
    /// Positional-map scheme of the stored image; `None` for a fresh store.
    pub posmap: Option<PosMapKind>,
    /// Catch-all cells of the last durable checkpoint (sheet coordinates).
    pub catchall: Vec<(CellAddr, Cell)>,
    /// Region images of the last durable checkpoint.
    pub regions: Vec<RecoveredRegionImage>,
    /// Committed logical ops appended after that checkpoint, oldest first.
    pub ops: Vec<LoggedOp>,
    /// Whether an interrupted checkpoint had to be rolled back.
    pub rolled_back_checkpoint: bool,
    /// `Some(version)` when the image was written by an older format and
    /// the caller must re-serialize everything at the next checkpoint
    /// (which rewrites the file in the current layout).
    pub migrated_from: Option<u32>,
}

/// Outcome of one checkpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Pages whose bytes changed and were rewritten (header, map, region
    /// payload, and zeroed freed pages combined).
    pub pages_written: u64,
    /// Pre-images journaled to the WAL before the overwrite.
    pub undo_pages: u64,
    /// Image size after the checkpoint, in pages.
    pub page_count: u64,
    /// Serialized payload bytes of the regions submitted dirty.
    pub payload_bytes: u64,
    /// Regions in the image after the checkpoint (catch-all included).
    pub regions_total: u64,
    /// Regions submitted dirty (re-serialized this checkpoint).
    pub regions_dirty: u64,
    /// Dirty regions whose bytes actually changed and were rewritten.
    pub regions_written: u64,
}

/// Counters describing the persistence layer (for benches and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistenceStats {
    /// Valid WAL bytes on disk across all segments (headers included).
    pub wal_bytes: u64,
    /// Live WAL segment files.
    pub wal_segments: u64,
    /// Ops logged since the last checkpoint.
    pub ops_since_checkpoint: u64,
    /// Checkpoints taken through this handle.
    pub checkpoints: u64,
    /// Image size in pages.
    pub image_pages: u64,
    /// Regions tracked by the image's page-allocation map.
    pub image_regions: u64,
    /// Estimated resident (in-memory) bytes of the sheet's storage, by
    /// region layout. Filled in by the engine
    /// ([`SheetEngine::persistence_stats`](crate::SheetEngine::persistence_stats));
    /// zero when read straight off a [`DurableStore`], which does not know
    /// the sheet.
    pub resident_bytes: u64,
    /// Pager cache / I/O counters.
    pub pager: PagerStats,
}

/// The engine-facing persistence handle: one WAL + one region-paged image.
///
/// The WAL is held behind a thread-shareable [`SharedWal`]: ops append
/// commit tickets, and a group-commit coordinator (the workspace's
/// committer thread) can fsync batches through
/// [`DurableStore::commit_wal`] while the engine itself stays
/// single-writer. Commit acknowledgement is thereby decoupled from
/// logging: `log` returns as soon as the record is framed, and the ticket
/// tells waiters when the fsync-point covered it.
pub struct DurableStore {
    dir: PathBuf,
    /// The filesystem every file op goes through (the real fs, or a
    /// fault-injecting wrapper in the chaos suites).
    fs: Arc<dyn StorageFs>,
    wal: Arc<SharedWal>,
    pager: Pager,
    /// The page-allocation map of the on-disk image.
    map: BTreeMap<u64, StoredRegion>,
    /// Pages holding the serialized map itself.
    map_pages: Vec<u64>,
    /// Pages inside the image not used by the map or any region — the
    /// checkpoint allocator's free pool, cached between checkpoints
    /// (computed once at open, maintained incrementally) instead of
    /// re-derived from an O(image pages) rescan each time.
    free_pool: BTreeSet<u64>,
    /// Non-zero when the open image was a v1 whole-sheet payload: that
    /// many pages are treated as previously-used and the next checkpoint
    /// must receive every region dirty (the caller marks the sheet dirty
    /// when `migrated_from` is set).
    legacy_pages: u64,
    ops_since_checkpoint: u64,
    checkpoints: u64,
    auto_checkpoint_ops: Option<u64>,
    /// Commit ticket of the most recently logged op (0 = none yet;
    /// seeded with the recovered ticket horizon so numbering continues
    /// across restarts).
    last_ticket: u64,
    /// Monotone id of this open of the directory (the WAL epoch observed
    /// at open). Strictly increases across successful engine opens — the
    /// recovery checkpoint always bumps the epoch — so a client that sees
    /// it change knows the server restarted.
    incarnation: u64,
    /// Frozen at open: the highest pre-restart commit ticket proven
    /// durable (image + recovered WAL records). Tickets above it were
    /// lost in the restart and must be re-staged by their issuers.
    recovered_horizon: u64,
    /// Set when a WAL append failed mid-op: the on-disk tape has a hole, so
    /// further logging is refused until a successful checkpoint
    /// re-serializes the dirty state and truncates the log.
    poisoned: Option<String>,
    /// Set on a *permanent* storage failure: a failed fsync, or a
    /// checkpoint that died after it started mutating disk. Unlike
    /// `poisoned` this is never cleared — the image may be torn (the undo
    /// journal is what makes that recoverable), so this handle refuses
    /// every further mutation and the only way back is reopening the
    /// directory, which rolls back and replays what actually reached disk.
    failed: Option<String>,
    /// When `failed` was first set (ms since the Unix epoch), for the
    /// operator-facing degrade record.
    failed_at_ms: Option<u64>,
}

/// Best-effort fsync of a directory so freshly created files (and renames)
/// survive a machine crash. Directory handles cannot be opened for sync on
/// all platforms, hence best-effort.
fn sync_dir(fs: &dyn StorageFs, dir: &Path) {
    fs.sync_dir(dir).ok();
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("image_pages", &self.pager.page_count())
            .field("image_regions", &self.map.len())
            .field("ops_since_checkpoint", &self.ops_since_checkpoint)
            .finish()
    }
}

impl DurableStore {
    /// Open (or create) the durable directory, running crash recovery:
    /// undo any interrupted checkpoint, load and verify the image (v1
    /// images are migrated — see [`RecoveredState::migrated_from`]), and
    /// return the committed op tail for the caller to replay.
    pub fn open(dir: impl AsRef<Path>) -> Result<(DurableStore, RecoveredState), EngineError> {
        Self::open_on(real_fs(), dir)
    }

    /// [`DurableStore::open`] with every file op routed through `fs` —
    /// the hook fault-injection tests use to script storage failures.
    pub fn open_on(
        fs: Arc<dyn StorageFs>,
        dir: impl AsRef<Path>,
    ) -> Result<(DurableStore, RecoveredState), EngineError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(StoreError::from)?;
        let mut wal = Wal::open_on(Arc::clone(&fs), wal_path(&dir))?;
        wal.set_segment_limit(Some(DEFAULT_WAL_SEGMENT_BYTES));
        // Recovery below consumes the committed records before the log is
        // wrapped for shared use.
        let mut pager = Pager::with_capacity_on(
            Arc::clone(&fs),
            image_path(&dir),
            dataspread_relstore::pager::DEFAULT_CACHE_PAGES,
        )?;
        // Pin the directory entries for the files we may just have
        // created; without this a machine crash could drop the whole WAL.
        sync_dir(fs.as_ref(), &dir);

        // Correlate the persisted ticket base with the WAL generation on
        // disk. `tickets.meta` records `(epoch-after-truncate, appended
        // tickets at truncate)` and is written immediately *before* every
        // truncate, so exactly three cases are possible:
        //
        // * meta epoch == WAL epoch — the truncate that wrote it
        //   completed; every record now in the log was appended after it,
        //   so the horizon is `base + recovered records`.
        // * meta epoch == WAL epoch + 1 — crashed between the meta write
        //   and the truncate. The log still holds the old generation,
        //   whose records were already counted into `base`; the horizon
        //   is `base` itself.
        // * anything else (absent / corrupt / stale) — fresh sequence:
        //   the horizon is just the recovered record count.
        //
        // Every WAL record consumed one ticket (ops and checkpoint
        // journal records alike), so "records recovered" is exactly the
        // number of tickets the disk proves.
        let records = wal.take_recovered();
        let record_count = records.len() as u64;
        let ticket_base = match read_ticket_meta(fs.as_ref(), &dir) {
            Some((epoch, base)) if epoch == wal.epoch() => base + record_count,
            Some((epoch, base)) if epoch == wal.epoch() + 1 => base,
            _ => record_count,
        };
        let incarnation = wal.epoch();

        // Partition the committed records: logical ops, then (optionally)
        // an unfinished checkpoint journal.
        let mut ops = Vec::new();
        let mut ckpt_old_count: Option<u64> = None;
        let mut undo: Vec<(u64, Vec<u8>)> = Vec::new();
        for record in records {
            let mut cur = Reader::new(&record);
            match cur.u8().map_err(EngineError::Store)? {
                REC_OP => {
                    let op = LoggedOp::decode(&mut cur)?;
                    if ckpt_old_count.is_none() {
                        ops.push(op);
                    }
                    // Ops after a checkpoint-begin cannot occur (the writer
                    // blocks inside checkpoint); tolerate by ignoring.
                }
                REC_CKPT_BEGIN => {
                    ckpt_old_count = Some(cur.u64().map_err(EngineError::Store)?);
                }
                REC_UNDO_PAGE => {
                    let page_no = cur.u64().map_err(EngineError::Store)?;
                    let bytes = cur.take(PAGE_SIZE).map_err(EngineError::Store)?.to_vec();
                    undo.push((page_no, bytes));
                }
                t => return Err(corrupt(&format!("unknown wal record kind {t}"))),
            }
        }

        // Roll back an interrupted checkpoint: restore pre-images, shrink
        // back to the pre-checkpoint page count.
        let rolled_back = ckpt_old_count.is_some();
        if let Some(old_count) = ckpt_old_count {
            for (page_no, bytes) in &undo {
                pager.write_page(*page_no, bytes)?;
            }
            pager.truncate(old_count)?;
            pager.flush()?;
        }

        // Load the image.
        let mut catchall = Vec::new();
        let mut regions = Vec::new();
        let mut posmap = None;
        let mut map = BTreeMap::new();
        let mut map_pages = Vec::new();
        let mut legacy_pages = 0u64;
        let mut migrated_from = None;
        if pager.page_count() > 0 {
            let header = pager.read_page(0)?.to_vec();
            let mut cur = Reader::new(&header);
            if cur.take(4).map_err(EngineError::Store)? != IMAGE_MAGIC {
                return Err(corrupt("image: bad magic"));
            }
            let version = cur.u32().map_err(EngineError::Store)?;
            match version {
                1 => {
                    // Legacy whole-sheet payload: pages 1.. hold one
                    // serialized cell list. Load it as the catch-all; the
                    // next checkpoint rewrites the file region-keyed.
                    let mut cur = Reader::new(&header[..V1_HEADER_LEN]);
                    cur.take(8).map_err(EngineError::Store)?; // magic + version
                    let kind = code_posmap(cur.u8().map_err(EngineError::Store)?)?;
                    let payload_len = cur.u64().map_err(EngineError::Store)?;
                    let payload_crc = cur.u32().map_err(EngineError::Store)?;
                    let payload_pages = (payload_len as usize).div_ceil(PAGE_SIZE) as u64;
                    if pager.page_count() < 1 + payload_pages {
                        return Err(corrupt("image: payload pages missing"));
                    }
                    let pages: Vec<u64> = (1..1 + payload_pages).collect();
                    let payload = read_paged_payload(&mut pager, &pages, payload_len)?;
                    if crc32(&payload) != payload_crc {
                        return Err(corrupt("image: payload checksum mismatch"));
                    }
                    posmap = Some(kind);
                    catchall = decode_cells(&payload)?;
                    legacy_pages = pager.page_count();
                    migrated_from = Some(1);
                }
                IMAGE_VERSION => {
                    let kind = code_posmap(cur.u8().map_err(EngineError::Store)?)?;
                    let map_len = cur.u64().map_err(EngineError::Store)?;
                    let map_crc = cur.u32().map_err(EngineError::Store)?;
                    let n_map_pages = cur.u32().map_err(EngineError::Store)? as usize;
                    if n_map_pages > MAX_MAP_PAGES {
                        return Err(corrupt("image: page map overflows the header"));
                    }
                    for _ in 0..n_map_pages {
                        map_pages.push(cur.u64().map_err(EngineError::Store)?);
                    }
                    let map_bytes = read_paged_payload(&mut pager, &map_pages, map_len)?;
                    if crc32(&map_bytes) != map_crc {
                        return Err(corrupt("image: page map checksum mismatch"));
                    }
                    map = decode_map(&map_bytes)?;
                    for (id, sr) in &map {
                        let payload = read_paged_payload(&mut pager, &sr.pages, sr.payload_len)?;
                        if crc32(&payload) != sr.payload_crc {
                            return Err(corrupt(&format!(
                                "image: region {id} payload checksum mismatch"
                            )));
                        }
                        if *id == CATCHALL_REGION_ID {
                            catchall = decode_cells(&payload)?;
                        } else if sr.kind == KIND_COLUMNAR {
                            // Native encoding: handed to the columnar
                            // translator verbatim (which validates it).
                            regions.push(RecoveredRegionImage {
                                id: *id,
                                kind: ModelKind::Columnar,
                                rect: sr.rect,
                                cells: Vec::new(),
                                encoded: Some(payload),
                            });
                        } else {
                            regions.push(RecoveredRegionImage {
                                id: *id,
                                kind: code_model(sr.kind)?,
                                rect: sr.rect,
                                cells: decode_cells(&payload)?,
                                encoded: None,
                            });
                        }
                    }
                    posmap = Some(kind);
                }
                v => return Err(corrupt(&format!("image: unsupported version {v}"))),
            }
        }

        // Seed the free-pool cache: image pages used by neither the map
        // nor any region (the one full scan; checkpoints maintain it).
        let mut used: BTreeSet<u64> = map_pages.iter().copied().collect();
        for sr in map.values() {
            used.extend(sr.pages.iter().copied());
        }
        if legacy_pages > 0 {
            used.extend(1..legacy_pages);
        }
        let free_pool: BTreeSet<u64> = (1..pager.page_count())
            .filter(|p| !used.contains(p))
            .collect();

        // Continue the pre-restart ticket sequence: appends issued by
        // this incarnation number from `ticket_base + 1`, and everything
        // at or below the base counts as durable.
        let shared = Arc::new(SharedWal::new(wal));
        shared.set_ticket_base(ticket_base);

        Ok((
            DurableStore {
                dir,
                fs,
                wal: shared,
                pager,
                map,
                map_pages,
                free_pool,
                legacy_pages,
                ops_since_checkpoint: ops.len() as u64,
                checkpoints: 0,
                auto_checkpoint_ops: None,
                last_ticket: ticket_base,
                incarnation,
                recovered_horizon: ticket_base,
                poisoned: None,
                failed: None,
                failed_at_ms: None,
            },
            RecoveredState {
                posmap,
                catchall,
                regions,
                ops,
                rolled_back_checkpoint: rolled_back,
                migrated_from,
            },
        ))
    }

    /// Append a logical op to the WAL. The op is committed at the next
    /// [`DurableStore::sync`] (or checkpoint).
    ///
    /// A failed append poisons the store: the caller has already applied
    /// the op in memory, so the on-disk tape now has a hole. Accepting
    /// later appends would make recovery silently skip the missing op, so
    /// every subsequent `log` fails until a checkpoint re-serializes the
    /// affected state and truncates the log.
    ///
    /// Exception: an op over [`MAX_LOGGED_OP_BYTES`] is rejected with
    /// [`StoreError::LimitExceeded`] *before* anything reaches the log —
    /// the tape stays whole, nothing is poisoned, and the caller should
    /// capture the oversized op via [`DurableStore::checkpoint`] instead.
    pub fn log(&mut self, op: &LoggedOp) -> Result<(), EngineError> {
        if let Some(cause) = self.storage_failed() {
            self.note_failed(&cause);
            return Err(EngineError::Store(StoreError::StorageFailed(cause)));
        }
        if let Some(cause) = &self.poisoned {
            return Err(EngineError::Store(StoreError::Io(format!(
                "durable log disabled by an earlier append failure ({cause}); \
                 call checkpoint() to restore durability"
            ))));
        }
        let bytes = op.encode();
        if bytes.len() > MAX_LOGGED_OP_BYTES {
            return Err(EngineError::Store(StoreError::LimitExceeded(format!(
                "logged op of {} bytes exceeds the {MAX_LOGGED_OP_BYTES}-byte \
                 record limit; checkpoint instead",
                bytes.len()
            ))));
        }
        match self.wal.append(&bytes) {
            Ok(ticket) => self.last_ticket = ticket,
            Err(StoreError::StorageFailed(cause)) => {
                self.note_failed(&cause);
                return Err(EngineError::Store(StoreError::StorageFailed(cause)));
            }
            Err(e) => {
                self.poisoned = Some(e.to_string());
                return Err(e.into());
            }
        }
        self.ops_since_checkpoint += 1;
        Ok(())
    }

    /// Shared handle to this store's WAL for group-commit coordinators:
    /// a committer thread fsyncs batches through it while engine ops keep
    /// appending.
    pub fn commit_wal(&self) -> Arc<SharedWal> {
        Arc::clone(&self.wal)
    }

    /// Commit ticket of the most recently logged op (0 when nothing was
    /// logged); pass it to [`SharedWal::wait_durable`] to block until the
    /// op is crash-durable.
    pub fn last_ticket(&self) -> u64 {
        self.last_ticket
    }

    /// The fsync-point: make every logged op crash-durable.
    pub fn sync(&mut self) -> Result<(), EngineError> {
        if let Some(cause) = &self.failed {
            return Err(EngineError::Store(StoreError::StorageFailed(cause.clone())));
        }
        match self.wal.sync() {
            Ok(_) => Ok(()),
            Err(StoreError::StorageFailed(cause)) => {
                self.note_failed(&cause);
                Err(EngineError::Store(StoreError::StorageFailed(cause)))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// The restart-reconciliation pair `(incarnation, horizon)`, both
    /// frozen at open:
    ///
    /// * `incarnation` strictly increases across (successful) opens of
    ///   the directory, so a client comparing it against a remembered
    ///   value detects a server restart — as opposed to a dropped
    ///   connection to a still-running server, after which *nothing* was
    ///   lost and re-staging would double-apply.
    /// * `horizon` is the highest pre-restart commit ticket the disk
    ///   proved durable. After a detected restart, a client re-stages
    ///   exactly its staged ops with tickets above the horizon.
    pub fn recovery_horizon(&self) -> (u64, u64) {
        (self.incarnation, self.recovered_horizon)
    }

    /// Persist the ticket base for the generation the imminent WAL
    /// truncate creates: `(current epoch + 1, tickets appended so far)`,
    /// written atomically (temp file + rename) so a crash at any byte
    /// leaves either the old or the new meta, never a torn one. Called
    /// *before* the truncate; see the correlation rules in
    /// [`DurableStore::open_on`] for why either ordering outcome
    /// recovers the right horizon.
    fn write_ticket_meta(&self) -> Result<(), StoreError> {
        let epoch_after = self.wal.with(|w| w.epoch()) + 1;
        let bytes = encode_ticket_meta(epoch_after, self.wal.appended_seq());
        let tmp = self.dir.join("tickets.meta.tmp");
        let mut f = self.fs.open(&tmp, OpenMode::Truncate)?;
        f.write_at(0, &bytes)?;
        f.sync_data()?;
        drop(f);
        self.fs.rename(&tmp, &ticket_path(&self.dir))?;
        sync_dir(self.fs.as_ref(), &self.dir);
        Ok(())
    }

    /// The permanent-failure state of this store: `Some(cause)` once an
    /// fsync failed or a checkpoint died after it started mutating disk.
    /// A failed store refuses every further mutation (in-memory reads
    /// still serve); the only recovery is reopening the directory, which
    /// rolls back the torn image and replays what actually reached disk.
    pub fn storage_failed(&self) -> Option<String> {
        self.failed.clone().or_else(|| self.wal.poisoned())
    }

    /// [`DurableStore::storage_failed`] plus when the failure was first
    /// recorded (ms since the Unix epoch) — the operator-facing degrade
    /// record surfaced through stats and metrics snapshots.
    pub fn storage_failed_info(&self) -> Option<(String, u64)> {
        match (&self.failed, self.failed_at_ms) {
            (Some(cause), at) => Some((cause.clone(), at.unwrap_or(0))),
            (None, _) => self.wal.poisoned_info(),
        }
    }

    /// Record a permanent failure, stamping the first occurrence.
    fn note_failed(&mut self, cause: &str) {
        if self.failed.is_none() {
            self.failed_at_ms = Some(
                self.wal
                    .poisoned_info()
                    .map(|(_, at)| at)
                    .filter(|&at| at > 0)
                    .unwrap_or_else(dataspread_obs::now_ms),
            );
        }
        self.failed = Some(cause.to_string());
    }

    /// Record a mid-checkpoint failure and normalize the error to
    /// [`StoreError::StorageFailed`]: once the apply phase has begun, any
    /// error leaves the image possibly torn with (part of) the undo
    /// journal on disk, so the handle is disabled for good.
    fn storage_fail(&mut self, e: impl Into<EngineError>) -> EngineError {
        let cause = match e.into() {
            EngineError::Store(StoreError::StorageFailed(m)) => m,
            other => other.to_string(),
        };
        self.note_failed(&cause);
        EngineError::Store(StoreError::StorageFailed(cause))
    }

    /// Checkpoint: fold the submitted region images into the paged image
    /// and truncate the WAL.
    ///
    /// `regions` must describe *every* current region (catch-all
    /// included): entries with `cells: Some(..)` are re-serialized into
    /// freshly allocated pages; entries with `cells: None` are clean and
    /// keep their existing pages untouched; map entries for ids that no
    /// longer appear are dropped and their pages freed (and zeroed). Only
    /// pages whose bytes changed are written; their pre-images are
    /// journaled first so a crash mid-checkpoint rolls back cleanly on the
    /// next open.
    pub fn checkpoint(
        &mut self,
        kind: PosMapKind,
        regions: &[RegionImage],
    ) -> Result<CheckpointReport, EngineError> {
        // A permanently failed store cannot checkpoint its way back: the
        // WAL can no longer prove durability (or the image is already
        // torn), so the only recovery is a reopen.
        if let Some(cause) = self.storage_failed() {
            self.note_failed(&cause);
            return Err(EngineError::Store(StoreError::StorageFailed(cause)));
        }
        // A failed append may have left garbage bytes past the valid
        // prefix; drop them so the journal below lands in a clean log.
        if self.poisoned.is_some() {
            self.wal.with(|w| w.truncate_to_valid())?;
        }
        let old_count = self.pager.page_count();

        // Pages used by the previous image (header excluded).
        let mut prev_used: BTreeSet<u64> = self.map_pages.iter().copied().collect();
        for sr in self.map.values() {
            prev_used.extend(sr.pages.iter().copied());
        }
        if self.legacy_pages > 0 {
            prev_used.extend(1..self.legacy_pages);
        }

        // Partition the input: clean entries carry their stored pages
        // over; dirty entries are serialized (and clean-ified when the
        // bytes come out identical to what is already stored).
        let mut new_map: BTreeMap<u64, StoredRegion> = BTreeMap::new();
        let mut dirty: Vec<(u64, u8, Rect, Vec<u8>)> = Vec::new();
        let mut regions_dirty = 0u64;
        let mut payload_bytes = 0u64;
        for r in regions {
            let kind_tag = model_code(r.id, r.kind);
            match &r.payload {
                Some(content) => {
                    regions_dirty += 1;
                    let payload = match content {
                        RegionPayload::Cells(cells) => encode_cells(cells),
                        RegionPayload::Encoded(bytes) => bytes.clone(),
                    };
                    payload_bytes += payload.len() as u64;
                    let stored_pages = self.map.get(&r.id).and_then(|old| {
                        (old.payload_len == payload.len() as u64
                            && old.payload_crc == crc32(&payload))
                        .then(|| old.pages.clone())
                    });
                    let unchanged = match stored_pages {
                        Some(pages) => self.stored_payload_equals(&pages, &payload)?,
                        None => false,
                    };
                    if unchanged {
                        let old = self.map.get(&r.id).expect("matched above");
                        new_map.insert(
                            r.id,
                            StoredRegion {
                                kind: kind_tag,
                                rect: r.rect,
                                ..old.clone()
                            },
                        );
                    } else {
                        dirty.push((r.id, kind_tag, r.rect, payload));
                    }
                }
                None => {
                    let Some(old) = self.map.get(&r.id) else {
                        return Err(corrupt(&format!(
                            "region {} reported clean but has no stored image",
                            r.id
                        )));
                    };
                    new_map.insert(
                        r.id,
                        StoredRegion {
                            kind: kind_tag,
                            rect: r.rect,
                            ..old.clone()
                        },
                    );
                }
            }
        }

        // Free pool: the cached between-checkpoints pool, plus everything
        // the old image used that the new one does not retain — the old
        // map pages (always rewritten or re-derived), the pages of regions
        // being rewritten or dropped, and a legacy image's whole payload
        // run. Equivalent to the full `(1..old_count)` rescan this
        // replaced (same set, so page assignment — and therefore image
        // bytes — stay identical), but O(changed pages), not O(image).
        let mut free = self.free_pool.clone();
        free.extend(self.map_pages.iter().copied());
        if self.legacy_pages > 0 {
            free.extend(1..self.legacy_pages);
        }
        // Every id in new_map so far carried its stored pages over
        // verbatim (clean or byte-identical entries); only ids absent from
        // it — rewritten below or dropped — release pages.
        for (id, sr) in &self.map {
            if !new_map.contains_key(id) {
                free.extend(sr.pages.iter().copied());
            }
        }
        let mut grow = old_count.max(1);

        // Allocate pages for the rewritten regions (ascending id).
        let mut writes: Vec<(u64, Vec<u8>)> = Vec::new();
        let regions_written = dirty.len() as u64;
        dirty.sort_by_key(|(id, ..)| *id);
        for (id, kind_tag, rect, payload) in &dirty {
            let pages = alloc_pages(
                payload.len().div_ceil(PAGE_SIZE).max(1),
                &mut free,
                &mut grow,
            );
            chunk_payload(payload, &pages, &mut writes);
            new_map.insert(
                *id,
                StoredRegion {
                    kind: *kind_tag,
                    rect: *rect,
                    payload_len: payload.len() as u64,
                    payload_crc: crc32(payload),
                    pages,
                },
            );
        }

        // Serialize the map and place it after the region payloads.
        // Allocation is lowest-free-first throughout, which is
        // self-stabilizing: a checkpoint with no changes re-derives the
        // exact same assignment and therefore writes nothing.
        let map_bytes = encode_map(&new_map);
        let map_needed = map_bytes.len().div_ceil(PAGE_SIZE).max(1);
        if map_needed > MAX_MAP_PAGES {
            return Err(EngineError::Store(StoreError::LimitExceeded(format!(
                "page-allocation map needs {map_needed} pages (max {MAX_MAP_PAGES})"
            ))));
        }
        let map_pages_new = alloc_pages(map_needed, &mut free, &mut grow);
        chunk_payload(&map_bytes, &map_pages_new, &mut writes);
        writes.push((
            0,
            encode_header(
                kind,
                map_bytes.len() as u64,
                crc32(&map_bytes),
                &map_pages_new,
            ),
        ));

        // New extent, and the zero-fill of freed pages inside it.
        let mut new_used: BTreeSet<u64> = map_pages_new.iter().copied().collect();
        for sr in new_map.values() {
            new_used.extend(sr.pages.iter().copied());
        }
        let new_count = new_used.iter().max().map_or(1, |m| m + 1);
        for p in &prev_used {
            if !new_used.contains(p) && *p < new_count {
                writes.push((*p, vec![0u8; PAGE_SIZE]));
            }
        }

        // Diff against the old image: journal pre-images of pages about to
        // change; skip untouched ones entirely.
        writes.sort_by_key(|(p, _)| *p);
        let mut changed: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut undo: Vec<(u64, Vec<u8>)> = Vec::new();
        for (page_no, bytes) in writes {
            if page_no < old_count {
                let old = self.pager.read_page(page_no)?.to_vec();
                if old == bytes {
                    continue;
                }
                undo.push((page_no, old));
            }
            changed.push((page_no, bytes));
        }
        // Pages beyond the new end are dropped by the truncate below;
        // journal the previously-used ones so rollback can restore them
        // (never-used tail pages are zero and re-grow as zero).
        if new_count < old_count {
            for p in prev_used.range(new_count..old_count) {
                undo.push((*p, self.pager.read_page(*p)?.to_vec()));
            }
        }

        let report = CheckpointReport {
            pages_written: changed.len() as u64,
            undo_pages: undo.len() as u64,
            page_count: new_count,
            payload_bytes,
            regions_total: new_map.len() as u64,
            regions_dirty,
            regions_written,
        };

        if changed.is_empty() && new_count == old_count {
            // Image already current — just fold the op tail away. A
            // truncate failure poisons the log (the old tape may be torn),
            // so the store hard-fails with it.
            if let Err(e) = self.write_ticket_meta().and_then(|()| self.wal.truncate()) {
                return Err(self.storage_fail(e));
            }
            self.commit_map(new_map, map_pages_new, free, new_count);
            return Ok(report);
        }

        if let Err(e) = self.checkpoint_apply(old_count, &undo, &changed, new_count) {
            return Err(self.storage_fail(e));
        }
        self.commit_map(new_map, map_pages_new, free, new_count);
        Ok(report)
    }

    /// The mutating tail of a checkpoint. Every write here is covered by
    /// the undo journal written (and fsynced) first, so the caller maps
    /// any error to a permanent failure: the in-process image may be torn,
    /// and reopening the directory rolls it back byte-for-byte.
    fn checkpoint_apply(
        &mut self,
        old_count: u64,
        undo: &[(u64, Vec<u8>)],
        changed: &[(u64, Vec<u8>)],
        new_count: u64,
    ) -> Result<(), StoreError> {
        // 1. Journal pre-images, durably.
        let mut begin = vec![REC_CKPT_BEGIN];
        codec::put_u64(&mut begin, old_count);
        self.wal.append(&begin)?;
        for (page_no, old) in undo {
            let mut rec = Vec::with_capacity(1 + 8 + PAGE_SIZE);
            rec.push(REC_UNDO_PAGE);
            codec::put_u64(&mut rec, *page_no);
            rec.extend_from_slice(old);
            self.wal.append(&rec)?;
        }
        self.wal.sync()?;
        // 2. Overwrite in place, durably.
        for (page_no, new) in changed {
            self.pager.write_page(*page_no, new)?;
        }
        if new_count < old_count {
            self.pager.truncate(new_count)?;
        }
        self.pager.flush()?;
        // 3. The checkpoint is now the truth; drop the log. The ticket
        // base is persisted first so commit tickets survive the truncate
        // across a restart.
        self.write_ticket_meta()?;
        self.wal.truncate()?;
        Ok(())
    }

    fn commit_map(
        &mut self,
        map: BTreeMap<u64, StoredRegion>,
        map_pages: Vec<u64>,
        mut free: BTreeSet<u64>,
        new_count: u64,
    ) {
        // What the allocator did not hand out is the next checkpoint's
        // pool; pages past the new end were truncated away.
        free.retain(|p| *p < new_count);
        self.free_pool = free;
        self.map = map;
        self.map_pages = map_pages;
        self.legacy_pages = 0;
        self.ops_since_checkpoint = 0;
        self.checkpoints += 1;
        self.poisoned = None;
    }

    /// Byte-compare a stored payload (crc/len already matched) against a
    /// freshly serialized one, so a dirty-flagged region whose content is
    /// actually unchanged keeps its pages.
    fn stored_payload_equals(
        &mut self,
        pages: &[u64],
        payload: &[u8],
    ) -> Result<bool, EngineError> {
        if pages
            .iter()
            .any(|p| *p >= self.pager.page_count() || *p == 0)
        {
            return Err(corrupt("page map references an out-of-range page"));
        }
        for (i, p) in pages.iter().enumerate() {
            let start = i * PAGE_SIZE;
            let end = (start + PAGE_SIZE).min(payload.len());
            if start >= end {
                break;
            }
            let page = self.pager.read_page(*p)?;
            if page[..end - start] != payload[start..end] {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Arrange for the owner to checkpoint automatically every `ops` logged
    /// operations (`None` disables; the default).
    pub fn set_auto_checkpoint(&mut self, ops: Option<u64>) {
        self.auto_checkpoint_ops = ops;
    }

    /// Rotate the WAL to a new segment file past `bytes`; fully
    /// checkpointed segments are deleted at the next checkpoint (`None`
    /// keeps a single unbounded file).
    pub fn set_wal_segment_limit(&mut self, bytes: Option<u64>) {
        self.wal.with(|w| w.set_segment_limit(bytes));
    }

    /// True when the auto-checkpoint threshold has been reached.
    pub fn should_checkpoint(&self) -> bool {
        self.auto_checkpoint_ops
            .is_some_and(|n| self.ops_since_checkpoint >= n)
    }

    pub fn stats(&self) -> PersistenceStats {
        let (wal_bytes, wal_segments) = self.wal.with(|w| (w.len_bytes(), w.segment_count()));
        PersistenceStats {
            wal_bytes,
            wal_segments,
            ops_since_checkpoint: self.ops_since_checkpoint,
            checkpoints: self.checkpoints,
            image_pages: self.pager.page_count(),
            image_regions: self.map.len() as u64,
            resident_bytes: 0,
            pager: self.pager.stats(),
        }
    }

    /// The durable directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dataspread-durable-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn cell(v: f64) -> Cell {
        Cell::value(v)
    }

    /// The catch-all as a checkpoint image (`dirty` controls whether the
    /// cells are submitted for serialization).
    fn catchall_image(cells: &[(CellAddr, Cell)], dirty: bool) -> RegionImage {
        RegionImage {
            id: CATCHALL_REGION_ID,
            kind: ModelKind::Rcv,
            rect: Rect::new(0, 0, 0, 0),
            payload: dirty.then(|| RegionPayload::Cells(cells.to_vec())),
        }
    }

    fn region_image(id: u64, rect: Rect, cells: Option<Vec<(CellAddr, Cell)>>) -> RegionImage {
        RegionImage {
            id,
            kind: ModelKind::Rom,
            rect,
            payload: cells.map(RegionPayload::Cells),
        }
    }

    #[test]
    fn op_codec_roundtrip() {
        let ops = vec![
            LoggedOp::SetCell {
                row: 3,
                col: 9,
                input: "=SUM(A1:A9)".into(),
            },
            LoggedOp::SetValue {
                row: 0,
                col: 0,
                value: CellValue::Text("x".into()),
            },
            LoggedOp::SetValue {
                row: 1,
                col: 1,
                value: CellValue::Error(CellError::Div0),
            },
            LoggedOp::InsertRows { at: 5, n: 2 },
            LoggedOp::DeleteRows { at: 0, n: 1 },
            LoggedOp::InsertCols { at: 7, n: 3 },
            LoggedOp::DeleteCols { at: 2, n: 2 },
            LoggedOp::ImportRows {
                row: 10,
                col: 4,
                width: 3,
                rows: vec![
                    vec![
                        CellValue::Number(1.0),
                        CellValue::Text("a".into()),
                        CellValue::Bool(true),
                    ],
                    vec![CellValue::Empty, CellValue::Number(-2.5)],
                ],
            },
        ];
        for op in ops {
            let enc = op.encode();
            assert_eq!(enc[0], REC_OP);
            let mut cur = Reader::new(&enc[1..]);
            assert_eq!(LoggedOp::decode(&mut cur).unwrap(), op);
        }
    }

    #[test]
    fn cells_codec_roundtrip() {
        let cells = vec![
            (CellAddr::new(0, 0), cell(1.5)),
            (
                CellAddr::new(2, 3),
                Cell {
                    value: CellValue::Number(42.0),
                    formula: Some("A1*2".into()),
                },
            ),
            (CellAddr::new(9, 9), Cell::value("text")),
            (CellAddr::new(4, 4), Cell::value(true)),
            (
                CellAddr::new(5, 5),
                Cell {
                    value: CellValue::Error(CellError::Circular),
                    formula: Some("A6".into()),
                },
            ),
        ];
        let enc = encode_cells(&cells);
        assert_eq!(decode_cells(&enc).unwrap(), cells);
    }

    #[test]
    fn fresh_open_then_log_then_recover() {
        let dir = temp_dir("log-recover");
        {
            let (mut store, recovered) = DurableStore::open(&dir).unwrap();
            assert!(recovered.posmap.is_none());
            assert!(recovered.catchall.is_empty() && recovered.ops.is_empty());
            assert!(recovered.regions.is_empty());
            store
                .log(&LoggedOp::SetCell {
                    row: 1,
                    col: 1,
                    input: "7".into(),
                })
                .unwrap();
            store.log(&LoggedOp::InsertRows { at: 0, n: 2 }).unwrap();
            store.sync().unwrap();
        }
        let (_, recovered) = DurableStore::open(&dir).unwrap();
        assert_eq!(recovered.ops.len(), 2);
        assert_eq!(
            recovered.ops[0],
            LoggedOp::SetCell {
                row: 1,
                col: 1,
                input: "7".into()
            }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_persists_cells_and_truncates_wal() {
        let dir = temp_dir("ckpt");
        let cells = vec![
            (CellAddr::new(0, 0), cell(1.0)),
            (CellAddr::new(1, 0), cell(2.0)),
        ];
        {
            let (mut store, _) = DurableStore::open(&dir).unwrap();
            store
                .log(&LoggedOp::SetCell {
                    row: 0,
                    col: 0,
                    input: "1".into(),
                })
                .unwrap();
            let report = store
                .checkpoint(PosMapKind::Hierarchical, &[catchall_image(&cells, true)])
                .unwrap();
            // Header + 1 payload page + 1 map page.
            assert_eq!(report.page_count, 3);
            assert!(report.pages_written >= 1);
            assert_eq!(report.regions_total, 1);
            assert_eq!(report.regions_written, 1);
            assert_eq!(store.stats().ops_since_checkpoint, 0);
        }
        let (store, recovered) = DurableStore::open(&dir).unwrap();
        assert_eq!(recovered.posmap, Some(PosMapKind::Hierarchical));
        assert_eq!(recovered.catchall, cells);
        assert!(recovered.ops.is_empty());
        assert!(!recovered.rolled_back_checkpoint);
        assert!(recovered.migrated_from.is_none());
        assert_eq!(store.stats().image_pages, 3);
        assert_eq!(store.stats().image_regions, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unchanged_checkpoint_writes_no_pages() {
        let dir = temp_dir("ckpt-noop");
        let cells = vec![(CellAddr::new(0, 0), cell(5.0))];
        let (mut store, _) = DurableStore::open(&dir).unwrap();
        store
            .checkpoint(PosMapKind::Hierarchical, &[catchall_image(&cells, true)])
            .unwrap();
        // Clean submission: nothing re-serialized, nothing written.
        let second = store
            .checkpoint(PosMapKind::Hierarchical, &[catchall_image(&cells, false)])
            .unwrap();
        assert_eq!(second.pages_written, 0);
        assert_eq!(second.undo_pages, 0);
        assert_eq!(second.regions_dirty, 0);
        // Dirty-flagged but byte-identical: pages are reused, not rewritten.
        let third = store
            .checkpoint(PosMapKind::Hierarchical, &[catchall_image(&cells, true)])
            .unwrap();
        assert_eq!(third.pages_written, 0);
        assert_eq!(third.regions_dirty, 1);
        assert_eq!(third.regions_written, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn only_dirty_regions_are_rewritten() {
        let dir = temp_dir("ckpt-regions");
        let (mut store, _) = DurableStore::open(&dir).unwrap();
        let band = |id: u64| -> Vec<(CellAddr, Cell)> {
            (0..400u32)
                .map(|i| (CellAddr::new(i, 0), cell((id * 1000 + i as u64) as f64)))
                .collect()
        };
        let full = store
            .checkpoint(
                PosMapKind::Hierarchical,
                &[
                    catchall_image(&[], true),
                    region_image(1, Rect::new(0, 0, 399, 0), Some(band(1))),
                    region_image(2, Rect::new(500, 0, 899, 0), Some(band(2))),
                ],
            )
            .unwrap();
        assert_eq!(full.regions_total, 3);
        assert_eq!(full.regions_written, 3);
        // Touch only region 2.
        let mut changed = band(2);
        changed[7].1 = cell(-1.0);
        let incr = store
            .checkpoint(
                PosMapKind::Hierarchical,
                &[
                    catchall_image(&[], false),
                    region_image(1, Rect::new(0, 0, 399, 0), None),
                    region_image(2, Rect::new(500, 0, 899, 0), Some(changed.clone())),
                ],
            )
            .unwrap();
        assert_eq!(incr.regions_dirty, 1);
        assert_eq!(incr.regions_written, 1);
        // Only region 2's pages + the map + header can change.
        assert!(
            incr.pages_written <= 2 + full.pages_written / 3 + 1,
            "incremental checkpoint rewrote too much: {incr:?}"
        );
        drop(store);
        let (_, recovered) = DurableStore::open(&dir).unwrap();
        assert_eq!(recovered.regions.len(), 2);
        let r2 = recovered.regions.iter().find(|r| r.id == 2).unwrap();
        assert_eq!(r2.cells, changed);
        assert_eq!(r2.rect, Rect::new(500, 0, 899, 0));
        let r1 = recovered.regions.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(r1.cells, band(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deleted_region_pages_are_freed_and_zeroed() {
        let dir = temp_dir("ckpt-delete");
        let (mut store, _) = DurableStore::open(&dir).unwrap();
        let cells: Vec<(CellAddr, Cell)> = (0..600u32)
            .map(|i| (CellAddr::new(i, 0), Cell::value(format!("row-{i}"))))
            .collect();
        store
            .checkpoint(
                PosMapKind::Hierarchical,
                &[
                    catchall_image(&[], true),
                    region_image(1, Rect::new(0, 0, 599, 0), Some(cells)),
                ],
            )
            .unwrap();
        let after = store
            .checkpoint(PosMapKind::Hierarchical, &[catchall_image(&[], false)])
            .unwrap();
        assert_eq!(after.regions_total, 1);
        drop(store);
        let (store, recovered) = DurableStore::open(&dir).unwrap();
        assert!(recovered.regions.is_empty());
        // The image shrank back: the dropped region's pages are gone or
        // zeroed, never left holding stale payload bytes.
        assert!(store.stats().image_pages <= 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_region_checkpoint_rolls_back() {
        let dir = temp_dir("ckpt-undo");
        let region_cells = vec![(CellAddr::new(0, 0), cell(1.0))];
        {
            let (mut store, _) = DurableStore::open(&dir).unwrap();
            store
                .checkpoint(
                    PosMapKind::Hierarchical,
                    &[
                        catchall_image(&[(CellAddr::new(90, 9), cell(9.0))], true),
                        region_image(1, Rect::new(0, 0, 9, 0), Some(region_cells.clone())),
                    ],
                )
                .unwrap();
            store
                .log(&LoggedOp::SetCell {
                    row: 0,
                    col: 0,
                    input: "2".into(),
                })
                .unwrap();
            store.sync().unwrap();
        }
        // Simulate a crash *inside* the next region checkpoint: the undo
        // journal is durable, the header page is torn, the WAL was never
        // truncated.
        {
            let (mut store, _) = DurableStore::open(&dir).unwrap();
            let mut begin = vec![REC_CKPT_BEGIN];
            codec::put_u64(&mut begin, store.pager.page_count());
            store.wal.append(&begin).unwrap();
            let old0 = store.pager.read_page(0).unwrap().to_vec();
            let mut rec = vec![REC_UNDO_PAGE];
            codec::put_u64(&mut rec, 0);
            rec.extend_from_slice(&old0);
            store.wal.append(&rec).unwrap();
            store.wal.sync().unwrap();
            // Tear: clobber the header page, never truncate the WAL.
            store.pager.write_page(0, &vec![0xAB; PAGE_SIZE]).unwrap();
            store.pager.flush().unwrap();
        }
        // Recovery must roll the header back and replay the logged op.
        let (_, recovered) = DurableStore::open(&dir).unwrap();
        assert!(recovered.rolled_back_checkpoint);
        assert_eq!(recovered.regions.len(), 1);
        assert_eq!(recovered.regions[0].cells, region_cells);
        assert_eq!(recovered.catchall, vec![(CellAddr::new(90, 9), cell(9.0))]);
        assert_eq!(recovered.ops.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn image_shrinks_when_cells_shrink() {
        let dir = temp_dir("shrink");
        let big: Vec<(CellAddr, Cell)> = (0..2000u32)
            .map(|i| (CellAddr::new(i, 0), Cell::value(format!("row-{i}"))))
            .collect();
        let (mut store, _) = DurableStore::open(&dir).unwrap();
        let r1 = store
            .checkpoint(PosMapKind::Hierarchical, &[catchall_image(&big, true)])
            .unwrap();
        assert!(r1.page_count > 3);
        let small = vec![(CellAddr::new(0, 0), cell(1.0))];
        let r2 = store
            .checkpoint(PosMapKind::Hierarchical, &[catchall_image(&small, true)])
            .unwrap();
        assert_eq!(r2.page_count, 3, "header + payload page + map page");
        assert!(r2.undo_pages >= r1.page_count - r2.page_count);
        drop(store);
        let (_, recovered) = DurableStore::open(&dir).unwrap();
        assert_eq!(recovered.catchall, small);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_op_is_refused_without_poisoning_the_log() {
        let dir = temp_dir("oversized-op");
        let (mut store, _) = DurableStore::open(&dir).unwrap();
        // An import encoding past the record limit must be rejected before
        // anything reaches the log (the caller checkpoints instead)...
        let huge = LoggedOp::ImportRows {
            row: 0,
            col: 0,
            width: 1,
            rows: vec![vec![CellValue::Text("x".repeat(MAX_LOGGED_OP_BYTES))]],
        };
        let err = store.log(&huge).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Store(StoreError::LimitExceeded(_))
        ));
        // ...and the tape stays whole: later ops log and recover fine.
        store
            .log(&LoggedOp::SetCell {
                row: 0,
                col: 0,
                input: "1".into(),
            })
            .unwrap();
        store.sync().unwrap();
        drop(store);
        let (_, recovered) = DurableStore::open(&dir).unwrap();
        assert_eq!(recovered.ops.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_region_without_stored_image_is_rejected() {
        let dir = temp_dir("clean-missing");
        let (mut store, _) = DurableStore::open(&dir).unwrap();
        let err = store
            .checkpoint(PosMapKind::Hierarchical, &[catchall_image(&[], false)])
            .unwrap_err();
        assert!(matches!(err, EngineError::Store(StoreError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
