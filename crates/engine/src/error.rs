//! Engine error type.

use dataspread_formula::ParseError;
use dataspread_grid::GridError;
use dataspread_rel::RelError;
use dataspread_relstore::StoreError;

/// Errors surfaced by the storage engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    Store(StoreError),
    Grid(GridError),
    Formula(ParseError),
    Rel(RelError),
    /// The operation is not supported by this translator (e.g. structural
    /// column edits on a linked table).
    Unsupported(String),
    /// linkTable target problems (size mismatch, overlapping regions, …).
    BadLink(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Store(e) => write!(f, "storage: {e}"),
            EngineError::Grid(e) => write!(f, "grid: {e}"),
            EngineError::Formula(e) => write!(f, "formula: {e}"),
            EngineError::Rel(e) => write!(f, "relational: {e}"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::BadLink(m) => write!(f, "link error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}
impl From<GridError> for EngineError {
    fn from(e: GridError) -> Self {
        EngineError::Grid(e)
    }
}
impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Formula(e)
    }
}
impl From<RelError> for EngineError {
    fn from(e: RelError) -> Self {
        EngineError::Rel(e)
    }
}
impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Store(StoreError::Io(e.to_string()))
    }
}
