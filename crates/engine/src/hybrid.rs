//! The hybrid translator (paper §VI): routes sheet regions to per-region
//! translators, with an RCV catch-all for cells outside every region.
//!
//! "The hybrid translator is responsible for mapping the different regions
//! on a spreadsheet to corresponding data models … services getCells by
//! identifying the responsible data model and delegating the call to it."
//! Sheet-level structural edits update region metadata (rectangles) and
//! forward to the translators whose regions they cross — never a cascading
//! renumber.

use std::collections::BTreeMap;

use dataspread_grid::{Cell, CellAddr, Rect, SparseSheet};
use dataspread_hybrid::{Decomposition, ModelKind};
use dataspread_posmap::PosMapKind;

use crate::columnar::{ColumnAgg, ColumnarTranslator, ScanValue};
use crate::com::ComTranslator;
use crate::error::EngineError;
use crate::rcv::RcvTranslator;
use crate::rom::RomTranslator;
use crate::translator::Translator;

/// Region id of the catch-all pseudo-region in checkpoint images (real
/// regions are numbered from 1).
pub const CATCHALL_REGION_ID: u64 = 0;

/// One region of the sheet and its translator.
pub struct RegionSlot {
    /// Stable identity for region-granular persistence: survives rect
    /// shifts and reopen, so a checkpoint can key page allocations by it.
    pub id: u64,
    pub rect: Rect,
    pub translator: Box<dyn Translator>,
    /// Set by every mutator that changes this region's *cells* (not by
    /// pure rect translations); cleared after a successful checkpoint.
    dirty: bool,
    /// The translator's [`Translator::change_stamp`] at the last
    /// checkpoint. For translators whose backing store can change without
    /// a sheet mutator (TOM: direct SQL on the linked table), a stamp
    /// mismatch means "dirty" even though `dirty` is false; `None` for
    /// self-contained translators, where the flag is exhaustive.
    clean_stamp: Option<u64>,
}

/// Row-interval routing index over the (pairwise disjoint) region
/// rectangles, so point routing and window fetches stop scanning the whole
/// region list — O(log R) instead of O(R) per `get_cell`/`set_cell`.
///
/// The row axis is cut at every region boundary into *elementary bands*:
/// each region listed in a band covers the band's full row span, which
/// makes the per-band column ranges pairwise disjoint (two regions sharing
/// rows with overlapping columns would intersect). Routing is therefore two
/// binary searches: band by row, then column entry within the band.
///
/// Rebuilt on region add/remove/restore/reorganize and on row/column
/// *deletions* (regions can vanish, shifting slot indices); row/column
/// *insertions* — the interactive structural edits — update it in place.
#[derive(Debug, Default, Clone)]
struct RoutingIndex {
    /// Sorted, disjoint row bands (only bands with at least one region are
    /// stored; rows outside every band route to the catch-all).
    bands: Vec<RowBand>,
}

#[derive(Debug, Clone)]
struct RowBand {
    r1: u32,
    r2: u32,
    /// `(c1, c2, region slot index)` sorted by `c1`; disjoint, so `c2` is
    /// strictly increasing as well.
    cols: Vec<(u32, u32, usize)>,
}

impl RoutingIndex {
    /// Sweep-build from the current region slots: O(R log R) plus the
    /// band-region incidence count (O(R) for the typical band layout).
    fn build(regions: &[RegionSlot]) -> RoutingIndex {
        if regions.is_empty() {
            return RoutingIndex::default();
        }
        let mut cuts: Vec<u32> = Vec::with_capacity(regions.len() * 2);
        for r in regions {
            cuts.push(r.rect.r1);
            if let Some(next) = r.rect.r2.checked_add(1) {
                cuts.push(next);
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        let mut by_start: Vec<usize> = (0..regions.len()).collect();
        by_start.sort_unstable_by_key(|&i| regions[i].rect.r1);
        let mut by_end: Vec<usize> = (0..regions.len()).collect();
        by_end.sort_unstable_by_key(|&i| regions[i].rect.r2);
        // Every active region covers the current cut row, so the active
        // column ranges are pairwise disjoint: keying by c1 keeps them
        // sorted for the band snapshots.
        let mut active: BTreeMap<u32, (u32, usize)> = BTreeMap::new();
        let (mut si, mut ei) = (0, 0);
        let mut bands = Vec::new();
        for (ci, &cut) in cuts.iter().enumerate() {
            while ei < by_end.len() && regions[by_end[ei]].rect.r2 < cut {
                let gone = active.remove(&regions[by_end[ei]].rect.c1);
                debug_assert_eq!(gone.map(|(_, idx)| idx), Some(by_end[ei]));
                ei += 1;
            }
            while si < by_start.len() && regions[by_start[si]].rect.r1 <= cut {
                let rect = regions[by_start[si]].rect;
                active.insert(rect.c1, (rect.c2, by_start[si]));
                si += 1;
            }
            if active.is_empty() {
                continue;
            }
            let r2 = cuts.get(ci + 1).map(|&next| next - 1).unwrap_or(u32::MAX);
            bands.push(RowBand {
                r1: cut,
                r2,
                cols: active
                    .iter()
                    .map(|(&c1, &(c2, idx))| (c1, c2, idx))
                    .collect(),
            });
        }
        RoutingIndex { bands }
    }

    /// The slot index of the region containing `addr`, if any.
    fn route(&self, addr: CellAddr) -> Option<usize> {
        let bi = self.bands.partition_point(|b| b.r2 < addr.row);
        let band = self.bands.get(bi)?;
        if band.r1 > addr.row {
            return None;
        }
        let ci = band.cols.partition_point(|&(c1, _, _)| c1 <= addr.col);
        let &(c1, c2, idx) = band.cols.get(ci.checked_sub(1)?)?;
        (addr.col >= c1 && addr.col <= c2).then_some(idx)
    }

    /// Slot indices of all regions intersecting `rect`, ascending and
    /// deduplicated (a region spans every band its rows cut through).
    fn regions_intersecting(&self, rect: &Rect) -> Vec<usize> {
        let mut out = Vec::new();
        let start = self.bands.partition_point(|b| b.r2 < rect.r1);
        for band in &self.bands[start..] {
            if band.r1 > rect.r2 {
                break;
            }
            // Entries sorted by c1 with c2 increasing: binary-search the
            // first whose c2 reaches the window, walk until c1 passes it.
            let ci = band.cols.partition_point(|&(_, c2, _)| c2 < rect.c1);
            for &(c1, _, idx) in &band.cols[ci..] {
                if c1 > rect.c2 {
                    break;
                }
                out.push(idx);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Mirror the region-rect updates of [`HybridSheet::insert_rows`]: a
    /// band strictly containing the cut widens (all its regions gain the
    /// inserted rows); if the cut lands on a band boundary, the regions
    /// spanning that boundary get a fresh band for the inserted rows; and
    /// every band at or below the cut shifts down.
    fn insert_rows(&mut self, at: u32, n: u32) {
        let first = self.bands.partition_point(|b| b.r2 < at);
        let mut shift_from = first;
        let mut fresh: Option<RowBand> = None;
        if let Some(b) = self.bands.get(first) {
            if b.r1 < at {
                self.bands[first].r2 = self.bands[first].r2.saturating_add(n);
                shift_from = first + 1;
            } else if b.r1 == at && at > 0 && first > 0 {
                let below = &self.bands[first - 1];
                if below.r2 + 1 == at {
                    // Regions covering both `at-1` and `at` grow; they are
                    // exactly the slots present in both adjacent bands.
                    let lower: std::collections::HashSet<usize> =
                        below.cols.iter().map(|&(_, _, idx)| idx).collect();
                    let spanning: Vec<(u32, u32, usize)> = b
                        .cols
                        .iter()
                        .copied()
                        .filter(|&(_, _, idx)| lower.contains(&idx))
                        .collect();
                    if !spanning.is_empty() {
                        fresh = Some(RowBand {
                            r1: at,
                            r2: at + n - 1,
                            cols: spanning,
                        });
                    }
                }
            }
        }
        for b in &mut self.bands[shift_from..] {
            b.r1 += n;
            b.r2 = b.r2.saturating_add(n);
        }
        if let Some(f) = fresh {
            self.bands.insert(first, f);
        }
    }

    /// Mirror [`HybridSheet::remove_region`] without a rebuild: drop the
    /// removed slot's column entry from every band listing it, renumber
    /// the slot indices above it (`Vec::remove` shifted them down by one),
    /// drop bands left empty, and re-merge band pairs whose only cut was
    /// the removed region. One pass over the bands — no sweep, no sort,
    /// no reallocation of untouched bands (the delete used to pay the full
    /// O(R log R) [`RoutingIndex::build`]).
    fn remove_slot(&mut self, slot: usize) {
        self.bands.retain_mut(|band| {
            band.cols.retain(|&(_, _, idx)| idx != slot);
            for e in &mut band.cols {
                if e.2 > slot {
                    e.2 -= 1;
                }
            }
            !band.cols.is_empty()
        });
        // Adjacent bands whose boundary existed only because of the
        // removed region now hold identical column lists; merging them
        // restores the canonical elementary-band form.
        self.bands.dedup_by(|curr, prev| {
            if prev.r2.checked_add(1) == Some(curr.r1) && prev.cols == curr.cols {
                prev.r2 = curr.r2;
                true
            } else {
                false
            }
        });
    }

    /// Mirror the region-rect updates of [`HybridSheet::insert_cols`]:
    /// band rows are untouched; each column entry shifts or grows exactly
    /// like its region's rectangle.
    fn insert_cols(&mut self, at: u32, n: u32) {
        for band in &mut self.bands {
            for e in &mut band.cols {
                if at <= e.0 {
                    e.0 += n;
                    e.1 += n;
                } else if at <= e.1 {
                    e.1 += n;
                }
            }
        }
    }
}

impl std::fmt::Debug for RegionSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegionSlot")
            .field("id", &self.id)
            .field("rect", &self.rect.to_a1())
            .field("kind", &self.translator.kind())
            .field("dirty", &self.dirty)
            .finish()
    }
}

/// Serialized content of one region in a checkpoint image.
pub enum RegionPayload {
    /// Generic per-cell payload (ROM/COM/RCV/TOM and the catch-all).
    /// Region cells are in *local* coordinates, catch-all cells in sheet
    /// coordinates; both sorted row-major.
    Cells(Vec<(CellAddr, Cell)>),
    /// A translator's native pre-encoded payload
    /// ([`Translator::encoded_image`]): columnar regions checkpoint their
    /// compressed pages directly, so image size tracks the compressed —
    /// not the logical — footprint.
    Encoded(Vec<u8>),
}

/// One region's contribution to a checkpoint: identity + layout metadata
/// always, the actual payload only when the region is dirty (that is the
/// whole point of region-granular persistence — clean regions are never
/// re-serialized).
pub struct RegionImage {
    pub id: u64,
    pub kind: ModelKind,
    /// Sheet-coordinate rectangle (meaningless for the catch-all).
    pub rect: Rect,
    /// `Some(payload)` iff dirty.
    pub payload: Option<RegionPayload>,
}

/// Source bytes for rebuilding one region on recovery.
#[derive(Debug, Clone, Copy)]
pub enum RegionSource<'a> {
    /// Per-cell payload in local coordinates.
    Cells(&'a [(CellAddr, Cell)]),
    /// A columnar region's native encoding
    /// ([`ColumnarTranslator::from_bytes`]).
    Encoded(&'a [u8]),
}

/// A sheet stored as a hybrid data model.
#[derive(Debug)]
pub struct HybridSheet {
    regions: Vec<RegionSlot>,
    /// Row-interval index over `regions` for sub-linear routing; kept in
    /// sync by every method that changes region rects or slot positions.
    routing: RoutingIndex,
    /// RCV over the whole sheet's coordinate space for stray cells.
    catchall: RcvTranslator,
    catchall_dirty: bool,
    next_region_id: u64,
    posmap_kind: PosMapKind,
}

impl Default for HybridSheet {
    fn default() -> Self {
        Self::new()
    }
}

impl HybridSheet {
    pub fn new() -> Self {
        Self::with_posmap(PosMapKind::default())
    }

    pub fn with_posmap(posmap_kind: PosMapKind) -> Self {
        HybridSheet {
            regions: Vec::new(),
            routing: RoutingIndex::default(),
            catchall: RcvTranslator::new(posmap_kind),
            // A brand-new sheet has never been serialized: the first
            // checkpoint must write the (empty) catch-all image.
            catchall_dirty: true,
            next_region_id: CATCHALL_REGION_ID + 1,
            posmap_kind,
        }
    }

    pub fn posmap_kind(&self) -> PosMapKind {
        self.posmap_kind
    }

    /// Current region layout (rect, model) — the hybrid metadata.
    pub fn layout(&self) -> Vec<(Rect, ModelKind)> {
        self.regions
            .iter()
            .map(|r| (r.rect, r.translator.kind()))
            .collect()
    }

    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Create a translator for `kind` (TOM regions are added via
    /// [`HybridSheet::add_region`] by the engine's linkTable).
    fn make_translator(&self, kind: ModelKind) -> Box<dyn Translator> {
        match kind {
            ModelKind::Rom => Box::new(RomTranslator::new(self.posmap_kind)),
            ModelKind::Com => Box::new(ComTranslator::new(self.posmap_kind)),
            ModelKind::Rcv | ModelKind::Tom => Box::new(RcvTranslator::new(self.posmap_kind)),
            // Bulk paths (reorganize, restore, migrate) build columnar
            // translators directly; this empty one only serves stray
            // per-cell construction.
            ModelKind::Columnar => Box::new(ColumnarTranslator::new(0, 0)),
        }
    }

    /// Register a region. Fails when it overlaps an existing region.
    pub fn add_region(
        &mut self,
        rect: Rect,
        translator: Box<dyn Translator>,
    ) -> Result<(), EngineError> {
        self.add_region_unindexed(rect, translator)?;
        self.routing = RoutingIndex::build(&self.regions);
        Ok(())
    }

    /// [`HybridSheet::add_region`] without the routing-index refresh —
    /// bulk callers (reorganize) add many regions and rebuild once.
    fn add_region_unindexed(
        &mut self,
        rect: Rect,
        translator: Box<dyn Translator>,
    ) -> Result<(), EngineError> {
        if self.regions.iter().any(|r| r.rect.intersects(&rect)) {
            return Err(EngineError::BadLink(format!(
                "region {rect} overlaps an existing region"
            )));
        }
        // Move any catch-all cells inside the new region into it.
        let strays = self.catchall.get_range(rect);
        let id = self.next_region_id;
        self.next_region_id += 1;
        self.regions.push(RegionSlot {
            id,
            rect,
            translator,
            dirty: true,
            clean_stamp: None,
        });
        let slot = self.regions.len() - 1;
        for (addr, cell) in strays {
            self.catchall.clear_cell(addr.row, addr.col)?;
            self.catchall_dirty = true;
            let local_r = addr.row - rect.r1;
            let local_c = addr.col - rect.c1;
            self.regions[slot]
                .translator
                .set_cell(local_r, local_c, cell)?;
        }
        Ok(())
    }

    /// Rebuild one region from a checkpoint image (recovery path): the slot
    /// keeps its persisted id, and `cells` are local coordinates. TOM
    /// regions come back as RCV holding the captured values (the table
    /// link itself is not persisted; see the README).
    pub fn restore_region(
        &mut self,
        id: u64,
        kind: ModelKind,
        rect: Rect,
        cells: &[(CellAddr, Cell)],
    ) -> Result<(), EngineError> {
        self.restore_regions(std::iter::once((
            id,
            kind,
            rect,
            RegionSource::Cells(cells),
        )))
    }

    /// Restore a whole image's regions with a single routing-index rebuild
    /// (the cold-open path: per-region rebuilds would make opening a
    /// many-region sheet quadratic). Columnar regions restore from their
    /// native encoding without per-cell replay.
    pub fn restore_regions<'a>(
        &mut self,
        regions: impl IntoIterator<Item = (u64, ModelKind, Rect, RegionSource<'a>)>,
    ) -> Result<(), EngineError> {
        let mut result = Ok(());
        'restore: for (id, kind, rect, source) in regions {
            if id == CATCHALL_REGION_ID || self.regions.iter().any(|r| r.id == id) {
                result = Err(EngineError::BadLink(format!(
                    "restore of duplicate region id {id}"
                )));
                break;
            }
            let translator: Box<dyn Translator> = match (kind, source) {
                (ModelKind::Columnar, RegionSource::Encoded(bytes)) => {
                    match ColumnarTranslator::from_bytes(bytes) {
                        Ok(t) => Box::new(t),
                        Err(e) => {
                            result = Err(e.into());
                            break 'restore;
                        }
                    }
                }
                (_, RegionSource::Encoded(_)) => {
                    result = Err(EngineError::BadLink(format!(
                        "region {id}: encoded payload for a non-columnar region"
                    )));
                    break 'restore;
                }
                (ModelKind::Columnar, RegionSource::Cells(cells)) => {
                    Box::new(ColumnarTranslator::from_cells(
                        rect.rows() as u32,
                        rect.cols() as u32,
                        cells.iter().cloned(),
                    ))
                }
                (_, RegionSource::Cells(cells)) => {
                    let mut t = self.make_translator(kind);
                    for (addr, cell) in cells {
                        if let Err(e) = t.set_cell(addr.row, addr.col, cell.clone()) {
                            result = Err(e);
                            break 'restore;
                        }
                    }
                    t
                }
            };
            self.regions.push(RegionSlot {
                id,
                rect,
                translator,
                dirty: true,
                clean_stamp: None,
            });
            self.next_region_id = self.next_region_id.max(id + 1);
        }
        // Rebuild even on error: the slots pushed before the failure are
        // live and the index must cover them.
        self.routing = RoutingIndex::build(&self.regions);
        result
    }

    pub fn remove_region(&mut self, idx: usize) -> RegionSlot {
        let slot = self.regions.remove(idx);
        // Slot indices after `idx` shifted down; the index updates in
        // place (no rebuild) — see `RoutingIndex::remove_slot`.
        self.routing.remove_slot(idx);
        slot
    }

    // -------------------------------------------------- dirty tracking --

    /// Per-region checkpoint images: identity + layout for every region
    /// (catch-all first as [`CATCHALL_REGION_ID`]), cells only for the
    /// dirty ones. TOM regions — whose content lives in the database and
    /// can change without any sheet mutator running — are dirty whenever
    /// the database's change counter moved since the last checkpoint
    /// ([`Translator::change_stamp`]); a quiet database lets a checkpoint
    /// skip re-serializing them entirely (and the persistence layer still
    /// skips the page writes when serialized bytes come out unchanged).
    pub fn region_images(&self) -> Vec<RegionImage> {
        let whole = Rect::new(0, 0, u32::MAX - 1, u32::MAX - 1);
        let mut out = Vec::with_capacity(1 + self.regions.len());
        out.push(RegionImage {
            id: CATCHALL_REGION_ID,
            kind: ModelKind::Rcv,
            rect: Rect::new(0, 0, 0, 0),
            payload: self
                .catchall_dirty
                .then(|| RegionPayload::Cells(sorted_cells(self.catchall.get_range(whole)))),
        });
        for r in &self.regions {
            let dirty = r.dirty || r.translator.change_stamp() != r.clean_stamp;
            out.push(RegionImage {
                id: r.id,
                kind: r.translator.kind(),
                rect: r.rect,
                payload: dirty.then(|| match r.translator.encoded_image() {
                    Some(bytes) => RegionPayload::Encoded(bytes),
                    None => RegionPayload::Cells(sorted_cells(r.translator.all_cells())),
                }),
            });
        }
        out.sort_by_key(|r| r.id);
        out
    }

    /// Mark every region (and the catch-all) clean — called after a
    /// successful checkpoint, and after restoring from a current image.
    pub fn clear_dirty(&mut self) {
        self.catchall_dirty = false;
        for r in &mut self.regions {
            r.dirty = false;
            r.clean_stamp = r.translator.change_stamp();
        }
    }

    /// Force full re-serialization at the next checkpoint (migration from
    /// a legacy image, storage reorganizations).
    pub fn mark_all_dirty(&mut self) {
        self.catchall_dirty = true;
        for r in &mut self.regions {
            r.dirty = true;
            r.clean_stamp = None;
        }
    }

    /// Regions currently flagged dirty (catch-all included; stamp-based
    /// dirtiness of TOM regions is not counted — it is only known at
    /// image-capture time).
    pub fn dirty_region_count(&self) -> usize {
        self.regions.iter().filter(|r| r.dirty).count() + usize::from(self.catchall_dirty)
    }

    fn route(&self, addr: CellAddr) -> Option<usize> {
        self.routing.route(addr)
    }

    /// The slot index of the region containing `addr` (routing-index
    /// fast path). Exposed for the routing differential tests and the
    /// `exp_hotpath` benchmark.
    pub fn region_at(&self, addr: CellAddr) -> Option<usize> {
        self.routing.route(addr)
    }

    /// Scan-based routing oracle — the pre-index implementation, retained
    /// as the reference for differential tests and as the perf baseline in
    /// `exp_hotpath`. Region rects are pairwise disjoint, so this agrees
    /// with [`HybridSheet::region_at`] on every address.
    pub fn region_at_scan(&self, addr: CellAddr) -> Option<usize> {
        self.regions.iter().position(|r| r.rect.contains(addr))
    }

    pub fn get_cell(&self, addr: CellAddr) -> Option<Cell> {
        match self.route(addr) {
            Some(i) => {
                let r = &self.regions[i];
                r.translator
                    .get_cell(addr.row - r.rect.r1, addr.col - r.rect.c1)
            }
            None => self.catchall.get_cell(addr.row, addr.col),
        }
    }

    pub fn set_cell(&mut self, addr: CellAddr, cell: Cell) -> Result<(), EngineError> {
        match self.route(addr) {
            Some(i) => {
                let r = &mut self.regions[i];
                r.dirty = true;
                r.translator
                    .set_cell(addr.row - r.rect.r1, addr.col - r.rect.c1, cell)
            }
            None => {
                self.catchall_dirty = true;
                self.catchall.set_cell(addr.row, addr.col, cell)
            }
        }
    }

    /// Batched update of several cells in one sheet row (the interactive
    /// "paste a row" / range-update path of Figure 22). Consumes the batch:
    /// cells *move* into their owning translator — no clones while
    /// grouping, and no per-region scratch allocation proportional to the
    /// region count.
    pub fn set_cells_in_row(
        &mut self,
        row: u32,
        cells: Vec<(u32, Cell)>,
    ) -> Result<(), EngineError> {
        // Group the columns by owning region so row-oriented translators
        // rewrite each row tuple once. A single row crosses few regions,
        // so a first-encounter list beats a map.
        let mut remaining: Vec<(u32, Cell)> = Vec::new();
        let mut groups: Vec<(usize, Vec<(u32, Cell)>)> = Vec::new();
        for (col, cell) in cells {
            match self.route(CellAddr::new(row, col)) {
                Some(i) => match groups.iter_mut().find(|(slot, _)| *slot == i) {
                    Some((_, group)) => group.push((col, cell)),
                    None => groups.push((i, vec![(col, cell)])),
                },
                None => remaining.push((col, cell)),
            }
        }
        for (i, group) in groups {
            let rect = self.regions[i].rect;
            let local: Vec<(u32, Cell)> =
                group.into_iter().map(|(c, v)| (c - rect.c1, v)).collect();
            self.regions[i].dirty = true;
            self.regions[i]
                .translator
                .set_cells_in_row(row - rect.r1, local)?;
        }
        if remaining.is_empty() {
            return Ok(());
        }
        self.catchall_dirty = true;
        self.catchall.set_cells_in_row(row, remaining)
    }

    pub fn clear_cell(&mut self, addr: CellAddr) -> Result<(), EngineError> {
        match self.route(addr) {
            Some(i) => {
                let r = &mut self.regions[i];
                r.dirty = true;
                r.translator
                    .clear_cell(addr.row - r.rect.r1, addr.col - r.rect.c1)
            }
            None => {
                self.catchall_dirty = true;
                self.catchall.clear_cell(addr.row, addr.col)
            }
        }
    }

    /// `getCells(range)`: all non-blank cells in `rect`, row-major. The
    /// routing index narrows the merge to the regions actually crossing
    /// the window; when none does, the catch-all's range scan is already
    /// row-major and the merge sort is skipped entirely.
    pub fn get_cells(&self, rect: Rect) -> Vec<(CellAddr, Cell)> {
        let mut out = self.catchall.get_range(rect);
        let hits = self.routing.regions_intersecting(&rect);
        if hits.is_empty() {
            return out;
        }
        for &i in &hits {
            let region = &self.regions[i];
            if let Some(hit) = rect.intersection(&region.rect) {
                let local = hit.translate(-(region.rect.r1 as i64), -(region.rect.c1 as i64));
                for (addr, cell) in region.translator.get_range(local) {
                    out.push((
                        addr.offset(region.rect.r1 as i64, region.rect.c1 as i64),
                        cell,
                    ));
                }
            }
        }
        // Each cell lives in exactly one store, so no equal keys exist and
        // an unstable sort is safe.
        out.sort_unstable_by_key(|(a, _)| (a.row, a.col));
        out
    }

    /// Sheet-level `insertRowAfter`-style edit: rows at `at` and below
    /// shift down by `n`.
    ///
    /// Regions entirely below the edit only *translate* — their local
    /// cells are untouched, so they stay clean for the next checkpoint
    /// (the rect change lands in the page-map, not in region payloads).
    pub fn insert_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        if self.catchall.rows() > at {
            self.catchall.insert_rows(at, n)?;
            self.catchall_dirty = true;
        }
        for region in &mut self.regions {
            if at <= region.rect.r1 {
                region.rect = region.rect.translate(n as i64, 0);
            } else if at <= region.rect.r2 {
                region.translator.insert_rows(at - region.rect.r1, n)?;
                region.rect.r2 += n;
                region.dirty = true;
            }
        }
        // Rects only translated or grew; slot indices are unchanged, so
        // the routing index updates in place.
        self.routing.insert_rows(at, n);
        Ok(())
    }

    pub fn delete_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        if self.catchall.rows() > at {
            self.catchall.delete_rows(at, n)?;
            self.catchall_dirty = true;
        }
        let end = at + n; // exclusive
        let mut doomed = Vec::new();
        for (i, region) in self.regions.iter_mut().enumerate() {
            if region.rect.r1 >= end {
                // Entirely below: shift up.
                region.rect = region.rect.translate(-(n as i64), 0);
            } else if region.rect.r2 < at {
                // Entirely above: untouched.
            } else {
                // Overlap: delete the covered local rows.
                let first = at.max(region.rect.r1);
                let last = (end - 1).min(region.rect.r2);
                let k = last - first + 1;
                if k as u64 >= region.rect.rows() {
                    doomed.push(i);
                    continue;
                }
                region.dirty = true;
                region.translator.delete_rows(first - region.rect.r1, k)?;
                // Deleted rows strictly above the region shift it up; the
                // k rows removed inside shrink it.
                let deleted_above = region.rect.r1.saturating_sub(at);
                region.rect.r1 -= deleted_above;
                region.rect.r2 -= deleted_above + k;
            }
        }
        for i in doomed.into_iter().rev() {
            self.regions.remove(i);
        }
        // Deletions can drop regions (shifting slot indices) and merge or
        // shrink bands arbitrarily; rebuild.
        self.routing = RoutingIndex::build(&self.regions);
        Ok(())
    }

    pub fn insert_cols(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        if self.catchall.cols() > at {
            self.catchall.insert_cols(at, n)?;
            self.catchall_dirty = true;
        }
        for region in &mut self.regions {
            if at <= region.rect.c1 {
                region.rect = region.rect.translate(0, n as i64);
            } else if at <= region.rect.c2 {
                region.translator.insert_cols(at - region.rect.c1, n)?;
                region.rect.c2 += n;
                region.dirty = true;
            }
        }
        self.routing.insert_cols(at, n);
        Ok(())
    }

    pub fn delete_cols(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        if self.catchall.cols() > at {
            self.catchall.delete_cols(at, n)?;
            self.catchall_dirty = true;
        }
        let end = at + n;
        let mut doomed = Vec::new();
        for (i, region) in self.regions.iter_mut().enumerate() {
            if region.rect.c1 >= end {
                region.rect = region.rect.translate(0, -(n as i64));
            } else if region.rect.c2 < at {
                // untouched
            } else {
                let first = at.max(region.rect.c1);
                let last = (end - 1).min(region.rect.c2);
                let k = last - first + 1;
                if k as u64 >= region.rect.cols() {
                    doomed.push(i);
                    continue;
                }
                region.dirty = true;
                region.translator.delete_cols(first - region.rect.c1, k)?;
                let deleted_left = region.rect.c1.saturating_sub(at);
                region.rect.c1 -= deleted_left;
                region.rect.c2 -= deleted_left + k;
            }
        }
        for i in doomed.into_iter().rev() {
            self.regions.remove(i);
        }
        self.routing = RoutingIndex::build(&self.regions);
        Ok(())
    }

    /// All non-blank cells as an in-memory sheet. `include_tom` controls
    /// whether linked-table regions are materialized (the optimizer snapshot
    /// excludes them: they are not re-representable).
    pub fn snapshot(&self, include_tom: bool) -> SparseSheet {
        let mut sheet = SparseSheet::new();
        for (addr, cell) in self
            .catchall
            .get_range(Rect::new(0, 0, u32::MAX - 1, u32::MAX - 1))
        {
            sheet.set(addr, cell);
        }
        for region in &self.regions {
            if !include_tom && region.translator.kind() == ModelKind::Tom {
                continue;
            }
            for (addr, cell) in region.translator.all_cells() {
                sheet.set(
                    addr.offset(region.rect.r1 as i64, region.rect.c1 as i64),
                    cell,
                );
            }
        }
        sheet
    }

    /// Reorganize storage to a new decomposition (the hybrid optimizer's
    /// output). TOM regions are preserved; everything else is rebuilt.
    /// Returns the number of migrated cells.
    pub fn reorganize(&mut self, decomp: &Decomposition) -> Result<u64, EngineError> {
        // Collect all cells currently in non-TOM storage.
        let mut cells: Vec<(CellAddr, Cell)> = Vec::new();
        let whole = Rect::new(0, 0, u32::MAX - 1, u32::MAX - 1);
        cells.extend(self.catchall.get_range(whole));
        let mut kept_regions = Vec::new();
        for region in self.regions.drain(..) {
            if region.translator.kind() == ModelKind::Tom {
                kept_regions.push(region);
            } else {
                for (addr, cell) in region.translator.all_cells() {
                    cells.push((
                        addr.offset(region.rect.r1 as i64, region.rect.c1 as i64),
                        cell,
                    ));
                }
            }
        }
        self.regions = kept_regions;
        self.routing = RoutingIndex::build(&self.regions);
        self.catchall = RcvTranslator::new(self.posmap_kind);
        // Kept TOM regions are serialized as dirty anyway; everything else
        // was rebuilt, so the whole sheet must re-serialize.
        self.mark_all_dirty();
        // Build the new regions (one routing rebuild for the whole batch).
        let migrated = cells.len() as u64;
        for region in &decomp.regions {
            if region.kind == ModelKind::Tom {
                continue; // TOM regions are created by linkTable only.
            }
            let translator: Box<dyn Translator> = if region.kind == ModelKind::Columnar {
                // Bulk-build directly from the cells landing in this
                // region: routing each through the write overlay would
                // trigger a column rebuild every compaction interval.
                let rect = region.rect;
                let (inside, outside): (Vec<_>, Vec<_>) = std::mem::take(&mut cells)
                    .into_iter()
                    .partition(|(addr, _)| rect.contains(*addr));
                cells = outside;
                Box::new(ColumnarTranslator::from_cells(
                    rect.rows() as u32,
                    rect.cols() as u32,
                    inside.into_iter().map(|(addr, cell)| {
                        (addr.offset(-(rect.r1 as i64), -(rect.c1 as i64)), cell)
                    }),
                ))
            } else {
                self.make_translator(region.kind)
            };
            self.add_region_unindexed(region.rect, translator)?;
        }
        self.routing = RoutingIndex::build(&self.regions);
        // Distribute the remaining cells.
        for (addr, cell) in cells {
            self.set_cell(addr, cell)?;
        }
        Ok(migrated)
    }

    /// Rebuild one region's storage in place under a different model,
    /// keeping its identity and rectangle (the hot-region migration path:
    /// a large read-mostly ROM region converts to columnar without a
    /// whole-sheet reorganization). TOM regions are linked tables and
    /// cannot convert either way.
    pub fn migrate_region(&mut self, slot: usize, kind: ModelKind) -> Result<(), EngineError> {
        let region = self
            .regions
            .get_mut(slot)
            .ok_or_else(|| EngineError::BadLink(format!("no region slot {slot}")))?;
        let from = region.translator.kind();
        if from == kind {
            return Ok(());
        }
        if from == ModelKind::Tom || kind == ModelKind::Tom {
            return Err(EngineError::BadLink(
                "TOM regions are created by linkTable and cannot be migrated".into(),
            ));
        }
        let cells = region.translator.all_cells();
        region.translator = if kind == ModelKind::Columnar {
            Box::new(ColumnarTranslator::from_cells(
                region.rect.rows() as u32,
                region.rect.cols() as u32,
                cells,
            ))
        } else {
            let mut t = match kind {
                ModelKind::Rom => {
                    Box::new(RomTranslator::new(self.posmap_kind)) as Box<dyn Translator>
                }
                ModelKind::Com => Box::new(ComTranslator::new(self.posmap_kind)),
                _ => Box::new(RcvTranslator::new(self.posmap_kind)),
            };
            for (addr, cell) in cells {
                t.set_cell(addr.row, addr.col, cell)?;
            }
            t
        };
        region.dirty = true;
        region.clean_stamp = None;
        Ok(())
    }

    /// The aggregate fast path: when `rect` is a single-column range served
    /// entirely by one columnar region, fold it straight off the typed
    /// columns ([`ColumnarTranslator::column_agg`]) — same row order, same
    /// first-error abort as the evaluator's per-cell walk. `None` means
    /// "no fast path here", not an empty result.
    pub fn range_agg(&self, rect: Rect) -> Option<ColumnAgg> {
        if rect.c1 != rect.c2 || rect.r1 > rect.r2 {
            return None;
        }
        let region = self.sole_columnar_region(&rect)?;
        let t = region.translator.as_columnar()?;
        Some(t.column_agg(
            rect.c1 - region.rect.c1,
            rect.r1 - region.rect.r1,
            rect.r2 - region.rect.r1,
        ))
    }

    /// The window fast path: when `rect` is served entirely by one columnar
    /// region, stream its values (including empty positions, row-major)
    /// through `f` as `(sheet row, sheet col, value, formula)` without
    /// materializing [`Cell`]s. Returns `false` — emitting nothing — when
    /// the window is not columnar-resident; callers fall back to
    /// [`HybridSheet::get_cells`].
    pub fn scan_columnar_window(
        &self,
        rect: Rect,
        mut f: impl FnMut(u32, u32, ScanValue<'_>, Option<&str>),
    ) -> bool {
        let Some(region) = self.sole_columnar_region(&rect) else {
            return false;
        };
        let Some(t) = region.translator.as_columnar() else {
            return false;
        };
        let local = rect.translate(-(region.rect.r1 as i64), -(region.rect.c1 as i64));
        t.scan_rect(local, |row, col, v, formula| {
            f(row + region.rect.r1, col + region.rect.c1, v, formula)
        });
        true
    }

    /// The region serving *all* of `rect`, provided it is columnar. Full
    /// containment also proves the catch-all is empty inside `rect`: any
    /// cell there would have routed into the region.
    fn sole_columnar_region(&self, rect: &Rect) -> Option<&RegionSlot> {
        let hits = self.routing.regions_intersecting(rect);
        let [slot] = hits[..] else {
            return None;
        };
        let region = &self.regions[slot];
        (region.translator.kind() == ModelKind::Columnar
            && region.rect.intersection(rect) == Some(*rect))
        .then_some(region)
    }

    /// Formula cells inside columnar regions, in sheet coordinates (the
    /// recovery path re-registers these straight from the restored
    /// translators — their cells never materialize through the image).
    pub fn columnar_formula_cells(&self) -> Vec<(CellAddr, String)> {
        let mut out = Vec::new();
        for region in &self.regions {
            if let Some(t) = region.translator.as_columnar() {
                t.for_each_formula(|row, col, src| {
                    out.push((
                        CellAddr::new(row + region.rect.r1, col + region.rect.c1),
                        src.to_string(),
                    ));
                });
            }
        }
        out
    }

    /// Accounted storage bytes across regions and the catch-all.
    pub fn storage_bytes(&self) -> u64 {
        self.catchall.storage_bytes()
            + self
                .regions
                .iter()
                .map(|r| r.translator.storage_bytes())
                .sum::<u64>()
    }

    pub fn filled_count(&self) -> u64 {
        self.catchall.filled_count()
            + self
                .regions
                .iter()
                .map(|r| r.translator.filled_count())
                .sum::<u64>()
    }

    /// Estimated resident (in-memory) bytes across regions and the
    /// catch-all ([`Translator::resident_bytes`]); differs from
    /// [`HybridSheet::storage_bytes`] for compressed layouts.
    pub fn resident_bytes(&self) -> u64 {
        self.catchall.resident_bytes()
            + self
                .regions
                .iter()
                .map(|r| r.translator.resident_bytes())
                .sum::<u64>()
    }

    /// Per-region resident-byte accounting: `(rect, kind, resident bytes)`
    /// for every region, the catch-all excluded.
    pub fn region_resident_bytes(&self) -> Vec<(Rect, ModelKind, u64)> {
        self.regions
            .iter()
            .map(|r| (r.rect, r.translator.kind(), r.translator.resident_bytes()))
            .collect()
    }
}

/// Canonical cell ordering for serialized region payloads: the same
/// logical content must always produce the same bytes (the recovery suite
/// compares checkpoint images byte-for-byte).
fn sorted_cells(mut cells: Vec<(CellAddr, Cell)>) -> Vec<(CellAddr, Cell)> {
    cells.sort_by_key(|(a, _)| (a.row, a.col));
    cells
}

/// A cache-less [`CellReader`](dataspread_formula::eval::CellReader) over
/// hybrid storage — used by benchmarks to measure raw formula access cost
/// against different data models (Figure 15b / 17b).
pub struct StorageReader<'a>(pub &'a HybridSheet);

impl dataspread_formula::eval::CellReader for StorageReader<'_> {
    fn value(&self, addr: CellAddr) -> dataspread_grid::CellValue {
        self.0
            .get_cell(addr)
            .map(|c| c.value)
            .unwrap_or(dataspread_grid::CellValue::Empty)
    }

    fn range_values(&self, rect: Rect) -> Vec<(CellAddr, dataspread_grid::CellValue)> {
        self.0
            .get_cells(rect)
            .into_iter()
            .map(|(a, c)| (a, c.value))
            .collect()
    }

    fn range_agg(&self, rect: Rect) -> Option<dataspread_formula::RangeAgg> {
        self.0.range_agg(rect).map(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_grid::CellValue;
    use dataspread_hybrid::Region;

    fn addr(r: u32, c: u32) -> CellAddr {
        CellAddr::new(r, c)
    }

    fn sheet_with_rom_region() -> HybridSheet {
        let mut hs = HybridSheet::new();
        let rom = Box::new(RomTranslator::new(PosMapKind::Hierarchical));
        hs.add_region(Rect::new(10, 10, 19, 14), rom).unwrap();
        hs
    }

    #[test]
    fn routing_region_vs_catchall() {
        let mut hs = sheet_with_rom_region();
        hs.set_cell(addr(10, 10), Cell::value(1i64)).unwrap();
        hs.set_cell(addr(0, 0), Cell::value(2i64)).unwrap();
        assert_eq!(
            hs.get_cell(addr(10, 10)).unwrap().value,
            CellValue::Number(1.0)
        );
        assert_eq!(
            hs.get_cell(addr(0, 0)).unwrap().value,
            CellValue::Number(2.0)
        );
        assert_eq!(hs.layout().len(), 1);
        assert_eq!(hs.filled_count(), 2);
    }

    #[test]
    fn add_region_absorbs_strays_and_rejects_overlap() {
        let mut hs = HybridSheet::new();
        hs.set_cell(addr(5, 5), Cell::value(7i64)).unwrap();
        let rom = Box::new(RomTranslator::new(PosMapKind::Hierarchical));
        hs.add_region(Rect::new(0, 0, 9, 9), rom).unwrap();
        // The stray moved out of the catch-all into the region.
        assert_eq!(hs.catchall.filled_count(), 0);
        assert_eq!(
            hs.get_cell(addr(5, 5)).unwrap().value,
            CellValue::Number(7.0)
        );
        let rom2 = Box::new(RomTranslator::new(PosMapKind::Hierarchical));
        assert!(hs.add_region(Rect::new(9, 9, 12, 12), rom2).is_err());
    }

    #[test]
    fn get_cells_merges_regions_and_catchall() {
        let mut hs = sheet_with_rom_region();
        hs.set_cell(addr(12, 12), Cell::value(1i64)).unwrap();
        hs.set_cell(addr(5, 12), Cell::value(2i64)).unwrap();
        let cells = hs.get_cells(Rect::new(0, 0, 30, 30));
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].0, addr(5, 12), "row-major merge");
        assert_eq!(cells[1].0, addr(12, 12));
    }

    #[test]
    fn sheet_row_insert_shifts_regions_below() {
        let mut hs = sheet_with_rom_region();
        hs.set_cell(addr(12, 12), Cell::value(1i64)).unwrap();
        hs.insert_rows(0, 5).unwrap();
        assert_eq!(hs.layout()[0].0, Rect::new(15, 10, 24, 14));
        assert_eq!(
            hs.get_cell(addr(17, 12)).unwrap().value,
            CellValue::Number(1.0)
        );
        assert_eq!(hs.get_cell(addr(12, 12)), None);
    }

    #[test]
    fn sheet_row_insert_inside_region_grows_it() {
        let mut hs = sheet_with_rom_region();
        hs.set_cell(addr(12, 12), Cell::value(1i64)).unwrap();
        hs.insert_rows(11, 2).unwrap();
        assert_eq!(hs.layout()[0].0, Rect::new(10, 10, 21, 14));
        assert_eq!(
            hs.get_cell(addr(14, 12)).unwrap().value,
            CellValue::Number(1.0)
        );
    }

    #[test]
    fn delete_rows_across_regions() {
        let mut hs = sheet_with_rom_region();
        hs.set_cell(addr(12, 12), Cell::value(1i64)).unwrap();
        hs.set_cell(addr(19, 10), Cell::value(2i64)).unwrap();
        // Delete rows 11..13 (2 rows, one above the value at 12? no: 11,12).
        hs.delete_rows(11, 2).unwrap();
        assert_eq!(hs.layout()[0].0, Rect::new(10, 10, 17, 14));
        assert_eq!(hs.get_cell(addr(12, 12)), None, "row 12 was deleted");
        assert_eq!(
            hs.get_cell(addr(17, 10)).unwrap().value,
            CellValue::Number(2.0)
        );
    }

    #[test]
    fn delete_covering_whole_region_drops_it() {
        let mut hs = sheet_with_rom_region();
        hs.set_cell(addr(12, 12), Cell::value(1i64)).unwrap();
        hs.delete_rows(5, 30).unwrap();
        assert_eq!(hs.region_count(), 0);
        assert_eq!(hs.filled_count(), 0);
    }

    #[test]
    fn column_edits_mirror_row_edits() {
        let mut hs = sheet_with_rom_region();
        hs.set_cell(addr(12, 12), Cell::value(1i64)).unwrap();
        hs.insert_cols(0, 3).unwrap();
        assert_eq!(hs.layout()[0].0, Rect::new(10, 13, 19, 17));
        assert_eq!(
            hs.get_cell(addr(12, 15)).unwrap().value,
            CellValue::Number(1.0)
        );
        hs.delete_cols(13, 1).unwrap();
        assert_eq!(hs.layout()[0].0, Rect::new(10, 13, 19, 16));
        assert_eq!(
            hs.get_cell(addr(12, 14)).unwrap().value,
            CellValue::Number(1.0)
        );
    }

    #[test]
    fn remove_region_updates_routing_in_place() {
        // Three regions: one wide band, one stacked region cutting it, one
        // beside it. Removing the middle slot must renumber later slots and
        // re-merge the bands it had cut — verified against the scan oracle
        // on every boundary probe.
        let mut hs = HybridSheet::new();
        for rect in [
            Rect::new(0, 0, 29, 4),
            Rect::new(10, 10, 19, 14),
            Rect::new(10, 20, 39, 24),
        ] {
            let rom = Box::new(RomTranslator::new(PosMapKind::Hierarchical));
            hs.add_region(rect, rom).unwrap();
        }
        hs.set_cell(addr(35, 22), Cell::value(9i64)).unwrap();
        let removed = hs.remove_region(1);
        assert_eq!(removed.rect, Rect::new(10, 10, 19, 14));
        for r in [0u32, 9, 10, 15, 19, 20, 29, 30, 39, 40] {
            for c in [0u32, 4, 5, 10, 14, 15, 20, 24, 25] {
                let a = addr(r, c);
                assert_eq!(hs.region_at(a), hs.region_at_scan(a), "at {a}");
            }
        }
        // The surviving third region (now slot 1) still serves its cells.
        assert_eq!(
            hs.get_cell(addr(35, 22)).unwrap().value,
            CellValue::Number(9.0)
        );
        // Removing everything empties the index.
        hs.remove_region(1);
        hs.remove_region(0);
        assert_eq!(hs.region_at(addr(12, 12)), None);
    }

    #[test]
    fn snapshot_and_reorganize_roundtrip() {
        let mut hs = HybridSheet::new();
        for r in 0..8 {
            for c in 0..4 {
                hs.set_cell(addr(r, c), Cell::value((r * 4 + c) as i64))
                    .unwrap();
            }
        }
        hs.set_cell(addr(50, 50), Cell::value(99i64)).unwrap();
        let before = hs.snapshot(true);
        let decomp = Decomposition::new(vec![
            Region {
                rect: Rect::new(0, 0, 7, 3),
                kind: ModelKind::Rom,
            },
            Region {
                rect: Rect::new(50, 50, 50, 50),
                kind: ModelKind::Rcv,
            },
        ]);
        let migrated = hs.reorganize(&decomp).unwrap();
        assert_eq!(migrated, 33);
        assert_eq!(hs.region_count(), 2);
        assert_eq!(hs.snapshot(true), before, "reorganization preserves cells");
        assert_eq!(
            hs.get_cell(addr(3, 2)).unwrap().value,
            CellValue::Number(14.0)
        );
    }
}
