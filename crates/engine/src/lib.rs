//! The DataSpread storage engine (paper §VI).
//!
//! The engine persists spreadsheet data in the relational row store through
//! *translators* — one per primitive data model — each providing the
//! "collection of cells" abstraction over its table(s):
//!
//! * [`rom::RomTranslator`] — one tuple per sheet row,
//! * [`com::ComTranslator`] — one tuple per sheet column (the transpose),
//! * [`rcv::RcvTranslator`] — one tuple per filled cell,
//! * [`tom::TomTranslator`] — a linked database table (`linkTable`),
//! * [`hybrid::HybridSheet`] — routes regions of the sheet to per-region
//!   translators, with an RCV catch-all for stray cells.
//!
//! Every translator maintains positional maps (hierarchical counted
//! B+-trees by default) on *both* axes, so row **and** column
//! inserts/deletes are O(log N) — no stored row or column numbers, no
//! cascading renumbering (paper §V).
//!
//! [`sheet::SheetEngine`] adds the execution-engine layer: formula parsing,
//! the dependency graph, recomputation through an LRU cell cache, the
//! spreadsheet-facing API (`getCells`, `updateCell`, `insertRowAfter`, …),
//! the database-facing API (`linkTable`, `sql`, relational operators), and
//! `optimize()` which runs the hybrid optimizer and migrates storage.
//!
//! The [`durable`] module adds crash-safe persistence: sheets opened with
//! [`sheet::SheetEngine::open`] log every op to a write-ahead log and fold
//! checkpoints into a paged image file; recovery on reopen replays the
//! committed op tail (see the module docs for the exact protocol).

pub mod columnar;
pub mod com;
pub mod durable;
pub mod error;
pub mod hybrid;
pub mod obs;
pub mod rcv;
pub mod rom;
pub mod sheet;
pub mod tom;
pub mod translator;

pub use columnar::{ColumnAgg, ColumnarTranslator, ScanValue};
pub use durable::{CheckpointReport, LoggedOp, PersistenceStats};
pub use error::EngineError;
pub use hybrid::{HybridSheet, RegionImage, CATCHALL_REGION_ID};
pub use obs::EngineObs;
pub use sheet::{OptimizeAlgorithm, OptimizeReport, SheetEngine};
pub use translator::Translator;

pub use dataspread_hybrid::ModelKind;
pub use dataspread_posmap::PosMapKind;
