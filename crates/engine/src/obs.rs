//! Cached metric handles for one [`SheetEngine`](crate::SheetEngine).
//!
//! Created once per sheet from the workspace's shared
//! [`MetricsRegistry`] and attached via `SheetEngine::set_obs`; recording
//! is a few relaxed atomics per recompute wave / checkpoint, and the
//! clock reads around timed sections are skipped entirely when the
//! registry is disabled.

use std::sync::Arc;

use dataspread_obs::{now_ms, Counter, Event, Histogram, MetricsRegistry};

/// Engine-level metric handles: checkpoint duration and page writes,
/// recompute wave count/width/duration, and the batch-vs-scalar
/// evaluation split.
#[derive(Clone)]
pub struct EngineObs {
    registry: Arc<MetricsRegistry>,
    sheet: String,
    /// `checkpoint_ns{sheet}` — checkpoint wall time.
    pub checkpoint_ns: Arc<Histogram>,
    /// `checkpoint_pages_written{sheet}` — pages rewritten by checkpoints.
    pub checkpoint_pages: Arc<Counter>,
    /// `recompute_waves{sheet}` — topological waves executed.
    pub waves: Arc<Counter>,
    /// `recompute_wave_width{sheet}` — cells per wave.
    pub wave_width: Arc<Histogram>,
    /// `recompute_ns{sheet}` — whole-cascade recompute wall time.
    pub recompute_ns: Arc<Histogram>,
    /// `eval_batch_cells{sheet}` — cells evaluated by vectorized sweeps.
    pub batch_evals: Arc<Counter>,
    /// `eval_scalar_cells{sheet}` — cells evaluated by per-cell walks.
    pub scalar_evals: Arc<Counter>,
}

impl EngineObs {
    /// Create (or re-acquire) the engine metric handles for `sheet`.
    pub fn new(registry: &Arc<MetricsRegistry>, sheet: &str) -> EngineObs {
        let labels: &[(&str, &str)] = &[("sheet", sheet)];
        EngineObs {
            registry: Arc::clone(registry),
            sheet: sheet.to_string(),
            checkpoint_ns: registry.histogram("checkpoint_ns", labels),
            checkpoint_pages: registry.counter("checkpoint_pages_written", labels),
            waves: registry.counter("recompute_waves", labels),
            wave_width: registry.histogram("recompute_wave_width", labels),
            recompute_ns: registry.histogram("recompute_ns", labels),
            batch_evals: registry.counter("eval_batch_cells", labels),
            scalar_evals: registry.counter("eval_scalar_cells", labels),
        }
    }

    /// Whether the owning registry is recording.
    pub fn enabled(&self) -> bool {
        self.registry.enabled()
    }

    /// Record a checkpoint that failed after starting — the rollback the
    /// undo journal will perform at the next open.
    pub fn note_checkpoint_rollback(&self, cause: &str) {
        self.registry.push_event(Event {
            ts_ms: now_ms(),
            kind: "checkpoint_rollback".to_string(),
            sheet: self.sheet.clone(),
            op: "checkpoint".to_string(),
            duration_ns: 0,
            ticket: 0,
            outcome: cause.to_string(),
        });
    }
}

impl std::fmt::Debug for EngineObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineObs")
            .field("sheet", &self.sheet)
            .finish()
    }
}
