//! The row-column-value translator (paper §IV-B, Figure 8c).
//!
//! One tuple per *filled* cell, keyed by stable row/column identifiers.
//! Positional maps translate row/column positions to identifiers (paper §V:
//! "the positional mapper translates the row and column numbers into the
//! corresponding stored identifiers"), and a B+-tree index maps
//! `(row id, col id)` to the tuple. Structural edits touch only the
//! positional maps — O(log N), no tuple rewrites.

use std::ops::Bound;

use dataspread_grid::{Cell, CellAddr, Rect};
use dataspread_hybrid::ModelKind;
use dataspread_posmap::{new_posmap, PosMapKind, PositionalMap};
use dataspread_relstore::{BPlusTree, ColumnDef, DataType, Datum, Schema, Table, TupleId};

use crate::error::EngineError;
use crate::translator::{cell_to_datums, datums_to_cell, Translator};

/// Cap on the RCV positional coordinate space (rows and columns alike).
///
/// Positions are *materialized*: the positional maps hold one identifier
/// per position up to the highest one ever touched, so a single write at
/// an astronomical index (say row 4×10⁹ — representable, since addresses
/// are `u32`) would grow the map O(row) on first touch and hang the
/// engine. Writes at or beyond the cap are refused up front instead —
/// 64 × Excel's 1,048,576-row limit, far past what positional
/// materialization serves well (huge blocks belong in bulk-loaded ROM
/// regions, which cost O(rows actually present)).
pub const MAX_RCV_POSITIONS: u32 = 64 * 1_048_576;

/// Row-column-value storage for one region (also the hybrid layer's
/// catch-all for cells outside every region).
pub struct RcvTranslator {
    table: Table,
    /// Row position → stable row id.
    rows_map: Box<dyn PositionalMap<u64>>,
    /// Column position → stable column id.
    cols_map: Box<dyn PositionalMap<u64>>,
    /// (row id, col id) → tuple.
    index: BPlusTree<(u64, u64), TupleId>,
    next_row_id: u64,
    next_col_id: u64,
    posmap_kind: PosMapKind,
}

impl std::fmt::Debug for RcvTranslator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcvTranslator")
            .field("rows", &self.rows_map.len())
            .field("cols", &self.cols_map.len())
            .field("filled", &self.index.len())
            .field("posmap", &self.posmap_kind)
            .finish()
    }
}

impl RcvTranslator {
    pub fn new(posmap_kind: PosMapKind) -> Self {
        RcvTranslator {
            table: Table::new(
                "rcv",
                Schema::new(vec![
                    ColumnDef::new("rid", DataType::Int),
                    ColumnDef::new("cid", DataType::Int),
                    ColumnDef::new("value", DataType::Any),
                    ColumnDef::new("formula", DataType::Any),
                ]),
            ),
            rows_map: new_posmap(posmap_kind),
            cols_map: new_posmap(posmap_kind),
            index: BPlusTree::new(),
            next_row_id: 0,
            next_col_id: 0,
            posmap_kind,
        }
    }

    fn ensure_rows(&mut self, upto: u32) {
        while self.rows_map.len() <= upto as usize {
            self.rows_map.push(self.next_row_id);
            self.next_row_id += 1;
        }
    }

    fn ensure_cols(&mut self, upto: u32) {
        while self.cols_map.len() <= upto as usize {
            self.cols_map.push(self.next_col_id);
            self.next_col_id += 1;
        }
    }

    fn fetch_cell(&self, rid: u64, cid: u64) -> Option<Cell> {
        let tid = *self.index.get(&(rid, cid))?;
        let tuple = self.table.fetch(tid).ok()?;
        Some(datums_to_cell(&tuple[2], &tuple[3]))
    }
}

impl Translator for RcvTranslator {
    fn kind(&self) -> ModelKind {
        ModelKind::Rcv
    }

    fn rows(&self) -> u32 {
        self.rows_map.len() as u32
    }

    fn cols(&self) -> u32 {
        self.cols_map.len() as u32
    }

    fn get_cell(&self, row: u32, col: u32) -> Option<Cell> {
        let rid = *self.rows_map.get(row as usize)?;
        let cid = *self.cols_map.get(col as usize)?;
        let cell = self.fetch_cell(rid, cid)?;
        if cell.is_blank() {
            None
        } else {
            Some(cell)
        }
    }

    fn set_cell(&mut self, row: u32, col: u32, cell: Cell) -> Result<(), EngineError> {
        if row >= MAX_RCV_POSITIONS || col >= MAX_RCV_POSITIONS {
            return Err(EngineError::Unsupported(format!(
                "cell ({row},{col}) is outside the RCV positional space \
                 (cap {MAX_RCV_POSITIONS}); bulk-load huge blocks as ROM regions"
            )));
        }
        self.ensure_rows(row);
        self.ensure_cols(col);
        let rid = *self.rows_map.get(row as usize).expect("ensured");
        let cid = *self.cols_map.get(col as usize).expect("ensured");
        if cell.is_blank() {
            // Blank assignment = delete the tuple (RCV stores only filled
            // cells).
            if let Some(&tid) = self.index.get(&(rid, cid)) {
                self.table.delete(tid);
                self.index.remove(&(rid, cid));
            }
            return Ok(());
        }
        let [v, f] = cell_to_datums(&cell);
        let tuple = [Datum::Int(rid as i64), Datum::Int(cid as i64), v, f];
        match self.index.get(&(rid, cid)).copied() {
            Some(tid) => {
                let new_tid = self.table.update(tid, &tuple)?;
                if new_tid != tid {
                    self.index.insert((rid, cid), new_tid);
                }
            }
            None => {
                let tid = self.table.insert(&tuple)?;
                self.index.insert((rid, cid), tid);
            }
        }
        Ok(())
    }

    fn clear_cell(&mut self, row: u32, col: u32) -> Result<(), EngineError> {
        if row < self.rows() && col < self.cols() {
            self.set_cell(row, col, Cell::default())?;
        }
        Ok(())
    }

    fn get_range(&self, rect: Rect) -> Vec<(CellAddr, Cell)> {
        let mut out = Vec::new();
        if self.rows() == 0 || self.cols() == 0 || rect.r1 >= self.rows() || rect.c1 >= self.cols()
        {
            return out;
        }
        let row_count = (rect.r2.min(self.rows() - 1) - rect.r1) as usize + 1;
        let cols: Vec<(u32, u64)> = (rect.c1..=rect.c2.min(self.cols() - 1))
            .filter_map(|c| self.cols_map.get(c as usize).map(|&cid| (c, cid)))
            .collect();
        for (i, &rid) in self
            .rows_map
            .range(rect.r1 as usize, row_count)
            .into_iter()
            .enumerate()
        {
            let r = rect.r1 + i as u32;
            for &(c, cid) in &cols {
                if let Some(cell) = self.fetch_cell(rid, cid) {
                    if !cell.is_blank() {
                        out.push((CellAddr::new(r, c), cell));
                    }
                }
            }
        }
        out
    }

    fn insert_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        // Guard the *end* of the insert, not just its start: the loop
        // below is O(n), so a huge count is the same first-touch hang as
        // a huge index.
        if at.checked_add(n).is_none_or(|end| end > MAX_RCV_POSITIONS) {
            return Err(EngineError::Unsupported(format!(
                "row insert at {at}+{n} is outside the RCV positional space \
                 (cap {MAX_RCV_POSITIONS})"
            )));
        }
        if at > 0 {
            self.ensure_rows(at - 1);
        }
        for _ in 0..n {
            let rid = self.next_row_id;
            self.next_row_id += 1;
            self.rows_map.insert_at(at as usize, rid);
        }
        Ok(())
    }

    fn delete_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        for _ in 0..n {
            let Some(rid) = self.rows_map.remove_at(at as usize) else {
                break;
            };
            // Drop every tuple of this row via an index range scan.
            let doomed: Vec<((u64, u64), TupleId)> = self
                .index
                .range(
                    Bound::Included(&(rid, u64::MIN)),
                    Bound::Included(&(rid, u64::MAX)),
                )
                .into_iter()
                .map(|(k, v)| (*k, *v))
                .collect();
            for (key, tid) in doomed {
                self.table.delete(tid);
                self.index.remove(&key);
            }
        }
        Ok(())
    }

    fn insert_cols(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        if at.checked_add(n).is_none_or(|end| end > MAX_RCV_POSITIONS) {
            return Err(EngineError::Unsupported(format!(
                "column insert at {at}+{n} is outside the RCV positional space \
                 (cap {MAX_RCV_POSITIONS})"
            )));
        }
        if at > 0 {
            self.ensure_cols(at - 1);
        }
        for _ in 0..n {
            let cid = self.next_col_id;
            self.next_col_id += 1;
            self.cols_map.insert_at(at as usize, cid);
        }
        Ok(())
    }

    fn delete_cols(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        for _ in 0..n {
            let Some(cid) = self.cols_map.remove_at(at as usize) else {
                break;
            };
            // Column ids are the second key component: collect then drop.
            let doomed: Vec<((u64, u64), TupleId)> = self
                .index
                .range(Bound::Unbounded, Bound::Unbounded)
                .into_iter()
                .filter(|((_, c), _)| *c == cid)
                .map(|(k, v)| (*k, *v))
                .collect();
            for (key, tid) in doomed {
                self.table.delete(tid);
                self.index.remove(&key);
            }
        }
        Ok(())
    }

    fn storage_bytes(&self) -> u64 {
        self.table.accounted_bytes()
    }

    fn filled_count(&self) -> u64 {
        self.index.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_grid::CellValue;

    #[test]
    fn sparse_cells_store_one_tuple_each() {
        let mut t = RcvTranslator::new(PosMapKind::Hierarchical);
        t.set_cell(100, 200, Cell::value(1i64)).unwrap();
        t.set_cell(5000, 3, Cell::value(2i64)).unwrap();
        assert_eq!(t.filled_count(), 2);
        assert_eq!(t.get_cell(100, 200).unwrap().value, CellValue::Number(1.0));
        assert_eq!(t.get_cell(0, 0), None);
    }

    #[test]
    fn blank_set_deletes_tuple() {
        let mut t = RcvTranslator::new(PosMapKind::Hierarchical);
        t.set_cell(1, 1, Cell::value(9i64)).unwrap();
        assert_eq!(t.filled_count(), 1);
        t.set_cell(1, 1, Cell::default()).unwrap();
        assert_eq!(t.filled_count(), 0);
        assert_eq!(t.get_cell(1, 1), None);
    }

    #[test]
    fn row_insert_delete_via_posmaps() {
        let mut t = RcvTranslator::new(PosMapKind::Hierarchical);
        for r in 0..10 {
            t.set_cell(r, 0, Cell::value(r as i64)).unwrap();
        }
        t.insert_rows(5, 2).unwrap();
        assert_eq!(t.get_cell(4, 0).unwrap().value, CellValue::Number(4.0));
        assert_eq!(t.get_cell(5, 0), None);
        assert_eq!(t.get_cell(7, 0).unwrap().value, CellValue::Number(5.0));
        t.delete_rows(5, 2).unwrap();
        assert_eq!(t.get_cell(5, 0).unwrap().value, CellValue::Number(5.0));
        assert_eq!(t.filled_count(), 10);
        // Deleting a populated row drops its tuples.
        t.delete_rows(0, 1).unwrap();
        assert_eq!(t.filled_count(), 9);
        assert_eq!(t.get_cell(0, 0).unwrap().value, CellValue::Number(1.0));
    }

    #[test]
    fn col_insert_delete() {
        let mut t = RcvTranslator::new(PosMapKind::Hierarchical);
        for c in 0..5 {
            t.set_cell(0, c, Cell::value(c as i64)).unwrap();
        }
        t.insert_cols(2, 1).unwrap();
        assert_eq!(t.get_cell(0, 2), None);
        assert_eq!(t.get_cell(0, 3).unwrap().value, CellValue::Number(2.0));
        t.delete_cols(3, 1).unwrap();
        assert_eq!(t.get_cell(0, 3).unwrap().value, CellValue::Number(3.0));
        assert_eq!(t.filled_count(), 4);
    }

    #[test]
    fn range_scan_row_major() {
        let mut t = RcvTranslator::new(PosMapKind::Hierarchical);
        t.set_cell(1, 1, Cell::value(1i64)).unwrap();
        t.set_cell(1, 3, Cell::value(2i64)).unwrap();
        t.set_cell(2, 2, Cell::value(3i64)).unwrap();
        t.set_cell(9, 9, Cell::value(4i64)).unwrap();
        let got = t.get_range(Rect::new(1, 1, 3, 3));
        let addrs: Vec<CellAddr> = got.iter().map(|(a, _)| *a).collect();
        assert_eq!(
            addrs,
            vec![
                CellAddr::new(1, 1),
                CellAddr::new(1, 3),
                CellAddr::new(2, 2)
            ]
        );
    }

    #[test]
    fn astronomical_indices_are_refused_not_materialized() {
        // Regression: a set_cell at row ~4e9 used to materialize one
        // positional-map entry per row on first touch — O(row) work that
        // hangs the engine. The cap must refuse it immediately (this test
        // would run for hours if materialization happened).
        let mut t = RcvTranslator::new(PosMapKind::Hierarchical);
        for (r, c) in [
            (4_000_000_000, 0),
            (0, 4_000_000_000),
            (u32::MAX - 1, u32::MAX - 1),
            (MAX_RCV_POSITIONS, 0),
        ] {
            assert!(
                matches!(
                    t.set_cell(r, c, Cell::value(1i64)),
                    Err(EngineError::Unsupported(_))
                ),
                "({r},{c}) must be refused"
            );
        }
        assert!(t.insert_rows(4_000_000_000, 1).is_err());
        assert!(t.insert_cols(4_000_000_000, 1).is_err());
        // A huge *count* is the same O(n) materialization as a huge index
        // (the insert loop runs n times) — and so is a sum overflowing.
        assert!(t.insert_rows(0, 4_000_000_000).is_err());
        assert!(t.insert_cols(0, 4_000_000_000).is_err());
        assert!(t.insert_rows(u32::MAX - 1, u32::MAX - 1).is_err());
        assert_eq!(t.filled_count(), 0);
        // The last in-cap coordinate is *representable* (we do not want to
        // materialize it here — that is legitimately large — just prove the
        // boundary arithmetic refuses only at >= cap).
        t.set_cell(100, 100, Cell::value(7i64)).unwrap();
        assert_eq!(t.filled_count(), 1);
        // Reads and clears beyond the cap stay cheap no-ops.
        assert_eq!(t.get_cell(4_000_000_000, 0), None);
        t.clear_cell(4_000_000_000, 0).unwrap();
    }

    #[test]
    fn update_existing_cell_replaces_tuple() {
        let mut t = RcvTranslator::new(PosMapKind::Hierarchical);
        t.set_cell(0, 0, Cell::value(1i64)).unwrap();
        t.set_cell(0, 0, Cell::value("now a much longer text value"))
            .unwrap();
        assert_eq!(t.filled_count(), 1);
        assert_eq!(
            t.get_cell(0, 0).unwrap().value,
            CellValue::Text("now a much longer text value".into())
        );
    }
}
