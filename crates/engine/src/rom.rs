//! The row-oriented translator (paper §IV-B, Figure 8a).
//!
//! One tuple per sheet row; each sheet column occupies a `[value, formula]`
//! datum pair. Positions are *not* stored: a hierarchical positional map on
//! the row axis maps row positions to tuple ids, and one on the column axis
//! maps column positions to physical column groups — so row *and* column
//! inserts avoid cascading updates (paper §V: "row and column numbers can
//! be dealt with independently").

use dataspread_grid::{Cell, CellAddr, Rect};
use dataspread_hybrid::ModelKind;
use dataspread_posmap::{new_posmap, PosMapKind, PositionalMap};
use dataspread_relstore::{ColumnDef, DataType, Datum, Schema, Table, TupleId};

use crate::error::EngineError;
use crate::translator::{cell_into_datums, cell_to_datums, datums_to_cell, Translator};

/// Row-oriented storage for one region.
pub struct RomTranslator {
    table: Table,
    /// Row position → tuple id.
    rows_map: Box<dyn PositionalMap<TupleId>>,
    /// Column position → physical column group (datums `2g` and `2g+1`).
    cols_map: Box<dyn PositionalMap<u32>>,
    next_group: u32,
    filled: u64,
    posmap_kind: PosMapKind,
}

impl std::fmt::Debug for RomTranslator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RomTranslator")
            .field("rows", &self.rows_map.len())
            .field("cols", &self.cols_map.len())
            .field("filled", &self.filled)
            .field("posmap", &self.posmap_kind)
            .finish()
    }
}

impl RomTranslator {
    pub fn new(posmap_kind: PosMapKind) -> Self {
        RomTranslator {
            table: Table::new("rom", Schema::new(Vec::new())),
            rows_map: new_posmap(posmap_kind),
            cols_map: new_posmap(posmap_kind),
            next_group: 0,
            filled: 0,
            posmap_kind,
        }
    }

    pub fn posmap_kind(&self) -> PosMapKind {
        self.posmap_kind
    }

    /// Bulk-load rows of cells (O(N) positional-map construction) — the
    /// fast import path for large datasets such as VCF files.
    pub fn bulk_load_rows(
        posmap_kind: PosMapKind,
        width: u32,
        rows: impl IntoIterator<Item = Vec<Cell>>,
    ) -> Result<Self, EngineError> {
        let mut table = Table::new("rom", Schema::new(Vec::new()));
        let mut cols_map = dataspread_posmap::posmap_from(posmap_kind, Vec::<u32>::new());
        let mut next_group = 0;
        for g in 0..width {
            table.add_column(ColumnDef::new(format!("v{g}"), DataType::Any))?;
            table.add_column(ColumnDef::new(format!("f{g}"), DataType::Any))?;
            cols_map.push(g);
            next_group += 1;
        }
        let mut tids = Vec::new();
        let mut filled = 0u64;
        let mut datums: Vec<Datum> = Vec::with_capacity(2 * width as usize);
        for row in rows {
            datums.clear();
            for cell in row.iter().take(width as usize) {
                if !cell.is_blank() {
                    filled += 1;
                }
                let [v, f] = cell_to_datums(cell);
                datums.push(v);
                datums.push(f);
            }
            tids.push(table.insert_prefix(&datums)?);
        }
        Ok(RomTranslator {
            table,
            rows_map: dataspread_posmap::posmap_from(posmap_kind, tids),
            cols_map,
            next_group,
            filled,
            posmap_kind,
        })
    }

    fn ensure_rows(&mut self, upto: u32) -> Result<(), EngineError> {
        while self.rows_map.len() <= upto as usize {
            let tid = self.table.insert_prefix(&[])?;
            self.rows_map.push(tid);
        }
        Ok(())
    }

    fn ensure_cols(&mut self, upto: u32) -> Result<(), EngineError> {
        while self.cols_map.len() <= upto as usize {
            self.push_group()?;
        }
        Ok(())
    }

    fn push_group(&mut self) -> Result<(), EngineError> {
        let g = self.next_group;
        self.table
            .add_column(ColumnDef::new(format!("v{g}"), DataType::Any))?;
        self.table
            .add_column(ColumnDef::new(format!("f{g}"), DataType::Any))?;
        self.cols_map.push(g);
        self.next_group += 1;
        Ok(())
    }

    /// Allocate a fresh physical group without appending it to the column
    /// map (used by middle-of-sheet column inserts).
    fn fresh_group(&mut self) -> Result<u32, EngineError> {
        let g = self.next_group;
        self.table
            .add_column(ColumnDef::new(format!("v{g}"), DataType::Any))?;
        self.table
            .add_column(ColumnDef::new(format!("f{g}"), DataType::Any))?;
        self.next_group += 1;
        Ok(g)
    }

    fn cell_from_row(&self, row: &[Datum], group: u32) -> Cell {
        let v = row.get(2 * group as usize).unwrap_or(&Datum::Null);
        let f = row.get(2 * group as usize + 1).unwrap_or(&Datum::Null);
        datums_to_cell(v, f)
    }

    /// Rebuild the table without the physical column groups orphaned by
    /// `delete_cols` (and without dead heap space). Like VACUUM FULL:
    /// O(rows × live columns), to be run during idle periods.
    pub fn vacuum(&mut self) -> Result<(), EngineError> {
        let live_groups: Vec<u32> = (0..self.cols_map.len())
            .filter_map(|i| self.cols_map.get(i).copied())
            .collect();
        let mut table = Table::new("rom", Schema::new(Vec::new()));
        for g in 0..live_groups.len() {
            table.add_column(ColumnDef::new(format!("v{g}"), DataType::Any))?;
            table.add_column(ColumnDef::new(format!("f{g}"), DataType::Any))?;
        }
        let mut new_tids = Vec::with_capacity(self.rows_map.len());
        let mut datums: Vec<Datum> = Vec::with_capacity(2 * live_groups.len());
        for r in 0..self.rows_map.len() {
            let tid = *self.rows_map.get(r).expect("in range");
            let old = self.table.fetch(tid)?;
            datums.clear();
            for &g in &live_groups {
                datums.push(old.get(2 * g as usize).cloned().unwrap_or(Datum::Null));
                datums.push(old.get(2 * g as usize + 1).cloned().unwrap_or(Datum::Null));
            }
            new_tids.push(table.insert_prefix(&datums)?);
        }
        self.table = table;
        self.rows_map = dataspread_posmap::posmap_from(self.posmap_kind, new_tids);
        self.cols_map = dataspread_posmap::posmap_from(
            self.posmap_kind,
            (0..live_groups.len() as u32).collect::<Vec<u32>>(),
        );
        self.next_group = live_groups.len() as u32;
        Ok(())
    }
}

impl Translator for RomTranslator {
    fn kind(&self) -> ModelKind {
        ModelKind::Rom
    }

    fn rows(&self) -> u32 {
        self.rows_map.len() as u32
    }

    fn cols(&self) -> u32 {
        self.cols_map.len() as u32
    }

    fn get_cell(&self, row: u32, col: u32) -> Option<Cell> {
        let tid = *self.rows_map.get(row as usize)?;
        let group = *self.cols_map.get(col as usize)?;
        // Projected decode: only the (value, formula) pair of this column.
        let pair = self
            .table
            .fetch_cols(tid, &[2 * group as usize, 2 * group as usize + 1])
            .ok()?;
        let cell = datums_to_cell(&pair[0], &pair[1]);
        if cell.is_blank() {
            None
        } else {
            Some(cell)
        }
    }

    fn set_cell(&mut self, row: u32, col: u32, cell: Cell) -> Result<(), EngineError> {
        self.ensure_rows(row)?;
        self.ensure_cols(col)?;
        let tid = *self.rows_map.get(row as usize).expect("ensured");
        let group = *self.cols_map.get(col as usize).expect("ensured");
        let mut tuple = self.table.fetch(tid)?;
        let was_blank = self.cell_from_row(&tuple, group).is_blank();
        let [v, f] = cell_to_datums(&cell);
        let is_blank = cell.is_blank();
        tuple[2 * group as usize] = v;
        tuple[2 * group as usize + 1] = f;
        let new_tid = self.table.update(tid, &tuple)?;
        if new_tid != tid {
            self.rows_map.replace(row as usize, new_tid);
        }
        match (was_blank, is_blank) {
            (true, false) => self.filled += 1,
            (false, true) => self.filled -= 1,
            _ => {}
        }
        Ok(())
    }

    fn set_cells_in_row(&mut self, row: u32, cells: Vec<(u32, Cell)>) -> Result<(), EngineError> {
        let Some(&(max_col, _)) = cells.iter().max_by_key(|(c, _)| *c) else {
            return Ok(());
        };
        self.ensure_rows(row)?;
        self.ensure_cols(max_col)?;
        let tid = *self.rows_map.get(row as usize).expect("ensured");
        let mut tuple = self.table.fetch(tid)?;
        for (col, cell) in cells {
            let group = *self.cols_map.get(col as usize).expect("ensured");
            let was_blank = self.cell_from_row(&tuple, group).is_blank();
            let is_blank = cell.is_blank();
            let [v, f] = cell_into_datums(cell);
            tuple[2 * group as usize] = v;
            tuple[2 * group as usize + 1] = f;
            match (was_blank, is_blank) {
                (true, false) => self.filled += 1,
                (false, true) => self.filled -= 1,
                _ => {}
            }
        }
        let new_tid = self.table.update(tid, &tuple)?;
        if new_tid != tid {
            self.rows_map.replace(row as usize, new_tid);
        }
        Ok(())
    }

    fn clear_cell(&mut self, row: u32, col: u32) -> Result<(), EngineError> {
        if row < self.rows() && col < self.cols() {
            self.set_cell(row, col, Cell::default())?;
        }
        Ok(())
    }

    fn get_range(&self, rect: Rect) -> Vec<(CellAddr, Cell)> {
        let mut out = Vec::new();
        let row_count = (rect.r2.min(self.rows().saturating_sub(1)) as usize)
            .saturating_sub(rect.r1 as usize)
            + 1;
        if self.rows() == 0 || self.cols() == 0 || rect.r1 >= self.rows() {
            return out;
        }
        let groups: Vec<(u32, u32)> = (rect.c1..=rect.c2.min(self.cols() - 1))
            .filter_map(|c| self.cols_map.get(c as usize).map(|&g| (c, g)))
            .collect();
        // Projected decode of just the requested column pairs, in physical
        // order (fetch_cols wants sorted indices).
        let mut phys: Vec<(usize, u32)> = Vec::with_capacity(groups.len() * 2);
        for &(c, g) in &groups {
            phys.push((2 * g as usize, c));
            phys.push((2 * g as usize + 1, c));
        }
        phys.sort_unstable_by_key(|&(idx, _)| idx);
        let wanted: Vec<usize> = phys.iter().map(|&(idx, _)| idx).collect();
        // Map sheet column -> position of its (value, formula) pair in the
        // projected output.
        let pair_pos: std::collections::HashMap<u32, usize> = groups
            .iter()
            .map(|&(c, g)| {
                let at = wanted
                    .binary_search(&(2 * g as usize))
                    .expect("value index present");
                (c, at)
            })
            .collect();
        for (i, tid) in self
            .rows_map
            .range(rect.r1 as usize, row_count)
            .into_iter()
            .enumerate()
        {
            let Ok(proj) = self.table.fetch_cols(*tid, &wanted) else {
                continue;
            };
            let r = rect.r1 + i as u32;
            for &(c, _) in &groups {
                let at = pair_pos[&c];
                let cell = datums_to_cell(&proj[at], &proj[at + 1]);
                if !cell.is_blank() {
                    out.push((CellAddr::new(r, c), cell));
                }
            }
        }
        out
    }

    fn insert_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        if at > 0 {
            self.ensure_rows(at - 1)?;
        }
        for _ in 0..n {
            let tid = self.table.insert_prefix(&[])?;
            self.rows_map.insert_at(at as usize, tid);
        }
        Ok(())
    }

    fn delete_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        for _ in 0..n {
            let Some(tid) = self.rows_map.remove_at(at as usize) else {
                break;
            };
            // Keep the filled counter honest.
            if let Ok(tuple) = self.table.fetch(tid) {
                for g in 0..self.next_group {
                    if !self.cell_from_row(&tuple, g).is_blank() {
                        self.filled -= 1;
                    }
                }
            }
            self.table.delete(tid);
        }
        Ok(())
    }

    fn insert_cols(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        if at > 0 {
            self.ensure_cols(at - 1)?;
        }
        for _ in 0..n {
            let g = self.fresh_group()?;
            self.cols_map.insert_at(at as usize, g);
        }
        Ok(())
    }

    fn delete_cols(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        // Physical columns become orphaned (a vacuum/migration reclaims
        // them); the logical view shifts immediately.
        for _ in 0..n {
            let Some(g) = self.cols_map.remove_at(at as usize) else {
                break;
            };
            // Null-out the orphaned group so filled stays honest and the
            // data is actually gone.
            let tids: Vec<(usize, TupleId)> = (0..self.rows_map.len())
                .filter_map(|r| self.rows_map.get(r).map(|&t| (r, t)))
                .collect();
            for (r, tid) in tids {
                let Ok(mut tuple) = self.table.fetch(tid) else {
                    continue;
                };
                if !self.cell_from_row(&tuple, g).is_blank() {
                    self.filled -= 1;
                    tuple[2 * g as usize] = Datum::Null;
                    tuple[2 * g as usize + 1] = Datum::Null;
                    let new_tid = self.table.update(tid, &tuple)?;
                    if new_tid != tid {
                        self.rows_map.replace(r, new_tid);
                    }
                }
            }
        }
        Ok(())
    }

    fn storage_bytes(&self) -> u64 {
        self.table.accounted_bytes()
    }

    fn filled_count(&self) -> u64 {
        self.filled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_grid::CellValue;

    fn cell(n: i64) -> Cell {
        Cell::value(n)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = RomTranslator::new(PosMapKind::Hierarchical);
        t.set_cell(2, 3, cell(42)).unwrap();
        assert_eq!(t.get_cell(2, 3).unwrap().value, CellValue::Number(42.0));
        assert_eq!(t.get_cell(0, 0), None);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
        assert_eq!(t.filled_count(), 1);
    }

    #[test]
    fn formulas_survive_storage() {
        let mut t = RomTranslator::new(PosMapKind::Hierarchical);
        t.set_cell(
            0,
            0,
            Cell {
                value: CellValue::Number(85.0),
                formula: Some("AVERAGE(B2:C2)+D2+E2".into()),
            },
        )
        .unwrap();
        let got = t.get_cell(0, 0).unwrap();
        assert_eq!(got.formula.as_deref(), Some("AVERAGE(B2:C2)+D2+E2"));
    }

    #[test]
    fn insert_rows_shifts_without_renumbering() {
        let mut t = RomTranslator::new(PosMapKind::Hierarchical);
        for r in 0..10 {
            t.set_cell(r, 0, cell(r as i64)).unwrap();
        }
        t.insert_rows(5, 2).unwrap();
        assert_eq!(t.rows(), 12);
        assert_eq!(t.get_cell(4, 0).unwrap().value, CellValue::Number(4.0));
        assert_eq!(t.get_cell(5, 0), None);
        assert_eq!(t.get_cell(6, 0), None);
        assert_eq!(t.get_cell(7, 0).unwrap().value, CellValue::Number(5.0));
        assert_eq!(t.get_cell(11, 0).unwrap().value, CellValue::Number(9.0));
    }

    #[test]
    fn delete_rows_updates_filled() {
        let mut t = RomTranslator::new(PosMapKind::Hierarchical);
        for r in 0..6 {
            t.set_cell(r, 0, cell(r as i64)).unwrap();
            t.set_cell(r, 1, cell(-(r as i64))).unwrap();
        }
        assert_eq!(t.filled_count(), 12);
        t.delete_rows(1, 2).unwrap();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.filled_count(), 8);
        assert_eq!(t.get_cell(1, 0).unwrap().value, CellValue::Number(3.0));
    }

    #[test]
    fn insert_and_delete_cols_via_column_posmap() {
        let mut t = RomTranslator::new(PosMapKind::Hierarchical);
        for c in 0..4 {
            t.set_cell(0, c, cell(c as i64)).unwrap();
        }
        t.insert_cols(2, 1).unwrap();
        assert_eq!(t.cols(), 5);
        assert_eq!(t.get_cell(0, 1).unwrap().value, CellValue::Number(1.0));
        assert_eq!(t.get_cell(0, 2), None, "new column is blank");
        assert_eq!(t.get_cell(0, 3).unwrap().value, CellValue::Number(2.0));
        // Deleting columns 0..2 removes the values 0 and 1; the blank
        // inserted column becomes position 0.
        t.delete_cols(0, 2).unwrap();
        assert_eq!(t.get_cell(0, 0), None, "the blank inserted column");
        assert_eq!(t.get_cell(0, 1).unwrap().value, CellValue::Number(2.0));
        assert_eq!(t.filled_count(), 2);
    }

    #[test]
    fn get_range_row_major() {
        let mut t = RomTranslator::new(PosMapKind::Hierarchical);
        for r in 0..5 {
            for c in 0..3 {
                t.set_cell(r, c, cell((r * 3 + c) as i64)).unwrap();
            }
        }
        let cells = t.get_range(Rect::new(1, 1, 3, 2));
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].0, CellAddr::new(1, 1));
        assert_eq!(cells[5].0, CellAddr::new(3, 2));
        // Out-of-extent ranges clamp.
        assert!(t.get_range(Rect::new(10, 0, 20, 2)).is_empty());
    }

    #[test]
    fn clear_cell_blanks_and_counts() {
        let mut t = RomTranslator::new(PosMapKind::Hierarchical);
        t.set_cell(0, 0, cell(1)).unwrap();
        t.clear_cell(0, 0).unwrap();
        assert_eq!(t.get_cell(0, 0), None);
        assert_eq!(t.filled_count(), 0);
        // Clearing out-of-range is a no-op.
        t.clear_cell(99, 99).unwrap();
    }

    #[test]
    fn works_with_all_posmap_kinds() {
        for kind in [
            PosMapKind::AsIs,
            PosMapKind::Monotonic,
            PosMapKind::Hierarchical,
        ] {
            let mut t = RomTranslator::new(kind);
            for r in 0..20 {
                t.set_cell(r, 0, cell(r as i64)).unwrap();
            }
            t.insert_rows(10, 1).unwrap();
            assert_eq!(t.get_cell(11, 0).unwrap().value, CellValue::Number(10.0));
        }
    }

    #[test]
    fn vacuum_reclaims_orphaned_columns() {
        let mut t = RomTranslator::new(PosMapKind::Hierarchical);
        for r in 0..50 {
            for c in 0..10 {
                t.set_cell(r, c, cell((r * 10 + c) as i64)).unwrap();
            }
        }
        t.delete_cols(2, 6).unwrap();
        let before_cells: Vec<_> = t.all_cells();
        let before_bytes = t.storage_bytes();
        t.vacuum().unwrap();
        assert_eq!(t.all_cells(), before_cells, "vacuum preserves contents");
        assert!(
            t.storage_bytes() < before_bytes,
            "vacuum must shrink storage: {} -> {}",
            before_bytes,
            t.storage_bytes()
        );
        assert_eq!(t.cols(), 4);
        assert_eq!(t.filled_count(), 50 * 4);
        // The translator stays fully functional.
        t.insert_cols(1, 1).unwrap();
        t.set_cell(0, 1, cell(777)).unwrap();
        assert_eq!(t.get_cell(0, 1).unwrap().value, CellValue::Number(777.0));
    }

    #[test]
    fn storage_grows_with_data() {
        let mut t = RomTranslator::new(PosMapKind::Hierarchical);
        let empty = t.storage_bytes();
        for r in 0..100 {
            for c in 0..5 {
                t.set_cell(r, c, cell(1)).unwrap();
            }
        }
        assert!(t.storage_bytes() > empty);
    }
}
