//! `SheetEngine`: the full DataSpread stack over one sheet (paper Figure
//! 12) — storage (hybrid translators), execution (formula parsing,
//! dependency graph, LRU cell cache, evaluator), and the spreadsheet- and
//! database-oriented operations of §III.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use dataspread_formula::ast::Expr;
use dataspread_formula::batch::{batch_eval_sliding, detect_sliding, SlidingSpec};
use dataspread_formula::eval::CellReader;
use dataspread_formula::refs::{collect_ranges, rewrite, Shift};
use dataspread_formula::{parse, CellCache, DependencyGraph, Evaluator, WavePlan};
use dataspread_grid::value::CellError;
use dataspread_grid::{Cell, CellAddr, CellValue, Rect, SparseSheet};
use dataspread_hybrid::{
    incremental_agg, optimize_agg, optimize_dp, optimize_greedy, CostModel, Decomposition,
    GridView, IncrementalOptions, OptimizerOptions,
};
use dataspread_rel::{execute_sql, Relation};
use dataspread_relstore::{ColumnDef, DataType, Database, Datum, Schema, StorageFs};

use crate::durable::{CheckpointReport, DurableStore, LoggedOp, PersistenceStats};
use crate::error::EngineError;
use crate::hybrid::{HybridSheet, RegionSource};
use crate::rom::RomTranslator;
use crate::tom::TomTranslator;
use crate::translator::{value_to_datum, Translator};
use dataspread_posmap::PosMapKind;

/// Which hybrid optimizer to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizeAlgorithm {
    /// Optimal recursive-decomposition DP (slow, exact).
    Dp,
    /// Greedy (fastest).
    Greedy,
    /// Aggressive greedy (the paper's sweet spot).
    Agg,
    /// Incremental aggressive greedy with migration factor η.
    IncrementalAgg { eta: f64 },
}

/// Result of a storage re-optimization.
#[derive(Debug, Clone)]
pub struct OptimizeReport {
    pub decomposition: Decomposition,
    pub migrated_cells: u64,
    pub storage_before: u64,
    pub storage_after: u64,
}

/// A registered formula: the parsed AST, the user's source text exactly as
/// entered (never re-serialized back from the AST), and the fill-down
/// shape detected once at registration so recomputation can batch runs of
/// the same formula filled to different cells.
struct FormulaInfo {
    expr: Expr,
    /// Verbatim source text (without the leading `=`).
    source: String,
    /// The vectorizable sliding-aggregate shape, when the formula is one.
    sliding: Option<SlidingSpec>,
}

/// A spreadsheet with database-backed storage.
pub struct SheetEngine {
    sheet: HybridSheet,
    db: Arc<RwLock<Database>>,
    deps: DependencyGraph,
    parsed: HashMap<CellAddr, FormulaInfo>,
    cache: Mutex<CellCache>,
    composites: HashMap<CellAddr, Relation>,
    evaluator: Evaluator,
    /// WAL + paged image; `None` for an in-memory engine.
    durable: Option<DurableStore>,
    /// Worker budget for wave-parallel recomputation (≥ 1).
    recompute_threads: usize,
    /// Cells recomputed since the engine was created (includes cells
    /// marked `#CIRC!`); lets tests and benches observe recompute scope.
    cells_recomputed: u64,
    /// Force the retained sequential per-cell recompute path — the
    /// differential oracle and the `exp_recompute` baseline.
    scalar_recompute: bool,
    /// Restore the pre-wave structural-edit behavior (clear the whole
    /// eval cache, reseed every surviving formula) — the differential
    /// baseline for band-intersection seeding.
    shift_recompute_all: bool,
    /// Metric handles, when the owner attached a registry.
    obs: Option<crate::obs::EngineObs>,
}

impl Default for SheetEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Read-through reader: LRU cell cache in front of the hybrid translator
/// (paper §VI: "the evaluator fetches the cells … from the LRU cell cache
/// in a read-through manner").
struct EngineReader<'a> {
    sheet: &'a HybridSheet,
    cache: &'a Mutex<CellCache>,
}

impl CellReader for EngineReader<'_> {
    fn value(&self, addr: CellAddr) -> CellValue {
        if let Some(v) = self.cache.lock().get(&addr) {
            return v.clone();
        }
        let v = self
            .sheet
            .get_cell(addr)
            .map(|c| c.value)
            .unwrap_or(CellValue::Empty);
        self.cache.lock().put(addr, v.clone());
        v
    }

    fn range_values(&self, rect: Rect) -> Vec<(CellAddr, CellValue)> {
        // Range scans bypass the per-cell cache: the translators' range
        // fetch is already a bulk operation.
        self.sheet
            .get_cells(rect)
            .into_iter()
            .map(|(a, c)| (a, c.value))
            .collect()
    }

    fn range_agg(&self, rect: Rect) -> Option<dataspread_formula::RangeAgg> {
        // Like range scans, aggregates bypass the per-cell cache (it is
        // read-through, so storage holds the same values).
        self.sheet.range_agg(rect).map(Into::into)
    }
}

/// Cache-free reader for wave workers: each worker reads the hybrid
/// translator directly, so parallel evaluation never contends on the
/// shared LRU mutex. The cache is read-through, so values are identical
/// with or without it.
struct SheetOnlyReader<'a> {
    sheet: &'a HybridSheet,
}

impl CellReader for SheetOnlyReader<'_> {
    fn value(&self, addr: CellAddr) -> CellValue {
        self.sheet
            .get_cell(addr)
            .map(|c| c.value)
            .unwrap_or(CellValue::Empty)
    }

    fn range_values(&self, rect: Rect) -> Vec<(CellAddr, CellValue)> {
        self.sheet
            .get_cells(rect)
            .into_iter()
            .map(|(a, c)| (a, c.value))
            .collect()
    }

    fn range_agg(&self, rect: Rect) -> Option<dataspread_formula::RangeAgg> {
        self.sheet.range_agg(rect).map(Into::into)
    }
}

/// Minimum members in one fill-down run before the vectorized sweep is
/// used instead of per-cell evaluation.
const BATCH_MIN: usize = 16;

/// Minimum per-cell evaluations in a wave before spawning workers pays
/// for itself (chain-shaped cascades produce thousands of 1-cell waves;
/// those must not pay thread spawn overhead).
const PAR_MIN: usize = 64;

impl SheetEngine {
    pub fn new() -> Self {
        Self::with_posmap(PosMapKind::default())
    }

    pub fn with_posmap(kind: PosMapKind) -> Self {
        SheetEngine {
            sheet: HybridSheet::with_posmap(kind),
            db: Arc::new(RwLock::new(Database::new())),
            deps: DependencyGraph::new(),
            parsed: HashMap::new(),
            cache: Mutex::new(CellCache::new(100_000)),
            composites: HashMap::new(),
            evaluator: Evaluator::new(),
            durable: None,
            recompute_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cells_recomputed: 0,
            scalar_recompute: false,
            shift_recompute_all: false,
            obs: None,
        }
    }

    /// Attach metric handles (checkpoint, recompute-wave, eval-split
    /// counters); every later operation records through them. Idempotent
    /// (last attach wins).
    pub fn set_obs(&mut self, obs: crate::obs::EngineObs) {
        self.obs = Some(obs);
    }

    /// LRU cell-cache `(hits, misses)` since the engine was created — the
    /// formula cache's counters, surfaced for stats and metric sampling.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.lock().stats()
    }

    /// The permanent storage-failure record with its first-observed
    /// timestamp (ms since the Unix epoch); `None` for healthy or
    /// in-memory engines.
    pub fn storage_failed_info(&self) -> Option<(String, u64)> {
        self.durable.as_ref().and_then(|s| s.storage_failed_info())
    }

    /// Cap the worker threads used for wave-parallel recomputation
    /// (clamped to ≥ 1; 1 disables spawning). Defaults to the machine's
    /// available parallelism.
    pub fn set_recompute_threads(&mut self, threads: usize) {
        self.recompute_threads = threads.max(1);
    }

    /// Cells recomputed since this engine was created (including cells
    /// marked `#CIRC!`).
    pub fn cells_recomputed(&self) -> u64 {
        self.cells_recomputed
    }

    /// Force the retained sequential per-cell recompute path — the
    /// differential oracle and the bench baseline for the wave pipeline.
    #[doc(hidden)]
    pub fn set_scalar_recompute(&mut self, on: bool) {
        self.scalar_recompute = on;
    }

    /// Restore the recompute-everything structural-edit path (whole-cache
    /// clear, every surviving formula reseeded) — the differential
    /// baseline for band-intersection seeding.
    #[doc(hidden)]
    pub fn set_shift_recompute_all(&mut self, on: bool) {
        self.shift_recompute_all = on;
    }

    // ------------------------------------------------------ persistence --

    /// Open (or create) a durable sheet stored in directory `dir`.
    ///
    /// Recovery runs first: an interrupted checkpoint is rolled back, the
    /// checkpoint image is loaded (CRC-verified), and every committed
    /// logical op in the WAL is replayed; the recovered state is then
    /// checkpointed so the image is current and the WAL starts empty.
    /// Subsequent `update_cell` / insert / delete row-col ops are logged
    /// automatically; [`SheetEngine::save`] is the fsync-point and
    /// [`SheetEngine::checkpoint`] folds the log into the image.
    pub fn open(dir: impl AsRef<Path>) -> Result<SheetEngine, EngineError> {
        Self::open_with_posmap(dir, PosMapKind::default())
    }

    /// [`SheetEngine::open`] with every file op routed through `fs` — the
    /// hook fault-injection tests use to script storage failures.
    pub fn open_on(
        fs: Arc<dyn StorageFs>,
        dir: impl AsRef<Path>,
    ) -> Result<SheetEngine, EngineError> {
        Self::open_with_posmap_on(fs, dir, PosMapKind::default())
    }

    /// [`SheetEngine::open`] with an explicit positional-map scheme for a
    /// *fresh* store. An existing store keeps the scheme it was created
    /// with (it is recorded in the image header).
    pub fn open_with_posmap(
        dir: impl AsRef<Path>,
        kind: PosMapKind,
    ) -> Result<SheetEngine, EngineError> {
        Self::open_with_posmap_on(dataspread_relstore::real_fs(), dir, kind)
    }

    /// [`SheetEngine::open_with_posmap`] on an explicit filesystem.
    pub fn open_with_posmap_on(
        fs: Arc<dyn StorageFs>,
        dir: impl AsRef<Path>,
        kind: PosMapKind,
    ) -> Result<SheetEngine, EngineError> {
        let (store, recovered) = DurableStore::open_on(fs, dir)?;
        let kind = recovered.posmap.unwrap_or(kind);
        let mut engine = Self::with_posmap(kind);
        // 1. Rebuild the region layout from the image (regions first, so
        //    the catch-all cells below route to the catch-all; batched, so
        //    the routing index builds once for the whole image).
        engine
            .sheet
            .restore_regions(recovered.regions.iter().map(|r| {
                let source = match &r.encoded {
                    Some(bytes) => RegionSource::Encoded(bytes),
                    None => RegionSource::Cells(r.cells.as_slice()),
                };
                (r.id, r.kind, r.rect, source)
            }))?;
        for (addr, cell) in &recovered.catchall {
            engine.sheet.set_cell(*addr, cell.clone())?;
        }
        // 2. Re-register formulas so later edits recompute dependents; the
        //    stored values are already the computed ones, so no recompute.
        let absolute_cells =
            recovered
                .catchall
                .iter()
                .cloned()
                .chain(recovered.regions.iter().flat_map(|r| {
                    r.cells.iter().map(|(addr, cell)| {
                        (
                            addr.offset(r.rect.r1 as i64, r.rect.c1 as i64),
                            cell.clone(),
                        )
                    })
                }));
        for (addr, cell) in absolute_cells {
            if let Some(src) = &cell.formula {
                if let Ok(expr) = parse(src) {
                    engine.register_formula(addr, expr, src.clone());
                }
            }
        }
        // Columnar regions restore from their encoded pages (no cell list
        // in the image), so their formulas register through a side scan.
        for (addr, src) in engine.sheet.columnar_formula_cells() {
            if let Ok(expr) = parse(&src) {
                engine.register_formula(addr, expr, src);
            }
        }
        // 3. The restored state matches the image byte-for-byte — unless
        //    the image is a legacy format, in which case everything must
        //    re-serialize into the region-keyed layout.
        if recovered.posmap.is_some() && recovered.migrated_from.is_none() {
            engine.sheet.clear_dirty();
        }
        // 4. Replay the committed op tail through the normal op paths
        //    (each op marks the regions it touches dirty again).
        for op in &recovered.ops {
            engine.apply_logged(op)?;
        }
        // 5. Fold the replayed state into the image and reset the WAL.
        engine.durable = Some(store);
        engine.checkpoint()?;
        Ok(engine)
    }

    /// Whether this engine persists to disk.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The permanent storage-failure state of the underlying store:
    /// `Some(cause)` once an fsync failed or a checkpoint died mid-write.
    /// In-memory engines (and healthy stores) return `None`. A failed
    /// engine keeps serving reads from memory but refuses durable
    /// mutations; reopening the directory is the only recovery.
    pub fn storage_failed(&self) -> Option<String> {
        self.durable.as_ref().and_then(|s| s.storage_failed())
    }

    /// The restart-reconciliation pair `(incarnation, horizon)` of the
    /// backing store, `(0, 0)` for in-memory engines. See
    /// [`DurableStore::recovery_horizon`].
    pub fn recovery_horizon(&self) -> (u64, u64) {
        self.durable
            .as_ref()
            .map_or((0, 0), DurableStore::recovery_horizon)
    }

    /// The fsync-point: force every logged op to stable storage. The WAL
    /// write happens inside each op; this makes those writes crash-proof.
    /// No-op for in-memory engines.
    pub fn save(&mut self) -> Result<(), EngineError> {
        match self.durable.as_mut() {
            Some(store) => store.sync(),
            None => Ok(()),
        }
    }

    /// Fold the regions touched since the last checkpoint into the paged
    /// image and truncate the WAL. Clean regions are neither re-serialized
    /// nor rewritten — a single-cell edit checkpoints in O(dirty regions),
    /// not O(sheet). Returns `None` for in-memory engines.
    pub fn checkpoint(&mut self) -> Result<Option<CheckpointReport>, EngineError> {
        if self.durable.is_none() {
            return Ok(None);
        }
        let kind = self.sheet.posmap_kind();
        let images = self.sheet.region_images();
        let store = self.durable.as_mut().expect("checked above");
        let timed = self
            .obs
            .as_ref()
            .filter(|o| o.enabled())
            .map(|_| Instant::now());
        let report = match store.checkpoint(kind, &images) {
            Ok(report) => report,
            Err(e) => {
                // The undo journal rolls the torn image back at the next
                // open; record the rollback for operators.
                if let Some(obs) = &self.obs {
                    obs.note_checkpoint_rollback(&e.to_string());
                }
                return Err(e);
            }
        };
        if let (Some(obs), Some(t0)) = (&self.obs, timed) {
            obs.checkpoint_ns.record_ns(t0.elapsed().as_nanos() as u64);
            obs.checkpoint_pages.add(report.pages_written);
        }
        self.sheet.clear_dirty();
        Ok(Some(report))
    }

    /// Checkpoint automatically after every `ops` logged operations
    /// (`None`, the default, disables).
    pub fn set_auto_checkpoint(&mut self, ops: Option<u64>) {
        if let Some(store) = self.durable.as_mut() {
            store.set_auto_checkpoint(ops);
        }
    }

    /// Rotate the WAL to a fresh segment file once the current one exceeds
    /// `bytes` (fully checkpointed segments are deleted at the next
    /// checkpoint). Durable engines default to 64 MiB; `None` keeps one
    /// unbounded file.
    pub fn set_wal_segment_limit(&mut self, bytes: Option<u64>) {
        if let Some(store) = self.durable.as_mut() {
            store.set_wal_segment_limit(bytes);
        }
    }

    /// Persistence counters (WAL size, pager cache stats); `None` for
    /// in-memory engines.
    pub fn persistence_stats(&self) -> Option<PersistenceStats> {
        self.durable.as_ref().map(|store| {
            let mut stats = store.stats();
            stats.resident_bytes = self.sheet.resident_bytes();
            stats
        })
    }

    /// Shared handle to this engine's WAL for group-commit coordinators
    /// (`None` for in-memory engines). A dedicated committer fsyncs
    /// batches through it; sessions block on their op's commit ticket
    /// instead of paying one fsync per op.
    pub fn commit_wal(&self) -> Option<std::sync::Arc<dataspread_relstore::SharedWal>> {
        self.durable.as_ref().map(DurableStore::commit_wal)
    }

    /// Commit ticket of the most recently logged op (0 when nothing was
    /// logged or the engine is in-memory). The op is crash-durable once
    /// `SharedWal::wait_durable(ticket)` returns — the decoupling that
    /// lets commit acknowledgement trail logging.
    pub fn last_commit_ticket(&self) -> u64 {
        self.durable.as_ref().map_or(0, DurableStore::last_ticket)
    }

    /// Append `op` to the WAL (when durable) and auto-checkpoint if the
    /// configured threshold was reached.
    fn log_op(&mut self, op: LoggedOp) -> Result<(), EngineError> {
        let hit_threshold = match self.durable.as_mut() {
            Some(store) => {
                store.log(&op)?;
                store.should_checkpoint()
            }
            None => false,
        };
        if hit_threshold {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Replay one recovered op through the normal (non-logging) op paths.
    fn apply_logged(&mut self, op: &LoggedOp) -> Result<(), EngineError> {
        match op {
            LoggedOp::SetCell { row, col, input } => {
                self.update_cell_impl(CellAddr::new(*row, *col), input)
            }
            LoggedOp::SetValue { row, col, value } => {
                self.set_value_impl(CellAddr::new(*row, *col), value.clone())
            }
            LoggedOp::InsertRows { at, n } => self.insert_rows_impl(*at, *n),
            LoggedOp::DeleteRows { at, n } => self.delete_rows_impl(*at, *n),
            LoggedOp::InsertCols { at, n } => self.insert_cols_impl(*at, *n),
            LoggedOp::DeleteCols { at, n } => self.delete_cols_impl(*at, *n),
            LoggedOp::ImportRows {
                row,
                col,
                width,
                rows,
            } => self
                .import_rows_impl(CellAddr::new(*row, *col), *width, rows.iter().cloned())
                .map(|_| ()),
        }
    }

    /// Handle to the backing database (for SQL clients and tests).
    pub fn database(&self) -> Arc<RwLock<Database>> {
        Arc::clone(&self.db)
    }

    /// Direct access to the hybrid storage layer.
    pub fn storage(&self) -> &HybridSheet {
        &self.sheet
    }

    pub fn storage_mut(&mut self) -> &mut HybridSheet {
        &mut self.sheet
    }

    // ------------------------------------------ spreadsheet operations --

    /// `getCells(range)`.
    pub fn get_cells(&self, rect: Rect) -> Vec<(CellAddr, Cell)> {
        self.sheet.get_cells(rect)
    }

    /// A single cell's computed value.
    pub fn value(&self, addr: CellAddr) -> CellValue {
        self.sheet
            .get_cell(addr)
            .map(|c| c.value)
            .unwrap_or(CellValue::Empty)
    }

    /// `updateCell(row, column, value)`: interprets `input` the way a
    /// spreadsheet UI does — `=…` is a formula, numeric text is a number,
    /// TRUE/FALSE are booleans, an empty string clears the cell.
    ///
    /// On a durable engine the op is appended to the WAL after it applies.
    pub fn update_cell(&mut self, addr: CellAddr, input: &str) -> Result<(), EngineError> {
        self.update_cell_impl(addr, input)?;
        self.log_op(LoggedOp::SetCell {
            row: addr.row,
            col: addr.col,
            input: input.to_string(),
        })
    }

    fn update_cell_impl(&mut self, addr: CellAddr, input: &str) -> Result<(), EngineError> {
        if let Some(src) = input.strip_prefix('=') {
            let expr = parse(src)?;
            self.register_formula(addr, expr, src.to_string());
            self.sheet.set_cell(addr, Cell::formula(src))?;
            self.cache.lock().invalidate(&addr);
            self.recompute(&[addr])?;
            return Ok(());
        }
        // Literal input: drop any previous formula.
        if self.parsed.remove(&addr).is_some() {
            self.deps.remove(addr);
        }
        let trimmed = input.trim();
        if trimmed.is_empty() {
            self.sheet.clear_cell(addr)?;
        } else {
            let value = parse_literal(trimmed);
            self.sheet.set_cell(addr, Cell::value(value))?;
        }
        self.cache.lock().invalidate(&addr);
        self.recompute(&[addr])?;
        Ok(())
    }

    /// [`SheetEngine::update_cell`] with an A1 address.
    pub fn update_cell_a1(&mut self, a1: &str, input: &str) -> Result<(), EngineError> {
        self.update_cell(CellAddr::parse_a1(a1)?, input)
    }

    /// `insertRowAfter(row)`: inserts `n` rows so the first new row sits at
    /// index `at`. Logged to the WAL on durable engines (as are the other
    /// three structural edits below).
    pub fn insert_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        self.insert_rows_impl(at, n)?;
        self.log_op(LoggedOp::InsertRows { at, n })
    }

    pub fn delete_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        self.delete_rows_impl(at, n)?;
        self.log_op(LoggedOp::DeleteRows { at, n })
    }

    pub fn insert_cols(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        self.insert_cols_impl(at, n)?;
        self.log_op(LoggedOp::InsertCols { at, n })
    }

    pub fn delete_cols(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        self.delete_cols_impl(at, n)?;
        self.log_op(LoggedOp::DeleteCols { at, n })
    }

    fn insert_rows_impl(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        self.sheet.insert_rows(at, n)?;
        self.apply_shift(Shift::InsertRows { at, n })
    }

    fn delete_rows_impl(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        self.sheet.delete_rows(at, n)?;
        self.apply_shift(Shift::DeleteRows { at, n })
    }

    fn insert_cols_impl(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        self.sheet.insert_cols(at, n)?;
        self.apply_shift(Shift::InsertCols { at, n })
    }

    fn delete_cols_impl(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        self.sheet.delete_cols(at, n)?;
        self.apply_shift(Shift::DeleteCols { at, n })
    }

    /// Write a concrete value (bypassing literal inference) and recompute
    /// dependents — the replay path for [`LoggedOp::SetValue`].
    fn set_value_impl(&mut self, addr: CellAddr, value: CellValue) -> Result<(), EngineError> {
        if self.parsed.remove(&addr).is_some() {
            self.deps.remove(addr);
        }
        self.sheet.set_cell(addr, Cell::value(value))?;
        self.cache.lock().invalidate(&addr);
        self.recompute(&[addr])
    }

    /// Bulk-import rows of values starting at `top_left` as a dedicated ROM
    /// region (the VCF import path: O(N) bulk-loaded positional maps).
    ///
    /// On a durable engine the whole import is one bulk WAL record —
    /// committed at the next [`SheetEngine::save`] like any other op and
    /// replayed through the same bulk-load path on recovery (no forced
    /// checkpoint).
    pub fn import_rows(
        &mut self,
        top_left: CellAddr,
        width: u32,
        rows: impl IntoIterator<Item = Vec<CellValue>>,
    ) -> Result<Rect, EngineError> {
        if self.durable.is_none() {
            return self.import_rows_impl(top_left, width, rows);
        }
        let rows: Vec<Vec<CellValue>> = rows.into_iter().collect();
        let rect = self.import_rows_impl(top_left, width, rows.iter().cloned())?;
        match self.log_op(LoggedOp::ImportRows {
            row: top_left.row,
            col: top_left.col,
            width,
            rows,
        }) {
            Ok(()) => {}
            // An import too large for one WAL record (the store refuses it
            // before touching the log) is captured by an immediate
            // checkpoint instead — the pre-PR-3 bulk path.
            Err(EngineError::Store(dataspread_relstore::StoreError::LimitExceeded(_))) => {
                self.checkpoint()?;
            }
            Err(e) => return Err(e),
        }
        Ok(rect)
    }

    fn import_rows_impl(
        &mut self,
        top_left: CellAddr,
        width: u32,
        rows: impl IntoIterator<Item = Vec<CellValue>>,
    ) -> Result<Rect, EngineError> {
        let cells = rows.into_iter().map(|row| {
            row.into_iter()
                .map(|v| Cell {
                    value: v,
                    formula: None,
                })
                .collect::<Vec<Cell>>()
        });
        let rom = RomTranslator::bulk_load_rows(self.sheet.posmap_kind(), width, cells)?;
        let n_rows = rom.rows();
        if n_rows == 0 {
            return Err(EngineError::BadLink("import of zero rows".into()));
        }
        let rect = Rect::new(
            top_left.row,
            top_left.col,
            top_left.row + n_rows - 1,
            top_left.col + width - 1,
        );
        // Check overlap up front so a rejected import leaves the sheet
        // untouched, then clear whatever occupied the target rectangle —
        // an import *overwrites* the block it lands on (otherwise
        // `add_region` would absorb the old cells over the imported ones).
        if self.sheet.layout().iter().any(|(r, _)| r.intersects(&rect)) {
            return Err(EngineError::BadLink(format!(
                "import target {rect} overlaps an existing region"
            )));
        }
        for (addr, _) in self.sheet.get_cells(rect) {
            self.sheet.clear_cell(addr)?;
        }
        // Formula registrations under the imported block are dead too —
        // left in place, the next structural edit would resurrect the old
        // formula cells over the imported data.
        let doomed: Vec<CellAddr> = self
            .parsed
            .keys()
            .filter(|addr| rect.contains(**addr))
            .copied()
            .collect();
        for addr in doomed {
            self.parsed.remove(&addr);
            self.deps.remove(addr);
        }
        self.sheet.add_region(rect, Box::new(rom))?;
        self.cache.lock().clear();
        // Formulas reading the imported rectangle must see the new values.
        let seeds: Vec<CellAddr> = self
            .deps
            .formulas()
            .filter(|(_, ranges)| ranges.iter().any(|r| r.intersects(&rect)))
            .map(|(addr, _)| addr)
            .collect();
        self.recompute(&seeds)?;
        Ok(rect)
    }

    // --------------------------------------------- database operations --

    /// `linkTable(range, tableName)` (paper §III): if the table exists the
    /// region becomes a live view of it; otherwise the region's data (first
    /// row = column names) is turned into a new table and then linked.
    pub fn link_table(&mut self, rect: Rect, name: &str) -> Result<Rect, EngineError> {
        let exists = self.db.read().contains(name);
        if !exists {
            self.create_table_from_region(rect, name)?;
            // The region's cells now live in the table; remove them from
            // sheet storage.
            for (addr, _) in self.sheet.get_cells(rect) {
                self.sheet.clear_cell(addr)?;
            }
        }
        let (rows, cols) = {
            let db = self.db.read();
            let t = db.table(name)?;
            (t.row_count() as u32, t.schema().len() as u32)
        };
        let link_rect = Rect::new(
            rect.r1,
            rect.c1,
            rect.r1 + rows.max(1) - 1,
            rect.c1 + cols.max(1) - 1,
        );
        let tom = TomTranslator::new(Arc::clone(&self.db), name);
        self.sheet.add_region(link_rect, Box::new(tom))?;
        self.cache.lock().clear();
        // Linked-table contents are captured as plain cells at checkpoint
        // time (the table link itself is not yet persisted; see README).
        self.checkpoint()?;
        Ok(link_rect)
    }

    fn create_table_from_region(&mut self, rect: Rect, name: &str) -> Result<(), EngineError> {
        let cells = self.sheet.get_cells(rect);
        if cells.is_empty() {
            return Err(EngineError::BadLink(format!(
                "region {rect} is empty; nothing to create"
            )));
        }
        // First row: column names.
        let mut columns = Vec::new();
        for c in rect.c1..=rect.c2 {
            let header = cells
                .iter()
                .find(|(a, _)| a.row == rect.r1 && a.col == c)
                .map(|(_, cell)| cell.value.as_text())
                .filter(|s| !s.is_empty())
                .unwrap_or_else(|| format!("col{}", c - rect.c1 + 1));
            columns.push(ColumnDef::new(header, DataType::Any));
        }
        let mut db = self.db.write();
        let table = db.create_table(name, Schema::new(columns))?;
        for r in rect.r1 + 1..=rect.r2 {
            let mut row: Vec<Datum> = Vec::with_capacity((rect.c2 - rect.c1 + 1) as usize);
            for c in rect.c1..=rect.c2 {
                let v = cells
                    .iter()
                    .find(|(a, _)| a.row == r && a.col == c)
                    .map(|(_, cell)| value_to_datum(&cell.value))
                    .unwrap_or(Datum::Null);
                row.push(v);
            }
            table.insert(&row)?;
        }
        Ok(())
    }

    /// The `sql(query, params…)` spreadsheet function.
    pub fn sql(&self, query: &str, params: &[Datum]) -> Result<Relation, EngineError> {
        Ok(execute_sql(&*self.db.read(), query, params)?)
    }

    /// Materialize a sheet range as a relation (first row = headers).
    pub fn range_to_relation(&self, rect: Rect) -> Relation {
        let cells = self.sheet.get_cells(rect);
        let mut columns = Vec::new();
        for c in rect.c1..=rect.c2 {
            let header = cells
                .iter()
                .find(|(a, _)| a.row == rect.r1 && a.col == c)
                .map(|(_, cell)| cell.value.as_text())
                .filter(|s| !s.is_empty())
                .unwrap_or_else(|| format!("col{}", c - rect.c1 + 1));
            columns.push(header);
        }
        let mut rows = Vec::new();
        for r in rect.r1 + 1..=rect.r2 {
            let mut row = Vec::new();
            for c in rect.c1..=rect.c2 {
                let v = cells
                    .iter()
                    .find(|(a, _)| a.row == r && a.col == c)
                    .map(|(_, cell)| value_to_datum(&cell.value))
                    .unwrap_or(Datum::Null);
                row.push(v);
            }
            rows.push(row);
        }
        Relation::new(columns, rows)
    }

    /// Store a composite table value at `addr` (what the relational
    /// spreadsheet functions return).
    pub fn place_composite(&mut self, addr: CellAddr, relation: Relation) {
        self.composites.insert(addr, relation);
    }

    pub fn composite(&self, addr: CellAddr) -> Option<&Relation> {
        self.composites.get(&addr)
    }

    /// The `index(cell, i, j)` function: dereference the composite value at
    /// `src` and place the `(i, j)` entry (1-based) at `dst`.
    pub fn index_composite(
        &mut self,
        src: CellAddr,
        i: usize,
        j: usize,
        dst: CellAddr,
    ) -> Result<(), EngineError> {
        let value = self
            .composites
            .get(&src)
            .and_then(|rel| rel.index(i, j))
            .cloned()
            .ok_or_else(|| {
                EngineError::BadLink(format!("no composite value entry ({i},{j}) at {src}"))
            })?;
        let cell_value = crate::translator::datum_to_value(&value);
        // Route through the SetValue replay path so live and recovered
        // engines behave identically (it also drops any stale formula
        // registration at dst).
        self.set_value_impl(dst, cell_value.clone())?;
        self.log_op(LoggedOp::SetValue {
            row: dst.row,
            col: dst.col,
            value: cell_value,
        })
    }

    // ------------------------------------------------------- optimizer --

    /// Run the hybrid optimizer over the current sheet and migrate storage
    /// to the chosen decomposition.
    pub fn optimize(
        &mut self,
        cm: &CostModel,
        algorithm: OptimizeAlgorithm,
        opts: &OptimizerOptions,
    ) -> Result<OptimizeReport, EngineError> {
        let snapshot = self.sheet.snapshot(false);
        // Relation-width caps must survive band collapse (Theorem 8).
        let view = match cm.max_table_cols {
            Some(cap) => GridView::from_sheet_capped(&snapshot, u32::MAX, cap as u32),
            None => GridView::from_sheet(&snapshot),
        };
        let decomposition = match algorithm {
            OptimizeAlgorithm::Dp => {
                optimize_dp(&view, cm, opts).map_err(|e| EngineError::Unsupported(e.to_string()))?
            }
            OptimizeAlgorithm::Greedy => optimize_greedy(&view, cm, opts),
            OptimizeAlgorithm::Agg => optimize_agg(&view, cm, opts),
            OptimizeAlgorithm::IncrementalAgg { eta } => {
                let old = Decomposition::new(
                    self.sheet
                        .layout()
                        .into_iter()
                        .filter(|(_, kind)| *kind != crate::ModelKind::Tom)
                        .map(|(rect, kind)| dataspread_hybrid::Region { rect, kind })
                        .collect(),
                );
                let (d, _) = incremental_agg(
                    &snapshot,
                    &old,
                    cm,
                    &IncrementalOptions {
                        eta,
                        base: opts.clone(),
                    },
                );
                d
            }
        };
        let storage_before = self.sheet.storage_bytes();
        let migrated_cells = self.sheet.reorganize(&decomposition)?;
        self.cache.lock().clear();
        Ok(OptimizeReport {
            decomposition,
            migrated_cells,
            storage_before,
            storage_after: self.sheet.storage_bytes(),
        })
    }

    /// Migrate one region (index into `storage().layout()`) to a different
    /// physical model in place — e.g. a hot read-mostly ROM region to
    /// [`ModelKind::Columnar`]. Cell content is preserved exactly; like
    /// [`SheetEngine::optimize`], the new layout persists at the next
    /// checkpoint.
    pub fn migrate_region(
        &mut self,
        slot: usize,
        kind: crate::ModelKind,
    ) -> Result<(), EngineError> {
        self.sheet.migrate_region(slot, kind)
    }

    /// Accounted storage bytes.
    pub fn storage_bytes(&self) -> u64 {
        self.sheet.storage_bytes()
    }

    /// In-memory copy of the sheet (analysis, tests).
    pub fn snapshot(&self) -> SparseSheet {
        self.sheet.snapshot(true)
    }

    // -------------------------------------------------------- formulas --

    /// Register (or replace) a formula: dependency ranges, parsed AST, the
    /// verbatim source text, and the fill-down shape (detected once, here,
    /// so recomputation can batch runs without re-inspecting ASTs).
    fn register_formula(&mut self, addr: CellAddr, expr: Expr, source: String) {
        self.deps.set_formula(addr, collect_ranges(&expr));
        let sliding = detect_sliding(&expr, addr);
        self.parsed.insert(
            addr,
            FormulaInfo {
                expr,
                source,
                sliding,
            },
        );
    }

    /// Re-evaluate the given seeds' dependents: in topological waves, with
    /// same-shape fill-down runs batch-evaluated and wide waves fanned out
    /// across the worker budget. Results are written back in wave order,
    /// so output is identical to the sequential per-cell walk
    /// ([`SheetEngine::set_scalar_recompute`] retains that walk as the
    /// differential oracle).
    fn recompute(&mut self, seeds: &[CellAddr]) -> Result<(), EngineError> {
        if self.scalar_recompute {
            return self.recompute_scalar(seeds);
        }
        let plan = self.deps.recompute_waves(seeds);
        self.run_wave_plan(plan)
    }

    fn run_wave_plan(&mut self, plan: WavePlan) -> Result<(), EngineError> {
        let timed = self
            .obs
            .as_ref()
            .filter(|o| o.enabled() && !plan.waves.is_empty())
            .map(|_| Instant::now());
        for wave in &plan.waves {
            if let Some(obs) = self.obs.as_ref().filter(|o| o.enabled()) {
                obs.waves.inc();
                obs.wave_width.record(wave.len() as u64);
            }
            self.eval_wave(wave)?;
        }
        if let (Some(obs), Some(t0)) = (&self.obs, timed) {
            obs.recompute_ns.record_ns(t0.elapsed().as_nanos() as u64);
        }
        for addr in plan.cyclic {
            self.write_computed(addr, CellValue::Error(CellError::Circular))?;
        }
        Ok(())
    }

    /// The retained sequential tree walk over the Kahn order.
    fn recompute_scalar(&mut self, seeds: &[CellAddr]) -> Result<(), EngineError> {
        let plan = self.deps.recompute_plan(seeds);
        if let Some(obs) = self.obs.as_ref().filter(|o| o.enabled()) {
            obs.scalar_evals.add(plan.order.len() as u64);
        }
        for addr in plan.order {
            let Some(info) = self.parsed.get(&addr) else {
                continue;
            };
            let value = {
                let reader = EngineReader {
                    sheet: &self.sheet,
                    cache: &self.cache,
                };
                self.evaluator.eval(&info.expr, &reader)
            };
            self.write_computed(addr, value)?;
        }
        for addr in plan.cyclic {
            self.write_computed(addr, CellValue::Error(CellError::Circular))?;
        }
        Ok(())
    }

    /// Recompute every registered formula (bulk loads, benches). The wave
    /// path plans with [`DependencyGraph::full_waves`]: when the affected
    /// set is the whole graph there is nothing to discover, so the
    /// per-cell spatial probes of the seeded planner are skipped entirely.
    pub fn recompute_all(&mut self) -> Result<(), EngineError> {
        if self.scalar_recompute {
            let seeds: Vec<CellAddr> = self.parsed.keys().copied().collect();
            return self.recompute_scalar(&seeds);
        }
        let plan = self.deps.full_waves();
        self.run_wave_plan(plan)
    }

    /// Evaluate one wave. Members of a wave never read each other (the
    /// wave invariant), so evaluation order within the wave cannot change
    /// results — only the write-back order is kept deterministic.
    ///
    /// Every read goes through the cache-free [`SheetOnlyReader`]: the LRU
    /// cache is read-through (so values are identical with or without it),
    /// and its per-read lock + recency churn is exactly the overhead a
    /// bulk cascade cannot afford. The cache still serves the interactive
    /// single-cell paths and stays coherent because every write-back
    /// invalidates its address.
    fn eval_wave(&mut self, wave: &[CellAddr]) -> Result<(), EngineError> {
        // Chains degenerate into thousands of single-cell waves; skip the
        // grouping machinery for them.
        if let [addr] = *wave {
            if let Some(info) = self.parsed.get(&addr) {
                let reader = SheetOnlyReader { sheet: &self.sheet };
                let value = self.evaluator.eval(&info.expr, &reader);
                if let Some(obs) = self.obs.as_ref().filter(|o| o.enabled()) {
                    obs.scalar_evals.inc();
                }
                self.write_computed(addr, value)?;
            }
            return Ok(());
        }
        let mut results: Vec<Option<CellValue>> = vec![None; wave.len()];
        let mut batched = vec![false; wave.len()];
        // 1. Vectorized sweeps over fill-down runs: same sliding-aggregate
        //    shape, same column. One bulk fetch serves the whole run.
        let mut runs: HashMap<(SlidingSpec, u32), Vec<usize>> = HashMap::new();
        for (i, &addr) in wave.iter().enumerate() {
            if let Some(spec) = self.parsed.get(&addr).and_then(|info| info.sliding) {
                runs.entry((spec, addr.col)).or_default().push(i);
            }
        }
        for ((spec, _), idxs) in runs {
            if idxs.len() < BATCH_MIN {
                continue;
            }
            let members: Vec<CellAddr> = idxs.iter().map(|&i| wave[i]).collect();
            let reader = SheetOnlyReader { sheet: &self.sheet };
            // `None` (window off-sheet, union too large) falls back to the
            // per-cell walk below.
            if let Some(values) = batch_eval_sliding(spec, &members, &reader) {
                for (&i, v) in idxs.iter().zip(values) {
                    results[i] = Some(v);
                    batched[i] = true;
                }
            }
        }
        // 2. Everything else: per-cell tree walks, fanned out across the
        //    worker budget when the wave is wide enough to pay for spawns.
        let rest: Vec<usize> = (0..wave.len()).filter(|&i| !batched[i]).collect();
        if let Some(obs) = self.obs.as_ref().filter(|o| o.enabled()) {
            obs.batch_evals.add((wave.len() - rest.len()) as u64);
            obs.scalar_evals.add(rest.len() as u64);
        }
        let threads = self.recompute_threads.min(rest.len());
        if threads > 1 && rest.len() >= PAR_MIN {
            let sheet = &self.sheet;
            let parsed = &self.parsed;
            let evaluator = self.evaluator;
            let chunk = rest.len().div_ceil(threads);
            let mut partials: Vec<Vec<(usize, Option<CellValue>)>> = Vec::new();
            std::thread::scope(|s| {
                let handles: Vec<_> = rest
                    .chunks(chunk)
                    .map(|ids| {
                        s.spawn(move || {
                            let reader = SheetOnlyReader { sheet };
                            ids.iter()
                                .map(|&i| {
                                    let value = parsed
                                        .get(&wave[i])
                                        .map(|info| evaluator.eval(&info.expr, &reader));
                                    (i, value)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    partials.push(h.join().expect("recompute worker panicked"));
                }
            });
            for part in partials {
                for (i, value) in part {
                    results[i] = value;
                }
            }
        } else {
            let reader = SheetOnlyReader { sheet: &self.sheet };
            for &i in &rest {
                let Some(info) = self.parsed.get(&wave[i]) else {
                    continue;
                };
                results[i] = Some(self.evaluator.eval(&info.expr, &reader));
            }
        }
        // 3. Deterministic write-back in wave (address) order.
        for (i, &addr) in wave.iter().enumerate() {
            if let Some(value) = results[i].take() {
                self.write_computed(addr, value)?;
            }
        }
        Ok(())
    }

    fn write_computed(&mut self, addr: CellAddr, value: CellValue) -> Result<(), EngineError> {
        // The registry owns the verbatim source text. Re-deriving it from
        // the stored cell cost a full-`Cell` clone per plan step, and
        // falling back to the re-serialized AST silently rewrote the
        // user's formula into canonical form.
        let formula = self.parsed.get(&addr).map(|info| info.source.clone());
        self.sheet.set_cell(addr, Cell { value, formula })?;
        self.cache.lock().invalidate(&addr);
        self.cells_recomputed += 1;
        Ok(())
    }

    /// Rewrite formulas (and their registry addresses) for a structural
    /// edit, then recompute the formulas whose values can actually change.
    ///
    /// A formula's value survives a structural edit whenever its windows
    /// move rigidly with the data they read — only windows *intersecting
    /// the shift band* (a deleted band's cells disappear; an insertion
    /// strictly inside a range changes the range's geometry) and formulas
    /// whose references were destroyed can change value. Everything else
    /// keeps its stored value, and cached values above the band stay
    /// valid, so the eval cache is evicted only at and below the edit.
    fn apply_shift(&mut self, shift: Shift) -> Result<(), EngineError> {
        if self.shift_recompute_all {
            self.cache.lock().clear();
        } else {
            self.cache.lock().invalidate_where(|addr| match shift {
                Shift::InsertRows { at, .. } | Shift::DeleteRows { at, .. } => addr.row >= at,
                Shift::InsertCols { at, .. } | Shift::DeleteCols { at, .. } => addr.col >= at,
            });
        }
        let mut entries: Vec<(CellAddr, FormulaInfo)> = self.parsed.drain().collect();
        self.deps = DependencyGraph::new();
        let mut seeds = Vec::new();
        for (addr, info) in entries.drain(..) {
            // The formula cell itself may have moved or died. Readers of a
            // dead formula's cell necessarily read the deleted band, so
            // they reseed through their own band intersection.
            let Some(new_addr) = shift_addr(addr, shift) else {
                continue;
            };
            match rewrite(&info.expr, shift) {
                Some(new_expr) => {
                    let needs_recompute = self.shift_recompute_all
                        || collect_ranges(&info.expr)
                            .iter()
                            .any(|r| range_hits_shift(r, shift));
                    let source = if new_expr == info.expr {
                        // Pure translation (or untouched): the sheet moved
                        // the cell with its verbatim text; keep it.
                        info.source
                    } else {
                        // The reference set genuinely changed shape; the
                        // stored text must be refreshed from the AST.
                        let source = new_expr.to_string();
                        let value = self
                            .sheet
                            .get_cell(new_addr)
                            .map(|c| c.value)
                            .unwrap_or(CellValue::Empty);
                        self.sheet.set_cell(
                            new_addr,
                            Cell {
                                value,
                                formula: Some(source.clone()),
                            },
                        )?;
                        source
                    };
                    self.register_formula(new_addr, new_expr, source);
                    if needs_recompute {
                        seeds.push(new_addr);
                    }
                }
                None => {
                    // A referenced cell was destroyed: #REF!. Seed the
                    // address so formulas reading *this* cell recompute
                    // against the error even when their own windows miss
                    // the band entirely.
                    self.sheet.set_cell(
                        new_addr,
                        Cell {
                            value: CellValue::Error(CellError::Ref),
                            formula: None,
                        },
                    )?;
                    self.cache.lock().invalidate(&new_addr);
                    seeds.push(new_addr);
                }
            }
        }
        self.recompute(&seeds)
    }
}

/// Whether a read window's *pre-edit* coordinates intersect the band of a
/// structural edit — the exact condition under which the window's contents
/// (and thus the reading formula's value) can change. A window strictly
/// above/left of the band, or one shifted rigidly as a whole, keeps its
/// contents; an insertion changes contents only when it lands strictly
/// inside the window (the window grows), a deletion only when the deleted
/// band overlaps it.
fn range_hits_shift(r: &Rect, shift: Shift) -> bool {
    match shift {
        Shift::InsertRows { at, .. } => r.r1 < at && at <= r.r2,
        Shift::DeleteRows { at, n } => (r.r1 as u64) < at as u64 + n as u64 && r.r2 >= at,
        Shift::InsertCols { at, .. } => r.c1 < at && at <= r.c2,
        Shift::DeleteCols { at, n } => (r.c1 as u64) < at as u64 + n as u64 && r.c2 >= at,
    }
}

/// Where a cell moves under a structural edit; `None` when deleted.
fn shift_addr(addr: CellAddr, shift: Shift) -> Option<CellAddr> {
    match shift {
        Shift::InsertRows { at, n } => Some(if addr.row >= at {
            CellAddr::new(addr.row + n, addr.col)
        } else {
            addr
        }),
        Shift::DeleteRows { at, n } => {
            if addr.row >= at + n {
                Some(CellAddr::new(addr.row - n, addr.col))
            } else if addr.row >= at {
                None
            } else {
                Some(addr)
            }
        }
        Shift::InsertCols { at, n } => Some(if addr.col >= at {
            CellAddr::new(addr.row, addr.col + n)
        } else {
            addr
        }),
        Shift::DeleteCols { at, n } => {
            if addr.col >= at + n {
                Some(CellAddr::new(addr.row, addr.col - n))
            } else if addr.col >= at {
                None
            } else {
                Some(addr)
            }
        }
    }
}

/// Interpret user input the way a spreadsheet UI does.
fn parse_literal(s: &str) -> CellValue {
    if let Ok(n) = s.parse::<f64>() {
        return CellValue::Number(n);
    }
    match s.to_ascii_uppercase().as_str() {
        "TRUE" => CellValue::Bool(true),
        "FALSE" => CellValue::Bool(false),
        _ => CellValue::Text(s.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> CellAddr {
        CellAddr::parse_a1(s).unwrap()
    }

    #[test]
    fn figure7_example() {
        // The paper's running example: F2 = AVERAGE(B2:C2)+D2+E2 = 85.
        let mut e = SheetEngine::new();
        e.update_cell_a1("B2", "10").unwrap();
        e.update_cell_a1("C2", "20").unwrap();
        e.update_cell_a1("D2", "30").unwrap();
        e.update_cell_a1("E2", "40").unwrap();
        e.update_cell_a1("F2", "=AVERAGE(B2:C2)+D2+E2").unwrap();
        assert_eq!(e.value(a("F2")), CellValue::Number(85.0));
        // Editing a precedent triggers recomputation.
        e.update_cell_a1("B2", "30").unwrap();
        assert_eq!(e.value(a("F2")), CellValue::Number(95.0));
    }

    #[test]
    fn formula_chains_recompute_in_order() {
        let mut e = SheetEngine::new();
        e.update_cell_a1("A1", "1").unwrap();
        e.update_cell_a1("B1", "=A1*2").unwrap();
        e.update_cell_a1("C1", "=B1*2").unwrap();
        e.update_cell_a1("D1", "=B1+C1").unwrap();
        assert_eq!(e.value(a("D1")), CellValue::Number(6.0));
        e.update_cell_a1("A1", "10").unwrap();
        assert_eq!(e.value(a("B1")), CellValue::Number(20.0));
        assert_eq!(e.value(a("C1")), CellValue::Number(40.0));
        assert_eq!(e.value(a("D1")), CellValue::Number(60.0));
    }

    #[test]
    fn cycles_marked_circular() {
        let mut e = SheetEngine::new();
        e.update_cell_a1("A1", "=B1+1").unwrap();
        e.update_cell_a1("B1", "=A1+1").unwrap();
        assert_eq!(e.value(a("A1")), CellValue::Error(CellError::Circular));
        assert_eq!(e.value(a("B1")), CellValue::Error(CellError::Circular));
        // Breaking the cycle heals both.
        e.update_cell_a1("B1", "5").unwrap();
        assert_eq!(e.value(a("A1")), CellValue::Number(6.0));
    }

    #[test]
    fn literal_parsing() {
        let mut e = SheetEngine::new();
        e.update_cell_a1("A1", "3.5").unwrap();
        e.update_cell_a1("A2", "true").unwrap();
        e.update_cell_a1("A3", "hello").unwrap();
        assert_eq!(e.value(a("A1")), CellValue::Number(3.5));
        assert_eq!(e.value(a("A2")), CellValue::Bool(true));
        assert_eq!(e.value(a("A3")), CellValue::Text("hello".into()));
        e.update_cell_a1("A3", "").unwrap();
        assert_eq!(e.value(a("A3")), CellValue::Empty);
    }

    #[test]
    fn insert_rows_shifts_formulas() {
        let mut e = SheetEngine::new();
        e.update_cell_a1("A1", "1").unwrap();
        e.update_cell_a1("A2", "2").unwrap();
        e.update_cell_a1("A3", "=SUM(A1:A2)").unwrap();
        e.insert_rows(1, 2).unwrap(); // new rows at index 1 (above A2)
                                      // The formula moved to A5 and now sums A1:A4.
        let moved = e.sheet.get_cell(a("A5")).expect("formula moved");
        assert_eq!(moved.formula.as_deref(), Some("SUM(A1:A4)"));
        assert_eq!(e.value(a("A5")), CellValue::Number(3.0));
        // Filling a inserted row updates the (grown) range.
        e.update_cell_a1("A2", "10").unwrap();
        assert_eq!(e.value(a("A5")), CellValue::Number(13.0));
    }

    #[test]
    fn delete_rows_produces_ref_errors() {
        let mut e = SheetEngine::new();
        e.update_cell_a1("A1", "1").unwrap();
        e.update_cell_a1("B2", "=A1").unwrap();
        e.delete_rows(0, 1).unwrap();
        // B2 moved to B1; its referenced cell died.
        assert_eq!(e.value(a("B1")), CellValue::Error(CellError::Ref));
    }

    #[test]
    fn recompute_never_rewrites_formula_source() {
        // The stored source must stay byte-for-byte what the user typed —
        // recomputation and structural edits that only translate a formula
        // must not re-serialize the AST into canonical form.
        let mut e = SheetEngine::new();
        e.update_cell_a1("A1", "1").unwrap();
        e.update_cell_a1("A2", "2").unwrap();
        e.update_cell_a1("B1", "=sum( A1 : A2 )").unwrap();
        assert_eq!(e.value(a("B1")), CellValue::Number(3.0));
        fn stored(e: &SheetEngine) -> Option<String> {
            e.sheet.get_cell(CellAddr::parse_a1("B1").unwrap())?.formula
        }
        assert_eq!(stored(&e).as_deref(), Some("sum( A1 : A2 )"));
        // A precedent edit recomputes B1; the text must survive.
        e.update_cell_a1("A1", "10").unwrap();
        assert_eq!(e.value(a("B1")), CellValue::Number(12.0));
        assert_eq!(stored(&e).as_deref(), Some("sum( A1 : A2 )"));
        // A structural edit below every reference translates B1's AST to
        // itself — verbatim text must survive that too.
        e.insert_rows(5, 3).unwrap();
        assert_eq!(stored(&e).as_deref(), Some("sum( A1 : A2 )"));
        assert_eq!(e.value(a("B1")), CellValue::Number(12.0));
    }

    #[test]
    fn dependents_of_destroyed_cells_recompute() {
        // C1 reads B1 reads A5. Deleting row 5 destroys B1's reference;
        // B1 becomes #REF! and C1 — whose own range never touches the
        // deleted band — must still recompute against the new error.
        let mut e = SheetEngine::new();
        e.update_cell_a1("A5", "7").unwrap();
        e.update_cell_a1("B1", "=A5").unwrap();
        e.update_cell_a1("C1", "=B1+1").unwrap();
        assert_eq!(e.value(a("C1")), CellValue::Number(8.0));
        e.delete_rows(4, 1).unwrap();
        assert_eq!(e.value(a("B1")), CellValue::Error(CellError::Ref));
        assert_eq!(e.value(a("C1")), CellValue::Error(CellError::Ref));
    }

    #[test]
    fn shift_recomputes_only_band_intersecting_formulas() {
        // Formulas whose windows sit entirely above an edit keep their
        // values without re-evaluation; only band-intersecting ones rerun.
        let mut e = SheetEngine::new();
        e.update_cell_a1("A1", "1").unwrap();
        e.update_cell_a1("A2", "2").unwrap();
        e.update_cell_a1("B1", "=SUM(A1:A2)").unwrap();
        e.update_cell_a1("A10", "5").unwrap();
        e.update_cell_a1("B10", "=A10*2").unwrap();
        e.update_cell_a1("C1", "=SUM(A1:A12)").unwrap();
        let before = e.cells_recomputed();
        // Insert inside C1's window but below B1's and above B10's.
        e.insert_rows(5, 2).unwrap();
        // Only C1 intersects the band: one re-evaluation.
        assert_eq!(e.cells_recomputed() - before, 1);
        assert_eq!(e.value(a("B1")), CellValue::Number(3.0));
        assert_eq!(e.value(a("B12")), CellValue::Number(10.0));
        assert_eq!(e.value(a("C1")), CellValue::Number(8.0));
    }

    #[test]
    fn link_table_creates_and_syncs() {
        let mut e = SheetEngine::new();
        // Header + two rows.
        e.update_cell_a1("A1", "id").unwrap();
        e.update_cell_a1("B1", "amount").unwrap();
        e.update_cell_a1("A2", "1").unwrap();
        e.update_cell_a1("B2", "100").unwrap();
        e.update_cell_a1("A3", "2").unwrap();
        e.update_cell_a1("B3", "250").unwrap();
        let rect = e
            .link_table(Rect::parse_a1("A1:B3").unwrap(), "inv")
            .unwrap();
        assert!(e.database().read().contains("inv"));
        // The linked region now reads through from the table.
        let cells = e.get_cells(rect);
        assert!(!cells.is_empty());
        // Editing through the sheet updates the table.
        let first_data = CellAddr::new(rect.r1, rect.c1 + 1);
        e.storage_mut()
            .set_cell(first_data, Cell::value(999i64))
            .unwrap();
        let r = e
            .sql("SELECT amount FROM inv ORDER BY amount DESC LIMIT 1", &[])
            .unwrap();
        assert_eq!(r.rows[0][0], Datum::Float(999.0));
    }

    #[test]
    fn sql_and_composites() {
        let mut e = SheetEngine::new();
        {
            let db = e.database();
            let mut guard = db.write();
            let t = guard
                .create_table(
                    "t",
                    Schema::new(vec![
                        ColumnDef::new("x", DataType::Int),
                        ColumnDef::new("y", DataType::Int),
                    ]),
                )
                .unwrap();
            t.insert(&[Datum::Int(1), Datum::Int(10)]).unwrap();
            t.insert(&[Datum::Int(2), Datum::Int(20)]).unwrap();
        }
        let rel = e
            .sql("SELECT x, y FROM t WHERE y > ?", &[Datum::Int(15)])
            .unwrap();
        assert_eq!(rel.len(), 1);
        e.place_composite(a("A8"), rel);
        e.index_composite(a("A8"), 1, 2, a("A9")).unwrap();
        assert_eq!(e.value(a("A9")), CellValue::Number(20.0));
        assert!(e.index_composite(a("A8"), 5, 5, a("A10")).is_err());
    }

    #[test]
    fn optimize_reorganizes_storage() {
        let mut e = SheetEngine::new();
        for r in 0..20 {
            for c in 0..5 {
                e.update_cell(CellAddr::new(r, c), &format!("{}", r * 5 + c))
                    .unwrap();
            }
        }
        e.update_cell_a1("AZ99", "7").unwrap();
        let before = e.snapshot();
        let report = e
            .optimize(
                &CostModel::postgres(),
                OptimizeAlgorithm::Agg,
                &OptimizerOptions::default(),
            )
            .unwrap();
        assert!(report.decomposition.table_count() >= 1);
        assert_eq!(e.snapshot(), before, "optimization must not lose cells");
        // Values still readable and formulas still work after migration.
        assert_eq!(e.value(a("A1")), CellValue::Number(0.0));
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dataspread-sheet-durable-{name}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn durable_roundtrip_without_checkpoint() {
        let dir = temp_dir("wal-only");
        {
            let mut e = SheetEngine::open(&dir).unwrap();
            assert!(e.is_durable());
            e.update_cell_a1("A1", "10").unwrap();
            e.update_cell_a1("A2", "=A1*4").unwrap();
            e.update_cell_a1("B1", "hello").unwrap();
            e.insert_rows(0, 1).unwrap();
            e.save().unwrap();
            // No checkpoint: state must come back from the WAL alone.
            assert!(e.persistence_stats().unwrap().ops_since_checkpoint >= 4);
        }
        let e = SheetEngine::open(&dir).unwrap();
        assert_eq!(e.value(a("A2")), CellValue::Number(10.0));
        assert_eq!(e.value(a("A3")), CellValue::Number(40.0));
        assert_eq!(e.value(a("B2")), CellValue::Text("hello".into()));
        // Recovery folded the WAL into the image.
        assert_eq!(e.persistence_stats().unwrap().ops_since_checkpoint, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_checkpoint_then_more_ops() {
        let dir = temp_dir("ckpt-tail");
        {
            let mut e = SheetEngine::open(&dir).unwrap();
            e.update_cell_a1("A1", "1").unwrap();
            e.checkpoint().unwrap();
            e.update_cell_a1("A1", "2").unwrap();
            e.update_cell_a1("C3", "=A1+1").unwrap();
            e.save().unwrap();
        }
        let mut e = SheetEngine::open(&dir).unwrap();
        assert_eq!(e.value(a("A1")), CellValue::Number(2.0));
        assert_eq!(e.value(a("C3")), CellValue::Number(3.0));
        // Recovered formulas stay live: editing the precedent recomputes.
        e.update_cell_a1("A1", "10").unwrap();
        assert_eq!(e.value(a("C3")), CellValue::Number(11.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_store_remembers_posmap_kind() {
        let dir = temp_dir("posmap");
        {
            let mut e = SheetEngine::open_with_posmap(&dir, PosMapKind::Monotonic).unwrap();
            e.update_cell_a1("A1", "1").unwrap();
            e.checkpoint().unwrap();
        }
        // A different requested kind is overridden by the stored one.
        let e = SheetEngine::open_with_posmap(&dir, PosMapKind::Hierarchical).unwrap();
        assert_eq!(e.storage().posmap_kind(), PosMapKind::Monotonic);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_checkpoint_bounds_wal_growth() {
        let dir = temp_dir("auto");
        let mut e = SheetEngine::open(&dir).unwrap();
        e.set_auto_checkpoint(Some(10));
        for i in 0..35u32 {
            e.update_cell(CellAddr::new(i, 0), &i.to_string()).unwrap();
        }
        let stats = e.persistence_stats().unwrap();
        assert!(
            stats.ops_since_checkpoint < 10,
            "wal grew past the auto-checkpoint threshold: {stats:?}"
        );
        assert!(stats.checkpoints >= 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_memory_engine_save_and_checkpoint_are_noops() {
        let mut e = SheetEngine::new();
        assert!(!e.is_durable());
        e.update_cell_a1("A1", "1").unwrap();
        e.save().unwrap();
        assert!(e.checkpoint().unwrap().is_none());
        assert!(e.persistence_stats().is_none());
    }

    #[test]
    fn import_overwrites_and_recomputes_dependents() {
        let mut e = SheetEngine::new();
        e.update_cell_a1("A1", "stale").unwrap();
        e.update_cell_a1("B1", "=A1+1").unwrap();
        assert_eq!(e.value(a("B1")), CellValue::Error(CellError::Value));
        // Import a block over A1:A2: the old cell is overwritten and the
        // dependent formula must recompute against the imported value.
        e.import_rows(
            a("A1"),
            1,
            vec![vec![CellValue::Number(5.0)], vec![CellValue::Number(6.0)]],
        )
        .unwrap();
        assert_eq!(e.value(a("A1")), CellValue::Number(5.0));
        assert_eq!(e.value(a("B1")), CellValue::Number(6.0));
        // Edits through the region keep recomputing as usual.
        e.update_cell_a1("A1", "10").unwrap();
        assert_eq!(e.value(a("B1")), CellValue::Number(11.0));
    }

    #[test]
    fn engines_are_send_and_sync() {
        // The concurrent workspace moves engines between session threads
        // and serves `&self` reads (window fetches) from several at once;
        // every layer (translators, posmaps, durable store) must be
        // Send + Sync.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SheetEngine>();
        assert_send_sync::<crate::HybridSheet>();
        assert_send_sync::<DurableStore>();
    }

    #[test]
    fn astronomical_row_edit_errors_fast_instead_of_hanging() {
        // Regression (ROADMAP PR 4 follow-up): updateCell at row ~4e9 made
        // the RCV catch-all materialize O(row) positional entries and hang.
        // The engine must surface a clean error immediately and stay
        // usable.
        let mut e = SheetEngine::new();
        e.update_cell_a1("A1", "1").unwrap();
        let err = e
            .update_cell(CellAddr::new(4_000_000_000, 0), "42")
            .unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)), "{err}");
        // The failed edit must not have corrupted anything.
        e.update_cell_a1("A2", "=A1+1").unwrap();
        assert_eq!(e.value(a("A2")), CellValue::Number(2.0));
        assert_eq!(e.value(CellAddr::new(4_000_000_000, 0)), CellValue::Empty);
    }

    #[test]
    fn range_to_relation_uses_headers() {
        let mut e = SheetEngine::new();
        e.update_cell_a1("A1", "name").unwrap();
        e.update_cell_a1("B1", "score").unwrap();
        e.update_cell_a1("A2", "ada").unwrap();
        e.update_cell_a1("B2", "92").unwrap();
        let rel = e.range_to_relation(Rect::parse_a1("A1:B2").unwrap());
        assert_eq!(rel.columns, vec!["name".to_string(), "score".to_string()]);
        assert_eq!(rel.rows[0][1], Datum::Float(92.0));
    }
}
