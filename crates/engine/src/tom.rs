//! The table-oriented translator: a region linked to a database table
//! (paper §IV-B "Database-Linked Tables" and the `linkTable` operation).
//!
//! TOM regions are *not* copies: reads go through to the live table on
//! every access and cell updates write through, so edits made directly on
//! the database (e.g. via SQL) appear on the sheet and vice versa — the
//! two-way synchronization of paper §III. Rows render in heap-scan order;
//! middle-of-table row inserts are rejected (a relation has no inherent
//! order to insert *into*), appends become table inserts.

use std::sync::Arc;

use parking_lot::RwLock;

use dataspread_grid::{Cell, CellAddr, CellValue, Rect};
use dataspread_hybrid::ModelKind;
use dataspread_relstore::{DataType, Database, Datum, TupleId};

use crate::error::EngineError;
use crate::translator::{datum_to_value, value_to_datum, Translator};

/// A linked database table region.
pub struct TomTranslator {
    db: Arc<RwLock<Database>>,
    table_name: String,
}

impl std::fmt::Debug for TomTranslator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TomTranslator")
            .field("table", &self.table_name)
            .finish()
    }
}

/// Coerce a cell value into a datum acceptable for `ty`.
fn coerce(value: &CellValue, ty: DataType) -> Datum {
    let d = value_to_datum(value);
    match (&d, ty) {
        (Datum::Float(f), DataType::Int) if f.fract() == 0.0 => Datum::Int(*f as i64),
        (Datum::Float(_), DataType::Text) | (Datum::Bool(_), DataType::Text) => {
            Datum::Text(value.as_text())
        }
        _ => d,
    }
}

impl TomTranslator {
    pub fn new(db: Arc<RwLock<Database>>, table_name: impl Into<String>) -> Self {
        TomTranslator {
            db,
            table_name: table_name.into(),
        }
    }

    pub fn table_name(&self) -> &str {
        &self.table_name
    }

    fn nth_tuple(&self, row: u32) -> Option<(TupleId, Vec<Datum>)> {
        let db = self.db.read();
        let table = db.table(&self.table_name).ok()?;
        let nth = table.scan().nth(row as usize);
        nth
    }
}

impl Translator for TomTranslator {
    fn kind(&self) -> ModelKind {
        ModelKind::Tom
    }

    fn rows(&self) -> u32 {
        self.db
            .read()
            .table(&self.table_name)
            .map(|t| t.row_count() as u32)
            .unwrap_or(0)
    }

    fn cols(&self) -> u32 {
        self.db
            .read()
            .table(&self.table_name)
            .map(|t| t.schema().len() as u32)
            .unwrap_or(0)
    }

    fn get_cell(&self, row: u32, col: u32) -> Option<Cell> {
        let (_, tuple) = self.nth_tuple(row)?;
        let datum = tuple.get(col as usize)?;
        let value = datum_to_value(datum);
        if value.is_empty() {
            None
        } else {
            Some(Cell::value(value))
        }
    }

    fn set_cell(&mut self, row: u32, col: u32, cell: Cell) -> Result<(), EngineError> {
        let Some((tid, mut tuple)) = self.nth_tuple(row) else {
            return Err(EngineError::Unsupported(format!(
                "row {row} beyond linked table {}",
                self.table_name
            )));
        };
        let mut db = self.db.write();
        let table = db.table_mut(&self.table_name)?;
        let ty = table
            .schema()
            .columns()
            .get(col as usize)
            .map(|c| c.ty)
            .ok_or_else(|| EngineError::Unsupported(format!("column {col} beyond linked table")))?;
        tuple[col as usize] = coerce(&cell.value, ty);
        table.update(tid, &tuple)?;
        Ok(())
    }

    fn clear_cell(&mut self, row: u32, col: u32) -> Result<(), EngineError> {
        if row < self.rows() && col < self.cols() {
            self.set_cell(row, col, Cell::default())?;
        }
        Ok(())
    }

    fn get_range(&self, rect: Rect) -> Vec<(CellAddr, Cell)> {
        let db = self.db.read();
        let Ok(table) = db.table(&self.table_name) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (r, (_, tuple)) in table
            .scan()
            .enumerate()
            .skip(rect.r1 as usize)
            .take((rect.r2 - rect.r1) as usize + 1)
        {
            for c in rect.c1..=rect.c2.min(tuple.len().saturating_sub(1) as u32) {
                let value = datum_to_value(&tuple[c as usize]);
                if !value.is_empty() {
                    out.push((CellAddr::new(r as u32, c), Cell::value(value)));
                }
            }
        }
        out
    }

    fn insert_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        // Appends become table inserts; a relation has no middle to insert
        // into.
        if at != self.rows() {
            return Err(EngineError::Unsupported(
                "linked tables only support appending rows".into(),
            ));
        }
        let mut db = self.db.write();
        let table = db.table_mut(&self.table_name)?;
        let nulls = vec![Datum::Null; table.schema().len()];
        for _ in 0..n {
            table.insert(&nulls)?;
        }
        Ok(())
    }

    fn delete_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError> {
        let mut db = self.db.write();
        let table = db.table_mut(&self.table_name)?;
        let doomed: Vec<TupleId> = table
            .scan()
            .skip(at as usize)
            .take(n as usize)
            .map(|(tid, _)| tid)
            .collect();
        for tid in doomed {
            table.delete(tid);
        }
        Ok(())
    }

    fn insert_cols(&mut self, _at: u32, _n: u32) -> Result<(), EngineError> {
        Err(EngineError::Unsupported(
            "linked tables have a fixed schema; ALTER the table instead".into(),
        ))
    }

    fn delete_cols(&mut self, _at: u32, _n: u32) -> Result<(), EngineError> {
        Err(EngineError::Unsupported(
            "linked tables have a fixed schema; ALTER the table instead".into(),
        ))
    }

    fn storage_bytes(&self) -> u64 {
        self.db
            .read()
            .table(&self.table_name)
            .map(|t| t.accounted_bytes())
            .unwrap_or(0)
    }

    fn filled_count(&self) -> u64 {
        let db = self.db.read();
        let Ok(table) = db.table(&self.table_name) else {
            return 0;
        };
        table
            .scan()
            .map(|(_, row)| row.iter().filter(|d| !d.is_null()).count() as u64)
            .sum()
    }

    fn change_stamp(&self) -> Option<u64> {
        // The linked table lives in the database and can change without any
        // sheet mutator running (direct SQL). The *per-table* stamp is the
        // cheap signal for "re-serialize me": it moves on every mutable
        // access to this table but stays put while other tables churn, so
        // one busy table no longer dirties every TOM region's checkpoint
        // skip. (A missing table reports the global counter —
        // conservative, never falsely clean.)
        Some(self.db.read().change_stamp_for(&self.table_name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_relstore::{ColumnDef, Schema};

    fn linked() -> (Arc<RwLock<Database>>, TomTranslator) {
        let db = Arc::new(RwLock::new(Database::new()));
        {
            let mut guard = db.write();
            let t = guard
                .create_table(
                    "inv",
                    Schema::new(vec![
                        ColumnDef::new("id", DataType::Int),
                        ColumnDef::new("amount", DataType::Float),
                    ]),
                )
                .unwrap();
            t.insert(&[Datum::Int(1), Datum::Float(10.0)]).unwrap();
            t.insert(&[Datum::Int(2), Datum::Float(20.0)]).unwrap();
        }
        let tom = TomTranslator::new(Arc::clone(&db), "inv");
        (db, tom)
    }

    #[test]
    fn reads_go_through_to_live_table() {
        let (db, tom) = linked();
        assert_eq!(tom.rows(), 2);
        assert_eq!(tom.cols(), 2);
        assert_eq!(tom.get_cell(0, 1).unwrap().value, CellValue::Number(10.0));
        // An external insert is visible immediately (two-way sync).
        db.write()
            .table_mut("inv")
            .unwrap()
            .insert(&[Datum::Int(3), Datum::Float(30.0)])
            .unwrap();
        assert_eq!(tom.rows(), 3);
        assert_eq!(tom.get_cell(2, 0).unwrap().value, CellValue::Number(3.0));
    }

    #[test]
    fn cell_updates_write_through() {
        let (db, mut tom) = linked();
        tom.set_cell(0, 1, Cell::value(99i64)).unwrap();
        let amount = db.read().table("inv").unwrap().scan().next().unwrap().1[1].clone();
        assert_eq!(amount, Datum::Float(99.0));
        // Int columns receive coerced integers.
        tom.set_cell(0, 0, Cell::value(7i64)).unwrap();
        let id = db.read().table("inv").unwrap().scan().next().unwrap().1[0].clone();
        assert_eq!(id, Datum::Int(7));
    }

    #[test]
    fn append_and_delete_rows() {
        let (_, mut tom) = linked();
        tom.insert_rows(2, 1).unwrap();
        assert_eq!(tom.rows(), 3);
        assert!(tom.insert_rows(0, 1).is_err(), "middle insert rejected");
        tom.delete_rows(0, 1).unwrap();
        assert_eq!(tom.rows(), 2);
        assert_eq!(tom.get_cell(0, 0).unwrap().value, CellValue::Number(2.0));
    }

    #[test]
    fn schema_edits_rejected() {
        let (_, mut tom) = linked();
        assert!(matches!(
            tom.insert_cols(0, 1),
            Err(EngineError::Unsupported(_))
        ));
        assert!(matches!(
            tom.delete_cols(0, 1),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn range_and_filled_count() {
        let (_, tom) = linked();
        let cells = tom.get_range(Rect::new(0, 0, 1, 1));
        assert_eq!(cells.len(), 4);
        assert_eq!(tom.filled_count(), 4);
    }
}
