//! The translator abstraction (paper Figure 12: ROM/TOM, COM, RCV, and
//! hybrid translators all provide a "collection of cells" view over stored
//! tuples).

use dataspread_grid::value::CellError;
use dataspread_grid::{Cell, CellAddr, CellValue, Rect};
use dataspread_hybrid::ModelKind;
use dataspread_relstore::Datum;

use crate::error::EngineError;

/// A translator serves a rectangular region of the sheet in *local*
/// coordinates (`(0,0)` = the region's top-left). The hybrid layer owns the
/// mapping between sheet and local coordinates.
///
/// `Send + Sync` are supertraits: the concurrent workspace shards sheets
/// across session threads behind per-sheet reader-writer locks, so every
/// translator (and therefore the whole `SheetEngine`) must move between
/// threads and serve `&self` reads from several at once.
pub trait Translator: std::fmt::Debug + Send + Sync {
    fn kind(&self) -> ModelKind;

    /// Current logical extent (rows may exceed the last filled row after
    /// structural inserts).
    fn rows(&self) -> u32;
    fn cols(&self) -> u32;

    fn get_cell(&self, row: u32, col: u32) -> Option<Cell>;

    /// Insert-or-update; the translator grows its extent as needed.
    fn set_cell(&mut self, row: u32, col: u32, cell: Cell) -> Result<(), EngineError>;

    fn clear_cell(&mut self, row: u32, col: u32) -> Result<(), EngineError>;

    /// All non-blank cells intersecting `rect` (local coords), row-major.
    fn get_range(&self, rect: Rect) -> Vec<(CellAddr, Cell)>;

    /// All non-blank cells (used for migration between models).
    fn all_cells(&self) -> Vec<(CellAddr, Cell)> {
        self.get_range(Rect::new(
            0,
            0,
            self.rows().saturating_sub(1),
            self.cols().saturating_sub(1),
        ))
    }

    /// Update several cells of one row at once, consuming the batch so no
    /// translator has to clone cell payloads. Row-oriented translators
    /// override this to fetch/rewrite the row tuple a single time (the
    /// paper's ROM issues one UPDATE per row, not per cell — Figure 22).
    fn set_cells_in_row(&mut self, row: u32, cells: Vec<(u32, Cell)>) -> Result<(), EngineError> {
        for (col, cell) in cells {
            self.set_cell(row, col, cell)?;
        }
        Ok(())
    }

    fn insert_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError>;
    fn delete_rows(&mut self, at: u32, n: u32) -> Result<(), EngineError>;
    fn insert_cols(&mut self, at: u32, n: u32) -> Result<(), EngineError>;
    fn delete_cols(&mut self, at: u32, n: u32) -> Result<(), EngineError>;

    /// Accounted storage footprint in bytes.
    fn storage_bytes(&self) -> u64;

    /// Number of non-blank cells.
    fn filled_count(&self) -> u64;

    /// A stamp that changes whenever this translator's *backing store* may
    /// have changed without a sheet mutator running. `None` (the default)
    /// means cell content only ever changes through the translator's own
    /// `&mut self` methods, so the hybrid layer's dirty flag is exhaustive.
    /// TOM returns the database's change counter: a linked table can be
    /// mutated by SQL behind the sheet's back, and an unchanged counter
    /// lets a checkpoint skip re-serializing the region.
    fn change_stamp(&self) -> Option<u64> {
        None
    }

    /// Pre-encoded canonical checkpoint payload, when the translator has a
    /// compact native serialization (columnar regions encode their
    /// dictionary/RLE pages directly, so checkpoint images shrink with the
    /// data). `None` (the default) checkpoints through the generic
    /// per-cell codec.
    fn encoded_image(&self) -> Option<Vec<u8>> {
        None
    }

    /// Estimated resident (in-memory) footprint in bytes. Defaults to the
    /// accounted storage bytes; translators whose in-memory shape differs
    /// materially from their accounting (compressed layouts) override.
    fn resident_bytes(&self) -> u64 {
        self.storage_bytes()
    }

    /// Downcast hook for the columnar fast paths (column scans, run-level
    /// window emission): `Some` only for
    /// [`ColumnarTranslator`](crate::columnar::ColumnarTranslator).
    fn as_columnar(&self) -> Option<&crate::columnar::ColumnarTranslator> {
        None
    }
}

/// Marker prefix for spreadsheet error values stored as text datums.
const ERR_TAG: &str = "\u{1}ERR:";

/// Encode a cell value as a datum.
pub fn value_to_datum(v: &CellValue) -> Datum {
    value_into_datum(v.clone())
}

/// [`value_to_datum`] consuming the value: the canonical encoding.
pub fn value_into_datum(v: CellValue) -> Datum {
    match v {
        CellValue::Empty => Datum::Null,
        CellValue::Number(n) => Datum::Float(n),
        CellValue::Text(s) => Datum::Text(s),
        CellValue::Bool(b) => Datum::Bool(b),
        CellValue::Error(e) => Datum::Text(format!("{ERR_TAG}{e}")),
    }
}

/// Decode a datum back into a cell value.
pub fn datum_to_value(d: &Datum) -> CellValue {
    match d {
        Datum::Null => CellValue::Empty,
        Datum::Int(i) => CellValue::Number(*i as f64),
        Datum::Float(f) => CellValue::Number(*f),
        Datum::Bool(b) => CellValue::Bool(*b),
        Datum::Text(s) => match s.strip_prefix(ERR_TAG) {
            Some(tag) => CellValue::Error(parse_cell_error(tag)),
            None => CellValue::Text(s.clone()),
        },
    }
}

fn parse_cell_error(s: &str) -> CellError {
    match s {
        "#DIV/0!" => CellError::Div0,
        "#VALUE!" => CellError::Value,
        "#REF!" => CellError::Ref,
        "#NAME?" => CellError::Name,
        "#N/A" => CellError::Na,
        "#NUM!" => CellError::Num,
        _ => CellError::Circular,
    }
}

/// Encode a cell (value + optional formula) as a `[value, formula]` pair.
/// (Clones the payloads; [`cell_into_datums`] is the canonical encoder.)
pub fn cell_to_datums(cell: &Cell) -> [Datum; 2] {
    cell_into_datums(cell.clone())
}

/// Encode a cell as a `[value, formula]` pair, consuming it: text payloads
/// move instead of cloning (the batched row-update path).
pub fn cell_into_datums(cell: Cell) -> [Datum; 2] {
    [
        value_into_datum(cell.value),
        match cell.formula {
            Some(src) => Datum::Text(src),
            None => Datum::Null,
        },
    ]
}

/// Decode a `[value, formula]` datum pair.
pub fn datums_to_cell(value: &Datum, formula: &Datum) -> Cell {
    Cell {
        value: datum_to_value(value),
        formula: match formula {
            Datum::Text(s) => Some(s.clone()),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        for v in [
            CellValue::Empty,
            CellValue::Number(2.5),
            CellValue::Text("x".into()),
            CellValue::Bool(true),
            CellValue::Error(CellError::Div0),
            CellValue::Error(CellError::Na),
        ] {
            assert_eq!(datum_to_value(&value_to_datum(&v)), v, "{v:?}");
        }
    }

    #[test]
    fn error_text_does_not_collide_with_user_text() {
        // A user typing the literal text "#DIV/0!" must round-trip as text.
        let v = CellValue::Text("#DIV/0!".into());
        assert_eq!(datum_to_value(&value_to_datum(&v)), v);
    }

    #[test]
    fn cell_roundtrip() {
        let cell = Cell {
            value: CellValue::Number(85.0),
            formula: Some("AVERAGE(B2:C2)+D2+E2".into()),
        };
        let [v, f] = cell_to_datums(&cell);
        assert_eq!(datums_to_cell(&v, &f), cell);
        let plain = Cell::value(1i64);
        let [v, f] = cell_to_datums(&plain);
        assert_eq!(datums_to_cell(&v, &f), plain);
    }

    #[test]
    fn consuming_encode_matches_borrowing_encode() {
        for cell in [
            Cell::value(1i64),
            Cell {
                value: CellValue::Text("abc".into()),
                formula: Some("A1&\"x\"".into()),
            },
            Cell {
                value: CellValue::Error(CellError::Na),
                formula: None,
            },
            Cell::default(),
        ] {
            assert_eq!(cell_to_datums(&cell), cell_into_datums(cell.clone()));
        }
    }
}
