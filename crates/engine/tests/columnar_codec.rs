//! Property tests for the columnar region codec: arbitrary cell grids
//! must survive `from_cells → to_bytes → from_bytes` with exact cell
//! equality, and the encoding must be *canonical* — re-encoding a decoded
//! translator reproduces the bytes (checkpoint determinism rests on it).
//!
//! The value strategy deliberately over-weights the encodings' edge
//! cases: bit-packable integers (including the min/width extremes),
//! `-0.0` (excluded from packing), repeated dictionary texts (RLE codes),
//! long same-value stretches, every error code, and formula-only cells.

use proptest::prelude::*;

use dataspread_engine::{ColumnarTranslator, Translator};
use dataspread_grid::value::CellError;
use dataspread_grid::{Cell, CellAddr, CellValue};

fn value() -> impl Strategy<Value = CellValue> {
    prop_oneof![
        3 => Just(CellValue::Empty).boxed(),
        // Packable integers of various widths, plus the 9e15 cliff.
        3 => (-9_000_000_000_000_000i64..9_000_000_000_000_000)
            .prop_map(|i| CellValue::Number(i as f64))
            .boxed(),
        2 => (-100i64..100).prop_map(|i| CellValue::Number(i as f64)).boxed(),
        // Raw floats (fractions, huge magnitudes) and the -0.0 edge.
        2 => any::<i32>()
            .prop_map(|i| CellValue::Number(f64::from(i) / 7.0))
            .boxed(),
        1 => Just(CellValue::Number(-0.0)).boxed(),
        1 => Just(CellValue::Number(f64::MAX)).boxed(),
        2 => any::<bool>().prop_map(CellValue::Bool).boxed(),
        // A tiny dictionary (RLE-codable) plus free-form strings.
        3 => prop_oneof![
            Just("alpha".to_string()),
            Just("beta".to_string()),
            Just(String::new()),
            "[a-z]{0,12}".prop_map(|s| s),
        ]
        .prop_map(CellValue::Text)
        .boxed(),
        1 => (0u32..7)
            .prop_map(|i| {
                CellValue::Error(
                    [
                        CellError::Div0,
                        CellError::Value,
                        CellError::Ref,
                        CellError::Name,
                        CellError::Na,
                        CellError::Num,
                        CellError::Circular,
                    ][i as usize],
                )
            })
            .boxed(),
    ]
}

fn cell() -> impl Strategy<Value = Cell> {
    (
        value(),
        prop_oneof![
            5 => Just(None).boxed(),
            1 => "[A-Z0-9+*()]{1,10}".prop_map(Some).boxed(),
        ],
    )
        .prop_map(|(value, formula)| Cell { value, formula })
}

/// A sparse grid: extent plus raw positions (reduced modulo the extent in
/// the test body — the vendored proptest has no `prop_flat_map`).
fn grid() -> impl Strategy<Value = (u32, u32, Vec<(u32, u32, Cell)>)> {
    (
        1u32..60,
        1u32..8,
        prop::collection::vec((any::<u32>(), any::<u32>(), cell()), 0..80),
    )
}

/// Resolve a [`grid`] sample into effective content (later duplicates
/// win, like every `set_cell` path) and the translator built from it.
fn build(rows: u32, cols: u32, raw: &[(u32, u32, Cell)]) -> ColumnarTranslator {
    let mut by_addr = std::collections::BTreeMap::new();
    for (r, c, cell) in raw {
        by_addr.insert((r % rows, c % cols), cell.clone());
    }
    ColumnarTranslator::from_cells(
        rows,
        cols,
        by_addr
            .into_iter()
            .map(|((r, c), cell)| (CellAddr::new(r, c), cell)),
    )
}

fn assert_roundtrip(t: &ColumnarTranslator, ctx: &str) {
    let bytes = t.to_bytes();
    let back = ColumnarTranslator::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("{ctx}: decode failed: {e}"));
    assert_eq!(back.all_cells(), t.all_cells(), "{ctx}: cells");
    assert_eq!(back.rows(), t.rows(), "{ctx}: rows");
    assert_eq!(back.cols(), t.cols(), "{ctx}: cols");
    assert_eq!(back.to_bytes(), bytes, "{ctx}: canonical re-encode");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_grids_roundtrip((rows, cols, raw) in grid()) {
        assert_roundtrip(&build(rows, cols, &raw), "grid");
    }

    #[test]
    fn constant_heavy_columns_roundtrip(
        stretches in prop::collection::vec((cell(), 1u32..50), 1..12),
    ) {
        // Long same-value stretches: the RLE/repeat paths sparse random
        // grids rarely produce.
        let col_cells: Vec<Cell> = stretches
            .iter()
            .flat_map(|(cell, n)| std::iter::repeat_n(cell.clone(), *n as usize))
            .collect();
        let t = ColumnarTranslator::bulk_load_rows(
            1,
            col_cells.iter().map(|c| vec![c.clone()]),
        );
        assert_roundtrip(&t, "runs");
    }

    #[test]
    fn overlay_edits_then_compaction_keep_roundtripping(
        (rows, cols, raw) in grid(),
        edits in prop::collection::vec((0u32..60, 0u32..8, cell()), 1..30),
    ) {
        let mut t = build(rows, cols, &raw);
        for (r, c, cell) in edits {
            t.set_cell(r, c, cell).unwrap();
        }
        let before = t.all_cells();
        t.compact();
        prop_assert_eq!(t.all_cells(), before, "compaction changes nothing");
        assert_roundtrip(&t, "after-compaction");
    }

    #[test]
    fn truncated_or_bitflipped_payloads_never_panic(
        (rows, cols, raw) in grid(),
        cut in 0usize..4096,
        flip in 0usize..4096,
    ) {
        let t = build(rows, cols, &raw);
        let bytes = t.to_bytes();
        // Truncation at any point must error or (vacuously) succeed with
        // equal content — never panic.
        let cut = cut.min(bytes.len());
        if let Ok(back) = ColumnarTranslator::from_bytes(&bytes[..cut]) {
            prop_assert_eq!(back.all_cells(), t.all_cells());
        }
        // A single bit flip must decode to an error or to *something*
        // internally consistent enough to re-encode without panicking.
        let mut mutated = bytes.clone();
        if !mutated.is_empty() {
            let i = flip % mutated.len();
            mutated[i] ^= 1 << (flip % 8);
            if let Ok(back) = ColumnarTranslator::from_bytes(&mutated) {
                let _ = back.to_bytes();
                let _ = back.all_cells();
            }
        }
    }
}
