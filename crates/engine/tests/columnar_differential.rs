//! Differential suite for the columnar physical layout.
//!
//! The ROM translator (and the engine stack over it) is already pinned
//! against a naive dense model by `differential.rs`; this suite pins the
//! columnar layout **cell-identical to that oracle** in three tiers:
//!
//! 1. translator-level: a `ColumnarTranslator` with a tiny overlay limit
//!    (so compaction fires constantly) against a `RomTranslator` under
//!    random local op tapes,
//! 2. engine-level: a `SheetEngine` whose imported region was migrated to
//!    columnar against an untouched ROM twin under the shared random op
//!    tapes *plus* single-column aggregate formulas (which take the
//!    column-scan fast path on one engine and the sparse walk on the
//!    other),
//! 3. durability: checkpoint/recover round-trips of columnar regions
//!    (encoded pages in the v2 image) and every-byte WAL crash cuts over
//!    a columnar-resident base image.

mod common;

use std::path::{Path, PathBuf};

use common::{apply, tape, TapeOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataspread_engine::durable::{image_path, wal_path};
use dataspread_engine::rom::RomTranslator;
use dataspread_engine::{ColumnarTranslator, ModelKind, SheetEngine, Translator};
use dataspread_grid::value::CellError;
use dataspread_grid::{Cell, CellAddr, CellValue, Rect};
use dataspread_posmap::PosMapKind;

const TAPE_LEN: usize = if cfg!(debug_assertions) { 120 } else { 400 };
const SEEDS: std::ops::Range<u64> = if cfg!(debug_assertions) { 0..3 } else { 0..12 };

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dataspread-columnar-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

// ------------------------------------------------- translator level --

/// A random cell for the local-translator tape: every value shape the
/// columnar stores distinguish (f64, packable ints, bools, dictionary
/// texts, errors, formulas, blanks).
fn random_cell(rng: &mut StdRng) -> Cell {
    let value = match rng.gen_range(0u32..12) {
        0..=2 => CellValue::Number(rng.gen_range(-1000..1000) as f64), // packable
        3..=4 => CellValue::Number(rng.gen_range(-10.0..10.0)),        // raw f64
        5 => CellValue::Number(-0.0),                                  // not packable
        6 => CellValue::Bool(rng.gen_bool(0.5)),
        7..=9 => CellValue::Text(["red", "green", "blue", "violet"][rng.gen_range(0..4)].into()),
        10 => CellValue::Error([CellError::Div0, CellError::Na][rng.gen_range(0..2)]),
        _ => CellValue::Empty,
    };
    let formula = rng
        .gen_bool(0.15)
        .then(|| format!("SUM({},2)", rng.gen_range(0..9)));
    Cell { value, formula }
}

/// Translator-level differential: columnar (with compaction firing every
/// few writes) vs ROM under random set/clear/splice tapes.
#[test]
fn columnar_translator_matches_rom_under_random_ops() {
    for seed in SEEDS {
        let mut rng = StdRng::seed_from_u64(0xC01 + seed);
        let mut col = ColumnarTranslator::new(16, 6);
        col.set_overlay_limit(5); // force frequent overlay compaction
        let mut rom = RomTranslator::new(PosMapKind::default());
        // ROM starts empty; match extents through the ops themselves.
        for i in 0..TAPE_LEN {
            let ctx = |op: &str| format!("seed={seed} op#{i} {op}");
            match rng.gen_range(0u32..100) {
                0..=69 => {
                    let (r, c) = (rng.gen_range(0..24), rng.gen_range(0..8));
                    let cell = random_cell(&mut rng);
                    col.set_cell(r, c, cell.clone()).expect("columnar set");
                    rom.set_cell(r, c, cell).expect("rom set");
                }
                70..=79 => {
                    let (r, c) = (rng.gen_range(0..24), rng.gen_range(0..8));
                    col.clear_cell(r, c).expect("columnar clear");
                    rom.clear_cell(r, c).expect("rom clear");
                }
                80..=84 => {
                    let (at, n) = (rng.gen_range(0..20), rng.gen_range(1..3));
                    col.insert_rows(at, n)
                        .unwrap_or_else(|e| panic!("{}: {e}", ctx("insert rows")));
                    rom.insert_rows(at, n)
                        .unwrap_or_else(|e| panic!("{}: {e}", ctx("insert rows")));
                }
                85..=89 => {
                    let (at, n) = (rng.gen_range(0..20), rng.gen_range(1..3));
                    col.delete_rows(at, n)
                        .unwrap_or_else(|e| panic!("{}: {e}", ctx("delete rows")));
                    rom.delete_rows(at, n)
                        .unwrap_or_else(|e| panic!("{}: {e}", ctx("delete rows")));
                }
                90..=94 => {
                    let (at, n) = (rng.gen_range(0..6), rng.gen_range(1..3));
                    col.insert_cols(at, n)
                        .unwrap_or_else(|e| panic!("{}: {e}", ctx("insert cols")));
                    rom.insert_cols(at, n)
                        .unwrap_or_else(|e| panic!("{}: {e}", ctx("insert cols")));
                }
                _ => {
                    let (at, n) = (rng.gen_range(0..6), 1);
                    col.delete_cols(at, n)
                        .unwrap_or_else(|e| panic!("{}: {e}", ctx("delete cols")));
                    rom.delete_cols(at, n)
                        .unwrap_or_else(|e| panic!("{}: {e}", ctx("delete cols")));
                }
            }
            assert_eq!(col.all_cells(), rom.all_cells(), "{}", ctx("state"));
            assert_eq!(
                col.filled_count(),
                rom.filled_count(),
                "{}",
                ctx("filled_count")
            );
            // Random sub-rectangle scans agree too (get_range is the
            // read path the engine serves windows from).
            let (r1, c1) = (rng.gen_range(0..20), rng.gen_range(0..6));
            let rect = Rect::new(r1, c1, r1 + rng.gen_range(0..8), c1 + rng.gen_range(0..4));
            assert_eq!(col.get_range(rect), rom.get_range(rect), "{}", ctx("range"));
        }
        // Byte round-trip of the final state: encode → decode → re-encode
        // must be byte-identical, and the decoded translator cell-equal.
        col.compact();
        let bytes = col.to_bytes();
        let back = ColumnarTranslator::from_bytes(&bytes).expect("decode");
        assert_eq!(back.to_bytes(), bytes, "seed={seed}: canonical encoding");
        assert_eq!(back.all_cells(), col.all_cells(), "seed={seed}");
    }
}

// ---------------------------------------------------- engine level --

/// The block every engine-level test imports and (on one twin) migrates
/// to columnar.
const BLOCK_ROWS: u32 = 20;
const BLOCK_COLS: u32 = 6;

fn import_block(engine: &mut SheetEngine) {
    engine
        .import_rows(
            CellAddr::new(0, 0),
            BLOCK_COLS,
            (0..BLOCK_ROWS).map(|r| {
                (0..BLOCK_COLS)
                    .map(|c| match c % 3 {
                        0 => CellValue::Number((r * 7 + c) as f64),
                        1 => CellValue::Text(["ok", "warn"][(r % 2) as usize].into()),
                        _ => CellValue::Number(r as f64 * 0.5),
                    })
                    .collect()
            }),
        )
        .expect("block import");
}

/// Migrate the engine's sole ROM region to columnar; returns its slot.
fn migrate_block(engine: &mut SheetEngine) -> usize {
    let slot = engine
        .storage()
        .layout()
        .iter()
        .position(|(_, kind)| *kind == ModelKind::Rom)
        .expect("imported ROM region");
    engine.migrate_region(slot, ModelKind::Columnar).unwrap();
    slot
}

/// Single-column aggregate formulas: on the columnar twin these hit the
/// column-scan fast path, on the ROM twin the sparse range walk — the
/// results must be bit-identical.
fn agg_formula(rng: &mut StdRng) -> String {
    let func = ["SUM", "COUNT", "COUNTA", "AVERAGE"][rng.gen_range(0..4)];
    let col = (b'A' + rng.gen_range(0..BLOCK_COLS) as u8) as char;
    let r1 = rng.gen_range(1..=10);
    let r2 = rng.gen_range(r1..=BLOCK_ROWS);
    format!("={func}({col}{r1}:{col}{r2})")
}

#[test]
fn migrated_engine_matches_rom_twin_under_random_tapes() {
    for seed in SEEDS {
        let mut rng = StdRng::seed_from_u64(0xE9E + seed);
        let mut columnar = SheetEngine::new();
        let mut rom = SheetEngine::new();
        import_block(&mut columnar);
        import_block(&mut rom);
        migrate_block(&mut columnar);
        assert_eq!(
            columnar.snapshot(),
            rom.snapshot(),
            "seed={seed}: migration must preserve content exactly"
        );

        let ops = tape(seed, TAPE_LEN);
        for (i, op) in ops.iter().enumerate() {
            // Interleave single-column aggregates over the block: the
            // twins must agree with and without the fast path.
            let op = if rng.gen_bool(0.2) {
                TapeOp::Set {
                    row: rng.gen_range(25..30),
                    col: rng.gen_range(0..12),
                    input: agg_formula(&mut rng),
                }
            } else {
                op.clone()
            };
            let a = apply(&mut columnar, &op);
            let b = apply(&mut rom, &op);
            assert_eq!(a, b, "seed={seed} op#{i} {op:?}: acceptance diverged");
            assert_eq!(
                columnar.snapshot(),
                rom.snapshot(),
                "seed={seed} op#{i} {op:?}"
            );
        }
    }
}

#[test]
fn columnar_resident_bytes_shrink_and_reach_stats() {
    let dir = temp_dir("resident");
    let mut engine = SheetEngine::open(&dir).unwrap();
    import_block(&mut engine);
    let before = engine.storage().resident_bytes();
    let slot = migrate_block(&mut engine);
    let after = engine.storage().resident_bytes();
    assert!(
        after < before,
        "columnar region must shrink resident bytes ({after} vs {before})"
    );
    let per_region = engine.storage().region_resident_bytes();
    assert_eq!(per_region[slot].1, ModelKind::Columnar);
    // The per-region breakdown sums (with the catch-all) to the total.
    assert!(per_region.iter().map(|(_, _, b)| b).sum::<u64>() <= after);
    let stats = engine.persistence_stats().unwrap();
    assert_eq!(stats.resident_bytes, after, "stats must carry the total");
    drop(engine);
    std::fs::remove_dir_all(&dir).ok();
}

/// The columnar window scan must emit exactly what `get_cells` returns —
/// same cells, same row-major order — plus the in-between blanks.
#[test]
fn columnar_window_scan_matches_get_cells() {
    let mut engine = SheetEngine::new();
    import_block(&mut engine);
    migrate_block(&mut engine);
    // Punch in some overlay edits so the scan crosses base + overlay.
    engine.update_cell(CellAddr::new(3, 2), "patched").unwrap();
    engine.update_cell(CellAddr::new(5, 0), "").unwrap();
    engine
        .update_cell(CellAddr::new(7, 1), "=SUM(A1:A5)")
        .unwrap();

    let rect = Rect::new(1, 0, 12, BLOCK_COLS - 1);
    let mut scanned: Vec<(CellAddr, Cell)> = Vec::new();
    let mut positions = 0u64;
    let served = engine.storage().scan_columnar_window(rect, |r, c, v, f| {
        positions += 1;
        let cell = Cell {
            value: v.to_value(),
            formula: f.map(str::to_string),
        };
        if !cell.is_blank() {
            scanned.push((CellAddr::new(r, c), cell));
        }
    });
    assert!(served, "window inside the columnar region must be served");
    assert_eq!(positions, rect.rows() * rect.cols(), "one call per slot");
    assert_eq!(scanned, engine.get_cells(rect));

    // A window poking outside the region falls back (fast path refused).
    let outside = Rect::new(0, 0, 40, 3);
    assert!(!engine
        .storage()
        .scan_columnar_window(outside, |_, _, _, _| {}));
}

// ------------------------------------------------------- durability --

fn clone_store(src: &Path, dst: &Path) {
    std::fs::remove_dir_all(dst).ok();
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

#[test]
fn columnar_region_round_trips_through_checkpoint() {
    let dir = temp_dir("roundtrip");
    let mut engine = SheetEngine::open(&dir).unwrap();
    import_block(&mut engine);
    migrate_block(&mut engine);
    engine.update_cell(CellAddr::new(2, 2), "overlaid").unwrap();
    engine.checkpoint().unwrap();
    let snapshot = engine.snapshot();
    let layout = engine.storage().layout();
    drop(engine);

    let mut reopened = SheetEngine::open(&dir).unwrap();
    assert_eq!(reopened.snapshot(), snapshot);
    assert_eq!(
        reopened.storage().layout(),
        layout,
        "columnar region must restore as columnar, not decay to cells"
    );
    // Restored formulas stay live: editing a precedent recomputes.
    reopened
        .update_cell(CellAddr::new(25, 0), "=SUM(C1:C20)")
        .unwrap();
    let expected = reopened.value(CellAddr::new(25, 0));
    reopened.update_cell(CellAddr::new(0, 2), "100.5").unwrap();
    assert_ne!(
        reopened.value(CellAddr::new(25, 0)),
        expected,
        "dependents over the restored columnar region must recompute"
    );
    drop(reopened);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_images_are_deterministic_across_recovery() {
    // Same logical state → byte-identical image, whether reached directly
    // or through crash recovery (pins the canonical columnar encoding and
    // the cached free-page pool against the rescan it replaced).
    let base = temp_dir("determ-base");
    let crash = temp_dir("determ-crash");
    let mut engine = SheetEngine::open(&base).unwrap();
    import_block(&mut engine);
    migrate_block(&mut engine);
    engine.checkpoint().unwrap();
    for op in &tape(41, 60) {
        apply(&mut engine, op);
    }
    engine.save().unwrap();
    clone_store(&base, &crash);
    let mut recovered = SheetEngine::open(&crash).unwrap();
    assert_eq!(recovered.snapshot(), engine.snapshot());
    engine.checkpoint().unwrap();
    recovered.checkpoint().unwrap();
    assert_eq!(
        std::fs::read(image_path(&base)).unwrap(),
        std::fs::read(image_path(&crash)).unwrap(),
        "canonical images must be byte-identical"
    );
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&crash).ok();
}

/// Record end-offsets in a WAL segment (v2 framing: header, then
/// `len u32 | crc u32 | payload` records).
fn record_ends(wal_bytes: &[u8]) -> Vec<usize> {
    use dataspread_relstore::wal::{WAL_HEADER_LEN, WAL_RECORD_OVERHEAD};
    let mut ends = Vec::new();
    let mut off = WAL_HEADER_LEN as usize;
    while off + WAL_RECORD_OVERHEAD as usize <= wal_bytes.len() {
        let len = u32::from_le_bytes(wal_bytes[off..off + 4].try_into().unwrap()) as usize;
        let end = off + WAL_RECORD_OVERHEAD as usize + len;
        if end > wal_bytes.len() {
            break;
        }
        ends.push(end);
        off = end;
    }
    ends
}

#[test]
fn wal_cut_at_every_byte_over_a_columnar_image_recovers_a_prefix() {
    // The base image holds an *encoded* columnar region; ops then pile
    // into the WAL. Every byte-cut of that WAL must recover the columnar
    // base plus exactly the committed op prefix.
    let base = temp_dir("cuts-base");
    let ops = tape(0xC0, 30);
    let mut applied_ops = Vec::new();
    {
        let mut engine = SheetEngine::open(&base).unwrap();
        import_block(&mut engine);
        migrate_block(&mut engine);
        engine.checkpoint().unwrap(); // columnar region enters the image
        for op in &ops {
            if apply(&mut engine, op) {
                applied_ops.push(op.clone());
            }
        }
        engine.save().unwrap();
    }
    let image_bytes = std::fs::read(image_path(&base)).unwrap();
    let wal_bytes = std::fs::read(wal_path(&base)).unwrap();
    let ends = record_ends(&wal_bytes);
    assert_eq!(ends.len(), applied_ops.len(), "one WAL record per op");

    // The reference starts from the checkpointed columnar state.
    let mut reference = SheetEngine::new();
    import_block(&mut reference);
    migrate_block(&mut reference);
    let mut applied = 0usize;
    let cut_dir = temp_dir("cuts-work");
    for cut in 0..=wal_bytes.len() {
        let committed = ends.iter().take_while(|e| **e <= cut).count();
        while applied < committed {
            apply(&mut reference, &applied_ops[applied]);
            applied += 1;
        }
        std::fs::remove_dir_all(&cut_dir).ok();
        std::fs::create_dir_all(&cut_dir).unwrap();
        std::fs::write(image_path(&cut_dir), &image_bytes).unwrap();
        std::fs::write(wal_path(&cut_dir), &wal_bytes[..cut]).unwrap();
        let recovered =
            SheetEngine::open(&cut_dir).unwrap_or_else(|e| panic!("open failed at cut {cut}: {e}"));
        assert_eq!(
            recovered.snapshot(),
            reference.snapshot(),
            "cut at byte {cut} must recover exactly {committed} ops"
        );
    }
    std::fs::remove_dir_all(&cut_dir).ok();
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn corrupt_columnar_payload_is_rejected_on_open() {
    const PAGE: usize = 8192;
    let dir = temp_dir("corrupt");
    let snapshot = {
        let mut engine = SheetEngine::open(&dir).unwrap();
        import_block(&mut engine);
        migrate_block(&mut engine);
        engine.checkpoint().unwrap();
        engine.snapshot()
    };
    // Flip one byte in each page (separately): live pages hold the region
    // map or CRC-covered payloads, so open must refuse — never
    // hallucinate cells; a flip in a free page changes nothing. The
    // columnar region's encoded pages are live, so at least one flip must
    // be rejected.
    let image = std::fs::read(image_path(&dir)).unwrap();
    let work = temp_dir("corrupt-work");
    let mut rejections = 0;
    for page in 1..image.len() / PAGE {
        let mut mutated = image.clone();
        mutated[page * PAGE + 16] ^= 0xFF;
        std::fs::remove_dir_all(&work).ok();
        std::fs::create_dir_all(&work).unwrap();
        std::fs::write(image_path(&work), &mutated).unwrap();
        match SheetEngine::open(&work) {
            Err(_) => rejections += 1,
            Ok(engine) => assert_eq!(
                engine.snapshot(),
                snapshot,
                "page {page}: corruption neither rejected nor harmless"
            ),
        }
    }
    assert!(rejections > 0, "no page flip was detected");
    std::fs::remove_dir_all(&work).ok();
    std::fs::remove_dir_all(&dir).ok();
}
