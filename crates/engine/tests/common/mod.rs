//! Shared infrastructure for the differential and crash-recovery suites:
//! seeded random op tapes and helpers to drive a [`SheetEngine`] with them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataspread_engine::SheetEngine;
use dataspread_grid::CellAddr;

/// Bounds of the randomized playground. Kept small so structural edits
/// collide with content often (that is where the bugs live).
pub const MAX_ROW: u32 = 30;
pub const MAX_COL: u32 = 12;

/// One scripted engine operation.
#[derive(Debug, Clone, PartialEq)]
pub enum TapeOp {
    /// `updateCell` with raw user input (literal, formula, or "" = clear).
    Set {
        row: u32,
        col: u32,
        input: String,
    },
    InsertRows {
        at: u32,
        n: u32,
    },
    DeleteRows {
        at: u32,
        n: u32,
    },
    InsertCols {
        at: u32,
        n: u32,
    },
    DeleteCols {
        at: u32,
        n: u32,
    },
}

/// Literal inputs that exercise every interpretation path (numbers, bools,
/// text, whitespace-only clears). Deliberately no "nan"/"inf": those parse
/// to non-reflexive floats and would break exact state comparison.
const LITERALS: &[&str] = &[
    "0",
    "7",
    "-3",
    "3.25",
    "1e3",
    "TRUE",
    "false",
    "alpha",
    "beta gamma",
    "12abc",
    "",
    "  ",
];

/// Reference-free formulas: their values are position-independent, so the
/// differential model can predict them across structural edits.
const FORMULAS: &[&str] = &[
    "=1+2*3",
    "=SUM(1,2,3,4)",
    "=AVERAGE(2,4,6)",
    "=MIN(9,4,7)",
    "=MAX(1,8)",
    "=IF(TRUE,10,20)",
    "=1/0",
    "=2*(3+4)",
];

/// Generate a deterministic op tape for `seed`.
pub fn tape(seed: u64, len: usize) -> Vec<TapeOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let roll = rng.gen_range(0u32..100);
        let op = if roll < 70 {
            let row = rng.gen_range(0..MAX_ROW);
            let col = rng.gen_range(0..MAX_COL);
            let input = if rng.gen_bool(0.25) {
                FORMULAS[rng.gen_range(0..FORMULAS.len())].to_string()
            } else {
                LITERALS[rng.gen_range(0..LITERALS.len())].to_string()
            };
            TapeOp::Set { row, col, input }
        } else {
            let at = rng.gen_range(0..MAX_ROW);
            let n = rng.gen_range(1u32..=3);
            match roll % 4 {
                0 => TapeOp::InsertRows { at, n },
                1 => TapeOp::DeleteRows { at, n },
                2 => TapeOp::InsertCols {
                    at: at % MAX_COL,
                    n,
                },
                _ => TapeOp::DeleteCols {
                    at: at % MAX_COL,
                    n,
                },
            }
        };
        ops.push(op);
    }
    ops
}

/// Apply one op to an engine.
pub fn apply(engine: &mut SheetEngine, op: &TapeOp) {
    match op {
        TapeOp::Set { row, col, input } => engine
            .update_cell(CellAddr::new(*row, *col), input)
            .unwrap_or_else(|e| panic!("set ({row},{col}) {input:?}: {e}")),
        TapeOp::InsertRows { at, n } => engine.insert_rows(*at, *n).expect("insert rows"),
        TapeOp::DeleteRows { at, n } => engine.delete_rows(*at, *n).expect("delete rows"),
        TapeOp::InsertCols { at, n } => engine.insert_cols(*at, *n).expect("insert cols"),
        TapeOp::DeleteCols { at, n } => engine.delete_cols(*at, *n).expect("delete cols"),
    }
}
