//! Shared infrastructure for the differential and crash-recovery suites:
//! seeded random op tapes and helpers to drive a [`SheetEngine`] with them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataspread_engine::SheetEngine;
use dataspread_grid::{CellAddr, CellValue};

/// Bounds of the randomized playground. Kept small so structural edits
/// collide with content often (that is where the bugs live).
pub const MAX_ROW: u32 = 30;
pub const MAX_COL: u32 = 12;

/// One scripted engine operation.
#[derive(Debug, Clone, PartialEq)]
pub enum TapeOp {
    /// `updateCell` with raw user input (literal, formula, or "" = clear).
    Set {
        row: u32,
        col: u32,
        input: String,
    },
    InsertRows {
        at: u32,
        n: u32,
    },
    DeleteRows {
        at: u32,
        n: u32,
    },
    InsertCols {
        at: u32,
        n: u32,
    },
    DeleteCols {
        at: u32,
        n: u32,
    },
    /// `import_rows` of a deterministic value block (see [`import_value`])
    /// as a dedicated ROM region. The engine rejects imports overlapping an
    /// existing region; [`apply`] reports that as `false` so the caller can
    /// skip its model mirror too.
    Import {
        row: u32,
        col: u32,
        width: u32,
        n_rows: u32,
    },
}

/// The value an [`TapeOp::Import`] block holds at local `(r, c)` — shared
/// between the engine apply and the differential model.
pub fn import_value(op_row: u32, op_col: u32, width: u32, r: u32, c: u32) -> CellValue {
    CellValue::Number(((op_row + r) * 1000 + (op_col + c) * width) as f64 + 0.25)
}

/// The row data an [`TapeOp::Import`] feeds to `import_rows`.
pub fn import_rows_data(row: u32, col: u32, width: u32, n_rows: u32) -> Vec<Vec<CellValue>> {
    (0..n_rows)
        .map(|r| {
            (0..width)
                .map(|c| import_value(row, col, width, r, c))
                .collect()
        })
        .collect()
}

/// Literal inputs that exercise every interpretation path (numbers, bools,
/// text, whitespace-only clears). Deliberately no "nan"/"inf": those parse
/// to non-reflexive floats and would break exact state comparison.
const LITERALS: &[&str] = &[
    "0",
    "7",
    "-3",
    "3.25",
    "1e3",
    "TRUE",
    "false",
    "alpha",
    "beta gamma",
    "12abc",
    "",
    "  ",
];

/// Reference-free formulas: their values are position-independent, so the
/// differential model can predict them across structural edits.
const FORMULAS: &[&str] = &[
    "=1+2*3",
    "=SUM(1,2,3,4)",
    "=AVERAGE(2,4,6)",
    "=MIN(9,4,7)",
    "=MAX(1,8)",
    "=IF(TRUE,10,20)",
    "=1/0",
    "=2*(3+4)",
];

/// Generate a deterministic op tape for `seed`.
pub fn tape(seed: u64, len: usize) -> Vec<TapeOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let roll = rng.gen_range(0u32..100);
        let op = if roll < 64 {
            let row = rng.gen_range(0..MAX_ROW);
            let col = rng.gen_range(0..MAX_COL);
            let input = if rng.gen_bool(0.25) {
                FORMULAS[rng.gen_range(0..FORMULAS.len())].to_string()
            } else {
                LITERALS[rng.gen_range(0..LITERALS.len())].to_string()
            };
            TapeOp::Set { row, col, input }
        } else if roll < 70 {
            TapeOp::Import {
                row: rng.gen_range(0..MAX_ROW),
                col: rng.gen_range(0..MAX_COL),
                width: rng.gen_range(1..=3),
                n_rows: rng.gen_range(1..=4),
            }
        } else {
            let at = rng.gen_range(0..MAX_ROW);
            let n = rng.gen_range(1u32..=3);
            match roll % 4 {
                0 => TapeOp::InsertRows { at, n },
                1 => TapeOp::DeleteRows { at, n },
                2 => TapeOp::InsertCols {
                    at: at % MAX_COL,
                    n,
                },
                _ => TapeOp::DeleteCols {
                    at: at % MAX_COL,
                    n,
                },
            }
        };
        ops.push(op);
    }
    ops
}

/// Apply one op to an engine. Returns whether the op applied: imports may
/// legitimately be rejected (region overlap) and then change nothing; any
/// other failure panics.
pub fn apply(engine: &mut SheetEngine, op: &TapeOp) -> bool {
    match op {
        TapeOp::Set { row, col, input } => engine
            .update_cell(CellAddr::new(*row, *col), input)
            .unwrap_or_else(|e| panic!("set ({row},{col}) {input:?}: {e}")),
        TapeOp::InsertRows { at, n } => engine.insert_rows(*at, *n).expect("insert rows"),
        TapeOp::DeleteRows { at, n } => engine.delete_rows(*at, *n).expect("delete rows"),
        TapeOp::InsertCols { at, n } => engine.insert_cols(*at, *n).expect("insert cols"),
        TapeOp::DeleteCols { at, n } => engine.delete_cols(*at, *n).expect("delete cols"),
        TapeOp::Import {
            row,
            col,
            width,
            n_rows,
        } => {
            return engine
                .import_rows(
                    CellAddr::new(*row, *col),
                    *width,
                    import_rows_data(*row, *col, *width, *n_rows),
                )
                .is_ok()
        }
    }
    true
}
