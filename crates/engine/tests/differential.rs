//! Differential oracle harness: random op tapes run against both the full
//! [`SheetEngine`] stack and a naive dense `Vec<Vec<Cell>>` model that
//! re-implements the sheet semantics in the most obvious way possible
//! (literal interpretation, row/column splicing). After every op the two
//! must agree exactly — for every positional-map scheme, since the paper's
//! three schemes (§V) promise identical ordering semantics and differ only
//! in complexity.
//!
//! Formula edits use reference-free sources, so the model can predict the
//! computed value once (via the shared evaluator over an empty sheet) and
//! that prediction stays correct as structural edits move the cell around.

mod common;

use common::{apply, import_value, tape, TapeOp};

use dataspread_engine::{PosMapKind, SheetEngine};
use dataspread_formula::{parse, EmptyReader, Evaluator};
use dataspread_grid::{Cell, CellAddr, CellValue};

/// The naive oracle: a dense, rectangular grid of cells. Blank cells are
/// `Cell::default()`. Structural edits are plain `Vec` splices — O(rows ×
/// cols), unarguably correct.
#[derive(Default)]
struct DenseModel {
    grid: Vec<Vec<Cell>>,
}

impl DenseModel {
    fn width(&self) -> usize {
        self.grid.first().map_or(0, Vec::len)
    }

    fn grow_to(&mut self, rows: usize, cols: usize) {
        let width = self.width().max(cols);
        for row in &mut self.grid {
            row.resize(width, Cell::default());
        }
        while self.grid.len() < rows {
            self.grid.push(vec![Cell::default(); width]);
        }
    }

    fn set(&mut self, row: u32, col: u32, cell: Cell) {
        self.grow_to(row as usize + 1, col as usize + 1);
        self.grid[row as usize][col as usize] = cell;
    }

    fn get(&self, row: u32, col: u32) -> Option<&Cell> {
        self.grid.get(row as usize)?.get(col as usize)
    }

    fn insert_rows(&mut self, at: u32, n: u32) {
        let at = at as usize;
        if at < self.grid.len() {
            let width = self.width();
            for _ in 0..n {
                self.grid.insert(at, vec![Cell::default(); width]);
            }
        }
    }

    fn delete_rows(&mut self, at: u32, n: u32) {
        let at = at as usize;
        let end = (at + n as usize).min(self.grid.len());
        if at < self.grid.len() {
            self.grid.drain(at..end);
        }
    }

    fn insert_cols(&mut self, at: u32, n: u32) {
        let at = at as usize;
        if at < self.width() {
            for row in &mut self.grid {
                for _ in 0..n {
                    row.insert(at, Cell::default());
                }
            }
        }
    }

    fn delete_cols(&mut self, at: u32, n: u32) {
        let at = at as usize;
        let width = self.width();
        let end = (at + n as usize).min(width);
        if at < width {
            for row in &mut self.grid {
                row.drain(at..end);
            }
        }
    }

    /// All non-blank cells, row-major.
    fn filled(&self) -> impl Iterator<Item = (u32, u32, &Cell)> {
        self.grid.iter().enumerate().flat_map(|(r, row)| {
            row.iter()
                .enumerate()
                .filter(|(_, cell)| !cell.is_blank())
                .map(move |(c, cell)| (r as u32, c as u32, cell))
        })
    }
}

/// What the model expects `updateCell(input)` to leave behind.
fn expected_cell(input: &str) -> Cell {
    if let Some(src) = input.strip_prefix('=') {
        let expr = parse(src).expect("tapes only use parseable formulas");
        let value = Evaluator::new().eval(&expr, &EmptyReader);
        return Cell {
            value,
            formula: Some(src.to_string()),
        };
    }
    let trimmed = input.trim();
    if trimmed.is_empty() {
        return Cell::default();
    }
    let value = if let Ok(n) = trimmed.parse::<f64>() {
        CellValue::Number(n)
    } else {
        match trimmed.to_ascii_uppercase().as_str() {
            "TRUE" => CellValue::Bool(true),
            "FALSE" => CellValue::Bool(false),
            _ => CellValue::Text(trimmed.to_string()),
        }
    };
    Cell::value(value)
}

fn apply_to_model(model: &mut DenseModel, op: &TapeOp) {
    match op {
        TapeOp::Set { row, col, input } => model.set(*row, *col, expected_cell(input)),
        TapeOp::InsertRows { at, n } => model.insert_rows(*at, *n),
        TapeOp::DeleteRows { at, n } => model.delete_rows(*at, *n),
        TapeOp::InsertCols { at, n } => model.insert_cols(*at, *n),
        TapeOp::DeleteCols { at, n } => model.delete_cols(*at, *n),
        TapeOp::Import {
            row,
            col,
            width,
            n_rows,
        } => {
            for r in 0..*n_rows {
                for c in 0..*width {
                    model.set(
                        row + r,
                        col + c,
                        Cell::value(import_value(*row, *col, *width, r, c)),
                    );
                }
            }
        }
    }
}

/// Engine and model must hold exactly the same non-blank cells. Formula
/// cells compare by computed value and formula *presence* (the engine
/// normalizes formula source text when structural edits rewrite it).
fn assert_agree(engine: &SheetEngine, model: &DenseModel, ctx: &str) {
    let snapshot = engine.snapshot();
    for (addr, cell) in snapshot.iter() {
        if cell.is_blank() {
            continue;
        }
        let expected = model.get(addr.row, addr.col).unwrap_or_else(|| {
            panic!("{ctx}: engine has {addr} = {cell:?} outside the model extent")
        });
        assert!(
            !expected.is_blank(),
            "{ctx}: engine has {addr} = {cell:?}, model says blank"
        );
        assert_eq!(
            cell.value, expected.value,
            "{ctx}: value mismatch at {addr}"
        );
        assert_eq!(
            cell.formula.is_some(),
            expected.formula.is_some(),
            "{ctx}: formula presence mismatch at {addr}"
        );
    }
    for (row, col, expected) in model.filled() {
        let addr = CellAddr::new(row, col);
        let got = snapshot.get(addr).unwrap_or_else(|| {
            panic!("{ctx}: model has {addr} = {expected:?}, engine has nothing")
        });
        assert_eq!(got.value, expected.value, "{ctx}: value mismatch at {addr}");
    }
}

fn run_tape(kind: PosMapKind, seed: u64, len: usize) {
    let ops = tape(seed, len);
    let mut engine = SheetEngine::with_posmap(kind);
    let mut model = DenseModel::default();
    for (i, op) in ops.iter().enumerate() {
        // A rejected import (region overlap) changes nothing on the engine,
        // so the model must skip it too.
        if apply(&mut engine, op) {
            apply_to_model(&mut model, op);
        }
        assert_agree(
            &engine,
            &model,
            &format!("kind={kind:?} seed={seed} op#{i} {op:?}"),
        );
    }
}

const ALL_KINDS: [PosMapKind; 3] = [
    PosMapKind::AsIs,
    PosMapKind::Monotonic,
    PosMapKind::Hierarchical,
];

/// Shorter tapes in debug builds keep tier-1 `cargo test` fast; CI runs
/// the full load in `--release`.
const TAPE_LEN: usize = if cfg!(debug_assertions) { 120 } else { 400 };
const SEEDS: std::ops::Range<u64> = if cfg!(debug_assertions) { 0..3 } else { 0..12 };

#[test]
fn engine_matches_dense_model_for_every_posmap_kind() {
    for kind in ALL_KINDS {
        for seed in SEEDS {
            run_tape(kind, seed, TAPE_LEN);
        }
    }
}

#[test]
fn all_posmap_kinds_agree_with_each_other() {
    // Transitivity through the model already implies this, but comparing
    // engines directly also pins down snapshot() itself.
    for seed in SEEDS {
        let ops = tape(seed, TAPE_LEN);
        let mut engines: Vec<SheetEngine> = ALL_KINDS
            .iter()
            .map(|k| SheetEngine::with_posmap(*k))
            .collect();
        for op in &ops {
            for e in &mut engines {
                apply(e, op);
            }
        }
        let reference = engines[0].snapshot();
        for (e, kind) in engines.iter().zip(ALL_KINDS).skip(1) {
            assert_eq!(
                e.snapshot(),
                reference,
                "seed={seed}: {kind:?} disagrees with {:?}",
                ALL_KINDS[0]
            );
        }
    }
}

#[test]
fn structural_edit_heavy_tapes() {
    // A tape that is mostly splices: shifts-of-shifts are where positional
    // maps historically disagree.
    for kind in ALL_KINDS {
        let mut engine = SheetEngine::with_posmap(kind);
        let mut model = DenseModel::default();
        // Seed a block of content first.
        for r in 0..10u32 {
            for c in 0..6u32 {
                let op = TapeOp::Set {
                    row: r,
                    col: c,
                    input: format!("{}", r * 6 + c),
                };
                apply(&mut engine, &op);
                apply_to_model(&mut model, &op);
            }
        }
        let splices = [
            TapeOp::InsertRows { at: 3, n: 2 },
            TapeOp::DeleteCols { at: 1, n: 2 },
            TapeOp::InsertCols { at: 0, n: 1 },
            TapeOp::DeleteRows { at: 0, n: 4 },
            TapeOp::InsertRows { at: 8, n: 3 },
            TapeOp::DeleteRows { at: 2, n: 6 },
            TapeOp::InsertCols { at: 4, n: 2 },
            TapeOp::DeleteCols { at: 0, n: 3 },
        ];
        for (i, op) in splices.iter().enumerate() {
            apply(&mut engine, op);
            apply_to_model(&mut model, op);
            assert_agree(&engine, &model, &format!("kind={kind:?} splice#{i} {op:?}"));
        }
    }
}
