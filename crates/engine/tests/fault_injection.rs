//! Storage fault-injection suite for the durable engine.
//!
//! The model under test: every file operation the engine performs can
//! fail — generic I/O error, ENOSPC, short write, failed fsync — and no
//! matter which one does, reopening the directory on a healthy
//! filesystem must recover a state that (a) is a prefix of the ops the
//! engine actually applied and (b) contains everything acknowledged at
//! the last successful durability point (`save` or `checkpoint`).
//!
//! `every_fault_point_recovers` literalizes that: a probe run counts the
//! file ops a fixed workload performs per class, then the workload is
//! re-run once per (class, index, kind) with exactly that op failing.
//! `random_fault_schedules_never_lose_acked_edits` is the proptest
//! generalization: random op tapes crossed with random fault schedules.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataspread_engine::durable::ticket_path;
use dataspread_engine::{EngineError, SheetEngine};
use dataspread_grid::{CellAddr, CellValue};
use dataspread_relstore::{FaultFs, FaultKind, FaultOp, FaultPlan, FaultRule, StorageFs};

/// Everything the assertions look at lives inside this window.
const PROBE_ROWS: u32 = 12;
const PROBE_COLS: u32 = 4;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dataspread-faultinj-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// One step of a workload tape. `Save` and `Checkpoint` are the
/// durability points: once one returns `Ok`, every prior op is
/// acknowledged and must survive any later fault.
#[derive(Debug, Clone)]
enum Step {
    Set(u32, u32, String),
    InsertRows(u32, u32),
    DeleteRows(u32, u32),
    Save,
    Checkpoint,
}

/// Fixed workload for the exhaustive per-fault-point sweep: covers cell
/// sets (literals and formulas), structural edits, and two full
/// checkpoint cycles, ending on a checkpoint so a fault-free run
/// acknowledges everything.
fn fixed_steps() -> Vec<Step> {
    use Step::*;
    vec![
        Set(0, 0, "1".into()),
        Set(1, 0, "2.5".into()),
        Set(2, 1, "=1+2*3".into()),
        Set(3, 2, "alpha".into()),
        Save,
        Checkpoint,
        Set(4, 0, "5".into()),
        InsertRows(1, 2),
        Set(0, 3, "=SUM(1,2,3)".into()),
        DeleteRows(3, 1),
        Save,
        Set(5, 1, "tail".into()),
        Checkpoint,
    ]
}

/// The probe window's values, in row-major order.
fn snapshot(engine: &SheetEngine) -> Vec<CellValue> {
    let mut vals = Vec::with_capacity((PROBE_ROWS * PROBE_COLS) as usize);
    for r in 0..PROBE_ROWS {
        for c in 0..PROBE_COLS {
            vals.push(engine.value(CellAddr::new(r, c)));
        }
    }
    vals
}

/// Outcome of driving a tape against a (possibly faulty) store.
struct RunResult {
    /// Probe-window snapshot after each applied op; `states[0]` is the
    /// empty sheet.
    states: Vec<Vec<CellValue>>,
    /// Index into `states` of the last acknowledged durability point.
    acked: usize,
    /// The first error surfaced, if any (the run stops there).
    err: Option<EngineError>,
}

/// Run `steps` against a fresh engine on `fs`, mirroring applied ops in
/// an in-memory engine so the snapshots are independent of the faulty
/// store's internal state. Stops at the first error: past that point the
/// store's in-memory state may legitimately diverge from what was logged
/// (ops mutate the sheet before the WAL append), so continuing would
/// make the prefix invariant unverifiable.
fn run_workload(fs: Arc<dyn StorageFs>, dir: &Path, steps: &[Step]) -> RunResult {
    let mut mirror = SheetEngine::new();
    let mut states = vec![snapshot(&mirror)];
    let mut acked = 0;
    let mut engine = match SheetEngine::open_on(fs, dir) {
        Ok(e) => e,
        Err(e) => {
            return RunResult {
                states,
                acked,
                err: Some(e),
            }
        }
    };
    for step in steps {
        let result = match step {
            Step::Set(r, c, input) => engine.update_cell(CellAddr::new(*r, *c), input),
            Step::InsertRows(at, n) => engine.insert_rows(*at, *n),
            Step::DeleteRows(at, n) => engine.delete_rows(*at, *n),
            Step::Save => engine.save(),
            Step::Checkpoint => engine.checkpoint().map(|_| ()),
        };
        if let Err(e) = result {
            return RunResult {
                states,
                acked,
                err: Some(e),
            };
        }
        match step {
            Step::Set(r, c, input) => {
                mirror.update_cell(CellAddr::new(*r, *c), input).unwrap();
                states.push(snapshot(&mirror));
            }
            Step::InsertRows(at, n) => {
                mirror.insert_rows(*at, *n).unwrap();
                states.push(snapshot(&mirror));
            }
            Step::DeleteRows(at, n) => {
                mirror.delete_rows(*at, *n).unwrap();
                states.push(snapshot(&mirror));
            }
            Step::Save | Step::Checkpoint => acked = states.len() - 1,
        }
    }
    RunResult {
        states,
        acked,
        err: None,
    }
}

/// Reopen `dir` on the real filesystem and assert the recovered state is
/// one of `run.states[run.acked..]` — i.e. a consistent op prefix that
/// includes every acknowledged edit. Also proves the reopened store is
/// healthy again (degraded mode ends at reopen).
fn assert_recovers(dir: &Path, run: &RunResult, label: &str) {
    let mut recovered = SheetEngine::open(dir)
        .unwrap_or_else(|e| panic!("{label}: recovery on a healthy fs must succeed: {e}"));
    assert_eq!(
        recovered.storage_failed(),
        None,
        "{label}: reopened store must not be degraded"
    );
    let snap = snapshot(&recovered);
    let matched = run.states[run.acked..].contains(&snap);
    assert!(
        matched,
        "{label}: recovered state is not an acknowledged-or-later op prefix \
         (acked index {}, {} applied states, err: {:?})",
        run.acked,
        run.states.len(),
        run.err
    );
    // The recovered store must accept new durable work.
    recovered
        .update_cell(CellAddr::new(PROBE_ROWS, 0), "post-recovery")
        .unwrap_or_else(|e| panic!("{label}: write after recovery: {e}"));
    recovered
        .save()
        .unwrap_or_else(|e| panic!("{label}: save after recovery: {e}"));
}

/// Fault kinds that make sense per op class (a short write is only
/// meaningful for writes; ENOSPC for space-consuming ops).
fn kinds_for(op: FaultOp) -> &'static [FaultKind] {
    match op {
        FaultOp::Write => &[FaultKind::Io, FaultKind::Enospc, FaultKind::ShortWrite],
        FaultOp::SetLen => &[FaultKind::Io, FaultKind::Enospc],
        _ => &[FaultKind::Io],
    }
}

const ALL_OPS: &[FaultOp] = &[
    FaultOp::Write,
    FaultOp::Sync,
    FaultOp::OpenFile,
    FaultOp::Rename,
    FaultOp::SetLen,
    FaultOp::Remove,
];

/// The exhaustive sweep: fail every single file operation the fixed
/// workload performs (every class × every index × every applicable
/// kind), and prove recovery holds for each. This is the checkpoint
/// undo-journal's trial by fire — checkpoint image writes, map rewrites,
/// WAL truncations and ticket-meta renames all get hit.
#[test]
fn every_fault_point_recovers() {
    // Probe run: count the ops per class on a clean FaultFs.
    let probe_plan = FaultPlan::new();
    let probe_dir = temp_dir("probe");
    let probe = run_workload(
        FaultFs::new(Arc::clone(&probe_plan)),
        &probe_dir,
        &fixed_steps(),
    );
    assert!(
        probe.err.is_none(),
        "probe run must be clean: {:?}",
        probe.err
    );
    assert_eq!(probe.acked, probe.states.len() - 1);
    std::fs::remove_dir_all(&probe_dir).ok();

    let mut fault_runs = 0u64;
    let mut injected_runs = 0u64;
    for &op in ALL_OPS {
        let count = probe_plan.op_count(op);
        // Cap the sweep so a write-heavy workload stays bounded; stride
        // keeps coverage spread across the whole run.
        let stride = (count / 48).max(1);
        let mut index = 0;
        while index < count {
            for &kind in kinds_for(op) {
                let plan = FaultPlan::new();
                plan.push(FaultRule::new(op, index, kind));
                let dir = temp_dir("sweep");
                let run = run_workload(FaultFs::new(Arc::clone(&plan)), &dir, &fixed_steps());
                fault_runs += 1;
                if plan.injected() > 0 {
                    injected_runs += 1;
                }
                assert_recovers(&dir, &run, &format!("{op:?}#{index}/{kind:?}"));
                std::fs::remove_dir_all(&dir).ok();
            }
            index += stride;
        }
    }
    // The sweep must have actually exercised faults, heavily.
    assert!(
        injected_runs >= 20,
        "sweep too shallow: {injected_runs}/{fault_runs} runs injected a fault"
    );
}

/// A WAL append failure poisons the log (the on-disk tape has a hole)
/// but a later successful checkpoint restores durability — and because
/// ops mutate the sheet before logging, the checkpoint captures the
/// "failed" op too. Nothing acknowledged afterwards may be lost.
#[test]
fn append_fault_poisons_until_checkpoint_restores() {
    let plan = FaultPlan::new();
    let dir = temp_dir("poison");
    {
        let mut engine = SheetEngine::open_on(FaultFs::new(Arc::clone(&plan)), &dir).unwrap();
        engine.update_cell(CellAddr::new(0, 0), "1").unwrap();
        engine.save().unwrap();

        // Fail the next WAL write only.
        plan.push(FaultRule::new(FaultOp::Write, 0, FaultKind::Io).on_path("wal"));
        let err = engine.update_cell(CellAddr::new(1, 0), "2").unwrap_err();
        assert!(err.to_string().contains("injected"), "unexpected: {err}");
        assert_eq!(plan.injected(), 1);

        // The log is poisoned: further appends are refused even though
        // the fault is spent.
        let err = engine.update_cell(CellAddr::new(2, 0), "3").unwrap_err();
        assert!(
            err.to_string().contains("checkpoint"),
            "poisoned log should point at checkpoint: {err}"
        );

        // A checkpoint re-serializes the in-memory state (hole included)
        // and restores durability.
        engine.checkpoint().unwrap();
        assert_eq!(engine.storage_failed(), None);
        engine.update_cell(CellAddr::new(3, 0), "4").unwrap();
        engine.save().unwrap();
    }
    let recovered = SheetEngine::open(&dir).unwrap();
    assert_eq!(recovered.value(CellAddr::new(0, 0)), CellValue::Number(1.0));
    // The op whose append failed had already mutated the sheet; the
    // checkpoint made it durable.
    assert_eq!(recovered.value(CellAddr::new(1, 0)), CellValue::Number(2.0));
    assert_eq!(recovered.value(CellAddr::new(3, 0)), CellValue::Number(4.0));
    std::fs::remove_dir_all(&dir).ok();
}

/// A failed fsync permanently fails the store — no retry can un-lose
/// writes the kernel already dropped (fsyncgate). Only reopening the
/// directory recovers, and everything synced before the failure is there.
#[test]
fn fsync_failure_is_permanent_until_reopen() {
    let plan = FaultPlan::new();
    let dir = temp_dir("fsyncgate");
    {
        let mut engine = SheetEngine::open_on(FaultFs::new(Arc::clone(&plan)), &dir).unwrap();
        engine.update_cell(CellAddr::new(0, 0), "keep").unwrap();
        engine.save().unwrap();

        plan.push(FaultRule::new(FaultOp::Sync, 0, FaultKind::Io).on_path("wal"));
        engine.update_cell(CellAddr::new(1, 0), "maybe").unwrap();
        assert!(engine.save().is_err(), "faulted fsync must surface");
        assert!(
            engine.storage_failed().is_some(),
            "failed fsync must fail the store permanently"
        );

        // Spent fault or not, the store stays failed: appends, syncs and
        // checkpoints are all refused.
        assert!(engine.update_cell(CellAddr::new(2, 0), "no").is_err());
        assert!(engine.save().is_err());
        assert!(engine.checkpoint().is_err());
    }
    let recovered = SheetEngine::open(&dir).unwrap();
    assert_eq!(recovered.storage_failed(), None);
    assert_eq!(
        recovered.value(CellAddr::new(0, 0)),
        CellValue::Text("keep".into())
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Ticket continuity across restarts
// ---------------------------------------------------------------------------

/// Commit tickets keep counting across restarts: the incarnation
/// strictly increases per open, and the recovered horizon covers every
/// ticket issued before the restart (so a client comparing its receipts
/// against the horizon never re-stages something that survived).
#[test]
fn ticket_horizon_survives_restart() {
    let dir = temp_dir("tickets");
    let (inc_a, hor_a) = {
        let mut engine = SheetEngine::open(&dir).unwrap();
        for i in 0..5 {
            engine
                .update_cell(CellAddr::new(i, 0), &format!("{i}"))
                .unwrap();
        }
        engine.save().unwrap();
        engine.recovery_horizon()
    };
    let (inc_b, hor_b) = {
        let mut engine = SheetEngine::open(&dir).unwrap();
        // Each of the five ops consumed a ticket; the horizon must cover
        // them all.
        assert!(
            engine.recovery_horizon().1 >= hor_a + 5,
            "horizon went backwards: {:?} after {:?}",
            engine.recovery_horizon(),
            (inc_a, hor_a)
        );
        for i in 0..3 {
            engine
                .update_cell(CellAddr::new(i, 1), &format!("{i}"))
                .unwrap();
        }
        engine.checkpoint().unwrap();
        engine.recovery_horizon()
    };
    assert!(inc_b > inc_a, "incarnation must increase per open");
    let engine = SheetEngine::open(&dir).unwrap();
    let (inc_c, hor_c) = engine.recovery_horizon();
    assert!(inc_c > inc_b);
    assert!(
        hor_c >= hor_b + 3,
        "checkpointed tickets must stay covered: {hor_c} vs {hor_b}+3"
    );
    for i in 0..5 {
        assert_eq!(
            engine.value(CellAddr::new(i, 0)),
            CellValue::Number(i as f64)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A missing or corrupt `tickets.meta` only ever *under-states* the
/// horizon (clients re-stage duplicates, which the incarnation check and
/// idempotent re-stage absorb) — it must never block recovery or lose
/// data.
#[test]
fn ticket_meta_loss_is_safe() {
    let dir = temp_dir("ticketmeta");
    {
        let mut engine = SheetEngine::open(&dir).unwrap();
        engine.update_cell(CellAddr::new(0, 0), "42").unwrap();
        engine.save().unwrap();
    }
    // Missing meta: recovery proceeds, data intact.
    std::fs::remove_file(ticket_path(&dir)).unwrap();
    {
        let engine = SheetEngine::open(&dir).unwrap();
        assert_eq!(engine.value(CellAddr::new(0, 0)), CellValue::Number(42.0));
        assert!(engine.recovery_horizon().1 >= 1);
    }
    // Corrupt meta: same story.
    std::fs::write(ticket_path(&dir), b"garbage-not-a-ticket-meta").unwrap();
    {
        let engine = SheetEngine::open(&dir).unwrap();
        assert_eq!(engine.value(CellAddr::new(0, 0)), CellValue::Number(42.0));
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Randomized schedules (proptest)
// ---------------------------------------------------------------------------

/// A deterministic random tape: cell sets dominate, with structural
/// edits and durability points mixed in.
fn random_steps(seed: u64, len: usize) -> Vec<Step> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut steps = Vec::with_capacity(len);
    for _ in 0..len {
        let roll = rng.gen_range(0u32..100);
        let step = if roll < 60 {
            let inputs = ["0", "7", "-3.5", "TRUE", "alpha", "", "=1+2", "=SUM(1,2,3)"];
            Step::Set(
                rng.gen_range(0..PROBE_ROWS),
                rng.gen_range(0..PROBE_COLS),
                inputs[rng.gen_range(0..inputs.len())].to_string(),
            )
        } else if roll < 70 {
            Step::InsertRows(rng.gen_range(0..PROBE_ROWS), rng.gen_range(1..=2))
        } else if roll < 80 {
            Step::DeleteRows(rng.gen_range(0..PROBE_ROWS), rng.gen_range(1..=2))
        } else if roll < 92 {
            Step::Save
        } else {
            Step::Checkpoint
        };
        steps.push(step);
    }
    steps
}

fn arb_fault_rule() -> impl Strategy<Value = FaultRule> {
    let op = prop_oneof![
        Just(FaultOp::Write),
        Just(FaultOp::Sync),
        Just(FaultOp::OpenFile),
        Just(FaultOp::Rename),
        Just(FaultOp::SetLen),
        Just(FaultOp::Remove),
    ];
    let kind = prop_oneof![
        Just(FaultKind::Io),
        Just(FaultKind::Enospc),
        Just(FaultKind::ShortWrite),
    ];
    (op, 0u64..120, kind, any::<bool>()).prop_map(|(op, after, kind, sticky)| {
        let rule = FaultRule::new(op, after, kind);
        if sticky {
            rule.sticky()
        } else {
            rule
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Chaos differential: random op tapes × random fault schedules.
    /// Whatever fails, recovery on a healthy filesystem lands on an
    /// acknowledged-or-later op prefix and the store is healthy again.
    #[test]
    fn random_fault_schedules_never_lose_acked_edits(
        seed in any::<u64>(),
        rules in prop::collection::vec(arb_fault_rule(), 1..4),
    ) {
        let steps = random_steps(seed, 24);
        let plan = FaultPlan::new();
        for rule in rules.clone() {
            plan.push(rule);
        }
        let dir = temp_dir("chaos");
        let run = run_workload(FaultFs::new(Arc::clone(&plan)), &dir, &steps);
        assert_recovers(&dir, &run, &format!("seed {seed} rules {rules:?}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
