//! Differential suite pinning the wave/batch recompute pipeline to the
//! sequential per-cell tree walk it replaced.
//!
//! The oracle is a [`SheetEngine`] forced onto the retained scalar path
//! (`set_scalar_recompute`): Kahn order, one tree walk per cell, no
//! batching, no threads. Variants run the wave pipeline at 1/2/4/8
//! worker threads. Random formula tapes — fill-down sliding aggregates
//! (the batch path), scalar layers, chains, cycles, error producers —
//! are replayed into every engine, and full sheet snapshots (values
//! *and* stored formula text) must stay bit-identical throughout.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataspread_engine::SheetEngine;
use dataspread_grid::{Cell, CellAddr, Rect};

const ROWS: u32 = 48;
const COLS: u32 = 8;
const THREADS: &[usize] = &[1, 2, 4, 8];

fn col_name(c: u32) -> char {
    (b'A' + c as u8) as char
}

/// A1-style address string, e.g. `(2, 1)` → `"B3"`.
fn a1(row: u32, col: u32) -> String {
    format!("{}{}", col_name(col), row + 1)
}

/// One tape entry: raw user input destined for a cell.
type Op = (CellAddr, String);

/// Random tape over a layered sheet: column A holds data, column B holds
/// fill-down sliding windows over A (batchable runs), column C scalar
/// transforms and chains over B, column D cycle pairs, the rest mixed
/// aggregates and error producers.
fn tape(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops: Vec<Op> = Vec::new();
    while ops.len() < len {
        match rng.gen_range(0..100u32) {
            // Data pokes: these reseed whole fill-down runs at once, which
            // is exactly when wave 1 is wide enough to batch.
            0..=29 => {
                let row = rng.gen_range(0..ROWS);
                let n: i64 = rng.gen_range(-50..50);
                ops.push((CellAddr::new(row, 0), format!("{n}")));
            }
            // A fill-down run: same shape, consecutive rows, one column.
            30..=49 => {
                let w = rng.gen_range(2..6u32);
                let start = rng.gen_range(w..ROWS / 2);
                let run = rng.gen_range(16..32u32).min(ROWS - start);
                for row in start..start + run {
                    let src = format!("=SUM({}:{})", a1(row - w + 1, 0), a1(row, 0));
                    ops.push((CellAddr::new(row, 1), src));
                }
            }
            // Scalar layer over the windows, occasionally chained.
            50..=64 => {
                let row = rng.gen_range(1..ROWS);
                let src = if rng.gen_bool(0.4) {
                    format!("={}+{}", a1(row, 1), a1(row - 1, 2))
                } else {
                    format!("={}*2-1", a1(row, 1))
                };
                ops.push((CellAddr::new(row, 2), src));
            }
            // Cycle pair (or a self-loop) in column D.
            65..=74 => {
                let r1 = rng.gen_range(0..ROWS);
                let r2 = rng.gen_range(0..ROWS);
                if r1 == r2 {
                    ops.push((CellAddr::new(r1, 3), format!("={}*1", a1(r1, 3))));
                } else {
                    ops.push((CellAddr::new(r1, 3), format!("={}+1", a1(r2, 3))));
                    ops.push((CellAddr::new(r2, 3), format!("={}+1", a1(r1, 3))));
                }
            }
            // Error producers and readers of errors.
            75..=84 => {
                let row = rng.gen_range(0..ROWS);
                let src = match rng.gen_range(0..3u32) {
                    0 => "=1/0".to_string(),
                    1 => format!("={}/0", a1(row, 0)),
                    _ => format!("={}+1", a1(row, 4)),
                };
                ops.push((CellAddr::new(row, 4), src));
            }
            // Mixed aggregates across the layered columns.
            85..=94 => {
                let row = rng.gen_range(1..ROWS);
                let f = ["SUM", "AVERAGE", "COUNT", "COUNTA"][rng.gen_range(0..4)];
                let src = format!("={f}(A1:{})", a1(row, rng.gen_range(1..4)));
                ops.push((CellAddr::new(row, rng.gen_range(5..COLS)), src));
            }
            // Clears.
            _ => {
                let row = rng.gen_range(0..ROWS);
                let col = rng.gen_range(0..COLS);
                ops.push((CellAddr::new(row, col), String::new()));
            }
        }
    }
    ops.truncate(len);
    ops
}

fn snapshot(e: &SheetEngine) -> Vec<(CellAddr, Cell)> {
    e.get_cells(Rect::new(0, 0, ROWS + 4, COLS + 4))
}

#[test]
fn random_tapes_match_scalar_oracle_at_every_thread_count() {
    for seed in 0..4u64 {
        let mut oracle = SheetEngine::new();
        oracle.set_scalar_recompute(true);
        let mut variants: Vec<SheetEngine> = THREADS
            .iter()
            .map(|&t| {
                let mut e = SheetEngine::new();
                e.set_recompute_threads(t);
                e
            })
            .collect();
        let ops = tape(0xFA12_0001u64 + seed, 260);
        for (step, (addr, input)) in ops.iter().enumerate() {
            oracle.update_cell(*addr, input).expect("oracle update");
            for e in &mut variants {
                e.update_cell(*addr, input).expect("variant update");
            }
            // Full-snapshot comparison is O(cells); sample it.
            if step % 20 == 19 {
                let want = snapshot(&oracle);
                for (e, &t) in variants.iter().zip(THREADS) {
                    assert_eq!(
                        snapshot(e),
                        want,
                        "seed {seed} step {step} threads {t}: snapshot diverged"
                    );
                }
            }
        }
        // A bulk recompute-everything pass must agree too (this is the
        // path the bench drives: maximally wide waves).
        oracle.recompute_all().expect("oracle recompute_all");
        let want = snapshot(&oracle);
        for (e, &t) in variants.iter_mut().zip(THREADS) {
            e.recompute_all().expect("variant recompute_all");
            assert_eq!(snapshot(e), want, "seed {seed} threads {t}: bulk diverged");
        }
    }
}

#[test]
fn wide_scalar_wave_runs_identically_under_threads() {
    // 200 same-wave scalar formulas (no batchable shape) force the
    // scoped-thread fan-out; results must match the scalar walk exactly.
    let mut oracle = SheetEngine::new();
    oracle.set_scalar_recompute(true);
    let mut engines: Vec<SheetEngine> = THREADS
        .iter()
        .map(|&t| {
            let mut e = SheetEngine::new();
            e.set_recompute_threads(t);
            e
        })
        .collect();
    for r in 0..200u32 {
        let data = format!("{}.5", r % 17);
        let formula = format!("=A{}*3+1", r + 1);
        oracle.update_cell(CellAddr::new(r, 0), &data).unwrap();
        oracle.update_cell(CellAddr::new(r, 1), &formula).unwrap();
        for e in &mut engines {
            e.update_cell(CellAddr::new(r, 0), &data).unwrap();
            e.update_cell(CellAddr::new(r, 1), &formula).unwrap();
        }
    }
    oracle.recompute_all().unwrap();
    for e in &mut engines {
        e.recompute_all().unwrap();
    }
    let want = oracle.get_cells(Rect::new(0, 0, 220, 4));
    for (e, &t) in engines.iter().zip(THREADS) {
        assert_eq!(
            e.get_cells(Rect::new(0, 0, 220, 4)),
            want,
            "threads {t}: wide wave diverged"
        );
    }
}
