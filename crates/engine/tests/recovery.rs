//! Crash-recovery suite for the durable engine.
//!
//! The crash model under test: the process stops at an arbitrary byte of
//! the WAL — after some op appends, before the next checkpoint. Recovery
//! must always reconstruct the state as of some *op prefix* (a cut inside
//! a record yields the pre-op state, a cut at a record boundary the
//! post-op state) and must never surface a torn cell.
//!
//! `wal_cut_at_every_byte_boundary` literalizes that: it commits a tape,
//! then for every prefix length of the WAL file reopens a cloned store and
//! compares against an in-memory engine that replayed exactly the ops
//! whose records are fully contained in the prefix.

mod common;

use std::path::{Path, PathBuf};

use common::{apply, tape};

use dataspread_engine::durable::{image_path, wal_path};
use dataspread_engine::SheetEngine;
use dataspread_grid::CellAddr;

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dataspread-recovery-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Clone a durable sheet directory — the "crash image" of a live store.
/// Copies every file so a future addition to the store layout cannot
/// silently diverge from what a real crash would preserve.
fn clone_store(src: &Path, dst: &Path) {
    std::fs::remove_dir_all(dst).ok();
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Record end-offsets in a WAL file, parsed from the framing alone
/// (`magic+version` header, then `len u32 | crc u32 | payload` records).
fn record_ends(wal_bytes: &[u8]) -> Vec<usize> {
    const HEADER: usize = 8;
    const OVERHEAD: usize = 8;
    let mut ends = Vec::new();
    let mut off = HEADER;
    while off + OVERHEAD <= wal_bytes.len() {
        let len = u32::from_le_bytes(wal_bytes[off..off + 4].try_into().unwrap()) as usize;
        let end = off + OVERHEAD + len;
        if end > wal_bytes.len() {
            break;
        }
        ends.push(end);
        off = end;
    }
    ends
}

#[test]
fn wal_cut_at_every_byte_boundary_recovers_an_op_prefix() {
    let ops = tape(20_260_731, 40);
    let base = temp_dir("cuts-base");
    {
        let mut engine = SheetEngine::open(&base).unwrap();
        for op in &ops {
            apply(&mut engine, op);
        }
        engine.save().unwrap();
    }
    let image_bytes = std::fs::read(image_path(&base)).unwrap();
    let wal_bytes = std::fs::read(wal_path(&base)).unwrap();
    let ends = record_ends(&wal_bytes);
    assert_eq!(ends.len(), ops.len(), "one WAL record per op");

    // Expected states are engine states after each op prefix; advance the
    // in-memory reference engine lazily as cuts cross record boundaries.
    let mut reference = SheetEngine::new();
    let mut applied = 0usize;
    let cut_dir = temp_dir("cuts-work");
    for cut in 0..=wal_bytes.len() {
        let committed = ends.iter().take_while(|e| **e <= cut).count();
        while applied < committed {
            apply(&mut reference, &ops[applied]);
            applied += 1;
        }
        std::fs::remove_dir_all(&cut_dir).ok();
        std::fs::create_dir_all(&cut_dir).unwrap();
        std::fs::write(image_path(&cut_dir), &image_bytes).unwrap();
        std::fs::write(wal_path(&cut_dir), &wal_bytes[..cut]).unwrap();
        let recovered =
            SheetEngine::open(&cut_dir).unwrap_or_else(|e| panic!("open failed at cut {cut}: {e}"));
        assert_eq!(
            recovered.snapshot(),
            reference.snapshot(),
            "cut at byte {cut} must recover exactly {committed} ops"
        );
    }
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&cut_dir).ok();
}

/// Ops in the large committed tape (the ISSUE's acceptance bar is ≥100k
/// committed cell updates surviving a pre-checkpoint crash; debug builds
/// run a scaled-down tape to keep tier-1 `cargo test` fast, CI runs this
/// suite in `--release`).
const LARGE_OPS: usize = if cfg!(debug_assertions) {
    2_000
} else {
    100_000
};

#[test]
fn large_committed_tape_survives_crash_before_checkpoint() {
    let base = temp_dir("large-base");
    let crash = temp_dir("large-crash");
    let mut engine = SheetEngine::open(&base).unwrap();
    for i in 0..LARGE_OPS as u32 {
        let addr = CellAddr::new(i % 1009, i / 1009);
        let input = if i % 997 == 0 {
            "=SUM(1,2,3)".to_string()
        } else {
            format!("{}", (i as i64) * 3 - 1)
        };
        engine.update_cell(addr, &input).unwrap();
    }
    engine.save().unwrap(); // fsync-point: the tape is committed
    let stats = engine.persistence_stats().unwrap();
    assert_eq!(stats.ops_since_checkpoint, LARGE_OPS as u64);

    // Simulated crash: freeze the on-disk state while the engine is still
    // live (stops after WAL append, before any checkpoint).
    clone_store(&base, &crash);
    let mut recovered = SheetEngine::open(&crash).unwrap();
    assert_eq!(
        recovered.snapshot(),
        engine.snapshot(),
        "recovered logical state must match the pre-crash engine"
    );

    // "Byte-identical": checkpointing both engines must produce identical
    // image files (the image serialization is canonical).
    engine.checkpoint().unwrap();
    recovered.checkpoint().unwrap();
    assert_eq!(
        std::fs::read(image_path(&base)).unwrap(),
        std::fs::read(image_path(&crash)).unwrap(),
        "canonical checkpoint images must be byte-identical"
    );
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&crash).ok();
}

#[test]
fn recovery_is_idempotent() {
    let base = temp_dir("idem-base");
    let crash = temp_dir("idem-crash");
    {
        let mut engine = SheetEngine::open(&base).unwrap();
        for op in &tape(7, 60) {
            apply(&mut engine, op);
        }
        engine.save().unwrap();
        clone_store(&base, &crash);
    }
    let first = SheetEngine::open(&crash).unwrap().snapshot();
    // The first open folded the WAL into the image; a second open must see
    // the identical state (now from the image instead of replay).
    let second = SheetEngine::open(&crash).unwrap();
    assert_eq!(second.snapshot(), first);
    assert_eq!(second.persistence_stats().unwrap().ops_since_checkpoint, 0);
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&crash).ok();
}

#[test]
fn structural_tape_survives_crash() {
    // Row/col splices interleaved with updates: recovery must replay them
    // in order for every positional-map scheme.
    use dataspread_engine::PosMapKind;
    for kind in [
        PosMapKind::AsIs,
        PosMapKind::Monotonic,
        PosMapKind::Hierarchical,
    ] {
        let base = temp_dir(&format!("struct-{kind:?}"));
        let crash = temp_dir(&format!("struct-crash-{kind:?}"));
        let ops = tape(99, 150);
        let mut engine = SheetEngine::open_with_posmap(&base, kind).unwrap();
        let mut reference = SheetEngine::with_posmap(kind);
        for op in &ops {
            apply(&mut engine, op);
            apply(&mut reference, op);
        }
        engine.save().unwrap();
        clone_store(&base, &crash);
        let recovered = SheetEngine::open(&crash).unwrap();
        assert_eq!(recovered.snapshot(), reference.snapshot(), "kind={kind:?}");
        assert_eq!(recovered.storage().posmap_kind(), kind);
        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&crash).ok();
    }
}

#[test]
fn garbage_wal_tail_is_ignored_but_garbage_image_is_rejected() {
    let base = temp_dir("garbage");
    {
        let mut engine = SheetEngine::open(&base).unwrap();
        engine.update_cell_a1("A1", "42").unwrap();
        engine.save().unwrap();
    }
    // Append garbage to the WAL: recovery keeps the committed prefix.
    let mut wal = std::fs::read(wal_path(&base)).unwrap();
    wal.extend_from_slice(b"\xDE\xAD\xBE\xEF garbage tail");
    std::fs::write(wal_path(&base), &wal).unwrap();
    let engine = SheetEngine::open(&base).unwrap();
    assert_eq!(
        engine.value(CellAddr::parse_a1("A1").unwrap()),
        dataspread_grid::CellValue::Number(42.0)
    );
    drop(engine);
    // Corrupt the image payload: recovery must refuse, not hallucinate.
    let mut image = std::fs::read(image_path(&base)).unwrap();
    let len = image.len();
    image[len - 1] ^= 0xFF;
    let byte = 8192 + 16; // inside the payload page
    image[byte] ^= 0xFF;
    std::fs::write(image_path(&base), &image).unwrap();
    assert!(SheetEngine::open(&base).is_err());
    std::fs::remove_dir_all(&base).ok();
}
