//! Crash-recovery suite for the durable engine.
//!
//! The crash model under test: the process stops at an arbitrary byte of
//! the WAL — after some op appends, before the next checkpoint. Recovery
//! must always reconstruct the state as of some *op prefix* (a cut inside
//! a record yields the pre-op state, a cut at a record boundary the
//! post-op state) and must never surface a torn cell.
//!
//! `wal_cut_at_every_byte_boundary` literalizes that: it commits a tape,
//! then for every prefix length of the WAL file reopens a cloned store and
//! compares against an in-memory engine that replayed exactly the ops
//! whose records are fully contained in the prefix.

mod common;

use std::path::{Path, PathBuf};

use common::{apply, tape};

use dataspread_engine::durable::{image_path, wal_path};
use dataspread_engine::SheetEngine;
use dataspread_grid::CellAddr;

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dataspread-recovery-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Clone a durable sheet directory — the "crash image" of a live store.
/// Copies every file so a future addition to the store layout cannot
/// silently diverge from what a real crash would preserve.
fn clone_store(src: &Path, dst: &Path) {
    std::fs::remove_dir_all(dst).ok();
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Record end-offsets in a WAL segment file, parsed from the framing alone
/// (the v2 header, then `len u32 | crc u32 | payload` records).
fn record_ends(wal_bytes: &[u8]) -> Vec<usize> {
    use dataspread_relstore::wal::{WAL_HEADER_LEN, WAL_RECORD_OVERHEAD};
    let mut ends = Vec::new();
    let mut off = WAL_HEADER_LEN as usize;
    while off + WAL_RECORD_OVERHEAD as usize <= wal_bytes.len() {
        let len = u32::from_le_bytes(wal_bytes[off..off + 4].try_into().unwrap()) as usize;
        let end = off + WAL_RECORD_OVERHEAD as usize + len;
        if end > wal_bytes.len() {
            break;
        }
        ends.push(end);
        off = end;
    }
    ends
}

/// Cut the committed WAL at every byte and check each cut recovers exactly
/// the ops whose records are fully contained in the prefix.
fn assert_every_cut_recovers_a_prefix(base: &Path, applied_ops: &[common::TapeOp], label: &str) {
    let image_bytes = std::fs::read(image_path(base)).unwrap();
    let wal_bytes = std::fs::read(wal_path(base)).unwrap();
    let ends = record_ends(&wal_bytes);
    assert_eq!(
        ends.len(),
        applied_ops.len(),
        "{label}: one WAL record per applied op"
    );

    // Expected states are engine states after each op prefix; advance the
    // in-memory reference engine lazily as cuts cross record boundaries.
    let mut reference = SheetEngine::new();
    let mut applied = 0usize;
    let cut_dir = temp_dir(&format!("cuts-work-{label}"));
    for cut in 0..=wal_bytes.len() {
        let committed = ends.iter().take_while(|e| **e <= cut).count();
        while applied < committed {
            apply(&mut reference, &applied_ops[applied]);
            applied += 1;
        }
        std::fs::remove_dir_all(&cut_dir).ok();
        std::fs::create_dir_all(&cut_dir).unwrap();
        std::fs::write(image_path(&cut_dir), &image_bytes).unwrap();
        std::fs::write(wal_path(&cut_dir), &wal_bytes[..cut]).unwrap();
        let recovered = SheetEngine::open(&cut_dir)
            .unwrap_or_else(|e| panic!("{label}: open failed at cut {cut}: {e}"));
        assert_eq!(
            recovered.snapshot(),
            reference.snapshot(),
            "{label}: cut at byte {cut} must recover exactly {committed} ops"
        );
    }
    std::fs::remove_dir_all(&cut_dir).ok();
}

#[test]
fn wal_cut_at_every_byte_boundary_recovers_an_op_prefix() {
    let ops = tape(20_260_731, 40);
    let base = temp_dir("cuts-base");
    let mut applied_ops = Vec::new();
    {
        let mut engine = SheetEngine::open(&base).unwrap();
        for op in &ops {
            // Rejected imports (overlap) log nothing; track what applied.
            if apply(&mut engine, op) {
                applied_ops.push(op.clone());
            }
        }
        engine.save().unwrap();
    }
    assert_every_cut_recovers_a_prefix(&base, &applied_ops, "random-tape");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn bulk_import_record_cut_at_every_byte_recovers_a_prefix() {
    use common::TapeOp;
    // A tape with a guaranteed large import: cuts landing *inside* the
    // bulk record must yield the pre-import state, cuts at its boundary
    // the post-import state — the import is atomic under crash.
    let ops = vec![
        TapeOp::Set {
            row: 0,
            col: 0,
            input: "before".into(),
        },
        TapeOp::Import {
            row: 40,
            col: 2,
            width: 5,
            n_rows: 20,
        },
        TapeOp::Set {
            row: 1,
            col: 0,
            input: "after".into(),
        },
        TapeOp::DeleteRows { at: 45, n: 3 },
    ];
    let base = temp_dir("import-cuts-base");
    {
        let mut engine = SheetEngine::open(&base).unwrap();
        for op in &ops {
            assert!(apply(&mut engine, op), "scripted tape must apply fully");
        }
        engine.save().unwrap();
    }
    assert_every_cut_recovers_a_prefix(&base, &ops, "bulk-import");
    std::fs::remove_dir_all(&base).ok();
}

/// Ops in the large committed tape (the ISSUE's acceptance bar is ≥100k
/// committed cell updates surviving a pre-checkpoint crash; debug builds
/// run a scaled-down tape to keep tier-1 `cargo test` fast, CI runs this
/// suite in `--release`).
const LARGE_OPS: usize = if cfg!(debug_assertions) {
    2_000
} else {
    100_000
};

#[test]
fn large_committed_tape_survives_crash_before_checkpoint() {
    let base = temp_dir("large-base");
    let crash = temp_dir("large-crash");
    let mut engine = SheetEngine::open(&base).unwrap();
    for i in 0..LARGE_OPS as u32 {
        let addr = CellAddr::new(i % 1009, i / 1009);
        let input = if i % 997 == 0 {
            "=SUM(1,2,3)".to_string()
        } else {
            format!("{}", (i as i64) * 3 - 1)
        };
        engine.update_cell(addr, &input).unwrap();
    }
    engine.save().unwrap(); // fsync-point: the tape is committed
    let stats = engine.persistence_stats().unwrap();
    assert_eq!(stats.ops_since_checkpoint, LARGE_OPS as u64);

    // Simulated crash: freeze the on-disk state while the engine is still
    // live (stops after WAL append, before any checkpoint).
    clone_store(&base, &crash);
    let mut recovered = SheetEngine::open(&crash).unwrap();
    assert_eq!(
        recovered.snapshot(),
        engine.snapshot(),
        "recovered logical state must match the pre-crash engine"
    );

    // "Byte-identical": checkpointing both engines must produce identical
    // image files (the image serialization is canonical).
    engine.checkpoint().unwrap();
    recovered.checkpoint().unwrap();
    assert_eq!(
        std::fs::read(image_path(&base)).unwrap(),
        std::fs::read(image_path(&crash)).unwrap(),
        "canonical checkpoint images must be byte-identical"
    );
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&crash).ok();
}

#[test]
fn recovery_is_idempotent() {
    let base = temp_dir("idem-base");
    let crash = temp_dir("idem-crash");
    {
        let mut engine = SheetEngine::open(&base).unwrap();
        for op in &tape(7, 60) {
            apply(&mut engine, op);
        }
        engine.save().unwrap();
        clone_store(&base, &crash);
    }
    let first = SheetEngine::open(&crash).unwrap().snapshot();
    // The first open folded the WAL into the image; a second open must see
    // the identical state (now from the image instead of replay).
    let second = SheetEngine::open(&crash).unwrap();
    assert_eq!(second.snapshot(), first);
    assert_eq!(second.persistence_stats().unwrap().ops_since_checkpoint, 0);
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&crash).ok();
}

#[test]
fn structural_tape_survives_crash() {
    // Row/col splices interleaved with updates: recovery must replay them
    // in order for every positional-map scheme.
    use dataspread_engine::PosMapKind;
    for kind in [
        PosMapKind::AsIs,
        PosMapKind::Monotonic,
        PosMapKind::Hierarchical,
    ] {
        let base = temp_dir(&format!("struct-{kind:?}"));
        let crash = temp_dir(&format!("struct-crash-{kind:?}"));
        let ops = tape(99, 150);
        let mut engine = SheetEngine::open_with_posmap(&base, kind).unwrap();
        let mut reference = SheetEngine::with_posmap(kind);
        for op in &ops {
            apply(&mut engine, op);
            apply(&mut reference, op);
        }
        engine.save().unwrap();
        clone_store(&base, &crash);
        let recovered = SheetEngine::open(&crash).unwrap();
        assert_eq!(recovered.snapshot(), reference.snapshot(), "kind={kind:?}");
        assert_eq!(recovered.storage().posmap_kind(), kind);
        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&crash).ok();
    }
}

#[test]
fn garbage_wal_tail_is_ignored_but_garbage_image_is_rejected() {
    let base = temp_dir("garbage");
    {
        let mut engine = SheetEngine::open(&base).unwrap();
        engine.update_cell_a1("A1", "42").unwrap();
        engine.save().unwrap();
    }
    // Append garbage to the WAL: recovery keeps the committed prefix.
    let mut wal = std::fs::read(wal_path(&base)).unwrap();
    wal.extend_from_slice(b"\xDE\xAD\xBE\xEF garbage tail");
    std::fs::write(wal_path(&base), &wal).unwrap();
    let engine = SheetEngine::open(&base).unwrap();
    assert_eq!(
        engine.value(CellAddr::parse_a1("A1").unwrap()),
        dataspread_grid::CellValue::Number(42.0)
    );
    drop(engine);
    // Corrupt a region payload in the image: recovery must refuse, not
    // hallucinate. Byte 4 of page 1 sits inside the catch-all payload's
    // CRC-covered prefix (its 8-byte cell count).
    let mut image = std::fs::read(image_path(&base)).unwrap();
    image[8192 + 4] ^= 0xFF;
    std::fs::write(image_path(&base), &image).unwrap();
    assert!(SheetEngine::open(&base).is_err());
    std::fs::remove_dir_all(&base).ok();
}

// ----------------------------------------------------- v1 migration --

/// Hand-built PR 2-era (format version 1) image: one header page (magic,
/// version, posmap, payload length, payload CRC), then the whole-sheet
/// cell payload chunked into pages 1.. .
fn v1_image_bytes(cells: &[(u32, u32, f64)]) -> Vec<u8> {
    const PAGE: usize = 8192;
    let mut payload = Vec::new();
    payload.extend_from_slice(&(cells.len() as u64).to_le_bytes());
    for (row, col, value) in cells {
        payload.extend_from_slice(&row.to_le_bytes());
        payload.extend_from_slice(&col.to_le_bytes());
        payload.push(0); // no formula
        payload.push(1); // value tag: number
        payload.extend_from_slice(&value.to_le_bytes());
    }
    let mut image = Vec::new();
    image.extend_from_slice(b"DSIM");
    image.extend_from_slice(&1u32.to_le_bytes()); // version 1
    image.push(2); // posmap: hierarchical
    image.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    image.extend_from_slice(&dataspread_relstore::crc32(&payload).to_le_bytes());
    image.resize(PAGE, 0);
    image.extend_from_slice(&payload);
    image.resize(PAGE * (1 + payload.len().div_ceil(PAGE)), 0);
    image
}

/// Hand-built v1 WAL (8-byte header) holding one SetCell logged op.
fn v1_wal_bytes(row: u32, col: u32, input: &str) -> Vec<u8> {
    let mut op = vec![0u8, 0u8]; // record kind REC_OP, op tag SetCell
    op.extend_from_slice(&row.to_le_bytes());
    op.extend_from_slice(&col.to_le_bytes());
    op.extend_from_slice(&(input.len() as u32).to_le_bytes());
    op.extend_from_slice(input.as_bytes());
    let mut wal = Vec::new();
    wal.extend_from_slice(b"DSWL");
    wal.extend_from_slice(&1u32.to_le_bytes()); // version 1
    wal.extend_from_slice(&(op.len() as u32).to_le_bytes());
    wal.extend_from_slice(&dataspread_relstore::crc32(&op).to_le_bytes());
    wal.extend_from_slice(&op);
    wal
}

#[test]
fn v1_snapshot_and_wal_open_via_the_migration_path() {
    let dir = temp_dir("v1-migrate");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        image_path(&dir),
        v1_image_bytes(&[(0, 0, 11.0), (3, 2, 7.5), (100, 0, -4.0)]),
    )
    .unwrap();
    std::fs::write(wal_path(&dir), v1_wal_bytes(1, 0, "42")).unwrap();

    // Open must load the legacy image, keep its posmap scheme, and replay
    // the v1 op tail.
    let a = |s: &str| CellAddr::parse_a1(s).unwrap();
    let engine = SheetEngine::open(&dir).unwrap();
    assert_eq!(
        engine.storage().posmap_kind(),
        dataspread_engine::PosMapKind::Hierarchical
    );
    assert_eq!(
        engine.value(a("A1")),
        dataspread_grid::CellValue::Number(11.0)
    );
    assert_eq!(
        engine.value(a("C4")),
        dataspread_grid::CellValue::Number(7.5)
    );
    assert_eq!(
        engine.value(a("A101")),
        dataspread_grid::CellValue::Number(-4.0)
    );
    assert_eq!(
        engine.value(a("A2")),
        dataspread_grid::CellValue::Number(42.0)
    );
    drop(engine);

    // The open folded a checkpoint, rewriting the file in the v2 layout.
    let image = std::fs::read(image_path(&dir)).unwrap();
    assert_eq!(&image[..4], b"DSIM");
    assert_eq!(u32::from_le_bytes(image[4..8].try_into().unwrap()), 2);

    // A second open reads the migrated image natively.
    let engine = SheetEngine::open(&dir).unwrap();
    assert_eq!(
        engine.value(a("A2")),
        dataspread_grid::CellValue::Number(42.0)
    );
    assert_eq!(
        engine.value(a("A101")),
        dataspread_grid::CellValue::Number(-4.0)
    );
    assert_eq!(engine.persistence_stats().unwrap().ops_since_checkpoint, 0);
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------- region-granular recovery --

/// A sheet with many imported regions must survive a crash and come back
/// with its region layout (not flattened into the catch-all).
#[test]
fn imported_regions_survive_crash_with_layout() {
    let base = temp_dir("regions-base");
    let crash = temp_dir("regions-crash");
    let mut engine = SheetEngine::open(&base).unwrap();
    for band in 0..12u32 {
        engine
            .import_rows(
                CellAddr::new(band * 10, 0),
                4,
                (0..5u32).map(|r| {
                    (0..4u32)
                        .map(|c| {
                            dataspread_grid::CellValue::Number((band * 100 + r * 4 + c) as f64)
                        })
                        .collect()
                }),
            )
            .unwrap();
    }
    engine.checkpoint().unwrap();
    engine
        .update_cell(CellAddr::new(0, 0), "overwritten")
        .unwrap();
    engine.save().unwrap();
    clone_store(&base, &crash);
    let recovered = SheetEngine::open(&crash).unwrap();
    assert_eq!(recovered.snapshot(), engine.snapshot());
    assert_eq!(
        recovered.storage().region_count(),
        engine.storage().region_count(),
        "region layout must survive reopen"
    );
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&crash).ok();
}

/// WAL segment rotation end-to-end: a tiny limit forces a multi-segment
/// chain, recovery replays across segments, and a checkpoint collapses the
/// chain back to one file.
#[test]
fn wal_segment_rotation_survives_crash_and_checkpoint_deletes_segments() {
    let base = temp_dir("rotate-base");
    let crash = temp_dir("rotate-crash");
    let mut engine = SheetEngine::open(&base).unwrap();
    engine.set_wal_segment_limit(Some(512));
    for i in 0..120u32 {
        engine
            .update_cell(CellAddr::new(i % 40, i / 40), &format!("{i}"))
            .unwrap();
    }
    engine.save().unwrap();
    let stats = engine.persistence_stats().unwrap();
    assert!(
        stats.wal_segments > 1,
        "limit must force rotation: {stats:?}"
    );
    clone_store(&base, &crash);
    let recovered = SheetEngine::open(&crash).unwrap();
    assert_eq!(recovered.snapshot(), engine.snapshot());
    // Folding the log away deletes the fully-checkpointed segments.
    engine.checkpoint().unwrap();
    assert_eq!(engine.persistence_stats().unwrap().wal_segments, 1);
    let leftovers: Vec<_> = std::fs::read_dir(&base)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().to_string())
        .filter(|n| n.starts_with("wal.log."))
        .collect();
    assert!(leftovers.is_empty(), "stale segments: {leftovers:?}");
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&crash).ok();
}
