//! Routing-index invariant suite: after arbitrary sequences of region
//! add/remove, cell edits, and structural row/column insert/delete, the
//! row-band routing index must agree with the retained scan oracle
//! ([`HybridSheet::region_at_scan`]) on every address, and window fetches
//! must agree with the index-free `snapshot` path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataspread_engine::rcv::RcvTranslator;
use dataspread_engine::rom::RomTranslator;
use dataspread_engine::{HybridSheet, PosMapKind, Translator};
use dataspread_grid::{Cell, CellAddr, Rect};

const ROWS: u32 = 400;
const COLS: u32 = 60;

fn random_rect(rng: &mut StdRng) -> Rect {
    let r1 = rng.gen_range(0..ROWS);
    let c1 = rng.gen_range(0..COLS);
    let h = rng.gen_range(1..40u32);
    let w = rng.gen_range(1..12u32);
    Rect::new(
        r1,
        c1,
        (r1 + h - 1).min(ROWS - 1),
        (c1 + w - 1).min(COLS - 1),
    )
}

/// Probe addresses that matter: every region corner (±1 in each axis, the
/// off-by-one hot spots) plus a random sample.
fn probes(hs: &HybridSheet, rng: &mut StdRng) -> Vec<CellAddr> {
    let mut out = Vec::new();
    for (rect, _) in hs.layout() {
        for r in [
            rect.r1.saturating_sub(1),
            rect.r1,
            rect.r2,
            rect.r2.saturating_add(1),
        ] {
            for c in [
                rect.c1.saturating_sub(1),
                rect.c1,
                rect.c2,
                rect.c2.saturating_add(1),
            ] {
                out.push(CellAddr::new(r, c));
            }
        }
    }
    for _ in 0..60 {
        out.push(CellAddr::new(
            rng.gen_range(0..ROWS + 40),
            rng.gen_range(0..COLS + 10),
        ));
    }
    out
}

fn assert_index_consistent(hs: &HybridSheet, rng: &mut StdRng, context: &str) {
    for addr in probes(hs, rng) {
        assert_eq!(
            hs.region_at(addr),
            hs.region_at_scan(addr),
            "routing diverged at {addr} after {context} (layout: {:?})",
            hs.layout()
        );
    }
    // Window fetches against the index-free snapshot path.
    let snapshot = hs.snapshot(true);
    for _ in 0..4 {
        let window = random_rect(rng);
        let mut want: Vec<(CellAddr, Cell)> = snapshot
            .iter_rect(window)
            .map(|(a, c)| (a, c.clone()))
            .collect();
        want.sort_unstable_by_key(|(a, _)| (a.row, a.col));
        assert_eq!(
            hs.get_cells(window),
            want,
            "get_cells diverged after {context}"
        );
    }
}

fn random_region(hs: &mut HybridSheet, rng: &mut StdRng) {
    let rect = random_rect(rng);
    let translator: Box<dyn Translator> = if rng.gen_bool(0.5) {
        Box::new(RomTranslator::new(PosMapKind::Hierarchical))
    } else {
        Box::new(RcvTranslator::new(PosMapKind::Hierarchical))
    };
    // Overlapping rects are expected to be rejected and must leave the
    // index untouched.
    let _ = hs.add_region(rect, translator);
}

#[test]
fn routing_index_survives_random_op_sequences() {
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(0x80071E + seed);
        let mut hs = HybridSheet::new();
        for step in 0..120usize {
            let context = match rng.gen_range(0..12u32) {
                0..=3 => {
                    random_region(&mut hs, &mut rng);
                    "add_region"
                }
                4 if hs.region_count() > 0 => {
                    let idx = rng.gen_range(0..hs.region_count());
                    hs.remove_region(idx);
                    "remove_region"
                }
                5 => {
                    hs.insert_rows(rng.gen_range(0..ROWS), rng.gen_range(1..5u32))
                        .unwrap();
                    "insert_rows"
                }
                6 => {
                    hs.insert_cols(rng.gen_range(0..COLS), rng.gen_range(1..4u32))
                        .unwrap();
                    "insert_cols"
                }
                7 => {
                    hs.delete_rows(rng.gen_range(0..ROWS), rng.gen_range(1..5u32))
                        .unwrap();
                    "delete_rows"
                }
                8 => {
                    hs.delete_cols(rng.gen_range(0..COLS), rng.gen_range(1..4u32))
                        .unwrap();
                    "delete_cols"
                }
                9 => {
                    let row = rng.gen_range(0..ROWS);
                    let cells: Vec<(u32, Cell)> = (0..rng.gen_range(1..20u32))
                        .map(|i| (rng.gen_range(0..COLS), Cell::value((row + i) as i64)))
                        .collect();
                    hs.set_cells_in_row(row, cells).unwrap();
                    "set_cells_in_row"
                }
                _ => {
                    let addr = CellAddr::new(rng.gen_range(0..ROWS), rng.gen_range(0..COLS));
                    if rng.gen_bool(0.8) {
                        hs.set_cell(addr, Cell::value(step as i64)).unwrap();
                    } else {
                        hs.clear_cell(addr).unwrap();
                    }
                    "set/clear_cell"
                }
            };
            assert_index_consistent(&hs, &mut rng, context);
        }
    }
}

#[test]
fn boundary_row_insert_splits_bands_correctly() {
    // Regression shape for the incremental insert-rows path: two regions
    // stacked so the insert lands exactly on the lower one's first row,
    // *inside* the taller one. The tall region grows over the inserted
    // rows; the lower region translates past them — the index must route
    // the inserted rows to the tall region only.
    let mut hs = HybridSheet::new();
    let tall = Box::new(RcvTranslator::new(PosMapKind::Hierarchical));
    let low = Box::new(RcvTranslator::new(PosMapKind::Hierarchical));
    hs.add_region(Rect::new(0, 0, 19, 9), tall).unwrap();
    hs.add_region(Rect::new(10, 20, 19, 29), low).unwrap();
    hs.insert_rows(10, 5).unwrap();
    assert_eq!(hs.layout()[0].0, Rect::new(0, 0, 24, 9), "tall region grew");
    assert_eq!(
        hs.layout()[1].0,
        Rect::new(15, 20, 24, 29),
        "low region shifted"
    );
    for row in 0..30u32 {
        for col in [0u32, 5, 9, 10, 20, 25, 29, 30] {
            let addr = CellAddr::new(row, col);
            assert_eq!(hs.region_at(addr), hs.region_at_scan(addr), "at {addr}");
        }
    }
}

#[test]
fn boundary_row_insert_with_gap_shifts_only() {
    // The lower region starts where the upper one ends +1 is false — there
    // is a one-row gap. Inserting into the gap grows nothing.
    let mut hs = HybridSheet::new();
    let a = Box::new(RcvTranslator::new(PosMapKind::Hierarchical));
    let b = Box::new(RcvTranslator::new(PosMapKind::Hierarchical));
    hs.add_region(Rect::new(0, 0, 9, 9), a).unwrap();
    hs.add_region(Rect::new(11, 0, 19, 9), b).unwrap();
    hs.insert_rows(10, 3).unwrap();
    assert_eq!(hs.layout()[0].0, Rect::new(0, 0, 9, 9));
    assert_eq!(hs.layout()[1].0, Rect::new(14, 0, 22, 9));
    for row in 0..25u32 {
        let addr = CellAddr::new(row, 4);
        assert_eq!(hs.region_at(addr), hs.region_at_scan(addr), "at {addr}");
    }
}

#[test]
fn side_by_side_regions_route_by_column() {
    // Many regions sharing the same rows, differing only in columns: the
    // per-band column binary search must discriminate them.
    let mut hs = HybridSheet::new();
    for i in 0..32u32 {
        let t = Box::new(RcvTranslator::new(PosMapKind::Hierarchical));
        hs.add_region(Rect::new(0, i * 3, 9, i * 3 + 1), t).unwrap();
    }
    for col in 0..100u32 {
        for row in [0u32, 5, 9, 10] {
            let addr = CellAddr::new(row, col);
            assert_eq!(hs.region_at(addr), hs.region_at_scan(addr), "at {addr}");
        }
    }
}
