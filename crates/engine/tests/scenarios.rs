//! Engine scenario tests: formulas over reorganized storage, cache
//! behaviour, linked-table persistence, and the paper's operation set
//! (§III) end to end.

use dataspread_engine::{OptimizeAlgorithm, PosMapKind, SheetEngine};
use dataspread_grid::value::CellError;
use dataspread_grid::{CellAddr, CellValue, Rect};
use dataspread_hybrid::{CostModel, OptimizerOptions};
use dataspread_relstore::{Database, Datum};

fn a(s: &str) -> CellAddr {
    CellAddr::parse_a1(s).unwrap()
}

/// Build a 50-row, 4-column table with a totals row of formulas.
fn seeded_engine() -> SheetEngine {
    let mut e = SheetEngine::new();
    for r in 0..50u32 {
        for c in 0..4u32 {
            e.update_cell(CellAddr::new(r, c), &format!("{}", (r + 1) * (c + 1)))
                .unwrap();
        }
    }
    e.update_cell_a1("A52", "=SUM(A1:A50)").unwrap();
    e.update_cell_a1("B52", "=AVERAGE(B1:B50)").unwrap();
    e.update_cell_a1("C52", "=COUNTIF(C1:C50,\">100\")")
        .unwrap();
    e.update_cell_a1("D52", "=VLOOKUP(10,A1:D50,4)").unwrap();
    e
}

#[test]
fn formulas_survive_every_optimizer() {
    let expected = [
        ("A52", CellValue::Number((1..=50).sum::<i32>() as f64)),
        ("B52", CellValue::Number(51.0)),
        (
            "C52",
            CellValue::Number((1..=50).filter(|r| r * 3 > 100).count() as f64),
        ),
        ("D52", CellValue::Number(40.0)),
    ];
    for algo in [
        OptimizeAlgorithm::Greedy,
        OptimizeAlgorithm::Agg,
        OptimizeAlgorithm::IncrementalAgg { eta: 1.0 },
    ] {
        let mut e = seeded_engine();
        for (addr, want) in &expected {
            assert_eq!(e.value(a(addr)), *want, "{addr} before optimize");
        }
        e.optimize(&CostModel::postgres(), algo, &OptimizerOptions::default())
            .unwrap();
        for (addr, want) in &expected {
            assert_eq!(e.value(a(addr)), *want, "{addr} after {algo:?}");
        }
        // Recomputation still flows after migration.
        e.update_cell_a1("A1", "1000").unwrap();
        assert_eq!(
            e.value(a("A52")),
            CellValue::Number((2..=50).sum::<i32>() as f64 + 1000.0),
            "dependents after {algo:?}"
        );
    }
}

#[test]
fn formulas_work_across_posmap_kinds() {
    for kind in [
        PosMapKind::AsIs,
        PosMapKind::Monotonic,
        PosMapKind::Hierarchical,
    ] {
        let mut e = SheetEngine::with_posmap(kind);
        e.update_cell_a1("A1", "2").unwrap();
        e.update_cell_a1("A2", "3").unwrap();
        e.update_cell_a1("A3", "=A1*A2").unwrap();
        e.insert_rows(1, 1).unwrap();
        assert_eq!(e.value(a("A4")), CellValue::Number(6.0), "{kind:?}");
    }
}

#[test]
fn error_propagation_through_storage() {
    let mut e = SheetEngine::new();
    e.update_cell_a1("A1", "=1/0").unwrap();
    e.update_cell_a1("A2", "=A1+1").unwrap();
    assert_eq!(e.value(a("A1")), CellValue::Error(CellError::Div0));
    assert_eq!(e.value(a("A2")), CellValue::Error(CellError::Div0));
    // Errors round-trip through tuple encoding (stored, re-read).
    let snap = e.snapshot();
    assert_eq!(
        snap.get(a("A1")).unwrap().value,
        CellValue::Error(CellError::Div0)
    );
    // Fixing the source heals the chain.
    e.update_cell_a1("A1", "=4/2").unwrap();
    assert_eq!(e.value(a("A2")), CellValue::Number(3.0));
}

#[test]
fn linked_table_survives_database_save_load() {
    let mut e = SheetEngine::new();
    e.update_cell_a1("A1", "id").unwrap();
    e.update_cell_a1("B1", "qty").unwrap();
    for i in 0..5 {
        e.update_cell(CellAddr::new(1 + i, 0), &format!("{}", i + 1))
            .unwrap();
        e.update_cell(CellAddr::new(1 + i, 1), &format!("{}", (i + 1) * 10))
            .unwrap();
    }
    e.link_table(Rect::parse_a1("A1:B6").unwrap(), "orders")
        .unwrap();

    let path = std::env::temp_dir().join(format!("ds-scenario-{}.db", std::process::id()));
    e.database().read().save(&path).unwrap();
    let restored = Database::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(restored.table("orders").unwrap().row_count(), 5);
    // SQL over the restored database sees the same data.
    let r = dataspread_rel::execute_sql(&restored, "SELECT SUM(qty) FROM orders", &[]).unwrap();
    assert_eq!(r.rows[0][0], Datum::Float(10.0 + 20.0 + 30.0 + 40.0 + 50.0));
}

#[test]
fn scrolling_windows_are_consistent_after_edits() {
    let mut e = seeded_engine();
    // Scroll window before and after a structural edit.
    let w1 = e.get_cells(Rect::new(10, 0, 19, 3));
    assert_eq!(w1.len(), 40);
    e.insert_rows(15, 2).unwrap();
    let w2 = e.get_cells(Rect::new(10, 0, 21, 3));
    assert_eq!(w2.len(), 40, "two blank rows inside the window");
    // Row 15 shifted to 17: value (16)*(c+1).
    assert_eq!(e.value(CellAddr::new(17, 2)), CellValue::Number(16.0 * 3.0));
    e.delete_rows(15, 2).unwrap();
    let w3 = e.get_cells(Rect::new(10, 0, 19, 3));
    assert_eq!(w3, w1, "delete undoes insert");
}

#[test]
fn sumif_and_lookup_functions_on_stored_data() {
    let mut e = SheetEngine::new();
    let names = ["apple", "banana", "apple", "cherry", "apple"];
    for (i, n) in names.iter().enumerate() {
        e.update_cell(CellAddr::new(i as u32, 0), n).unwrap();
        e.update_cell(CellAddr::new(i as u32, 1), &format!("{}", (i + 1) * 10))
            .unwrap();
    }
    e.update_cell_a1("D1", "=SUMIF(A1:A5,\"apple\",B1:B5)")
        .unwrap();
    e.update_cell_a1("D2", "=MATCH(\"cherry\",A1:A5)").unwrap();
    e.update_cell_a1("D3", "=INDEX(B1:B5,MATCH(\"banana\",A1:A5))")
        .unwrap();
    assert_eq!(e.value(a("D1")), CellValue::Number(10.0 + 30.0 + 50.0));
    assert_eq!(e.value(a("D2")), CellValue::Number(4.0));
    assert_eq!(e.value(a("D3")), CellValue::Number(20.0));
}

#[test]
fn update_cell_parse_errors_are_reported_not_stored() {
    let mut e = SheetEngine::new();
    let err = e.update_cell_a1("A1", "=SUM(");
    assert!(err.is_err());
    assert_eq!(e.value(a("A1")), CellValue::Empty, "nothing stored");
    // A valid formula afterwards works.
    e.update_cell_a1("A1", "=1+1").unwrap();
    assert_eq!(e.value(a("A1")), CellValue::Number(2.0));
}

#[test]
fn wide_import_respects_projection_reads() {
    // A wide region (200 columns): single-cell reads must not materialize
    // whole tuples (this is a smoke test for the projected-decode path).
    let mut e = SheetEngine::new();
    let rows: Vec<Vec<CellValue>> = (0..100)
        .map(|r| {
            (0..200)
                .map(|c| CellValue::Number((r * 200 + c) as f64))
                .collect()
        })
        .collect();
    e.import_rows(a("A1"), 200, rows).unwrap();
    assert_eq!(e.value(CellAddr::new(50, 199)), CellValue::Number(10199.0));
    e.update_cell_a1("GU1", "=SUM(A1:A100)").unwrap(); // col 202
    let expected: f64 = (0..100).map(|r| (r * 200) as f64).sum();
    assert_eq!(e.value(a("GU1")), CellValue::Number(expected));
}
