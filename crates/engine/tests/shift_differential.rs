//! Differential suite for band-intersection recompute seeding on
//! structural edits.
//!
//! The baseline is a [`SheetEngine`] forced back onto the
//! recompute-everything strategy (`set_shift_recompute_all`): clear the
//! whole eval cache and reseed every surviving formula after each
//! insert/delete. The optimized engine seeds only formulas whose read
//! windows intersect the shift band (plus freshly `#REF!`'d cells).
//! Random tapes of edits and reference-full formulas are replayed into
//! both; snapshots (values *and* formula text) must agree after every
//! op, while the optimized engine must evaluate strictly fewer cells.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataspread_engine::SheetEngine;
use dataspread_grid::{Cell, CellAddr, Rect};

const ROWS: u32 = 28;
const COLS: u32 = 10;

fn a1(row: u32, col: u32) -> String {
    format!("{}{}", (b'A' + col as u8) as char, row + 1)
}

#[derive(Debug, Clone)]
enum Op {
    Set(CellAddr, String),
    InsertRows(u32, u32),
    DeleteRows(u32, u32),
    InsertCols(u32, u32),
    DeleteCols(u32, u32),
}

/// Random tape: number pokes, point refs, range aggregates over random
/// rects, and a steady drip of structural edits that land above, inside,
/// and below the live formulas.
fn tape(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let op = match rng.gen_range(0..100u32) {
            0..=39 => {
                let addr = CellAddr::new(rng.gen_range(0..ROWS), rng.gen_range(0..COLS));
                Op::Set(addr, format!("{}", rng.gen_range(-40..40i64)))
            }
            40..=54 => {
                let addr = CellAddr::new(rng.gen_range(0..ROWS), rng.gen_range(0..COLS));
                let tgt = a1(rng.gen_range(0..ROWS), rng.gen_range(0..COLS));
                Op::Set(addr, format!("={tgt}*2+1"))
            }
            55..=69 => {
                let addr = CellAddr::new(rng.gen_range(0..ROWS), rng.gen_range(0..COLS));
                let r0 = rng.gen_range(0..ROWS - 4);
                let c0 = rng.gen_range(0..COLS - 2);
                let corner = a1(
                    r0 + rng.gen_range(1..5u32).min(ROWS - 1 - r0),
                    c0 + rng.gen_range(0..2u32),
                );
                let f = ["SUM", "COUNT", "AVERAGE", "COUNTA"][rng.gen_range(0..4)];
                Op::Set(addr, format!("={f}({}:{corner})", a1(r0, c0)))
            }
            _ => {
                let at = rng.gen_range(0..ROWS);
                let n = rng.gen_range(1..=3u32);
                match rng.gen_range(0..4u32) {
                    0 => Op::InsertRows(at, n),
                    1 => Op::DeleteRows(at, n),
                    2 => Op::InsertCols(at % COLS, n),
                    _ => Op::DeleteCols(at % COLS, n),
                }
            }
        };
        ops.push(op);
    }
    ops
}

fn apply(e: &mut SheetEngine, op: &Op) {
    match op {
        Op::Set(addr, input) => e.update_cell(*addr, input).expect("set"),
        Op::InsertRows(at, n) => e.insert_rows(*at, *n).expect("insert rows"),
        Op::DeleteRows(at, n) => e.delete_rows(*at, *n).expect("delete rows"),
        Op::InsertCols(at, n) => e.insert_cols(*at, *n).expect("insert cols"),
        Op::DeleteCols(at, n) => e.delete_cols(*at, *n).expect("delete cols"),
    }
}

fn snapshot(e: &SheetEngine) -> Vec<(CellAddr, Cell)> {
    e.get_cells(Rect::new(0, 0, ROWS + 8, COLS + 8))
}

#[test]
fn band_seeding_matches_recompute_everything_baseline() {
    for seed in 0..6u64 {
        let mut baseline = SheetEngine::new();
        baseline.set_shift_recompute_all(true);
        let mut optimized = SheetEngine::new();
        for (step, op) in tape(0x5F1F_0001 + seed, 160).iter().enumerate() {
            apply(&mut baseline, op);
            apply(&mut optimized, op);
            assert_eq!(
                snapshot(&optimized),
                snapshot(&baseline),
                "seed {seed} step {step} {op:?}: snapshot diverged"
            );
        }
        // The point of band seeding: strictly less evaluation work on
        // tapes where most structural edits miss most formula windows.
        assert!(
            optimized.cells_recomputed() < baseline.cells_recomputed(),
            "seed {seed}: optimized path did not save work \
             ({} vs {})",
            optimized.cells_recomputed(),
            baseline.cells_recomputed()
        );
    }
}

#[test]
fn formulas_above_band_keep_cached_values() {
    // An edit at row 20 must not evict or recompute the stack of
    // formulas living entirely in rows 0..5.
    let mut e = SheetEngine::new();
    for r in 0..5u32 {
        e.update_cell(CellAddr::new(r, 0), &format!("{}", r + 1))
            .unwrap();
        e.update_cell(CellAddr::new(r, 1), &format!("=A{}*10", r + 1))
            .unwrap();
    }
    let before = e.cells_recomputed();
    e.insert_rows(20, 3).unwrap();
    e.delete_rows(21, 2).unwrap();
    assert_eq!(
        e.cells_recomputed(),
        before,
        "edits below recomputed nothing"
    );
    for r in 0..5u32 {
        assert_eq!(
            e.value(CellAddr::new(r, 1)),
            dataspread_grid::CellValue::Number(((r + 1) * 10) as f64)
        );
    }
}
