//! Formula abstract syntax.

use std::fmt;

use dataspread_grid::addr::col_to_letters;
use dataspread_grid::{CellAddr, Rect};

/// A single-cell reference with absolute/relative flags (`$B$2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRef {
    pub row: u32,
    pub col: u32,
    pub abs_row: bool,
    pub abs_col: bool,
}

impl CellRef {
    pub fn relative(row: u32, col: u32) -> Self {
        CellRef {
            row,
            col,
            abs_row: false,
            abs_col: false,
        }
    }

    pub fn addr(&self) -> CellAddr {
        CellAddr::new(self.row, self.col)
    }
}

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            if self.abs_col { "$" } else { "" },
            col_to_letters(self.col),
            if self.abs_row { "$" } else { "" },
            self.row + 1
        )
    }
}

/// Binary operators, lowest precedence first in the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Concat,
    Add,
    Sub,
    Mul,
    Div,
    Pow,
}

impl BinOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Concat => "&",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Plus,
}

/// A parsed formula expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Number(f64),
    Text(String),
    Bool(bool),
    Ref(CellRef),
    Range(CellRef, CellRef),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Postfix percent: `50%` = 0.5.
    Percent(Box<Expr>),
    Func(String, Vec<Expr>),
}

impl Expr {
    /// The rectangle covered by a reference or range expression.
    pub fn as_rect(&self) -> Option<Rect> {
        match self {
            Expr::Ref(r) => Some(Rect::cell(r.addr())),
            Expr::Range(a, b) => Some(Rect::new(a.row, a.col, b.row, b.col)),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Number(n) => {
                if *n == n.trunc() && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Expr::Text(s) => write!(f, "\"{}\"", s.replace('"', "\"\"")),
            Expr::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Expr::Ref(r) => write!(f, "{r}"),
            Expr::Range(a, b) => write!(f, "{a}:{b}"),
            Expr::Unary(op, e) => {
                write!(f, "{}{}", if *op == UnOp::Neg { "-" } else { "+" }, e)
            }
            Expr::Binary(op, a, b) => {
                // Re-rendering fully parenthesized keeps round-trips exact
                // without tracking the original precedence context.
                write!(f, "({}{}{})", a, op.symbol(), b)
            }
            Expr::Percent(e) => write!(f, "{e}%"),
            Expr::Func(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cellref_display() {
        assert_eq!(CellRef::relative(1, 1).to_string(), "B2");
        let abs = CellRef {
            row: 0,
            col: 26,
            abs_row: true,
            abs_col: true,
        };
        assert_eq!(abs.to_string(), "$AA$1");
    }

    #[test]
    fn expr_display() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Func(
                "SUM".into(),
                vec![Expr::Range(
                    CellRef::relative(0, 0),
                    CellRef::relative(9, 0),
                )],
            )),
            Box::new(Expr::Number(2.0)),
        );
        assert_eq!(e.to_string(), "(SUM(A1:A10)+2)");
        assert_eq!(Expr::Text("a\"b".into()).to_string(), "\"a\"\"b\"");
        assert_eq!(
            Expr::Percent(Box::new(Expr::Number(50.0))).to_string(),
            "50%"
        );
    }

    #[test]
    fn as_rect() {
        assert_eq!(
            Expr::Ref(CellRef::relative(2, 3)).as_rect(),
            Some(Rect::new(2, 3, 2, 3))
        );
        assert_eq!(Expr::Number(1.0).as_rect(), None);
    }
}
