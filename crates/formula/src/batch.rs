//! Batch evaluation for fill-down formula runs.
//!
//! A spreadsheet column of formulas is almost always one formula *filled
//! down*: the same AST with every relative reference shifted by the row
//! delta (Table I's corpus is dominated by this shape). Recomputing such a
//! run cell-by-cell pays a full tree walk plus a storage range-fetch per
//! cell — `SUM(A1:A64)` filled down 100k rows costs 100k index probes and
//! 6.4M `Cell` clones. This module detects the shape once, at formula
//! registration ([`shape_key`]), and evaluates a whole run against a single
//! bulk fetch ([`batch_eval_sliding`]): the union of the run's windows is
//! read into dense arrays, then each cell's aggregate folds over array
//! slots in exactly the order the tree-walking evaluator would visit the
//! underlying cells — so results are bit-identical to per-cell evaluation
//! (same float associativity, same first-error semantics, same skip rules).

use std::fmt::Write as _;

use dataspread_grid::value::CellError;
use dataspread_grid::{CellAddr, CellValue, Rect};

use crate::ast::{CellRef, Expr, UnOp};
use crate::eval::CellReader;

/// Render `expr` with every reference written as an offset from `base`
/// (`R[-3]C[0]`-style). Two formulas at different cells with equal keys are
/// the same formula filled to different positions: evaluating one at its
/// cell is evaluating the other shifted. Returns `None` when the formula
/// contains an absolute (`$`) reference component — those do *not* shift on
/// fill, so textual equality of the relative form would be a lie.
pub fn shape_key(expr: &Expr, base: CellAddr) -> Option<String> {
    let mut out = String::new();
    write_relative(expr, base, &mut out)?;
    Some(out)
}

fn write_ref_relative(r: &CellRef, base: CellAddr, out: &mut String) -> Option<()> {
    if r.abs_row || r.abs_col {
        return None;
    }
    let dr = r.row as i64 - base.row as i64;
    let dc = r.col as i64 - base.col as i64;
    let _ = write!(out, "R[{dr}]C[{dc}]");
    Some(())
}

fn write_relative(expr: &Expr, base: CellAddr, out: &mut String) -> Option<()> {
    match expr {
        Expr::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Expr::Text(s) => {
            let _ = write!(out, "{s:?}");
        }
        Expr::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Expr::Ref(r) => write_ref_relative(r, base, out)?,
        Expr::Range(a, b) => {
            write_ref_relative(a, base, out)?;
            out.push(':');
            write_ref_relative(b, base, out)?;
        }
        Expr::Unary(op, e) => {
            out.push(if *op == UnOp::Neg { '-' } else { '+' });
            write_relative(e, base, out)?;
        }
        Expr::Binary(op, a, b) => {
            out.push('(');
            write_relative(a, base, out)?;
            out.push_str(op.symbol());
            write_relative(b, base, out)?;
            out.push(')');
        }
        Expr::Percent(e) => {
            write_relative(e, base, out)?;
            out.push('%');
        }
        Expr::Func(name, args) => {
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_relative(a, base, out)?;
            }
            out.push(')');
        }
    }
    Some(())
}

/// The aggregates with a vectorizable sweep. These four share the same
/// iteration contract in the evaluator (`for_each_value`): visit non-empty
/// cells row-major, abort on the first error, fold numbers / count matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    Sum,
    Count,
    CountA,
    Average,
}

impl AggKind {
    fn from_name(name: &str) -> Option<AggKind> {
        match name {
            "SUM" => Some(AggKind::Sum),
            "COUNT" => Some(AggKind::Count),
            "COUNTA" => Some(AggKind::CountA),
            "AVERAGE" => Some(AggKind::Average),
            _ => None,
        }
    }
}

/// A sliding-window aggregate: `AGG(range)` where the whole range is
/// relative, described by the range corners' offsets from the formula cell.
/// This is the canonical fill-down aggregate (`=SUM(A1:A64)` filled down a
/// column), and the shape [`batch_eval_sliding`] vectorizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlidingSpec {
    pub kind: AggKind,
    pub dr1: i64,
    pub dc1: i64,
    pub dr2: i64,
    pub dc2: i64,
}

impl SlidingSpec {
    /// The window this spec reads when the formula sits at `addr`; `None`
    /// when the offsets fall outside the sheet (caller falls back to the
    /// tree walk, which resolves it the slow way).
    pub fn window(&self, addr: CellAddr) -> Option<Rect> {
        let r1 = u32::try_from(addr.row as i64 + self.dr1).ok()?;
        let c1 = u32::try_from(addr.col as i64 + self.dc1).ok()?;
        let r2 = u32::try_from(addr.row as i64 + self.dr2).ok()?;
        let c2 = u32::try_from(addr.col as i64 + self.dc2).ok()?;
        Some(Rect::new(r1, c1, r2, c2))
    }
}

/// Detect the sliding-aggregate shape: a single `SUM`/`COUNT`/`COUNTA`/
/// `AVERAGE` call over one fully-relative range or cell reference.
pub fn detect_sliding(expr: &Expr, base: CellAddr) -> Option<SlidingSpec> {
    let Expr::Func(name, args) = expr else {
        return None;
    };
    let kind = AggKind::from_name(name)?;
    let [arg] = args.as_slice() else {
        return None;
    };
    let (a, b) = match arg {
        Expr::Range(a, b) => (a, b),
        Expr::Ref(r) => (r, r),
        _ => return None,
    };
    if a.abs_row || a.abs_col || b.abs_row || b.abs_col {
        return None;
    }
    Some(SlidingSpec {
        kind,
        dr1: a.row as i64 - base.row as i64,
        dc1: a.col as i64 - base.col as i64,
        dr2: b.row as i64 - base.row as i64,
        dc2: b.col as i64 - base.col as i64,
    })
}

/// Refuse to materialize dense arrays past this many slots (~64 MB of
/// `f64`s) — a run whose window union is bigger falls back to per-cell
/// evaluation rather than ballooning memory.
const MAX_DENSE_SLOTS: u64 = 8_000_000;

/// Evaluate one fill-down run of `spec` at `members` with a single storage
/// fetch. Returns values aligned with `members`, or `None` when the run
/// does not fit the dense sweep (window out of bounds, union too large) —
/// the caller then evaluates those cells through the normal tree walk.
///
/// Exactness: for each member this folds the same cells, in the same
/// row-major order, with the same number/empty/error rules as
/// `Evaluator::eval` on the equivalent `AGG(range)` call, so the results
/// are bit-identical — the differential suites in `dataspread-engine`
/// pin this against the sequential evaluator on random tapes.
pub fn batch_eval_sliding(
    spec: SlidingSpec,
    members: &[CellAddr],
    reader: &dyn CellReader,
) -> Option<Vec<CellValue>> {
    if members.is_empty() {
        return Some(Vec::new());
    }
    let windows: Vec<Rect> = members
        .iter()
        .map(|&m| spec.window(m))
        .collect::<Option<Vec<Rect>>>()?;
    let mut it = windows.iter();
    let first = it.next().expect("non-empty");
    let union = it.fold(*first, |acc, w| acc.bbox_union(w));
    let width = union.cols();
    if union.rows().checked_mul(width)? > MAX_DENSE_SLOTS {
        return None;
    }
    let slots = (union.rows() * width) as usize;
    let width = width as usize;
    // One bulk fetch for the whole run, splatted into dense arrays.
    let mut nums: Vec<f64> = vec![0.0; slots];
    let mut is_num: Vec<bool> = vec![false; slots];
    let mut occupied: Vec<bool> = vec![false; slots];
    // `range_values` yields row-major, so this stays sorted by (row, col).
    let mut errors: Vec<(u32, u32, CellError)> = Vec::new();
    for (addr, value) in reader.range_values(union) {
        let idx = (addr.row - union.r1) as usize * width + (addr.col - union.c1) as usize;
        match value {
            CellValue::Number(n) => {
                nums[idx] = n;
                is_num[idx] = true;
                occupied[idx] = true;
            }
            CellValue::Error(e) => {
                errors.push((addr.row, addr.col, e));
                occupied[idx] = true;
            }
            CellValue::Empty => {}
            _ => occupied[idx] = true,
        }
    }
    let out = windows
        .iter()
        .map(|w| {
            // First error in row-major order inside the window aborts the
            // aggregate — same contract as `for_each_value`.
            let from = errors.partition_point(|&(r, c, _)| (r, c) < (w.r1, w.c1));
            for &(r, c, e) in &errors[from..] {
                if r > w.r2 {
                    break;
                }
                if c >= w.c1 && c <= w.c2 {
                    return CellValue::Error(e);
                }
            }
            let mut sum = 0.0f64;
            let mut n = 0u64;
            for r in w.r1..=w.r2 {
                let row_base = (r - union.r1) as usize * width;
                for c in w.c1..=w.c2 {
                    let idx = row_base + (c - union.c1) as usize;
                    match spec.kind {
                        AggKind::Sum | AggKind::Average => {
                            if is_num[idx] {
                                sum += nums[idx];
                                n += 1;
                            }
                        }
                        AggKind::Count => {
                            if is_num[idx] {
                                n += 1;
                            }
                        }
                        AggKind::CountA => {
                            if occupied[idx] {
                                n += 1;
                            }
                        }
                    }
                }
            }
            match spec.kind {
                AggKind::Sum => CellValue::Number(sum),
                AggKind::Count | AggKind::CountA => CellValue::Number(n as f64),
                AggKind::Average => {
                    if n == 0 {
                        CellValue::Error(CellError::Div0)
                    } else {
                        CellValue::Number(sum / n as f64)
                    }
                }
            }
        })
        .collect();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{Evaluator, SheetReader};
    use crate::parser::parse;
    use dataspread_grid::SparseSheet;

    fn a(s: &str) -> CellAddr {
        CellAddr::parse_a1(s).unwrap()
    }

    #[test]
    fn fill_down_shapes_share_a_key() {
        let at_b5 = parse("SUM(A1:A5)*2").unwrap();
        let at_b9 = parse("SUM(A5:A9)*2").unwrap();
        let k1 = shape_key(&at_b5, a("B5")).unwrap();
        let k2 = shape_key(&at_b9, a("B9")).unwrap();
        assert_eq!(k1, k2);
        // A different window is a different shape.
        let other = parse("SUM(A1:A6)*2").unwrap();
        assert_ne!(shape_key(&other, a("B5")).unwrap(), k1);
    }

    #[test]
    fn absolute_refs_have_no_shape() {
        let e = parse("SUM($A$1:A5)").unwrap();
        assert_eq!(shape_key(&e, a("B5")), None);
        assert_eq!(detect_sliding(&e, a("B5")), None);
    }

    #[test]
    fn detect_sliding_covers_the_four_aggregates() {
        for (src, kind) in [
            ("SUM(A1:A8)", AggKind::Sum),
            ("COUNT(A1:A8)", AggKind::Count),
            ("COUNTA(A1:A8)", AggKind::CountA),
            ("AVERAGE(A1:A8)", AggKind::Average),
        ] {
            let spec = detect_sliding(&parse(src).unwrap(), a("B8")).unwrap();
            assert_eq!(spec.kind, kind);
            assert_eq!(
                spec.window(a("B8")).unwrap(),
                Rect::parse_a1("A1:A8").unwrap()
            );
            // Filled down one row, the window slides with it.
            assert_eq!(
                spec.window(a("B9")).unwrap(),
                Rect::parse_a1("A2:A9").unwrap()
            );
        }
        // Arithmetic around the call is not a bare sliding aggregate.
        assert_eq!(
            detect_sliding(&parse("SUM(A1:A8)+1").unwrap(), a("B8")),
            None
        );
        // MIN has no order-insensitive prefix fold here; excluded.
        assert_eq!(detect_sliding(&parse("MIN(A1:A8)").unwrap(), a("B8")), None);
    }

    #[test]
    fn window_above_sheet_top_falls_back() {
        let spec = detect_sliding(&parse("SUM(A1:A8)").unwrap(), a("B8")).unwrap();
        // At row 3 the window would start at row -4.
        assert_eq!(spec.window(a("B4")), None);
    }

    #[test]
    fn batch_matches_tree_walk_on_mixed_data() {
        let mut sheet = SparseSheet::new();
        // Numbers, text, bools, a gap, and an error cell at A13.
        for r in 0..30u32 {
            let v = match r % 5 {
                0 => CellValue::Number(r as f64 * 1.5 + 0.1),
                1 => CellValue::Number(-(r as f64) / 3.0),
                2 => CellValue::Text(format!("t{r}")),
                3 => CellValue::Bool(r % 2 == 0),
                _ => continue,
            };
            sheet.set_value(CellAddr::new(r, 0), v);
        }
        sheet.set_value(CellAddr::new(12, 0), CellValue::Error(CellError::Div0));
        let reader = SheetReader(&sheet);
        let eval = Evaluator::new();
        for src in [
            "SUM(A1:A8)",
            "COUNT(A1:A8)",
            "COUNTA(A1:A8)",
            "AVERAGE(A1:A8)",
        ] {
            let base_expr = parse(src).unwrap();
            let spec = detect_sliding(&base_expr, a("B8")).unwrap();
            let members: Vec<CellAddr> = (7..30).map(|r| CellAddr::new(r, 1)).collect();
            let got = batch_eval_sliding(spec, &members, &reader).unwrap();
            for (i, &m) in members.iter().enumerate() {
                // The per-cell oracle: shift the window text to the member.
                let w = spec.window(m).unwrap();
                let shifted = parse(&format!(
                    "{}(A{}:A{})",
                    src.split('(').next().unwrap(),
                    w.r1 + 1,
                    w.r2 + 1
                ))
                .unwrap();
                let want = eval.eval(&shifted, &reader);
                assert_eq!(got[i], want, "{src} at {m} diverged");
            }
        }
    }

    #[test]
    fn empty_run_and_empty_window() {
        let sheet = SparseSheet::new();
        let reader = SheetReader(&sheet);
        let spec = detect_sliding(&parse("SUM(A1:A4)").unwrap(), a("B4")).unwrap();
        assert_eq!(batch_eval_sliding(spec, &[], &reader), Some(Vec::new()));
        let got = batch_eval_sliding(spec, &[a("B4")], &reader).unwrap();
        assert_eq!(got, vec![CellValue::Number(0.0)]);
        let avg = detect_sliding(&parse("AVERAGE(A1:A4)").unwrap(), a("B4")).unwrap();
        let got = batch_eval_sliding(avg, &[a("B4")], &reader).unwrap();
        assert_eq!(got, vec![CellValue::Error(CellError::Div0)]);
    }

    #[test]
    fn oversized_union_falls_back() {
        let sheet = SparseSheet::new();
        let reader = SheetReader(&sheet);
        let spec = SlidingSpec {
            kind: AggKind::Sum,
            dr1: -9_000_000,
            dc1: 0,
            dr2: 0,
            dc2: 0,
        };
        assert_eq!(
            batch_eval_sliding(spec, &[CellAddr::new(9_000_001, 0)], &reader),
            None
        );
    }
}
