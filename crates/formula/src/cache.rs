//! LRU caching (paper §VI: the "LRU cell cache" between the evaluator and
//! the hybrid translator, read-through on fetch and write-through on
//! update).

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

use dataspread_grid::{CellAddr, CellValue};

/// A generic LRU cache with entry-count capacity.
///
/// Recency is tracked with a monotonically increasing tick and a
/// `BTreeMap<tick, key>` index — O(log n) per touch, no unsafe code.
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (V, u64)>,
    by_tick: BTreeMap<u64, K>,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// # Panics
    /// Panics when `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            by_tick: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// (hits, misses) counters for `get`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn touch(&mut self, key: &K) {
        let Some((_, tick)) = self.map.get(key) else {
            return;
        };
        let old = *tick;
        self.tick += 1;
        let new = self.tick;
        self.by_tick.remove(&old);
        self.by_tick.insert(new, key.clone());
        self.map.get_mut(key).expect("checked above").1 = new;
    }

    /// Fetch and mark as most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if self.map.contains_key(key) {
            self.hits += 1;
            self.touch(key);
            self.map.get(key).map(|(v, _)| v)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Peek without touching recency or stats.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    /// Insert (write-through caches call the backing store first), evicting
    /// the least recently used entry when full.
    pub fn put(&mut self, key: K, value: V) {
        self.tick += 1;
        if let Some((_, old_tick)) = self.map.insert(key.clone(), (value, self.tick)) {
            self.by_tick.remove(&old_tick);
        }
        self.by_tick.insert(self.tick, key);
        if self.map.len() > self.capacity {
            let (&oldest, _) = self.by_tick.iter().next().expect("cache non-empty");
            let victim = self.by_tick.remove(&oldest).expect("just observed");
            self.map.remove(&victim);
        }
    }

    /// Drop an entry (e.g. when the underlying cell is invalidated).
    pub fn invalidate(&mut self, key: &K) -> Option<V> {
        let (v, tick) = self.map.remove(key)?;
        self.by_tick.remove(&tick);
        Some(v)
    }

    /// Drop every entry whose key matches `pred`; returns how many were
    /// dropped. Structural sheet edits use this to evict only the band of
    /// addresses that actually moved instead of clearing the whole cache.
    pub fn invalidate_where(&mut self, mut pred: impl FnMut(&K) -> bool) -> usize {
        let victims: Vec<(K, u64)> = self
            .map
            .iter()
            .filter(|(k, _)| pred(k))
            .map(|(k, (_, tick))| (k.clone(), *tick))
            .collect();
        for (key, tick) in &victims {
            self.map.remove(key);
            self.by_tick.remove(tick);
        }
        victims.len()
    }

    pub fn clear(&mut self) {
        self.map.clear();
        self.by_tick.clear();
    }
}

/// The engine's cell cache: addresses → computed values.
pub type CellCache = LruCache<CellAddr, CellValue>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_is_lru() {
        let mut c = LruCache::new(2);
        c.put(1, "a");
        c.put(2, "b");
        assert_eq!(c.get(&1), Some(&"a")); // 1 is now MRU
        c.put(3, "c"); // evicts 2
        assert_eq!(c.peek(&2), None);
        assert_eq!(c.peek(&1), Some(&"a"));
        assert_eq!(c.peek(&3), Some(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn put_updates_in_place() {
        let mut c = LruCache::new(2);
        c.put(1, "a");
        c.put(1, "b");
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&1), Some(&"b"));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = LruCache::new(4);
        c.put(1, ());
        c.get(&1);
        c.get(&2);
        c.get(&1);
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = LruCache::new(4);
        c.put(1, "a");
        c.put(2, "b");
        assert_eq!(c.invalidate(&1), Some("a"));
        assert_eq!(c.invalidate(&1), None);
        c.clear();
        assert!(c.is_empty());
        // After clear the structure still works.
        c.put(3, "c");
        assert_eq!(c.get(&3), Some(&"c"));
    }

    #[test]
    fn invalidate_where_drops_matching_band() {
        let mut c = LruCache::new(8);
        for k in 0..6u32 {
            c.put(k, k * 10);
        }
        assert_eq!(c.invalidate_where(|k| *k >= 3), 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.peek(&2), Some(&20));
        assert_eq!(c.peek(&4), None);
        // Recency index stays consistent: fill past capacity and evict.
        for k in 10..18u32 {
            c.put(k, k);
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u32, ()>::new(0);
    }
}
