//! The dependency graph (paper §VI): which formula cells read which ranges,
//! and in what order dependents must be recomputed after an update.

use std::collections::{HashMap, HashSet, VecDeque};

use dataspread_grid::{CellAddr, Rect};

/// Range-granular dependency graph.
///
/// Rather than materializing one edge per referenced *cell* (a formula like
/// `SUM(A1:A100000)` would explode), each formula stores its referenced
/// rectangles; finding the dependents of an updated cell scans the formula
/// table. The paper notes compact dependency representations are their own
/// research topic — this is the straightforward range-list version.
#[derive(Debug, Default, Clone)]
pub struct DependencyGraph {
    /// Formula cell → ranges it reads.
    reads: HashMap<CellAddr, Vec<Rect>>,
}

/// Result of a recomputation-order query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecomputePlan {
    /// Formula cells in a valid evaluation order.
    pub order: Vec<CellAddr>,
    /// Formula cells caught in a reference cycle (must display `#CIRC!`).
    pub cyclic: Vec<CellAddr>,
}

impl DependencyGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a formula cell and the ranges it reads.
    pub fn set_formula(&mut self, cell: CellAddr, ranges: Vec<Rect>) {
        self.reads.insert(cell, ranges);
    }

    /// Remove a formula cell.
    pub fn remove(&mut self, cell: CellAddr) {
        self.reads.remove(&cell);
    }

    pub fn formula_count(&self) -> usize {
        self.reads.len()
    }

    pub fn is_formula(&self, cell: CellAddr) -> bool {
        self.reads.contains_key(&cell)
    }

    pub fn ranges_of(&self, cell: CellAddr) -> Option<&[Rect]> {
        self.reads.get(&cell).map(Vec::as_slice)
    }

    pub fn formulas(&self) -> impl Iterator<Item = (CellAddr, &[Rect])> {
        self.reads.iter().map(|(a, r)| (*a, r.as_slice()))
    }

    /// Formula cells that directly read `cell`.
    pub fn dependents_of(&self, cell: CellAddr) -> Vec<CellAddr> {
        self.reads
            .iter()
            .filter(|(_, ranges)| ranges.iter().any(|r| r.contains(cell)))
            .map(|(a, _)| *a)
            .collect()
    }

    /// Does formula `f` read any cell of `rect`?
    fn reads_rect(&self, f: CellAddr, rect: &Rect) -> bool {
        self.reads
            .get(&f)
            .is_some_and(|ranges| ranges.iter().any(|r| r.intersects(rect)))
    }

    /// All formulas transitively affected by updates to `seeds`, in a valid
    /// recomputation order; cycle participants are reported separately.
    pub fn recompute_plan(&self, seeds: &[CellAddr]) -> RecomputePlan {
        // 1. Collect affected formulas by BFS over dependents.
        let mut affected: HashSet<CellAddr> = HashSet::new();
        let mut queue: VecDeque<CellAddr> = VecDeque::new();
        for &seed in seeds {
            // A seed that is itself a formula needs recomputation too.
            if self.is_formula(seed) && affected.insert(seed) {
                queue.push_back(seed);
            }
            for dep in self.dependents_of(seed) {
                if affected.insert(dep) {
                    queue.push_back(dep);
                }
            }
        }
        while let Some(cell) = queue.pop_front() {
            for dep in self.dependents_of(cell) {
                if affected.insert(dep) {
                    queue.push_back(dep);
                }
            }
        }
        // 2. Kahn's algorithm over the affected subgraph. Edge u→v when v
        //    reads u (v must evaluate after u).
        let nodes: Vec<CellAddr> = affected.iter().copied().collect();
        let mut indeg: HashMap<CellAddr, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        let mut edges: HashMap<CellAddr, Vec<CellAddr>> = HashMap::new();
        for &u in &nodes {
            let cell_rect = Rect::cell(u);
            // A formula reading its own cell is an immediate cycle: a
            // permanent in-degree bump keeps it (and its dependents) out of
            // the topological order.
            if self.reads_rect(u, &cell_rect) {
                *indeg.get_mut(&u).expect("node present") += 1;
            }
            for &v in &nodes {
                if u != v && self.reads_rect(v, &cell_rect) {
                    edges.entry(u).or_default().push(v);
                    *indeg.get_mut(&v).expect("node present") += 1;
                }
            }
        }
        let mut ready: Vec<CellAddr> = nodes.iter().copied().filter(|n| indeg[n] == 0).collect();
        // Deterministic order helps tests and users.
        ready.sort();
        let mut order = Vec::with_capacity(nodes.len());
        let mut queue: VecDeque<CellAddr> = ready.into();
        while let Some(u) = queue.pop_front() {
            order.push(u);
            if let Some(vs) = edges.get(&u) {
                let mut unlocked: Vec<CellAddr> = Vec::new();
                for &v in vs {
                    let d = indeg.get_mut(&v).expect("node present");
                    *d -= 1;
                    if *d == 0 {
                        unlocked.push(v);
                    }
                }
                unlocked.sort();
                queue.extend(unlocked);
            }
        }
        let mut cyclic: Vec<CellAddr> = nodes.into_iter().filter(|n| indeg[n] > 0).collect();
        cyclic.sort();
        RecomputePlan { order, cyclic }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> CellAddr {
        CellAddr::parse_a1(s).unwrap()
    }

    fn r(s: &str) -> Rect {
        Rect::parse_a1(s).unwrap()
    }

    #[test]
    fn dependents_by_range_containment() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("C1"), vec![r("A1:A10")]);
        g.set_formula(a("D1"), vec![r("C1")]);
        assert_eq!(g.dependents_of(a("A5")), vec![a("C1")]);
        assert!(g.dependents_of(a("B1")).is_empty());
        assert_eq!(g.dependents_of(a("C1")), vec![a("D1")]);
    }

    #[test]
    fn recompute_order_is_topological() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("B1"), vec![r("A1")]);
        g.set_formula(a("C1"), vec![r("B1")]);
        g.set_formula(a("D1"), vec![r("B1"), r("C1")]);
        let plan = g.recompute_plan(&[a("A1")]);
        assert!(plan.cyclic.is_empty());
        assert_eq!(plan.order, vec![a("B1"), a("C1"), a("D1")]);
    }

    #[test]
    fn unrelated_formulas_not_recomputed() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("B1"), vec![r("A1")]);
        g.set_formula(a("Z9"), vec![r("Y1:Y5")]);
        let plan = g.recompute_plan(&[a("A1")]);
        assert_eq!(plan.order, vec![a("B1")]);
    }

    #[test]
    fn cycles_are_detected() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("A1"), vec![r("B1")]);
        g.set_formula(a("B1"), vec![r("A1")]);
        g.set_formula(a("C1"), vec![r("B1")]);
        let plan = g.recompute_plan(&[a("A1")]);
        // C1 depends on the cycle; it stays blocked (reported cyclic) since
        // its input never settles.
        assert_eq!(plan.cyclic, vec![a("A1"), a("B1"), a("C1")]);
        assert!(plan.order.is_empty());
    }

    #[test]
    fn self_reference_is_cyclic() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("A1"), vec![r("A1:B2")]);
        let plan = g.recompute_plan(&[a("B2")]);
        assert_eq!(plan.cyclic, vec![a("A1")]);
    }

    #[test]
    fn seed_formula_recomputes_itself() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("B1"), vec![r("A1")]);
        let plan = g.recompute_plan(&[a("B1")]);
        assert_eq!(plan.order, vec![a("B1")]);
    }

    #[test]
    fn remove_drops_dependencies() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("B1"), vec![r("A1")]);
        g.remove(a("B1"));
        assert!(g.dependents_of(a("A1")).is_empty());
        assert_eq!(g.formula_count(), 0);
    }
}
