//! The dependency graph (paper §VI): which formula cells read which ranges,
//! and in what order dependents must be recomputed after an update.
//!
//! Rather than materializing one edge per referenced *cell* (a formula like
//! `SUM(A1:A100000)` would explode), each formula stores its referenced
//! rectangles. Finding the dependents of an updated cell is the interactive
//! hot path — it runs on every `updateCell` — so the formula → ranges map is
//! paired with an inverted *spatial* index ([`GridIndex`]) that maps a cell
//! to the candidate formulas whose ranges could contain it. Lookups are
//! O(candidates), not O(registered formulas); on the paper's dense-formula
//! sheets (Figures 13–15) that is the difference between O(1) and O(F) per
//! edit. The straightforward scan implementation is retained as
//! [`ScanDependencyGraph`] — it is the differential-test oracle and the
//! perf baseline for `exp_hotpath`.
//!
//! **Sharding.** A `DependencyGraph` is deliberately *per-sheet* state —
//! no globals, no interior sharing — and the whole structure is `Send`.
//! The concurrent workspace shards one graph per sheet behind that
//! sheet's lock, so formula edits on different sheets never contend on a
//! shared index (the PR 4 follow-up: "per-sheet sharding … once multiple
//! sheets/users mutate in parallel").

use std::collections::{HashMap, HashSet, VecDeque};

use dataspread_grid::{CellAddr, Rect};

/// Level-0 buckets of the spatial index are `32×32` cells.
const BASE_SHIFT: u32 = 5;

/// Multi-resolution grid-bucket index over read ranges.
///
/// Each rectangle is registered at the smallest level whose bucket edge
/// (`32 << level`) covers its larger span, so it lands in at most 2 buckets
/// per axis (4 total) regardless of size — a whole-column `SUM(A:A)` costs
/// the same to register as a single cell. A cell lookup probes exactly one
/// bucket per allocated level (≤ 28 levels for the full `u32` sheet, and
/// only levels that some range actually uses are allocated), yielding a
/// candidate superset that the caller filters by exact containment.
#[derive(Debug, Default, Clone)]
struct GridIndex {
    /// `levels[l]` maps `(row >> (5 + l), col >> (5 + l))` to the formulas
    /// with a range placed at level `l` covering that bucket. A formula
    /// appears once per (range, bucket) placement, so the same address can
    /// occur more than once in a bucket.
    levels: Vec<HashMap<(u32, u32), Vec<CellAddr>>>,
}

/// The level at which a rectangle is placed: the smallest bucket edge that
/// is at least the rect's larger span.
fn level_of(rect: &Rect) -> usize {
    let span = rect.rows().max(rect.cols());
    let mut level = 0usize;
    while 1u64 << (BASE_SHIFT as u64 + level as u64) < span {
        level += 1;
    }
    level
}

/// The buckets a rect occupies at its level (at most 4).
fn placements(rect: &Rect) -> (usize, impl Iterator<Item = (u32, u32)>) {
    let level = level_of(rect);
    let s = BASE_SHIFT as u64 + level as u64;
    let (br1, br2) = (rect.r1 as u64 >> s, rect.r2 as u64 >> s);
    let (bc1, bc2) = (rect.c1 as u64 >> s, rect.c2 as u64 >> s);
    (
        level,
        (br1..=br2).flat_map(move |br| (bc1..=bc2).map(move |bc| (br as u32, bc as u32))),
    )
}

impl GridIndex {
    fn insert(&mut self, formula: CellAddr, rect: &Rect) {
        let (level, buckets) = placements(rect);
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, HashMap::new);
        }
        for key in buckets {
            self.levels[level].entry(key).or_default().push(formula);
        }
    }

    /// Remove one placement of `formula` per bucket `rect` occupies —
    /// exactly symmetric to [`GridIndex::insert`], so re-registering a
    /// formula with the same ranges round-trips.
    fn remove(&mut self, formula: CellAddr, rect: &Rect) {
        let (level, buckets) = placements(rect);
        let Some(map) = self.levels.get_mut(level) else {
            return;
        };
        for key in buckets {
            if let Some(v) = map.get_mut(&key) {
                if let Some(pos) = v.iter().position(|&a| a == formula) {
                    v.swap_remove(pos);
                }
                if v.is_empty() {
                    map.remove(&key);
                }
            }
        }
    }

    /// All formulas with a range placement whose bucket covers `cell` — a
    /// superset of the formulas actually reading it, with possible
    /// duplicates (one per matching placement).
    fn candidates_into(&self, cell: CellAddr, out: &mut Vec<CellAddr>) {
        for (level, map) in self.levels.iter().enumerate() {
            if map.is_empty() {
                continue;
            }
            let s = BASE_SHIFT as u64 + level as u64;
            let key = ((cell.row as u64 >> s) as u32, (cell.col as u64 >> s) as u32);
            if let Some(v) = map.get(&key) {
                out.extend_from_slice(v);
            }
        }
    }
}

/// Range-granular dependency graph with a two-sided index: formula → read
/// ranges (exact), plus cell → candidate formulas (spatial, superset).
#[derive(Debug, Default, Clone)]
pub struct DependencyGraph {
    /// Formula cell → ranges it reads.
    reads: HashMap<CellAddr, Vec<Rect>>,
    /// Inverted spatial index over every registered range.
    index: GridIndex,
}

/// Result of a recomputation-order query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecomputePlan {
    /// Formula cells in a valid evaluation order.
    pub order: Vec<CellAddr>,
    /// Formula cells caught in a reference cycle (must display `#CIRC!`).
    pub cyclic: Vec<CellAddr>,
}

impl DependencyGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a formula cell and the ranges it reads.
    pub fn set_formula(&mut self, cell: CellAddr, ranges: Vec<Rect>) {
        if let Some(old) = self.reads.remove(&cell) {
            for r in &old {
                self.index.remove(cell, r);
            }
        }
        for r in &ranges {
            self.index.insert(cell, r);
        }
        self.reads.insert(cell, ranges);
    }

    /// Remove a formula cell.
    pub fn remove(&mut self, cell: CellAddr) {
        if let Some(old) = self.reads.remove(&cell) {
            for r in &old {
                self.index.remove(cell, r);
            }
        }
    }

    pub fn formula_count(&self) -> usize {
        self.reads.len()
    }

    pub fn is_formula(&self, cell: CellAddr) -> bool {
        self.reads.contains_key(&cell)
    }

    pub fn ranges_of(&self, cell: CellAddr) -> Option<&[Rect]> {
        self.reads.get(&cell).map(Vec::as_slice)
    }

    pub fn formulas(&self) -> impl Iterator<Item = (CellAddr, &[Rect])> {
        self.reads.iter().map(|(a, r)| (*a, r.as_slice()))
    }

    /// Formula cells that directly read `cell`, sorted (deduplicated):
    /// probe the spatial index for candidates, then confirm containment
    /// against the exact range lists. O(candidates), not O(formulas).
    pub fn dependents_of(&self, cell: CellAddr) -> Vec<CellAddr> {
        let mut cands = Vec::new();
        self.index.candidates_into(cell, &mut cands);
        cands.sort_unstable();
        cands.dedup();
        cands.retain(|f| {
            self.reads
                .get(f)
                .is_some_and(|ranges| ranges.iter().any(|r| r.contains(cell)))
        });
        cands
    }

    /// All formulas transitively affected by updates to `seeds`, in a valid
    /// recomputation order; cycle participants are reported separately.
    ///
    /// Both phases are index-driven: the BFS probes the spatial index per
    /// affected cell, and the topological edges come from the same probes
    /// (every formula reading cell `u` is by construction already in the
    /// affected closure), so plan construction is O(affected × candidates)
    /// instead of the all-pairs O(affected²) rect test.
    pub fn recompute_plan(&self, seeds: &[CellAddr]) -> RecomputePlan {
        // Each cell's dependents are needed twice (BFS discovery, then
        // edge construction below) — probe the index once per cell.
        let mut memo: HashMap<CellAddr, Vec<CellAddr>> = HashMap::new();
        // 1. Collect affected formulas by BFS over dependents.
        let mut affected: HashSet<CellAddr> = HashSet::new();
        let mut queue: VecDeque<CellAddr> = VecDeque::new();
        for &seed in seeds {
            // A seed that is itself a formula needs recomputation too.
            if self.is_formula(seed) && affected.insert(seed) {
                queue.push_back(seed);
            }
            let deps = memo.entry(seed).or_insert_with(|| self.dependents_of(seed));
            for &dep in deps.iter() {
                if affected.insert(dep) {
                    queue.push_back(dep);
                }
            }
        }
        while let Some(cell) = queue.pop_front() {
            let deps = memo.entry(cell).or_insert_with(|| self.dependents_of(cell));
            for &dep in deps.iter() {
                if affected.insert(dep) {
                    queue.push_back(dep);
                }
            }
        }
        // 2. Kahn's algorithm over the affected subgraph. Edge u→v when v
        //    reads u (v must evaluate after u). Every node was probed
        //    during the BFS, so this phase is pure memo lookups.
        let nodes: Vec<CellAddr> = affected.iter().copied().collect();
        let mut indeg: HashMap<CellAddr, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        let mut edges: HashMap<CellAddr, Vec<CellAddr>> = HashMap::new();
        for &u in &nodes {
            let deps = memo.entry(u).or_insert_with(|| self.dependents_of(u));
            for &v in deps.iter() {
                if v == u {
                    // A formula reading its own cell is an immediate cycle:
                    // a permanent in-degree bump keeps it (and its
                    // dependents) out of the topological order.
                    *indeg.get_mut(&u).expect("node present") += 1;
                } else if affected.contains(&v) {
                    edges.entry(u).or_default().push(v);
                    *indeg.get_mut(&v).expect("node present") += 1;
                }
            }
        }
        let mut ready: Vec<CellAddr> = nodes.iter().copied().filter(|n| indeg[n] == 0).collect();
        // Deterministic order helps tests and users.
        ready.sort();
        let mut order = Vec::with_capacity(nodes.len());
        let mut queue: VecDeque<CellAddr> = ready.into();
        while let Some(u) = queue.pop_front() {
            order.push(u);
            if let Some(vs) = edges.get(&u) {
                let mut unlocked: Vec<CellAddr> = Vec::new();
                for &v in vs {
                    let d = indeg.get_mut(&v).expect("node present");
                    *d -= 1;
                    if *d == 0 {
                        unlocked.push(v);
                    }
                }
                unlocked.sort();
                queue.extend(unlocked);
            }
        }
        let mut cyclic: Vec<CellAddr> = nodes.into_iter().filter(|n| indeg[n] > 0).collect();
        cyclic.sort();
        RecomputePlan { order, cyclic }
    }
}

/// The pre-index scan implementation: `dependents_of` walks every
/// registered formula and `recompute_plan` tests all affected pairs.
///
/// Kept as the reference oracle — the differential suite in
/// `tests/deps_oracle.rs` checks [`DependencyGraph`] against it on random
/// formula sets and edits, and `exp_hotpath` measures the speedup of the
/// indexed graph over it.
#[derive(Debug, Default, Clone)]
pub struct ScanDependencyGraph {
    reads: HashMap<CellAddr, Vec<Rect>>,
}

impl ScanDependencyGraph {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set_formula(&mut self, cell: CellAddr, ranges: Vec<Rect>) {
        self.reads.insert(cell, ranges);
    }

    pub fn remove(&mut self, cell: CellAddr) {
        self.reads.remove(&cell);
    }

    pub fn is_formula(&self, cell: CellAddr) -> bool {
        self.reads.contains_key(&cell)
    }

    /// Formula cells that directly read `cell`, sorted (the scan visits
    /// every formula; sorting matches [`DependencyGraph::dependents_of`]).
    pub fn dependents_of(&self, cell: CellAddr) -> Vec<CellAddr> {
        let mut out: Vec<CellAddr> = self
            .reads
            .iter()
            .filter(|(_, ranges)| ranges.iter().any(|r| r.contains(cell)))
            .map(|(a, _)| *a)
            .collect();
        out.sort_unstable();
        out
    }

    fn reads_rect(&self, f: CellAddr, rect: &Rect) -> bool {
        self.reads
            .get(&f)
            .is_some_and(|ranges| ranges.iter().any(|r| r.intersects(rect)))
    }

    pub fn recompute_plan(&self, seeds: &[CellAddr]) -> RecomputePlan {
        let mut affected: HashSet<CellAddr> = HashSet::new();
        let mut queue: VecDeque<CellAddr> = VecDeque::new();
        for &seed in seeds {
            if self.is_formula(seed) && affected.insert(seed) {
                queue.push_back(seed);
            }
            for dep in self.dependents_of(seed) {
                if affected.insert(dep) {
                    queue.push_back(dep);
                }
            }
        }
        while let Some(cell) = queue.pop_front() {
            for dep in self.dependents_of(cell) {
                if affected.insert(dep) {
                    queue.push_back(dep);
                }
            }
        }
        let nodes: Vec<CellAddr> = affected.iter().copied().collect();
        let mut indeg: HashMap<CellAddr, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        let mut edges: HashMap<CellAddr, Vec<CellAddr>> = HashMap::new();
        for &u in &nodes {
            let cell_rect = Rect::cell(u);
            if self.reads_rect(u, &cell_rect) {
                *indeg.get_mut(&u).expect("node present") += 1;
            }
            for &v in &nodes {
                if u != v && self.reads_rect(v, &cell_rect) {
                    edges.entry(u).or_default().push(v);
                    *indeg.get_mut(&v).expect("node present") += 1;
                }
            }
        }
        let mut ready: Vec<CellAddr> = nodes.iter().copied().filter(|n| indeg[n] == 0).collect();
        ready.sort();
        let mut order = Vec::with_capacity(nodes.len());
        let mut queue: VecDeque<CellAddr> = ready.into();
        while let Some(u) = queue.pop_front() {
            order.push(u);
            if let Some(vs) = edges.get(&u) {
                let mut unlocked: Vec<CellAddr> = Vec::new();
                for &v in vs {
                    let d = indeg.get_mut(&v).expect("node present");
                    *d -= 1;
                    if *d == 0 {
                        unlocked.push(v);
                    }
                }
                unlocked.sort();
                queue.extend(unlocked);
            }
        }
        let mut cyclic: Vec<CellAddr> = nodes.into_iter().filter(|n| indeg[n] > 0).collect();
        cyclic.sort();
        RecomputePlan { order, cyclic }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn graphs_are_send_for_per_sheet_sharding() {
        fn assert_send<T: Send>() {}
        assert_send::<super::DependencyGraph>();
        assert_send::<super::ScanDependencyGraph>();
    }

    use super::*;

    fn a(s: &str) -> CellAddr {
        CellAddr::parse_a1(s).unwrap()
    }

    fn r(s: &str) -> Rect {
        Rect::parse_a1(s).unwrap()
    }

    #[test]
    fn dependents_by_range_containment() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("C1"), vec![r("A1:A10")]);
        g.set_formula(a("D1"), vec![r("C1")]);
        assert_eq!(g.dependents_of(a("A5")), vec![a("C1")]);
        assert!(g.dependents_of(a("B1")).is_empty());
        assert_eq!(g.dependents_of(a("C1")), vec![a("D1")]);
    }

    #[test]
    fn recompute_order_is_topological() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("B1"), vec![r("A1")]);
        g.set_formula(a("C1"), vec![r("B1")]);
        g.set_formula(a("D1"), vec![r("B1"), r("C1")]);
        let plan = g.recompute_plan(&[a("A1")]);
        assert!(plan.cyclic.is_empty());
        assert_eq!(plan.order, vec![a("B1"), a("C1"), a("D1")]);
    }

    #[test]
    fn unrelated_formulas_not_recomputed() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("B1"), vec![r("A1")]);
        g.set_formula(a("Z9"), vec![r("Y1:Y5")]);
        let plan = g.recompute_plan(&[a("A1")]);
        assert_eq!(plan.order, vec![a("B1")]);
    }

    #[test]
    fn cycles_are_detected() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("A1"), vec![r("B1")]);
        g.set_formula(a("B1"), vec![r("A1")]);
        g.set_formula(a("C1"), vec![r("B1")]);
        let plan = g.recompute_plan(&[a("A1")]);
        // C1 depends on the cycle; it stays blocked (reported cyclic) since
        // its input never settles.
        assert_eq!(plan.cyclic, vec![a("A1"), a("B1"), a("C1")]);
        assert!(plan.order.is_empty());
    }

    #[test]
    fn self_reference_is_cyclic() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("A1"), vec![r("A1:B2")]);
        let plan = g.recompute_plan(&[a("B2")]);
        assert_eq!(plan.cyclic, vec![a("A1")]);
    }

    #[test]
    fn seed_formula_recomputes_itself() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("B1"), vec![r("A1")]);
        let plan = g.recompute_plan(&[a("B1")]);
        assert_eq!(plan.order, vec![a("B1")]);
    }

    #[test]
    fn remove_drops_dependencies() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("B1"), vec![r("A1")]);
        g.remove(a("B1"));
        assert!(g.dependents_of(a("A1")).is_empty());
        assert_eq!(g.formula_count(), 0);
    }

    #[test]
    fn replacing_ranges_unregisters_old_placements() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("B1"), vec![r("A1:A10")]);
        g.set_formula(a("B1"), vec![r("C1:C10")]);
        assert!(g.dependents_of(a("A5")).is_empty(), "old range forgotten");
        assert_eq!(g.dependents_of(a("C5")), vec![a("B1")]);
    }

    #[test]
    fn huge_ranges_index_at_coarse_levels() {
        let mut g = DependencyGraph::new();
        // A whole-column read spans ~2^20 rows: placed at a coarse level,
        // it must still be found from any stabbed cell.
        g.set_formula(a("B1"), vec![Rect::new(0, 0, 1_000_000, 0)]);
        g.set_formula(a("C1"), vec![Rect::new(5, 2, 5, 2)]);
        assert_eq!(g.dependents_of(CellAddr::new(999_999, 0)), vec![a("B1")]);
        assert_eq!(g.dependents_of(CellAddr::new(5, 2)), vec![a("C1")]);
        assert!(g.dependents_of(CellAddr::new(999_999, 1)).is_empty());
    }

    #[test]
    fn duplicate_ranges_survive_one_removal_cycle() {
        let mut g = DependencyGraph::new();
        // The same rect twice: two placements, both removed on re-register.
        g.set_formula(a("B1"), vec![r("A1:A4"), r("A1:A4")]);
        assert_eq!(g.dependents_of(a("A2")), vec![a("B1")]);
        g.remove(a("B1"));
        assert!(g.dependents_of(a("A2")).is_empty());
    }

    #[test]
    fn level_selection_bounds_bucket_count() {
        for rect in [
            Rect::new(0, 0, 0, 0),
            Rect::new(0, 0, 31, 31),
            Rect::new(7, 9, 70, 40),
            Rect::new(0, 0, u32::MAX - 1, 0),
            Rect::new(0, 0, u32::MAX - 1, u32::MAX - 1),
            Rect::new(1000, 1000, 1031, 1000),
        ] {
            let (level, buckets) = placements(&rect);
            let n = buckets.count();
            assert!(n <= 4, "{rect:?} at level {level} occupies {n} buckets");
        }
    }
}
