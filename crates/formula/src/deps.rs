//! The dependency graph (paper §VI): which formula cells read which ranges,
//! and in what order dependents must be recomputed after an update.
//!
//! Rather than materializing one edge per referenced *cell* (a formula like
//! `SUM(A1:A100000)` would explode), each formula stores its referenced
//! rectangles. Finding the dependents of an updated cell is the interactive
//! hot path — it runs on every `updateCell` — so the formula → ranges map is
//! paired with an inverted *spatial* index ([`GridIndex`]) that maps a cell
//! to the candidate formulas whose ranges could contain it. Lookups are
//! O(candidates), not O(registered formulas); on the paper's dense-formula
//! sheets (Figures 13–15) that is the difference between O(1) and O(F) per
//! edit. The straightforward scan implementation is retained as
//! [`ScanDependencyGraph`] — it is the differential-test oracle and the
//! perf baseline for `exp_hotpath`.
//!
//! **Sharding.** A `DependencyGraph` is deliberately *per-sheet* state —
//! no globals, no interior sharing — and the whole structure is `Send`.
//! The concurrent workspace shards one graph per sheet behind that
//! sheet's lock, so formula edits on different sheets never contend on a
//! shared index (the PR 4 follow-up: "per-sheet sharding … once multiple
//! sheets/users mutate in parallel").

use std::collections::{HashMap, HashSet, VecDeque};

use dataspread_grid::{CellAddr, Rect};

/// Level-0 buckets of the spatial index are `32×32` cells.
const BASE_SHIFT: u32 = 5;

/// Multi-resolution grid-bucket index over read ranges.
///
/// Each rectangle is registered at the smallest level whose bucket edge
/// (`32 << level`) covers its larger span, so it lands in at most 2 buckets
/// per axis (4 total) regardless of size — a whole-column `SUM(A:A)` costs
/// the same to register as a single cell. A cell lookup probes exactly one
/// bucket per allocated level (≤ 28 levels for the full `u32` sheet, and
/// only levels that some range actually uses are allocated), yielding a
/// candidate superset that the caller filters by exact containment.
#[derive(Debug, Default, Clone)]
struct GridIndex {
    /// `levels[l]` maps `(row >> (5 + l), col >> (5 + l))` to the formulas
    /// with a range placed at level `l` covering that bucket. A formula
    /// appears once per (range, bucket) placement, so the same address can
    /// occur more than once in a bucket.
    levels: Vec<HashMap<(u32, u32), Vec<CellAddr>>>,
}

/// The level at which a rectangle is placed: the smallest bucket edge that
/// is at least the rect's larger span.
fn level_of(rect: &Rect) -> usize {
    let span = rect.rows().max(rect.cols());
    let mut level = 0usize;
    while 1u64 << (BASE_SHIFT as u64 + level as u64) < span {
        level += 1;
    }
    level
}

/// The buckets a rect occupies at its level (at most 4).
fn placements(rect: &Rect) -> (usize, impl Iterator<Item = (u32, u32)>) {
    let level = level_of(rect);
    let s = BASE_SHIFT as u64 + level as u64;
    let (br1, br2) = (rect.r1 as u64 >> s, rect.r2 as u64 >> s);
    let (bc1, bc2) = (rect.c1 as u64 >> s, rect.c2 as u64 >> s);
    (
        level,
        (br1..=br2).flat_map(move |br| (bc1..=bc2).map(move |bc| (br as u32, bc as u32))),
    )
}

impl GridIndex {
    fn insert(&mut self, formula: CellAddr, rect: &Rect) {
        let (level, buckets) = placements(rect);
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, HashMap::new);
        }
        for key in buckets {
            self.levels[level].entry(key).or_default().push(formula);
        }
    }

    /// Remove one placement of `formula` per bucket `rect` occupies —
    /// exactly symmetric to [`GridIndex::insert`], so re-registering a
    /// formula with the same ranges round-trips.
    fn remove(&mut self, formula: CellAddr, rect: &Rect) {
        let (level, buckets) = placements(rect);
        let Some(map) = self.levels.get_mut(level) else {
            return;
        };
        for key in buckets {
            if let Some(v) = map.get_mut(&key) {
                if let Some(pos) = v.iter().position(|&a| a == formula) {
                    v.swap_remove(pos);
                }
                if v.is_empty() {
                    map.remove(&key);
                }
            }
        }
    }

    /// All formulas with a range placement whose bucket covers `cell` — a
    /// superset of the formulas actually reading it, with possible
    /// duplicates (one per matching placement).
    fn candidates_into(&self, cell: CellAddr, out: &mut Vec<CellAddr>) {
        for (level, map) in self.levels.iter().enumerate() {
            if map.is_empty() {
                continue;
            }
            let s = BASE_SHIFT as u64 + level as u64;
            let key = ((cell.row as u64 >> s) as u32, (cell.col as u64 >> s) as u32);
            if let Some(v) = map.get(&key) {
                out.extend_from_slice(v);
            }
        }
    }
}

/// Range-granular dependency graph with a two-sided index: formula → read
/// ranges (exact), plus cell → candidate formulas (spatial, superset).
#[derive(Debug, Default, Clone)]
pub struct DependencyGraph {
    /// Formula cell → ranges it reads.
    reads: HashMap<CellAddr, Vec<Rect>>,
    /// Inverted spatial index over every registered range.
    index: GridIndex,
}

/// Result of a recomputation-order query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecomputePlan {
    /// Formula cells in a valid evaluation order.
    pub order: Vec<CellAddr>,
    /// Formula cells caught in a reference cycle (must display `#CIRC!`).
    pub cyclic: Vec<CellAddr>,
}

/// Result of a wave-structured recomputation query: the same affected set
/// as [`RecomputePlan`], grouped by dependency depth.
///
/// Wave `k` holds the formulas whose longest dependency path from a ready
/// formula has length `k` — no formula in a wave reads any cell computed
/// by another member of the same wave, so a wave's members can be
/// evaluated concurrently once every earlier wave has been written back.
/// Each wave is sorted, so concatenating the waves yields a deterministic
/// (and valid topological) evaluation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WavePlan {
    /// Dependency levels, shallowest first; each wave sorted by address.
    pub waves: Vec<Vec<CellAddr>>,
    /// Formula cells caught in a reference cycle (must display `#CIRC!`).
    pub cyclic: Vec<CellAddr>,
}

impl WavePlan {
    /// Total number of formulas across all waves.
    pub fn len(&self) -> usize {
        self.waves.iter().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.waves.is_empty()
    }
}

/// The affected subgraph both plan shapes are built from: nodes reachable
/// from the seeds by dependent edges, in-degrees, and forward edges
/// (`u → v` when formula `v` reads cell `u`).
struct AffectedSubgraph {
    nodes: Vec<CellAddr>,
    indeg: HashMap<CellAddr, usize>,
    edges: HashMap<CellAddr, Vec<CellAddr>>,
}

impl DependencyGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a formula cell and the ranges it reads.
    pub fn set_formula(&mut self, cell: CellAddr, ranges: Vec<Rect>) {
        if let Some(old) = self.reads.remove(&cell) {
            for r in &old {
                self.index.remove(cell, r);
            }
        }
        for r in &ranges {
            self.index.insert(cell, r);
        }
        self.reads.insert(cell, ranges);
    }

    /// Remove a formula cell.
    pub fn remove(&mut self, cell: CellAddr) {
        if let Some(old) = self.reads.remove(&cell) {
            for r in &old {
                self.index.remove(cell, r);
            }
        }
    }

    pub fn formula_count(&self) -> usize {
        self.reads.len()
    }

    pub fn is_formula(&self, cell: CellAddr) -> bool {
        self.reads.contains_key(&cell)
    }

    pub fn ranges_of(&self, cell: CellAddr) -> Option<&[Rect]> {
        self.reads.get(&cell).map(Vec::as_slice)
    }

    pub fn formulas(&self) -> impl Iterator<Item = (CellAddr, &[Rect])> {
        self.reads.iter().map(|(a, r)| (*a, r.as_slice()))
    }

    /// Formula cells that directly read `cell`, sorted (deduplicated):
    /// probe the spatial index for candidates, then confirm containment
    /// against the exact range lists. O(candidates), not O(formulas).
    pub fn dependents_of(&self, cell: CellAddr) -> Vec<CellAddr> {
        let mut cands = Vec::new();
        self.index.candidates_into(cell, &mut cands);
        cands.sort_unstable();
        cands.dedup();
        cands.retain(|f| {
            self.reads
                .get(f)
                .is_some_and(|ranges| ranges.iter().any(|r| r.contains(cell)))
        });
        cands
    }

    /// All formulas transitively affected by updates to `seeds`, in a valid
    /// recomputation order; cycle participants are reported separately.
    ///
    /// Both phases are index-driven: the BFS probes the spatial index per
    /// affected cell, and the topological edges come from the same probes
    /// (every formula reading cell `u` is by construction already in the
    /// affected closure), so plan construction is O(affected × candidates)
    /// instead of the all-pairs O(affected²) rect test.
    fn affected_subgraph(&self, seeds: &[CellAddr]) -> AffectedSubgraph {
        // Each cell's dependents are needed twice (BFS discovery, then
        // edge construction below) — probe the index once per cell.
        let mut memo: HashMap<CellAddr, Vec<CellAddr>> = HashMap::new();
        // 1. Collect affected formulas by BFS over dependents.
        let mut affected: HashSet<CellAddr> = HashSet::new();
        let mut queue: VecDeque<CellAddr> = VecDeque::new();
        for &seed in seeds {
            // A seed that is itself a formula needs recomputation too.
            if self.is_formula(seed) && affected.insert(seed) {
                queue.push_back(seed);
            }
            let deps = memo.entry(seed).or_insert_with(|| self.dependents_of(seed));
            for &dep in deps.iter() {
                if affected.insert(dep) {
                    queue.push_back(dep);
                }
            }
        }
        while let Some(cell) = queue.pop_front() {
            let deps = memo.entry(cell).or_insert_with(|| self.dependents_of(cell));
            for &dep in deps.iter() {
                if affected.insert(dep) {
                    queue.push_back(dep);
                }
            }
        }
        // 2. Edges of the affected subgraph: u→v when v reads u (v must
        //    evaluate after u). Every node was probed during the BFS, so
        //    this phase is pure memo lookups.
        let nodes: Vec<CellAddr> = affected.iter().copied().collect();
        let mut indeg: HashMap<CellAddr, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        let mut edges: HashMap<CellAddr, Vec<CellAddr>> = HashMap::new();
        for &u in &nodes {
            let deps = memo.entry(u).or_insert_with(|| self.dependents_of(u));
            for &v in deps.iter() {
                if v == u {
                    // A formula reading its own cell is an immediate cycle:
                    // a permanent in-degree bump keeps it (and its
                    // dependents) out of the topological order.
                    *indeg.get_mut(&u).expect("node present") += 1;
                } else if affected.contains(&v) {
                    edges.entry(u).or_default().push(v);
                    *indeg.get_mut(&v).expect("node present") += 1;
                }
            }
        }
        AffectedSubgraph {
            nodes,
            indeg,
            edges,
        }
    }

    pub fn recompute_plan(&self, seeds: &[CellAddr]) -> RecomputePlan {
        let AffectedSubgraph {
            nodes,
            mut indeg,
            edges,
        } = self.affected_subgraph(seeds);
        // Kahn's algorithm with sorted tie-breaking over the subgraph.
        let mut ready: Vec<CellAddr> = nodes.iter().copied().filter(|n| indeg[n] == 0).collect();
        // Deterministic order helps tests and users.
        ready.sort();
        let mut order = Vec::with_capacity(nodes.len());
        let mut queue: VecDeque<CellAddr> = ready.into();
        while let Some(u) = queue.pop_front() {
            order.push(u);
            if let Some(vs) = edges.get(&u) {
                let mut unlocked: Vec<CellAddr> = Vec::new();
                for &v in vs {
                    let d = indeg.get_mut(&v).expect("node present");
                    *d -= 1;
                    if *d == 0 {
                        unlocked.push(v);
                    }
                }
                unlocked.sort();
                queue.extend(unlocked);
            }
        }
        let mut cyclic: Vec<CellAddr> = nodes.into_iter().filter(|n| indeg[n] > 0).collect();
        cyclic.sort();
        RecomputePlan { order, cyclic }
    }

    /// The same affected set as [`DependencyGraph::recompute_plan`], grouped
    /// into dependency-depth waves (level-synchronous Kahn): a formula lands
    /// in the first wave after every in-subgraph formula it reads. Members
    /// of one wave never read each other, so the engine evaluates a wave's
    /// cells concurrently and writes the results back in wave order —
    /// producing the same values as the sequential plan.
    pub fn recompute_waves(&self, seeds: &[CellAddr]) -> WavePlan {
        let AffectedSubgraph {
            nodes,
            indeg,
            edges,
        } = self.affected_subgraph(seeds);
        Self::waves_from(nodes, indeg, edges)
    }

    /// The wave plan covering *every* registered formula — the bulk
    /// `recompute_all` path. Produces exactly the plan that
    /// [`DependencyGraph::recompute_waves`] seeded with every formula cell
    /// would, but skips the discovery BFS (the affected set is the whole
    /// graph by definition) and builds the edges straight from the read
    /// ranges with a column-sorted containment query over the formula
    /// addresses, instead of one spatial-index probe per cell. On dense
    /// fill-down sheets — many same-column ranges crowding the same index
    /// buckets — that turns plan construction from the dominant cascade
    /// cost into noise.
    pub fn full_waves(&self) -> WavePlan {
        // Formula addresses grouped by column, rows sorted: "which formula
        // cells does this rect cover" becomes a binary search per column.
        let mut by_col: HashMap<u32, Vec<u32>> = HashMap::new();
        for a in self.reads.keys() {
            by_col.entry(a.col).or_default().push(a.row);
        }
        for rows in by_col.values_mut() {
            rows.sort_unstable();
        }
        let rows_in = |rows: &[u32], col: u32, r: &Rect, out: &mut Vec<CellAddr>| {
            let lo = rows.partition_point(|&row| row < r.r1);
            let hi = rows.partition_point(|&row| row <= r.r2);
            out.extend(rows[lo..hi].iter().map(|&row| CellAddr::new(row, col)));
        };
        let nodes: Vec<CellAddr> = self.reads.keys().copied().collect();
        let mut indeg: HashMap<CellAddr, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        let mut edges: HashMap<CellAddr, Vec<CellAddr>> = HashMap::new();
        let mut sources: Vec<CellAddr> = Vec::new();
        for (&v, ranges) in &self.reads {
            sources.clear();
            for r in ranges {
                // Enumerate the formula cells inside `r`, walking whichever
                // axis set is smaller: the rect's columns or the columns
                // that actually hold formulas (a whole-row rect spans 2³²
                // columns; the sheet holds formulas in a handful).
                if r.cols() >= by_col.len() as u64 {
                    for (&c, rows) in &by_col {
                        if c >= r.c1 && c <= r.c2 {
                            rows_in(rows, c, r, &mut sources);
                        }
                    }
                } else {
                    for c in r.c1..=r.c2 {
                        if let Some(rows) = by_col.get(&c) {
                            rows_in(rows, c, r, &mut sources);
                        }
                    }
                }
            }
            // One edge per (source, reader) pair no matter how many of the
            // reader's ranges cover the source — mirrors the deduplication
            // `dependents_of` performs on the probe path.
            sources.sort_unstable();
            sources.dedup();
            for &u in &sources {
                let d = indeg.get_mut(&v).expect("node present");
                *d += 1;
                if u == v {
                    // Self-reference: an immediate cycle — the permanent
                    // in-degree bump keeps `v` out of every wave.
                    continue;
                }
                edges.entry(u).or_default().push(v);
            }
        }
        Self::waves_from(nodes, indeg, edges)
    }

    /// Level-synchronous Kahn over a prepared subgraph: shared tail of
    /// [`DependencyGraph::recompute_waves`] and
    /// [`DependencyGraph::full_waves`].
    fn waves_from(
        nodes: Vec<CellAddr>,
        mut indeg: HashMap<CellAddr, usize>,
        edges: HashMap<CellAddr, Vec<CellAddr>>,
    ) -> WavePlan {
        let mut frontier: Vec<CellAddr> = nodes.iter().copied().filter(|n| indeg[n] == 0).collect();
        frontier.sort_unstable();
        let mut waves: Vec<Vec<CellAddr>> = Vec::new();
        while !frontier.is_empty() {
            let mut next: Vec<CellAddr> = Vec::new();
            for &u in &frontier {
                if let Some(vs) = edges.get(&u) {
                    for &v in vs {
                        let d = indeg.get_mut(&v).expect("node present");
                        *d -= 1;
                        if *d == 0 {
                            next.push(v);
                        }
                    }
                }
            }
            next.sort_unstable();
            waves.push(frontier);
            frontier = next;
        }
        let mut cyclic: Vec<CellAddr> = nodes.into_iter().filter(|n| indeg[n] > 0).collect();
        cyclic.sort();
        WavePlan { waves, cyclic }
    }
}

/// The pre-index scan implementation: `dependents_of` walks every
/// registered formula and `recompute_plan` tests all affected pairs.
///
/// Kept as the reference oracle — the differential suite in
/// `tests/deps_oracle.rs` checks [`DependencyGraph`] against it on random
/// formula sets and edits, and `exp_hotpath` measures the speedup of the
/// indexed graph over it.
#[derive(Debug, Default, Clone)]
pub struct ScanDependencyGraph {
    reads: HashMap<CellAddr, Vec<Rect>>,
}

impl ScanDependencyGraph {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set_formula(&mut self, cell: CellAddr, ranges: Vec<Rect>) {
        self.reads.insert(cell, ranges);
    }

    pub fn remove(&mut self, cell: CellAddr) {
        self.reads.remove(&cell);
    }

    pub fn is_formula(&self, cell: CellAddr) -> bool {
        self.reads.contains_key(&cell)
    }

    /// Formula cells that directly read `cell`, sorted (the scan visits
    /// every formula; sorting matches [`DependencyGraph::dependents_of`]).
    pub fn dependents_of(&self, cell: CellAddr) -> Vec<CellAddr> {
        let mut out: Vec<CellAddr> = self
            .reads
            .iter()
            .filter(|(_, ranges)| ranges.iter().any(|r| r.contains(cell)))
            .map(|(a, _)| *a)
            .collect();
        out.sort_unstable();
        out
    }

    fn reads_rect(&self, f: CellAddr, rect: &Rect) -> bool {
        self.reads
            .get(&f)
            .is_some_and(|ranges| ranges.iter().any(|r| r.intersects(rect)))
    }

    pub fn recompute_plan(&self, seeds: &[CellAddr]) -> RecomputePlan {
        let mut affected: HashSet<CellAddr> = HashSet::new();
        let mut queue: VecDeque<CellAddr> = VecDeque::new();
        for &seed in seeds {
            if self.is_formula(seed) && affected.insert(seed) {
                queue.push_back(seed);
            }
            for dep in self.dependents_of(seed) {
                if affected.insert(dep) {
                    queue.push_back(dep);
                }
            }
        }
        while let Some(cell) = queue.pop_front() {
            for dep in self.dependents_of(cell) {
                if affected.insert(dep) {
                    queue.push_back(dep);
                }
            }
        }
        let nodes: Vec<CellAddr> = affected.iter().copied().collect();
        let mut indeg: HashMap<CellAddr, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        let mut edges: HashMap<CellAddr, Vec<CellAddr>> = HashMap::new();
        for &u in &nodes {
            let cell_rect = Rect::cell(u);
            if self.reads_rect(u, &cell_rect) {
                *indeg.get_mut(&u).expect("node present") += 1;
            }
            for &v in &nodes {
                if u != v && self.reads_rect(v, &cell_rect) {
                    edges.entry(u).or_default().push(v);
                    *indeg.get_mut(&v).expect("node present") += 1;
                }
            }
        }
        let mut ready: Vec<CellAddr> = nodes.iter().copied().filter(|n| indeg[n] == 0).collect();
        ready.sort();
        let mut order = Vec::with_capacity(nodes.len());
        let mut queue: VecDeque<CellAddr> = ready.into();
        while let Some(u) = queue.pop_front() {
            order.push(u);
            if let Some(vs) = edges.get(&u) {
                let mut unlocked: Vec<CellAddr> = Vec::new();
                for &v in vs {
                    let d = indeg.get_mut(&v).expect("node present");
                    *d -= 1;
                    if *d == 0 {
                        unlocked.push(v);
                    }
                }
                unlocked.sort();
                queue.extend(unlocked);
            }
        }
        let mut cyclic: Vec<CellAddr> = nodes.into_iter().filter(|n| indeg[n] > 0).collect();
        cyclic.sort();
        RecomputePlan { order, cyclic }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn graphs_are_send_for_per_sheet_sharding() {
        fn assert_send<T: Send>() {}
        assert_send::<super::DependencyGraph>();
        assert_send::<super::ScanDependencyGraph>();
    }

    use super::*;

    fn a(s: &str) -> CellAddr {
        CellAddr::parse_a1(s).unwrap()
    }

    fn r(s: &str) -> Rect {
        Rect::parse_a1(s).unwrap()
    }

    #[test]
    fn dependents_by_range_containment() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("C1"), vec![r("A1:A10")]);
        g.set_formula(a("D1"), vec![r("C1")]);
        assert_eq!(g.dependents_of(a("A5")), vec![a("C1")]);
        assert!(g.dependents_of(a("B1")).is_empty());
        assert_eq!(g.dependents_of(a("C1")), vec![a("D1")]);
    }

    #[test]
    fn recompute_order_is_topological() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("B1"), vec![r("A1")]);
        g.set_formula(a("C1"), vec![r("B1")]);
        g.set_formula(a("D1"), vec![r("B1"), r("C1")]);
        let plan = g.recompute_plan(&[a("A1")]);
        assert!(plan.cyclic.is_empty());
        assert_eq!(plan.order, vec![a("B1"), a("C1"), a("D1")]);
    }

    #[test]
    fn unrelated_formulas_not_recomputed() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("B1"), vec![r("A1")]);
        g.set_formula(a("Z9"), vec![r("Y1:Y5")]);
        let plan = g.recompute_plan(&[a("A1")]);
        assert_eq!(plan.order, vec![a("B1")]);
    }

    #[test]
    fn cycles_are_detected() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("A1"), vec![r("B1")]);
        g.set_formula(a("B1"), vec![r("A1")]);
        g.set_formula(a("C1"), vec![r("B1")]);
        let plan = g.recompute_plan(&[a("A1")]);
        // C1 depends on the cycle; it stays blocked (reported cyclic) since
        // its input never settles.
        assert_eq!(plan.cyclic, vec![a("A1"), a("B1"), a("C1")]);
        assert!(plan.order.is_empty());
    }

    #[test]
    fn self_reference_is_cyclic() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("A1"), vec![r("A1:B2")]);
        let plan = g.recompute_plan(&[a("B2")]);
        assert_eq!(plan.cyclic, vec![a("A1")]);
    }

    #[test]
    fn seed_formula_recomputes_itself() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("B1"), vec![r("A1")]);
        let plan = g.recompute_plan(&[a("B1")]);
        assert_eq!(plan.order, vec![a("B1")]);
    }

    #[test]
    fn remove_drops_dependencies() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("B1"), vec![r("A1")]);
        g.remove(a("B1"));
        assert!(g.dependents_of(a("A1")).is_empty());
        assert_eq!(g.formula_count(), 0);
    }

    #[test]
    fn replacing_ranges_unregisters_old_placements() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("B1"), vec![r("A1:A10")]);
        g.set_formula(a("B1"), vec![r("C1:C10")]);
        assert!(g.dependents_of(a("A5")).is_empty(), "old range forgotten");
        assert_eq!(g.dependents_of(a("C5")), vec![a("B1")]);
    }

    #[test]
    fn huge_ranges_index_at_coarse_levels() {
        let mut g = DependencyGraph::new();
        // A whole-column read spans ~2^20 rows: placed at a coarse level,
        // it must still be found from any stabbed cell.
        g.set_formula(a("B1"), vec![Rect::new(0, 0, 1_000_000, 0)]);
        g.set_formula(a("C1"), vec![Rect::new(5, 2, 5, 2)]);
        assert_eq!(g.dependents_of(CellAddr::new(999_999, 0)), vec![a("B1")]);
        assert_eq!(g.dependents_of(CellAddr::new(5, 2)), vec![a("C1")]);
        assert!(g.dependents_of(CellAddr::new(999_999, 1)).is_empty());
    }

    #[test]
    fn duplicate_ranges_survive_one_removal_cycle() {
        let mut g = DependencyGraph::new();
        // The same rect twice: two placements, both removed on re-register.
        g.set_formula(a("B1"), vec![r("A1:A4"), r("A1:A4")]);
        assert_eq!(g.dependents_of(a("A2")), vec![a("B1")]);
        g.remove(a("B1"));
        assert!(g.dependents_of(a("A2")).is_empty());
    }

    #[test]
    fn waves_group_by_dependency_depth() {
        let mut g = DependencyGraph::new();
        // Diamond: B1 and C1 read A1; D1 reads both.
        g.set_formula(a("B1"), vec![r("A1")]);
        g.set_formula(a("C1"), vec![r("A1")]);
        g.set_formula(a("D1"), vec![r("B1"), r("C1")]);
        let plan = g.recompute_waves(&[a("A1")]);
        assert_eq!(plan.waves, vec![vec![a("B1"), a("C1")], vec![a("D1")]]);
        assert!(plan.cyclic.is_empty());
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn chain_yields_single_cell_waves() {
        let mut g = DependencyGraph::new();
        for row in 1..6u32 {
            g.set_formula(
                CellAddr::new(row, 0),
                vec![Rect::cell(CellAddr::new(row - 1, 0))],
            );
        }
        let plan = g.recompute_waves(&[CellAddr::new(0, 0)]);
        assert_eq!(plan.waves.len(), 5);
        assert!(plan.waves.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn waves_match_plan_set_and_cycles() {
        let mut g = DependencyGraph::new();
        g.set_formula(a("B1"), vec![r("A1:A4")]);
        g.set_formula(a("C1"), vec![r("B1")]);
        g.set_formula(a("D1"), vec![r("B1"), r("C1")]);
        // An independent cycle touched by the same seed.
        g.set_formula(a("A2"), vec![r("A3")]);
        g.set_formula(a("A3"), vec![r("A2"), r("A1")]);
        let plan = g.recompute_plan(&[a("A1")]);
        let waves = g.recompute_waves(&[a("A1")]);
        let mut flat: Vec<CellAddr> = waves.waves.iter().flatten().copied().collect();
        flat.sort();
        let mut order = plan.order.clone();
        order.sort();
        assert_eq!(flat, order, "waves must cover exactly the plan set");
        assert_eq!(waves.cyclic, plan.cyclic);
        // Every edge crosses strictly forward in wave index.
        let wave_of: HashMap<CellAddr, usize> = waves
            .waves
            .iter()
            .enumerate()
            .flat_map(|(i, w)| w.iter().map(move |&c| (c, i)))
            .collect();
        for (&u, &wu) in &wave_of {
            for v in g.dependents_of(u) {
                if let Some(&wv) = wave_of.get(&v) {
                    assert!(wv > wu, "{v} reads {u} but is in wave {wv} <= {wu}");
                }
            }
        }
    }

    #[test]
    fn full_waves_match_all_seed_recompute_waves() {
        // Fill-down band, a point-ref column, a chain, a 2-cycle, a
        // self-reference, a whole-row rect, and an overlapping-range
        // formula (two ranges covering the same source must still yield
        // one edge) — full_waves must reproduce recompute_waves exactly.
        let mut g = DependencyGraph::new();
        for row in 4..40u32 {
            g.set_formula(CellAddr::new(row, 1), vec![Rect::new(row - 4, 0, row, 0)]);
            g.set_formula(
                CellAddr::new(row, 2),
                vec![Rect::cell(CellAddr::new(row, 1))],
            );
        }
        for row in 1..20u32 {
            g.set_formula(
                CellAddr::new(row, 3),
                vec![Rect::cell(CellAddr::new(row - 1, 3))],
            );
        }
        g.set_formula(a("F1"), vec![r("G1")]);
        g.set_formula(a("G1"), vec![r("F1")]);
        g.set_formula(a("H1"), vec![r("H1")]);
        g.set_formula(a("I1"), vec![Rect::new(5, 0, 5, u32::MAX - 1)]);
        g.set_formula(a("J1"), vec![r("B5:B20"), r("B10:C15")]);
        let seeds: Vec<CellAddr> = g.reads.keys().copied().collect();
        assert_eq!(g.full_waves(), g.recompute_waves(&seeds));
        assert_eq!(
            g.full_waves().len() + g.full_waves().cyclic.len(),
            g.formula_count()
        );
    }

    #[test]
    fn empty_seed_set_yields_empty_waves() {
        let g = DependencyGraph::new();
        let plan = g.recompute_waves(&[a("A1")]);
        assert!(plan.is_empty());
        assert!(plan.cyclic.is_empty());
    }

    #[test]
    fn level_selection_bounds_bucket_count() {
        for rect in [
            Rect::new(0, 0, 0, 0),
            Rect::new(0, 0, 31, 31),
            Rect::new(7, 9, 70, 40),
            Rect::new(0, 0, u32::MAX - 1, 0),
            Rect::new(0, 0, u32::MAX - 1, u32::MAX - 1),
            Rect::new(1000, 1000, 1031, 1000),
        ] {
            let (level, buckets) = placements(&rect);
            let n = buckets.count();
            assert!(n <= 4, "{rect:?} at level {level} occupies {n} buckets");
        }
    }
}
