//! Formula parse errors.

use std::fmt;

/// Errors produced while lexing/parsing a formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub message: String,
}

impl ParseError {
    pub fn new(pos: usize, message: impl Into<String>) -> Self {
        ParseError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}
