//! Formula evaluation.
//!
//! The evaluator reads cell values through a [`CellReader`] — in the full
//! engine this is an LRU cell cache in front of the hybrid translator
//! (paper §VI) — and implements 30+ spreadsheet functions covering the
//! categories the corpus study found common (Figure 5): arithmetic,
//! aggregation over ranges (SUM/AVERAGE/…), conditionals (IF/ISBLANK), text
//! functions (SEARCH/…), and lookups (VLOOKUP — the paper's stand-in for
//! joins).

use dataspread_grid::{CellAddr, CellValue, Rect, SparseSheet};

use crate::ast::{BinOp, Expr, UnOp};
use dataspread_grid::value::CellError;

/// Precomputed aggregates over a range, supplied by a storage fast path
/// (the engine's columnar regions fold these straight off compressed
/// column runs without materializing cells).
///
/// Semantics mirror the evaluator's sparse range walk exactly: values are
/// visited in row-major order, `error` is the *first* error encountered
/// (and the counts/sum cover only the prefix before it — callers must
/// return the error), `sum`/`numbers` cover `Number` values only, and
/// `nonempty` counts every non-empty value.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RangeAgg {
    /// Sum of `Number` values, folded in row-major visit order.
    pub sum: f64,
    /// Count of `Number` values.
    pub numbers: u64,
    /// Count of non-empty values (COUNTA).
    pub nonempty: u64,
    /// First error value in the range, if any.
    pub error: Option<CellError>,
}

/// Read access to cell values, by single cell or (sparsely) by range.
pub trait CellReader {
    fn value(&self, addr: CellAddr) -> CellValue;

    /// Non-empty values inside `rect`, row-major. The default loops over
    /// every position; storage-backed readers override with a range scan.
    fn range_values(&self, rect: Rect) -> Vec<(CellAddr, CellValue)> {
        rect.iter()
            .filter_map(|a| {
                let v = self.value(a);
                if v.is_empty() {
                    None
                } else {
                    Some((a, v))
                }
            })
            .collect()
    }

    /// Optional aggregate fast path: `Some` when the storage layer can
    /// fold SUM/COUNT/COUNTA/AVERAGE over `rect` without materializing
    /// values (must match [`RangeAgg`]'s documented semantics exactly).
    /// The default — and any reader whose storage cannot prove the whole
    /// rect is covered — returns `None`, falling back to the sparse walk.
    fn range_agg(&self, _rect: Rect) -> Option<RangeAgg> {
        None
    }
}

/// A reader over an empty sheet (formulas of constants only).
#[derive(Debug, Default, Clone, Copy)]
pub struct EmptyReader;

impl CellReader for EmptyReader {
    fn value(&self, _addr: CellAddr) -> CellValue {
        CellValue::Empty
    }
}

/// Reader over an in-memory [`SparseSheet`].
pub struct SheetReader<'a>(pub &'a SparseSheet);

impl CellReader for SheetReader<'_> {
    fn value(&self, addr: CellAddr) -> CellValue {
        self.0.value(addr)
    }

    fn range_values(&self, rect: Rect) -> Vec<(CellAddr, CellValue)> {
        self.0
            .iter_rect(rect)
            .map(|(a, c)| (a, c.value.clone()))
            .collect()
    }
}

/// Intermediate evaluation value: a scalar or an unmaterialized range.
#[derive(Debug, Clone)]
enum Val {
    Scalar(CellValue),
    Range(Rect),
}

impl Val {
    /// Collapse to a scalar: 1×1 ranges dereference, larger ranges error.
    fn scalar(self, reader: &dyn CellReader) -> CellValue {
        match self {
            Val::Scalar(v) => v,
            Val::Range(r) if r.area() == 1 => reader.value(r.top_left()),
            Val::Range(_) => CellValue::Error(CellError::Value),
        }
    }
}

/// The formula evaluator.
#[derive(Debug, Default, Clone, Copy)]
pub struct Evaluator;

impl Evaluator {
    pub fn new() -> Self {
        Evaluator
    }

    /// Evaluate `expr` against `reader`.
    pub fn eval(&self, expr: &Expr, reader: &dyn CellReader) -> CellValue {
        self.eval_val(expr, reader).scalar(reader)
    }

    fn eval_val(&self, expr: &Expr, reader: &dyn CellReader) -> Val {
        match expr {
            Expr::Number(n) => Val::Scalar(CellValue::Number(*n)),
            Expr::Text(s) => Val::Scalar(CellValue::Text(s.clone())),
            Expr::Bool(b) => Val::Scalar(CellValue::Bool(*b)),
            Expr::Ref(r) => Val::Range(Rect::cell(r.addr())),
            Expr::Range(a, b) => Val::Range(Rect::new(a.row, a.col, b.row, b.col)),
            Expr::Unary(op, e) => {
                let v = self.eval(e, reader);
                if let CellValue::Error(_) = v {
                    return Val::Scalar(v);
                }
                match (op, v.as_number()) {
                    (UnOp::Neg, Some(n)) => Val::Scalar(CellValue::Number(-n)),
                    (UnOp::Plus, Some(n)) => Val::Scalar(CellValue::Number(n)),
                    _ => Val::Scalar(CellValue::Error(CellError::Value)),
                }
            }
            Expr::Percent(e) => {
                let v = self.eval(e, reader);
                if let CellValue::Error(_) = v {
                    return Val::Scalar(v);
                }
                match v.as_number() {
                    Some(n) => Val::Scalar(CellValue::Number(n / 100.0)),
                    None => Val::Scalar(CellValue::Error(CellError::Value)),
                }
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a, reader);
                let vb = self.eval(b, reader);
                Val::Scalar(binary(*op, va, vb))
            }
            Expr::Func(name, args) => Val::Scalar(self.call(name, args, reader)),
        }
    }

    /// Evaluate a function call.
    fn call(&self, name: &str, args: &[Expr], reader: &dyn CellReader) -> CellValue {
        if let Some(v) = self.agg_fast_path(name, args, reader) {
            return v;
        }
        let ctx = Ctx {
            eval: self,
            reader,
            args,
        };
        match name {
            "SUM" => ctx.fold_numbers(0.0, |acc, n| acc + n),
            "PRODUCT" => ctx.fold_numbers(1.0, |acc, n| acc * n),
            "COUNT" => ctx.count(|v| matches!(v, CellValue::Number(_))),
            "COUNTA" => ctx.count(|v| !v.is_empty()),
            "AVERAGE" => ctx.average(),
            "MIN" => ctx.min_max(true),
            "MAX" => ctx.min_max(false),
            "MEDIAN" => ctx.median(),
            "IF" => ctx.r#if(),
            "AND" => ctx.and_or(true),
            "OR" => ctx.and_or(false),
            "NOT" => ctx.not(),
            "ISBLANK" => ctx.is_pred(|v| v.is_empty()),
            "ISNUMBER" => ctx.is_pred(|v| matches!(v, CellValue::Number(_))),
            "ISTEXT" => ctx.is_pred(|v| matches!(v, CellValue::Text(_))),
            "ISERROR" => ctx.is_pred(|v| matches!(v, CellValue::Error(_))),
            "ABS" => ctx.num1(f64::abs),
            "SQRT" => ctx.num1_checked(|n| if n < 0.0 { None } else { Some(n.sqrt()) }),
            "LN" => ctx.num1_checked(|n| if n <= 0.0 { None } else { Some(n.ln()) }),
            "LOG10" => ctx.num1_checked(|n| if n <= 0.0 { None } else { Some(n.log10()) }),
            "LOG" => ctx.log(),
            "EXP" => ctx.num1(f64::exp),
            "SIGN" => ctx.num1(f64::signum),
            "INT" => ctx.num1(f64::floor),
            "POWER" => ctx.num2(|a, b| a.powf(b)),
            "MOD" => ctx.modulo(),
            "ROUND" => ctx.round(),
            "FLOOR" => ctx.floor_ceil(true),
            "CEILING" => ctx.floor_ceil(false),
            "LEN" => ctx.text1(|s| CellValue::Number(s.chars().count() as f64)),
            "UPPER" => ctx.text1(|s| CellValue::Text(s.to_uppercase())),
            "LOWER" => ctx.text1(|s| CellValue::Text(s.to_lowercase())),
            "TRIM" => ctx.text1(|s| CellValue::Text(s.trim().to_string())),
            "CONCATENATE" | "CONCAT" => ctx.concatenate(),
            "LEFT" => ctx.left_right(true),
            "RIGHT" => ctx.left_right(false),
            "MID" => ctx.mid(),
            "SEARCH" => ctx.search(),
            "VLOOKUP" => ctx.vlookup(),
            "HLOOKUP" => ctx.hlookup(),
            "INDEX" => ctx.index(),
            "MATCH" => ctx.r#match(),
            "SUMIF" => ctx.sumif(),
            "COUNTIF" => ctx.countif(),
            "TRUE" => CellValue::Bool(true),
            "FALSE" => CellValue::Bool(false),
            _ => CellValue::Error(CellError::Name),
        }
    }

    /// Single-range SUM/COUNT/COUNTA/AVERAGE through the reader's
    /// [`CellReader::range_agg`] fast path. `None` (no fast path, or an
    /// argument shape the aggregate cannot express) falls through to the
    /// sparse range walk.
    fn agg_fast_path(
        &self,
        name: &str,
        args: &[Expr],
        reader: &dyn CellReader,
    ) -> Option<CellValue> {
        if !matches!(name, "SUM" | "COUNT" | "COUNTA" | "AVERAGE") {
            return None;
        }
        let [Expr::Range(a, b)] = args else {
            return None;
        };
        let agg = reader.range_agg(Rect::new(a.row, a.col, b.row, b.col))?;
        if let Some(e) = agg.error {
            return Some(CellValue::Error(e));
        }
        Some(match name {
            "SUM" => CellValue::Number(agg.sum),
            "COUNT" => CellValue::Number(agg.numbers as f64),
            "COUNTA" => CellValue::Number(agg.nonempty as f64),
            _ => {
                if agg.numbers == 0 {
                    CellValue::Error(CellError::Div0)
                } else {
                    CellValue::Number(agg.sum / agg.numbers as f64)
                }
            }
        })
    }
}

fn binary(op: BinOp, a: CellValue, b: CellValue) -> CellValue {
    if let CellValue::Error(e) = a {
        return CellValue::Error(e);
    }
    if let CellValue::Error(e) = b {
        return CellValue::Error(e);
    }
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Pow => {
            let (Some(x), Some(y)) = (a.as_number(), b.as_number()) else {
                return CellValue::Error(CellError::Value);
            };
            let n = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => {
                    if y == 0.0 {
                        return CellValue::Error(CellError::Div0);
                    }
                    x / y
                }
                BinOp::Pow => x.powf(y),
                _ => unreachable!(),
            };
            if n.is_nan() || n.is_infinite() {
                CellValue::Error(CellError::Num)
            } else {
                CellValue::Number(n)
            }
        }
        BinOp::Concat => CellValue::Text(format!("{}{}", a.as_text(), b.as_text())),
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = compare(&a, &b);
            let res = match op {
                BinOp::Eq => ord == std::cmp::Ordering::Equal,
                BinOp::Ne => ord != std::cmp::Ordering::Equal,
                BinOp::Lt => ord == std::cmp::Ordering::Less,
                BinOp::Le => ord != std::cmp::Ordering::Greater,
                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                BinOp::Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!("outer match restricts to comparisons"),
            };
            CellValue::Bool(res)
        }
    }
}

/// Spreadsheet comparison: numbers by value, text case-insensitively,
/// mixed types by kind (number < text < bool), blanks as 0/"".
fn compare(a: &CellValue, b: &CellValue) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn kind(v: &CellValue) -> u8 {
        match v {
            CellValue::Empty | CellValue::Number(_) => 0,
            CellValue::Text(_) => 1,
            CellValue::Bool(_) => 2,
            CellValue::Error(_) => 3,
        }
    }
    match (a, b) {
        (CellValue::Text(x), CellValue::Text(y)) => x.to_lowercase().cmp(&y.to_lowercase()),
        (CellValue::Text(x), CellValue::Empty) => x.to_lowercase().cmp(&String::new()),
        (CellValue::Empty, CellValue::Text(y)) => String::new().cmp(&y.to_lowercase()),
        (CellValue::Bool(x), CellValue::Bool(y)) => x.cmp(y),
        _ if kind(a) == kind(b) => {
            let x = a.as_number().unwrap_or(0.0);
            let y = b.as_number().unwrap_or(0.0);
            x.partial_cmp(&y).unwrap_or(Ordering::Equal)
        }
        _ => kind(a).cmp(&kind(b)),
    }
}

/// Per-call context bundling evaluator, reader and argument list.
struct Ctx<'a> {
    eval: &'a Evaluator,
    reader: &'a dyn CellReader,
    args: &'a [Expr],
}

impl Ctx<'_> {
    fn scalar(&self, i: usize) -> CellValue {
        match self.args.get(i) {
            Some(e) => self.eval.eval(e, self.reader),
            None => CellValue::Error(CellError::Value),
        }
    }

    fn number(&self, i: usize) -> Result<f64, CellValue> {
        let v = self.scalar(i);
        if let CellValue::Error(_) = v {
            return Err(v);
        }
        v.as_number().ok_or(CellValue::Error(CellError::Value))
    }

    fn text(&self, i: usize) -> Result<String, CellValue> {
        let v = self.scalar(i);
        if let CellValue::Error(_) = v {
            return Err(v);
        }
        Ok(v.as_text())
    }

    /// Visit every value in the argument list, expanding ranges sparsely.
    fn for_each_value(&self, mut f: impl FnMut(CellValue)) -> Option<CellValue> {
        for arg in self.args {
            match self.eval.eval_val(arg, self.reader) {
                Val::Range(r) => {
                    for (_, v) in self.reader.range_values(r) {
                        if let CellValue::Error(e) = v {
                            return Some(CellValue::Error(e));
                        }
                        f(v);
                    }
                }
                Val::Scalar(v) => {
                    if let CellValue::Error(e) = v {
                        return Some(CellValue::Error(e));
                    }
                    f(v);
                }
            }
        }
        None
    }

    fn fold_numbers(&self, init: f64, f: impl Fn(f64, f64) -> f64) -> CellValue {
        let mut acc = init;
        if let Some(err) = self.for_each_value(|v| {
            if let CellValue::Number(n) = v {
                acc = f(acc, n);
            }
        }) {
            return err;
        }
        CellValue::Number(acc)
    }

    fn count(&self, pred: impl Fn(&CellValue) -> bool) -> CellValue {
        let mut n = 0u64;
        if let Some(err) = self.for_each_value(|v| {
            if pred(&v) {
                n += 1;
            }
        }) {
            return err;
        }
        CellValue::Number(n as f64)
    }

    fn average(&self) -> CellValue {
        let mut sum = 0.0;
        let mut n = 0u64;
        if let Some(err) = self.for_each_value(|v| {
            if let CellValue::Number(x) = v {
                sum += x;
                n += 1;
            }
        }) {
            return err;
        }
        if n == 0 {
            CellValue::Error(CellError::Div0)
        } else {
            CellValue::Number(sum / n as f64)
        }
    }

    fn min_max(&self, min: bool) -> CellValue {
        let mut best: Option<f64> = None;
        if let Some(err) = self.for_each_value(|v| {
            if let CellValue::Number(x) = v {
                best = Some(match best {
                    None => x,
                    Some(b) => {
                        if min {
                            b.min(x)
                        } else {
                            b.max(x)
                        }
                    }
                });
            }
        }) {
            return err;
        }
        CellValue::Number(best.unwrap_or(0.0))
    }

    fn median(&self) -> CellValue {
        let mut xs = Vec::new();
        if let Some(err) = self.for_each_value(|v| {
            if let CellValue::Number(x) = v {
                xs.push(x);
            }
        }) {
            return err;
        }
        if xs.is_empty() {
            return CellValue::Error(CellError::Num);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs stored"));
        let mid = xs.len() / 2;
        let m = if xs.len() % 2 == 1 {
            xs[mid]
        } else {
            (xs[mid - 1] + xs[mid]) / 2.0
        };
        CellValue::Number(m)
    }

    fn r#if(&self) -> CellValue {
        if self.args.is_empty() || self.args.len() > 3 {
            return CellValue::Error(CellError::Value);
        }
        let cond = self.scalar(0);
        if let CellValue::Error(_) = cond {
            return cond;
        }
        match cond.as_bool() {
            Some(true) => {
                if self.args.len() >= 2 {
                    self.scalar(1)
                } else {
                    CellValue::Bool(true)
                }
            }
            Some(false) => {
                if self.args.len() == 3 {
                    self.scalar(2)
                } else {
                    CellValue::Bool(false)
                }
            }
            None => CellValue::Error(CellError::Value),
        }
    }

    fn and_or(&self, is_and: bool) -> CellValue {
        let mut acc = is_and;
        let mut saw = false;
        if let Some(err) = self.for_each_value(|v| {
            if let Some(b) = v.as_bool() {
                saw = true;
                if is_and {
                    acc &= b;
                } else {
                    acc |= b;
                }
            }
        }) {
            return err;
        }
        if !saw {
            CellValue::Error(CellError::Value)
        } else {
            CellValue::Bool(acc)
        }
    }

    fn not(&self) -> CellValue {
        let v = self.scalar(0);
        if let CellValue::Error(_) = v {
            return v;
        }
        match v.as_bool() {
            Some(b) => CellValue::Bool(!b),
            None => CellValue::Error(CellError::Value),
        }
    }

    fn is_pred(&self, pred: impl Fn(&CellValue) -> bool) -> CellValue {
        // ISBLANK wants the raw cell, not a coerced scalar: a reference to
        // an empty cell must stay Empty (scalar() already preserves that).
        let v = self.scalar(0);
        CellValue::Bool(pred(&v))
    }

    fn num1(&self, f: impl Fn(f64) -> f64) -> CellValue {
        match self.number(0) {
            Ok(n) => CellValue::Number(f(n)),
            Err(e) => e,
        }
    }

    fn num1_checked(&self, f: impl Fn(f64) -> Option<f64>) -> CellValue {
        match self.number(0) {
            Ok(n) => match f(n) {
                Some(x) => CellValue::Number(x),
                None => CellValue::Error(CellError::Num),
            },
            Err(e) => e,
        }
    }

    fn num2(&self, f: impl Fn(f64, f64) -> f64) -> CellValue {
        match (self.number(0), self.number(1)) {
            (Ok(a), Ok(b)) => {
                let n = f(a, b);
                if n.is_nan() || n.is_infinite() {
                    CellValue::Error(CellError::Num)
                } else {
                    CellValue::Number(n)
                }
            }
            (Err(e), _) | (_, Err(e)) => e,
        }
    }

    fn log(&self) -> CellValue {
        let base = if self.args.len() >= 2 {
            match self.number(1) {
                Ok(b) => b,
                Err(e) => return e,
            }
        } else {
            10.0
        };
        match self.number(0) {
            Ok(n) if n > 0.0 && base > 0.0 && base != 1.0 => CellValue::Number(n.log(base)),
            Ok(_) => CellValue::Error(CellError::Num),
            Err(e) => e,
        }
    }

    fn modulo(&self) -> CellValue {
        match (self.number(0), self.number(1)) {
            (Ok(_), Ok(0.0)) => CellValue::Error(CellError::Div0),
            // Excel MOD follows the divisor's sign.
            (Ok(a), Ok(b)) => CellValue::Number(a - b * (a / b).floor()),
            (Err(e), _) | (_, Err(e)) => e,
        }
    }

    fn round(&self) -> CellValue {
        let digits = if self.args.len() >= 2 {
            match self.number(1) {
                Ok(d) => d as i32,
                Err(e) => return e,
            }
        } else {
            0
        };
        match self.number(0) {
            Ok(n) => {
                let p = 10f64.powi(digits);
                CellValue::Number((n * p).round() / p)
            }
            Err(e) => e,
        }
    }

    fn floor_ceil(&self, floor: bool) -> CellValue {
        let sig = if self.args.len() >= 2 {
            match self.number(1) {
                Ok(s) => s,
                Err(e) => return e,
            }
        } else {
            1.0
        };
        if sig == 0.0 {
            return CellValue::Error(CellError::Div0);
        }
        match self.number(0) {
            Ok(n) => {
                let q = n / sig;
                let q = if floor { q.floor() } else { q.ceil() };
                CellValue::Number(q * sig)
            }
            Err(e) => e,
        }
    }

    fn text1(&self, f: impl Fn(&str) -> CellValue) -> CellValue {
        match self.text(0) {
            Ok(s) => f(&s),
            Err(e) => e,
        }
    }

    fn concatenate(&self) -> CellValue {
        let mut out = String::new();
        if let Some(err) = self.for_each_value(|v| out.push_str(&v.as_text())) {
            return err;
        }
        CellValue::Text(out)
    }

    fn left_right(&self, left: bool) -> CellValue {
        let n = if self.args.len() >= 2 {
            match self.number(1) {
                Ok(n) if n >= 0.0 => n as usize,
                Ok(_) => return CellValue::Error(CellError::Value),
                Err(e) => return e,
            }
        } else {
            1
        };
        match self.text(0) {
            Ok(s) => {
                let chars: Vec<char> = s.chars().collect();
                let taken: String = if left {
                    chars.iter().take(n).collect()
                } else {
                    chars.iter().skip(chars.len().saturating_sub(n)).collect()
                };
                CellValue::Text(taken)
            }
            Err(e) => e,
        }
    }

    fn mid(&self) -> CellValue {
        match (self.text(0), self.number(1), self.number(2)) {
            (Ok(s), Ok(start), Ok(len)) if start >= 1.0 && len >= 0.0 => {
                let out: String = s
                    .chars()
                    .skip(start as usize - 1)
                    .take(len as usize)
                    .collect();
                CellValue::Text(out)
            }
            (Ok(_), Ok(_), Ok(_)) => CellValue::Error(CellError::Value),
            (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => e,
        }
    }

    fn search(&self) -> CellValue {
        // SEARCH(needle, haystack, [start]) — 1-based, case-insensitive.
        let start = if self.args.len() >= 3 {
            match self.number(2) {
                Ok(s) if s >= 1.0 => s as usize - 1,
                Ok(_) => return CellValue::Error(CellError::Value),
                Err(e) => return e,
            }
        } else {
            0
        };
        match (self.text(0), self.text(1)) {
            (Ok(needle), Ok(hay)) => {
                let hay_l = hay.to_lowercase();
                let needle_l = needle.to_lowercase();
                let hay_chars: Vec<char> = hay_l.chars().collect();
                if start > hay_chars.len() {
                    return CellValue::Error(CellError::Value);
                }
                let suffix: String = hay_chars[start..].iter().collect();
                match suffix.find(&needle_l) {
                    Some(byte_pos) => {
                        let char_pos = suffix[..byte_pos].chars().count();
                        CellValue::Number((start + char_pos + 1) as f64)
                    }
                    None => CellValue::Error(CellError::Value),
                }
            }
            (Err(e), _) | (_, Err(e)) => e,
        }
    }

    fn arg_rect(&self, i: usize) -> Option<Rect> {
        self.args.get(i).and_then(|e| e.as_rect())
    }

    fn vlookup(&self) -> CellValue {
        // VLOOKUP(key, range, col_index, [exact: assume TRUE means approx;
        // we implement exact match when 4th arg is FALSE or omitted]).
        let key = self.scalar(0);
        if let CellValue::Error(_) = key {
            return key;
        }
        let Some(rect) = self.arg_rect(1) else {
            return CellValue::Error(CellError::Value);
        };
        let col_index = match self.number(2) {
            Ok(n) if n >= 1.0 => n as u64,
            Ok(_) => return CellValue::Error(CellError::Value),
            Err(e) => return e,
        };
        if col_index > rect.cols() {
            return CellValue::Error(CellError::Ref);
        }
        for r in rect.r1..=rect.r2 {
            let candidate = self.reader.value(CellAddr::new(r, rect.c1));
            if compare(&candidate, &key) == std::cmp::Ordering::Equal && !candidate.is_empty() {
                return self
                    .reader
                    .value(CellAddr::new(r, rect.c1 + col_index as u32 - 1));
            }
        }
        CellValue::Error(CellError::Na)
    }

    fn hlookup(&self) -> CellValue {
        let key = self.scalar(0);
        if let CellValue::Error(_) = key {
            return key;
        }
        let Some(rect) = self.arg_rect(1) else {
            return CellValue::Error(CellError::Value);
        };
        let row_index = match self.number(2) {
            Ok(n) if n >= 1.0 => n as u64,
            Ok(_) => return CellValue::Error(CellError::Value),
            Err(e) => return e,
        };
        if row_index > rect.rows() {
            return CellValue::Error(CellError::Ref);
        }
        for c in rect.c1..=rect.c2 {
            let candidate = self.reader.value(CellAddr::new(rect.r1, c));
            if compare(&candidate, &key) == std::cmp::Ordering::Equal && !candidate.is_empty() {
                return self
                    .reader
                    .value(CellAddr::new(rect.r1 + row_index as u32 - 1, c));
            }
        }
        CellValue::Error(CellError::Na)
    }

    fn index(&self) -> CellValue {
        let Some(rect) = self.arg_rect(0) else {
            return CellValue::Error(CellError::Value);
        };
        let row = match self.number(1) {
            Ok(n) if n >= 1.0 => n as u64,
            Ok(_) => return CellValue::Error(CellError::Value),
            Err(e) => return e,
        };
        let col = if self.args.len() >= 3 {
            match self.number(2) {
                Ok(n) if n >= 1.0 => n as u64,
                Ok(_) => return CellValue::Error(CellError::Value),
                Err(e) => return e,
            }
        } else {
            1
        };
        if row > rect.rows() || col > rect.cols() {
            return CellValue::Error(CellError::Ref);
        }
        self.reader.value(CellAddr::new(
            rect.r1 + row as u32 - 1,
            rect.c1 + col as u32 - 1,
        ))
    }

    fn r#match(&self) -> CellValue {
        // MATCH(key, range, [0]) — exact match only.
        let key = self.scalar(0);
        if let CellValue::Error(_) = key {
            return key;
        }
        let Some(rect) = self.arg_rect(1) else {
            return CellValue::Error(CellError::Value);
        };
        let cells: Vec<CellAddr> = if rect.cols() == 1 {
            (rect.r1..=rect.r2)
                .map(|r| CellAddr::new(r, rect.c1))
                .collect()
        } else if rect.rows() == 1 {
            (rect.c1..=rect.c2)
                .map(|c| CellAddr::new(rect.r1, c))
                .collect()
        } else {
            return CellValue::Error(CellError::Na);
        };
        for (i, a) in cells.iter().enumerate() {
            let v = self.reader.value(*a);
            if !v.is_empty() && compare(&v, &key) == std::cmp::Ordering::Equal {
                return CellValue::Number((i + 1) as f64);
            }
        }
        CellValue::Error(CellError::Na)
    }

    fn sumif(&self) -> CellValue {
        // SUMIF(range, criteria, [sum_range]).
        let Some(rect) = self.arg_rect(0) else {
            return CellValue::Error(CellError::Value);
        };
        let crit = match self.text(1) {
            Ok(c) => c,
            Err(e) => return e,
        };
        let sum_rect = if self.args.len() >= 3 {
            match self.arg_rect(2) {
                Some(r) => r,
                None => return CellValue::Error(CellError::Value),
            }
        } else {
            rect
        };
        let pred = Criteria::parse(&crit);
        let mut total = 0.0;
        for r in 0..rect.rows() as u32 {
            for c in 0..rect.cols() as u32 {
                let v = self.reader.value(CellAddr::new(rect.r1 + r, rect.c1 + c));
                if pred.matches(&v) {
                    let sv = self
                        .reader
                        .value(CellAddr::new(sum_rect.r1 + r, sum_rect.c1 + c));
                    if let CellValue::Number(n) = sv {
                        total += n;
                    }
                }
            }
        }
        CellValue::Number(total)
    }

    fn countif(&self) -> CellValue {
        let Some(rect) = self.arg_rect(0) else {
            return CellValue::Error(CellError::Value);
        };
        let crit = match self.text(1) {
            Ok(c) => c,
            Err(e) => return e,
        };
        let pred = Criteria::parse(&crit);
        let mut n = 0u64;
        for (_, v) in self.reader.range_values(rect) {
            if pred.matches(&v) {
                n += 1;
            }
        }
        CellValue::Number(n as f64)
    }
}

/// SUMIF/COUNTIF criteria: `">5"`, `"<=3"`, `"<>x"`, `"abc"`, `"=abc"`.
struct Criteria {
    op: BinOp,
    rhs: CellValue,
}

impl Criteria {
    fn parse(s: &str) -> Criteria {
        let (op, rest) = if let Some(r) = s.strip_prefix("<>") {
            (BinOp::Ne, r)
        } else if let Some(r) = s.strip_prefix(">=") {
            (BinOp::Ge, r)
        } else if let Some(r) = s.strip_prefix("<=") {
            (BinOp::Le, r)
        } else if let Some(r) = s.strip_prefix('>') {
            (BinOp::Gt, r)
        } else if let Some(r) = s.strip_prefix('<') {
            (BinOp::Lt, r)
        } else if let Some(r) = s.strip_prefix('=') {
            (BinOp::Eq, r)
        } else {
            (BinOp::Eq, s)
        };
        let rhs = match rest.trim().parse::<f64>() {
            Ok(n) => CellValue::Number(n),
            Err(_) => CellValue::Text(rest.to_string()),
        };
        Criteria { op, rhs }
    }

    fn matches(&self, v: &CellValue) -> bool {
        if v.is_empty() {
            return false;
        }
        matches!(
            binary(self.op, v.clone(), self.rhs.clone()),
            CellValue::Bool(true)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn sheet() -> SparseSheet {
        let mut s = SparseSheet::new();
        // A1:A5 = 1..5, B1:B5 = words, C1 = TRUE
        for i in 0..5u32 {
            s.set_value(CellAddr::new(i, 0), (i + 1) as i64);
        }
        for (i, w) in ["apple", "banana", "cherry", "apple", "fig"]
            .iter()
            .enumerate()
        {
            s.set_value(CellAddr::new(i as u32, 1), *w);
        }
        s.set_value(CellAddr::new(0, 2), true);
        s
    }

    fn eval(src: &str, s: &SparseSheet) -> CellValue {
        Evaluator::new().eval(&parse(src).unwrap(), &SheetReader(s))
    }

    fn num(src: &str, s: &SparseSheet) -> f64 {
        match eval(src, s) {
            CellValue::Number(n) => n,
            v => panic!("{src} => {v:?}, expected number"),
        }
    }

    #[test]
    fn arithmetic_and_coercion() {
        let s = sheet();
        assert_eq!(num("1+2*3", &s), 7.0);
        assert_eq!(num("(1+2)*3", &s), 9.0);
        assert_eq!(num("-A1+10", &s), 9.0);
        assert_eq!(eval("A1&A2", &s), CellValue::Text("12".into()));
        assert_eq!(num("(A1&A2)+0", &s), 12.0, "numeric text coerces back");
        assert_eq!(num("50%*200", &s), 100.0);
        assert_eq!(eval("1/0", &s), CellValue::Error(CellError::Div0));
    }

    #[test]
    fn aggregates() {
        let s = sheet();
        assert_eq!(num("SUM(A1:A5)", &s), 15.0);
        assert_eq!(num("AVERAGE(A1:A5)", &s), 3.0);
        assert_eq!(num("MIN(A1:A5)", &s), 1.0);
        assert_eq!(num("MAX(A1:A5)", &s), 5.0);
        assert_eq!(num("COUNT(A1:B5)", &s), 5.0, "only numbers count");
        assert_eq!(num("COUNTA(A1:B5)", &s), 10.0);
        assert_eq!(num("MEDIAN(A1:A5)", &s), 3.0);
        assert_eq!(num("MEDIAN(A1:A4)", &s), 2.5);
        assert_eq!(num("PRODUCT(A1:A5)", &s), 120.0);
        assert_eq!(num("SUM(A1:A5,100,A1)", &s), 116.0);
        // Empty cells are skipped, not zero-counted.
        assert_eq!(num("AVERAGE(A1:A10)", &s), 3.0);
    }

    #[test]
    fn conditionals() {
        let s = sheet();
        assert_eq!(num("IF(A1>0,10,20)", &s), 10.0);
        assert_eq!(num("IF(A1>5,10,20)", &s), 20.0);
        assert_eq!(eval("IF(C1,\"y\",\"n\")", &s), CellValue::Text("y".into()));
        assert_eq!(eval("AND(A1>0,A2>1)", &s), CellValue::Bool(true));
        assert_eq!(eval("OR(A1>99,A2>99)", &s), CellValue::Bool(false));
        assert_eq!(eval("NOT(C1)", &s), CellValue::Bool(false));
        assert_eq!(eval("ISBLANK(Z99)", &s), CellValue::Bool(true));
        assert_eq!(eval("ISBLANK(A1)", &s), CellValue::Bool(false));
        assert_eq!(eval("ISNUMBER(A1)", &s), CellValue::Bool(true));
        assert_eq!(eval("ISTEXT(B1)", &s), CellValue::Bool(true));
        assert_eq!(eval("ISERROR(1/0)", &s), CellValue::Bool(true));
    }

    #[test]
    fn math_functions() {
        let s = sheet();
        assert_eq!(num("ABS(-3)", &s), 3.0);
        assert_eq!(num("SQRT(16)", &s), 4.0);
        assert_eq!(eval("SQRT(-1)", &s), CellValue::Error(CellError::Num));
        assert!((num("LN(EXP(2))", &s) - 2.0).abs() < 1e-12);
        assert_eq!(num("LOG(100)", &s), 2.0);
        assert_eq!(num("LOG(8,2)", &s), 3.0);
        assert_eq!(num("POWER(2,10)", &s), 1024.0);
        assert_eq!(num("MOD(7,3)", &s), 1.0);
        assert_eq!(num("MOD(-7,3)", &s), 2.0, "Excel MOD follows divisor sign");
        assert_eq!(num("ROUND(2.567,2)", &s), 2.57);
        assert_eq!(num("ROUND(2.5)", &s), 3.0);
        assert_eq!(num("FLOOR(7.7,2)", &s), 6.0);
        assert_eq!(num("CEILING(7.1,2)", &s), 8.0);
        assert_eq!(num("INT(-1.5)", &s), -2.0);
        assert_eq!(num("SIGN(-9)", &s), -1.0);
    }

    #[test]
    fn text_functions() {
        let s = sheet();
        assert_eq!(num("LEN(B1)", &s), 5.0);
        assert_eq!(eval("UPPER(B1)", &s), CellValue::Text("APPLE".into()));
        assert_eq!(eval("LOWER(\"ABC\")", &s), CellValue::Text("abc".into()));
        assert_eq!(eval("TRIM(\"  x  \")", &s), CellValue::Text("x".into()));
        assert_eq!(
            eval("CONCATENATE(B1,\"-\",A1)", &s),
            CellValue::Text("apple-1".into())
        );
        assert_eq!(eval("LEFT(B1,3)", &s), CellValue::Text("app".into()));
        assert_eq!(eval("RIGHT(B1,2)", &s), CellValue::Text("le".into()));
        assert_eq!(eval("MID(B1,2,3)", &s), CellValue::Text("ppl".into()));
        assert_eq!(num("SEARCH(\"PLE\",B1)", &s), 3.0);
        assert_eq!(
            eval("SEARCH(\"zz\",B1)", &s),
            CellValue::Error(CellError::Value)
        );
    }

    #[test]
    fn lookups() {
        let s = sheet();
        // VLOOKUP over B1:B5 keyed... use A as key col: VLOOKUP(3, A1:B5, 2).
        assert_eq!(
            eval("VLOOKUP(3,A1:B5,2)", &s),
            CellValue::Text("cherry".into())
        );
        assert_eq!(
            eval("VLOOKUP(99,A1:B5,2)", &s),
            CellValue::Error(CellError::Na)
        );
        assert_eq!(
            eval("VLOOKUP(3,A1:B5,9)", &s),
            CellValue::Error(CellError::Ref)
        );
        assert_eq!(num("MATCH(\"cherry\",B1:B5)", &s), 3.0);
        assert_eq!(
            eval("INDEX(A1:B5,3,2)", &s),
            CellValue::Text("cherry".into())
        );
        assert_eq!(num("HLOOKUP(1,A1:B5,2)", &s), 2.0);
    }

    #[test]
    fn criteria_functions() {
        let s = sheet();
        assert_eq!(num("COUNTIF(A1:A5,\">2\")", &s), 3.0);
        assert_eq!(num("COUNTIF(B1:B5,\"apple\")", &s), 2.0);
        assert_eq!(num("COUNTIF(B1:B5,\"<>apple\")", &s), 3.0);
        assert_eq!(num("SUMIF(A1:A5,\">=4\")", &s), 9.0);
        // Criteria over B, summing A.
        assert_eq!(num("SUMIF(B1:B5,\"apple\",A1:A5)", &s), 5.0);
    }

    #[test]
    fn unknown_function_is_name_error() {
        let s = sheet();
        assert_eq!(eval("FROBNICATE(1)", &s), CellValue::Error(CellError::Name));
    }

    #[test]
    fn multi_cell_range_in_scalar_context_is_value_error() {
        let s = sheet();
        assert_eq!(eval("A1:A5+1", &s), CellValue::Error(CellError::Value));
        // 1x1 range dereferences.
        assert_eq!(num("A1:A1+1", &s), 2.0);
    }

    #[test]
    fn errors_propagate_through_aggregates() {
        let mut s = sheet();
        s.set(
            CellAddr::new(2, 0),
            dataspread_grid::Cell {
                value: CellValue::Error(CellError::Div0),
                formula: Some("1/0".into()),
            },
        );
        assert_eq!(eval("SUM(A1:A5)", &s), CellValue::Error(CellError::Div0));
    }

    #[test]
    fn comparisons_are_spreadsheet_style() {
        let s = sheet();
        assert_eq!(eval("\"Apple\"=\"apple\"", &s), CellValue::Bool(true));
        assert_eq!(eval("2>1", &s), CellValue::Bool(true));
        assert_eq!(
            eval("\"a\">2", &s),
            CellValue::Bool(true),
            "text sorts above numbers"
        );
    }
}
