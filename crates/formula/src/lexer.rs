//! Formula lexer.

use crate::error::ParseError;

/// Lexical tokens of the formula language.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Number(f64),
    Text(String),
    /// Identifier: function name, TRUE/FALSE, or a cell reference (the
    /// parser decides). `$` signs are kept for reference parsing.
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    Percent,
    Amp,
    LParen,
    RParen,
    Comma,
    Colon,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Tokenize a formula body (without the leading `=`).
pub fn lex(src: &str) -> Result<Vec<(Token, usize)>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'+' => {
                out.push((Token::Plus, start));
                i += 1;
            }
            b'-' => {
                out.push((Token::Minus, start));
                i += 1;
            }
            b'*' => {
                out.push((Token::Star, start));
                i += 1;
            }
            b'/' => {
                out.push((Token::Slash, start));
                i += 1;
            }
            b'^' => {
                out.push((Token::Caret, start));
                i += 1;
            }
            b'%' => {
                out.push((Token::Percent, start));
                i += 1;
            }
            b'&' => {
                out.push((Token::Amp, start));
                i += 1;
            }
            b'(' => {
                out.push((Token::LParen, start));
                i += 1;
            }
            b')' => {
                out.push((Token::RParen, start));
                i += 1;
            }
            b',' => {
                out.push((Token::Comma, start));
                i += 1;
            }
            b':' => {
                out.push((Token::Colon, start));
                i += 1;
            }
            b'=' => {
                out.push((Token::Eq, start));
                i += 1;
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push((Token::Ne, start));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push((Token::Le, start));
                    i += 2;
                } else {
                    out.push((Token::Lt, start));
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push((Token::Ge, start));
                    i += 2;
                } else {
                    out.push((Token::Gt, start));
                    i += 1;
                }
            }
            b'"' => {
                // Quoted string; "" escapes a quote.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::new(start, "unterminated string"));
                    }
                    if bytes[i] == b'"' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'"' {
                            s.push('"');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Multi-byte UTF-8 is copied verbatim.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(&src[i..i + ch_len]);
                        i += ch_len;
                    }
                }
                out.push((Token::Text(s), start));
            }
            b'0'..=b'9' | b'.' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'.') {
                    j += 1;
                }
                // Scientific notation.
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k].is_ascii_digit() {
                        j = k;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = &src[i..j];
                let n: f64 = text
                    .parse()
                    .map_err(|_| ParseError::new(start, format!("bad number {text:?}")))?;
                out.push((Token::Number(n), start));
                i = j;
            }
            b'$' | b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'$'
                        || bytes[j] == b'.')
                {
                    j += 1;
                }
                out.push((Token::Ident(src[i..j].to_string()), start));
                i = j;
            }
            _ => {
                return Err(ParseError::new(
                    start,
                    format!("unexpected character {:?}", src[start..].chars().next()),
                ))
            }
        }
    }
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn operators_and_numbers() {
        assert_eq!(
            toks("1+2.5*3"),
            vec![
                Token::Number(1.0),
                Token::Plus,
                Token::Number(2.5),
                Token::Star,
                Token::Number(3.0)
            ]
        );
        assert_eq!(toks("1e3"), vec![Token::Number(1000.0)]);
        assert_eq!(toks("2E-2"), vec![Token::Number(0.02)]);
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            toks("a<=b<>c>=d"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Ne,
                Token::Ident("c".into()),
                Token::Ge,
                Token::Ident("d".into())
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks("\"he said \"\"hi\"\"\""),
            vec![Token::Text("he said \"hi\"".into())]
        );
        assert!(lex("\"open").is_err());
    }

    #[test]
    fn refs_keep_dollar_signs() {
        assert_eq!(
            toks("$A$1:B2"),
            vec![
                Token::Ident("$A$1".into()),
                Token::Colon,
                Token::Ident("B2".into())
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("1 # 2").is_err());
    }
}
