//! The formula engine (paper §VI, "Formula Evaluation").
//!
//! When a formula is entered into a cell, the [`parser`] interprets it; the
//! referenced ranges are registered in the [`deps::DependencyGraph`]; the
//! [`eval::Evaluator`] fetches required cells through a [`eval::CellReader`]
//! (in the engine crate, a read-through [`cache::CellCache`] in front of the
//! hybrid translator) and computes the result. Updates trigger recomputation
//! of dependents in topological order, with cycle detection.

pub mod ast;
pub mod batch;
pub mod cache;
pub mod deps;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod refs;

pub use ast::{BinOp, CellRef, Expr, UnOp};
pub use batch::{batch_eval_sliding, detect_sliding, shape_key, AggKind, SlidingSpec};
pub use cache::{CellCache, LruCache};
pub use deps::{DependencyGraph, RecomputePlan, ScanDependencyGraph, WavePlan};
pub use error::ParseError;
pub use eval::{CellReader, EmptyReader, Evaluator, RangeAgg, SheetReader};
pub use parser::parse;
