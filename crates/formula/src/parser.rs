//! Recursive-descent formula parser with precedence climbing.
//!
//! Grammar (lowest precedence first):
//! `cmp → concat (( = | <> | < | <= | > | >= ) concat)*`
//! `concat → add (& add)*`
//! `add → mul (( + | - ) mul)*`
//! `mul → pow (( * | / ) pow)*`
//! `pow → unary (^ unary)*` (left-assoc, matching Excel)
//! `unary → ( - | + ) unary | postfix`
//! `postfix → primary %*`
//! `primary → number | string | TRUE | FALSE | ref[:ref] | func(args) | (expr)`

use crate::ast::{BinOp, CellRef, Expr, UnOp};
use crate::error::ParseError;
use crate::lexer::{lex, Token};

use dataspread_grid::addr::letters_to_col;

/// Parse a formula body (without the leading `=`).
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.cmp()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError::new(
            p.tokens[p.pos].1,
            "unexpected trailing input",
        ));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |(_, p)| *p)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError::new(self.here(), format!("expected {what}")))
        }
    }

    fn cmp(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.concat()?;
        loop {
            let op = match self.peek() {
                Some(Token::Eq) => BinOp::Eq,
                Some(Token::Ne) => BinOp::Ne,
                Some(Token::Lt) => BinOp::Lt,
                Some(Token::Le) => BinOp::Le,
                Some(Token::Gt) => BinOp::Gt,
                Some(Token::Ge) => BinOp::Ge,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.concat()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn concat(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.add()?;
        while self.peek() == Some(&Token::Amp) {
            self.pos += 1;
            let rhs = self.add()?;
            lhs = Expr::Binary(BinOp::Concat, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.pow()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.pow()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn pow(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while self.peek() == Some(&Token::Caret) {
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary(BinOp::Pow, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Minus) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            Some(Token::Plus) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Plus, Box::new(self.unary()?)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.peek() == Some(&Token::Percent) {
            self.pos += 1;
            e = Expr::Percent(Box::new(e));
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let at = self.here();
        match self.bump() {
            Some(Token::Number(n)) => Ok(Expr::Number(n)),
            Some(Token::Text(s)) => Ok(Expr::Text(s)),
            Some(Token::LParen) => {
                let e = self.cmp()?;
                self.expect(&Token::RParen, ")")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() == Some(&Token::RParen) {
                        self.pos += 1;
                    } else {
                        loop {
                            args.push(self.cmp()?);
                            match self.bump() {
                                Some(Token::Comma) => continue,
                                Some(Token::RParen) => break,
                                _ => return Err(ParseError::new(at, "expected , or ) in call")),
                            }
                        }
                    }
                    return Ok(Expr::Func(name.to_ascii_uppercase(), args));
                }
                match name.to_ascii_uppercase().as_str() {
                    "TRUE" => return Ok(Expr::Bool(true)),
                    "FALSE" => return Ok(Expr::Bool(false)),
                    _ => {}
                }
                let first = parse_cellref(&name)
                    .ok_or_else(|| ParseError::new(at, format!("unknown identifier {name:?}")))?;
                if self.peek() == Some(&Token::Colon) {
                    self.pos += 1;
                    let at2 = self.here();
                    match self.bump() {
                        Some(Token::Ident(second)) => {
                            let second = parse_cellref(&second).ok_or_else(|| {
                                ParseError::new(at2, "expected cell reference after :")
                            })?;
                            Ok(Expr::Range(first, second))
                        }
                        _ => Err(ParseError::new(at2, "expected cell reference after :")),
                    }
                } else {
                    Ok(Expr::Ref(first))
                }
            }
            _ => Err(ParseError::new(at, "expected expression")),
        }
    }
}

/// Parse `B2`, `$B2`, `B$2`, `$B$2` into a [`CellRef`].
pub fn parse_cellref(s: &str) -> Option<CellRef> {
    let bytes = s.as_bytes();
    let mut i = 0;
    let abs_col = bytes.first() == Some(&b'$');
    if abs_col {
        i += 1;
    }
    let col_start = i;
    while i < bytes.len() && bytes[i].is_ascii_alphabetic() {
        i += 1;
    }
    if i == col_start {
        return None;
    }
    let col = letters_to_col(&s[col_start..i]).ok()?;
    let abs_row = bytes.get(i) == Some(&b'$');
    if abs_row {
        i += 1;
    }
    let row_start = i;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if row_start == i || i != bytes.len() {
        return None;
    }
    let row_1b: u32 = s[row_start..i].parse().ok()?;
    if row_1b == 0 {
        return None;
    }
    Some(CellRef {
        row: row_1b - 1,
        col,
        abs_row,
        abs_col,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence() {
        let e = parse("1+2*3").unwrap();
        assert_eq!(e.to_string(), "(1+(2*3))");
        let e = parse("(1+2)*3").unwrap();
        assert_eq!(e.to_string(), "((1+2)*3)");
        let e = parse("1&2=3").unwrap();
        assert_eq!(e.to_string(), "((1&2)=3)");
        let e = parse("2^3^2").unwrap();
        assert_eq!(e.to_string(), "((2^3)^2)", "Excel's ^ is left-assoc");
        let e = parse("-2^2").unwrap();
        assert_eq!(e.to_string(), "(-2^2)");
    }

    #[test]
    fn functions_and_ranges() {
        let e = parse("AVERAGE(B2:C2)+D2+E2").unwrap();
        assert_eq!(e.to_string(), "((AVERAGE(B2:C2)+D2)+E2)");
        let e = parse("IF(A1>0,SUM(A1:A10),0)").unwrap();
        assert_eq!(e.to_string(), "IF((A1>0),SUM(A1:A10),0)");
        let e = parse("sum(a1:a2)").unwrap();
        assert_eq!(e.to_string(), "SUM(A1:A2)", "names are upper-cased");
        let e = parse("COUNT()").unwrap();
        assert_eq!(e.to_string(), "COUNT()");
    }

    #[test]
    fn absolute_refs() {
        let e = parse("$A$1+B$2+$C3").unwrap();
        assert_eq!(e.to_string(), "(($A$1+B$2)+$C3)");
    }

    #[test]
    fn percent_postfix() {
        let e = parse("50%+1").unwrap();
        assert_eq!(e.to_string(), "(50%+1)");
        let e = parse("50%%").unwrap();
        assert_eq!(e.to_string(), "50%%");
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("1+").is_err());
        assert!(parse("SUM(1,").is_err());
        assert!(parse("A1:").is_err());
        assert!(parse("A1:5").is_err());
        assert!(parse("NOTAREF_").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn bool_literals() {
        assert_eq!(parse("TRUE").unwrap(), Expr::Bool(true));
        assert_eq!(parse("false").unwrap(), Expr::Bool(false));
        // But TRUE() is a call.
        assert_eq!(parse("TRUE()").unwrap().to_string(), "TRUE()");
    }

    #[test]
    fn cellref_forms() {
        assert_eq!(parse_cellref("B2"), Some(CellRef::relative(1, 1)));
        assert_eq!(
            parse_cellref("$B$2"),
            Some(CellRef {
                row: 1,
                col: 1,
                abs_row: true,
                abs_col: true
            })
        );
        assert!(parse_cellref("B$2").unwrap().abs_row);
        assert_eq!(parse_cellref("ZZZ"), None);
        assert_eq!(parse_cellref("B0"), None);
        assert_eq!(parse_cellref("2B"), None);
    }
}
