//! Reference extraction and structural-edit rewriting.
//!
//! The analysis toolkit (paper §II-C) needs the set of ranges a formula
//! accesses; the engine needs formulas to stay valid when rows/columns are
//! inserted or deleted (relative references shift, `$`-absolute ones too —
//! structural edits move the *cells*, so every reference pointing at or
//! below the edit moves with them, which is Excel's behaviour).

use dataspread_grid::Rect;

use crate::ast::{CellRef, Expr};

/// Collect every rectangle referenced by the expression.
pub fn collect_ranges(expr: &Expr) -> Vec<Rect> {
    let mut out = Vec::new();
    walk(expr, &mut |e| {
        if let Some(r) = e.as_rect() {
            out.push(r);
        }
    });
    out
}

/// Total number of cells accessed (sum of range areas; single refs are 1x1).
/// This is the "cells accessed per formula" statistic of Table I.
pub fn cells_accessed(expr: &Expr) -> u64 {
    collect_ranges(expr).iter().map(Rect::area).sum()
}

fn walk(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::Unary(_, e) | Expr::Percent(e) => walk(e, f),
        Expr::Binary(_, a, b) => {
            walk(a, f);
            walk(b, f);
        }
        Expr::Func(_, args) => {
            for a in args {
                walk(a, f);
            }
        }
        _ => {}
    }
}

/// The structural edits that shift references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shift {
    InsertRows { at: u32, n: u32 },
    DeleteRows { at: u32, n: u32 },
    InsertCols { at: u32, n: u32 },
    DeleteCols { at: u32, n: u32 },
}

/// Rewrite a reference for a structural edit; returns `None` when the
/// referenced cell was deleted (the caller should surface `#REF!`).
fn shift_ref(r: CellRef, shift: Shift) -> Option<CellRef> {
    let mut out = r;
    match shift {
        Shift::InsertRows { at, n } => {
            if r.row >= at {
                out.row += n;
            }
        }
        Shift::DeleteRows { at, n } => {
            if r.row >= at + n {
                out.row -= n;
            } else if r.row >= at {
                return None;
            }
        }
        Shift::InsertCols { at, n } => {
            if r.col >= at {
                out.col += n;
            }
        }
        Shift::DeleteCols { at, n } => {
            if r.col >= at + n {
                out.col -= n;
            } else if r.col >= at {
                return None;
            }
        }
    }
    Some(out)
}

/// Rewrite all references in `expr` for a structural edit. Ranges clamp:
/// a range survives while any part of it survives. Returns `None` when a
/// reference is destroyed (formula becomes `#REF!`).
pub fn rewrite(expr: &Expr, shift: Shift) -> Option<Expr> {
    Some(match expr {
        Expr::Ref(r) => Expr::Ref(shift_ref(*r, shift)?),
        Expr::Range(a, b) => {
            // For ranges, deletion inside the range shrinks it instead of
            // destroying it.
            let (sa, sb) = match (shift_ref(*a, shift), shift_ref(*b, shift)) {
                (Some(sa), Some(sb)) => (sa, sb),
                (None, Some(sb)) => {
                    let mut sa = *a;
                    match shift {
                        Shift::DeleteRows { at, .. } => sa.row = at,
                        Shift::DeleteCols { at, .. } => sa.col = at,
                        _ => unreachable!("inserts never destroy refs"),
                    }
                    (sa, sb)
                }
                (Some(sa), None) => {
                    let mut sb = *b;
                    match shift {
                        Shift::DeleteRows { at, .. } => {
                            if at == 0 {
                                return None;
                            }
                            sb.row = at - 1;
                        }
                        Shift::DeleteCols { at, .. } => {
                            if at == 0 {
                                return None;
                            }
                            sb.col = at - 1;
                        }
                        _ => unreachable!("inserts never destroy refs"),
                    }
                    (sa, sb)
                }
                (None, None) => return None,
            };
            Expr::Range(sa, sb)
        }
        Expr::Unary(op, e) => Expr::Unary(*op, Box::new(rewrite(e, shift)?)),
        Expr::Percent(e) => Expr::Percent(Box::new(rewrite(e, shift)?)),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(rewrite(a, shift)?),
            Box::new(rewrite(b, shift)?),
        ),
        Expr::Func(name, args) => Expr::Func(
            name.clone(),
            args.iter()
                .map(|a| rewrite(a, shift))
                .collect::<Option<Vec<_>>>()?,
        ),
        leaf => leaf.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn collect_and_count() {
        let e = parse("SUM(A1:B10)+C3*VLOOKUP(D1,E1:G100,2)").unwrap();
        let ranges = collect_ranges(&e);
        assert_eq!(ranges.len(), 4);
        assert_eq!(cells_accessed(&e), 20 + 1 + 1 + 300);
    }

    #[test]
    fn insert_rows_shifts_references_below() {
        let e = parse("A1+A10").unwrap();
        let got = rewrite(&e, Shift::InsertRows { at: 5, n: 2 }).unwrap();
        assert_eq!(got.to_string(), "(A1+A12)");
    }

    #[test]
    fn delete_rows_destroys_point_refs() {
        let e = parse("A5").unwrap();
        assert_eq!(rewrite(&e, Shift::DeleteRows { at: 4, n: 1 }), None);
        let e = parse("A5").unwrap();
        let got = rewrite(&e, Shift::DeleteRows { at: 0, n: 2 }).unwrap();
        assert_eq!(got.to_string(), "A3");
    }

    #[test]
    fn ranges_shrink_instead_of_dying() {
        let e = parse("SUM(A1:A10)").unwrap();
        // Delete rows 0..5 (A1:A5): range becomes A1:A5 (the survivors).
        let got = rewrite(&e, Shift::DeleteRows { at: 0, n: 5 }).unwrap();
        assert_eq!(got.to_string(), "SUM(A1:A5)");
        // Delete rows fully inside.
        let e = parse("SUM(A1:A10)").unwrap();
        let got = rewrite(&e, Shift::DeleteRows { at: 2, n: 3 }).unwrap();
        assert_eq!(got.to_string(), "SUM(A1:A7)");
        // Delete the tail: A6:A10 gone, head survives.
        let e = parse("SUM(A5:A10)").unwrap();
        let got = rewrite(&e, Shift::DeleteRows { at: 5, n: 20 }).unwrap();
        assert_eq!(got.to_string(), "SUM(A5:A5)");
        // Whole range deleted → formula is destroyed.
        let e = parse("SUM(A5:A10)").unwrap();
        assert_eq!(rewrite(&e, Shift::DeleteRows { at: 4, n: 20 }), None);
    }

    #[test]
    fn column_edits() {
        let e = parse("SUM(B1:D1)+E1").unwrap();
        let got = rewrite(&e, Shift::InsertCols { at: 2, n: 1 }).unwrap();
        assert_eq!(got.to_string(), "(SUM(B1:E1)+F1)");
        let e = parse("SUM(B1:D1)+E1").unwrap();
        let got = rewrite(&e, Shift::DeleteCols { at: 2, n: 1 }).unwrap();
        assert_eq!(got.to_string(), "(SUM(B1:C1)+D1)");
    }

    #[test]
    fn constants_untouched() {
        let e = parse("1+2*3").unwrap();
        let got = rewrite(&e, Shift::InsertRows { at: 0, n: 5 }).unwrap();
        assert_eq!(got, e);
    }
}
