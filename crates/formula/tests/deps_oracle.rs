//! Differential oracle suite for the spatially-indexed dependency graph:
//! [`DependencyGraph`] (grid-bucket index) must be behavior-identical to
//! [`ScanDependencyGraph`] (the retained pre-index scan implementation) on
//! random formula sets and edit sequences — dependent lookups, recompute
//! plans (order *and* cycle sets), across every range shape the index has
//! to place (single cells, small rects, whole-column bands, huge blocks).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataspread_formula::{DependencyGraph, ScanDependencyGraph};
use dataspread_grid::{CellAddr, Rect};

/// Rows × cols of the synthetic sheet (formula addresses and probe cells
/// are drawn from a slightly larger space to hit out-of-range probes too).
const ROWS: u32 = 600;
const COLS: u32 = 80;

fn random_addr(rng: &mut StdRng) -> CellAddr {
    CellAddr::new(rng.gen_range(0..ROWS), rng.gen_range(0..COLS))
}

/// A random read-range, biased across the shapes that stress different
/// index levels: point refs, small aggregates, row/column bands, and the
/// occasional huge block.
fn random_rect(rng: &mut StdRng) -> Rect {
    let a = random_addr(rng);
    match rng.gen_range(0..10u32) {
        // Point reference (≈ plain `A1`).
        0..=3 => Rect::cell(a),
        // Small aggregate (`SUM(B2:D9)`).
        4..=6 => {
            let h = rng.gen_range(1..12u32);
            let w = rng.gen_range(1..6u32);
            Rect::new(
                a.row,
                a.col,
                (a.row + h - 1).min(ROWS - 1),
                (a.col + w - 1).min(COLS - 1),
            )
        }
        // Tall column band (`SUM(A:A)`-ish): coarse index levels.
        7..=8 => Rect::new(
            0,
            a.col,
            ROWS - 1,
            (a.col + rng.gen_range(0..2u32)).min(COLS - 1),
        ),
        // Huge block spanning most of the sheet.
        _ => Rect::new(
            rng.gen_range(0..ROWS / 4),
            rng.gen_range(0..COLS / 4),
            rng.gen_range(ROWS / 2..ROWS),
            rng.gen_range(COLS / 2..COLS),
        ),
    }
}

fn random_ranges(rng: &mut StdRng) -> Vec<Rect> {
    (0..rng.gen_range(1..4usize))
        .map(|_| random_rect(rng))
        .collect()
}

/// Assert a plan order is a valid topological order: every formula appears
/// at most once, and by the time a formula is evaluated, no *later* entry
/// is one of its read dependencies (reads among the ordered set must point
/// backwards only).
fn assert_valid_topo(g: &ScanDependencyGraph, order: &[CellAddr]) {
    let pos: std::collections::HashMap<CellAddr, usize> =
        order.iter().enumerate().map(|(i, &a)| (a, i)).collect();
    assert_eq!(pos.len(), order.len(), "duplicate cell in plan order");
    for (i, &u) in order.iter().enumerate() {
        // Everything reading u that is in the order must come after u.
        for v in g.dependents_of(u) {
            if let Some(&j) = pos.get(&v) {
                assert!(j > i, "{v} reads {u} but is ordered before it");
            }
        }
    }
}

fn compare_lookups(indexed: &DependencyGraph, scan: &ScanDependencyGraph, rng: &mut StdRng) {
    for _ in 0..200 {
        let probe = random_addr(rng);
        assert_eq!(
            indexed.dependents_of(probe),
            scan.dependents_of(probe),
            "dependents_of({probe}) diverged"
        );
    }
}

fn compare_plans(indexed: &DependencyGraph, scan: &ScanDependencyGraph, rng: &mut StdRng) {
    for _ in 0..20 {
        let seeds: Vec<CellAddr> = (0..rng.gen_range(1..4usize))
            .map(|_| random_addr(rng))
            .collect();
        let got = indexed.recompute_plan(&seeds);
        let want = scan.recompute_plan(&seeds);
        // Both implementations run Kahn's algorithm with sorted
        // tie-breaking over identical edge sets, so the order (not just
        // its validity) must match exactly, as must the cycle set.
        assert_eq!(got.order, want.order, "plan order diverged for {seeds:?}");
        assert_eq!(got.cyclic, want.cyclic, "cycle set diverged for {seeds:?}");
        assert_valid_topo(scan, &got.order);
        assert_valid_waves(scan, &indexed.recompute_waves(&seeds), &want);
    }
}

/// The wave plan must cover exactly the sequential plan's affected set and
/// cycle set, and every read edge must cross strictly forward in wave
/// index — the invariant that makes per-wave parallel evaluation safe.
fn assert_valid_waves(
    scan: &ScanDependencyGraph,
    waves: &dataspread_formula::WavePlan,
    plan: &dataspread_formula::RecomputePlan,
) {
    let wave_of: std::collections::HashMap<CellAddr, usize> = waves
        .waves
        .iter()
        .enumerate()
        .flat_map(|(i, w)| w.iter().map(move |&c| (c, i)))
        .collect();
    assert_eq!(wave_of.len(), waves.len(), "duplicate cell across waves");
    let mut flat: Vec<CellAddr> = wave_of.keys().copied().collect();
    flat.sort();
    let mut order = plan.order.clone();
    order.sort();
    assert_eq!(flat, order, "wave set diverged from plan order set");
    assert_eq!(waves.cyclic, plan.cyclic, "wave cycle set diverged");
    for w in &waves.waves {
        assert!(!w.is_empty(), "empty wave emitted");
        assert!(w.windows(2).all(|p| p[0] < p[1]), "wave not sorted");
    }
    for (&u, &wu) in &wave_of {
        for v in scan.dependents_of(u) {
            if let Some(&wv) = wave_of.get(&v) {
                assert!(wv > wu, "{v} reads {u} but sits in wave {wv} <= {wu}");
            }
        }
    }
}

#[test]
fn random_formula_sets_agree_with_scan_oracle() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xDE9_0001 + seed);
        let mut indexed = DependencyGraph::new();
        let mut scan = ScanDependencyGraph::new();
        for _ in 0..rng.gen_range(50..300usize) {
            let cell = random_addr(&mut rng);
            let ranges = random_ranges(&mut rng);
            indexed.set_formula(cell, ranges.clone());
            scan.set_formula(cell, ranges);
        }
        compare_lookups(&indexed, &scan, &mut rng);
        compare_plans(&indexed, &scan, &mut rng);
    }
}

#[test]
fn random_edit_sequences_agree_with_scan_oracle() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xDE9_1000 + seed);
        let mut indexed = DependencyGraph::new();
        let mut scan = ScanDependencyGraph::new();
        let mut registered: Vec<CellAddr> = Vec::new();
        for step in 0..400usize {
            match rng.gen_range(0..10u32) {
                // Remove a known formula (exercises placement removal).
                0..=2 if !registered.is_empty() => {
                    let cell = registered.swap_remove(rng.gen_range(0..registered.len()));
                    indexed.remove(cell);
                    scan.remove(cell);
                }
                // Replace an existing formula's ranges (old placements
                // must be fully unregistered).
                3..=4 if !registered.is_empty() => {
                    let cell = registered[rng.gen_range(0..registered.len())];
                    let ranges = random_ranges(&mut rng);
                    indexed.set_formula(cell, ranges.clone());
                    scan.set_formula(cell, ranges);
                }
                // Register a (possibly new) formula.
                _ => {
                    let cell = random_addr(&mut rng);
                    let ranges = random_ranges(&mut rng);
                    if !registered.contains(&cell) {
                        registered.push(cell);
                    }
                    indexed.set_formula(cell, ranges.clone());
                    scan.set_formula(cell, ranges);
                }
            }
            assert_eq!(indexed.formula_count(), registered.len());
            // Spot-check continuously, full sweep every 50 steps.
            let probe = random_addr(&mut rng);
            assert_eq!(indexed.dependents_of(probe), scan.dependents_of(probe));
            if step % 50 == 49 {
                compare_lookups(&indexed, &scan, &mut rng);
                compare_plans(&indexed, &scan, &mut rng);
            }
        }
        // Drain to empty: every placement must unregister cleanly.
        while let Some(cell) = registered.pop() {
            indexed.remove(cell);
            scan.remove(cell);
        }
        compare_lookups(&indexed, &scan, &mut rng);
        assert_eq!(indexed.formula_count(), 0);
    }
}

#[test]
fn dense_chain_plans_agree() {
    // A long dependency chain (each cell reads its predecessor) plus
    // aggregate readers: worst case for plan construction, and the shape
    // where an ordering bug would surface immediately.
    let mut indexed = DependencyGraph::new();
    let mut scan = ScanDependencyGraph::new();
    for r in 1..200u32 {
        let ranges = vec![Rect::cell(CellAddr::new(r - 1, 0))];
        indexed.set_formula(CellAddr::new(r, 0), ranges.clone());
        scan.set_formula(CellAddr::new(r, 0), ranges);
    }
    // Aggregates over the whole chain.
    for c in 1..5u32 {
        let ranges = vec![Rect::new(0, 0, 199, 0)];
        indexed.set_formula(CellAddr::new(0, c), ranges.clone());
        scan.set_formula(CellAddr::new(0, c), ranges);
    }
    let got = indexed.recompute_plan(&[CellAddr::new(0, 0)]);
    let want = scan.recompute_plan(&[CellAddr::new(0, 0)]);
    assert_eq!(got, want);
    assert_eq!(got.order.len(), 203, "199 chain cells + 4 aggregates");
    assert!(got.cyclic.is_empty());
}
