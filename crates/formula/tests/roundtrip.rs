//! Property tests for the formula engine: display/parse round-trips and
//! structural-edit rewrite inverses.

use proptest::prelude::*;

use dataspread_formula::ast::{BinOp, CellRef, Expr, UnOp};
use dataspread_formula::parse;
use dataspread_formula::refs::{cells_accessed, collect_ranges, rewrite, Shift};

/// Random expressions over a bounded grid.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0.0f64..1e6).prop_map(Expr::Number),
        "[a-z ]{0,8}".prop_map(Expr::Text),
        any::<bool>().prop_map(Expr::Bool),
        (0u32..50, 0u32..20, any::<bool>(), any::<bool>()).prop_map(|(r, c, ar, ac)| {
            Expr::Ref(CellRef {
                row: r,
                col: c,
                abs_row: ar,
                abs_col: ac,
            })
        }),
        (0u32..50, 0u32..20, 0u32..5, 0u32..3).prop_map(|(r, c, dr, dc)| {
            Expr::Range(CellRef::relative(r, c), CellRef::relative(r + dr, c + dc))
        }),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Binary(
                BinOp::Add,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Binary(
                BinOp::Mul,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Binary(
                BinOp::Le,
                Box::new(a),
                Box::new(b)
            )),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Neg, Box::new(e))),
            inner.clone().prop_map(|e| Expr::Percent(Box::new(e))),
            prop::collection::vec(inner.clone(), 0..3)
                .prop_map(|args| Expr::Func("SUM".into(), args)),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(a, b, c)| Expr::Func("IF".into(), vec![a, b, c])),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn display_parse_roundtrip(expr in expr_strategy()) {
        let rendered = expr.to_string();
        let reparsed = parse(&rendered)
            .unwrap_or_else(|e| panic!("rendered formula must reparse: {rendered} ({e})"));
        // The display form is fully parenthesized, so one round trip is a
        // fixed point: render(parse(render(e))) == render(e).
        prop_assert_eq!(reparsed.to_string(), rendered);
    }

    #[test]
    fn insert_then_delete_rows_is_identity(expr in expr_strategy(), at in 0u32..60, n in 1u32..5) {
        let inserted = rewrite(&expr, Shift::InsertRows { at, n })
            .expect("insert never destroys references");
        let back = rewrite(&inserted, Shift::DeleteRows { at, n })
            .expect("deleting exactly the inserted rows never destroys references");
        prop_assert_eq!(back.to_string(), expr.to_string());
    }

    #[test]
    fn insert_then_delete_cols_is_identity(expr in expr_strategy(), at in 0u32..30, n in 1u32..4) {
        let inserted = rewrite(&expr, Shift::InsertCols { at, n })
            .expect("insert never destroys references");
        let back = rewrite(&inserted, Shift::DeleteCols { at, n })
            .expect("deleting exactly the inserted cols never destroys references");
        prop_assert_eq!(back.to_string(), expr.to_string());
    }

    #[test]
    fn rewrite_preserves_cells_accessed_on_insert(expr in expr_strategy(), at in 0u32..60) {
        // Row inserts can only grow ranges (when they pierce one) — never
        // shrink the accessed-cell count.
        let before = cells_accessed(&expr);
        let after = cells_accessed(&rewrite(&expr, Shift::InsertRows { at, n: 2 }).unwrap());
        prop_assert!(after >= before, "{before} -> {after}");
    }

    #[test]
    fn collected_ranges_shift_with_rewrite(expr in expr_strategy(), n in 1u32..5) {
        // Inserting above everything shifts every range down by exactly n.
        let before = collect_ranges(&expr);
        let after = collect_ranges(&rewrite(&expr, Shift::InsertRows { at: 0, n }).unwrap());
        prop_assert_eq!(before.len(), after.len());
        for (b, a) in before.iter().zip(&after) {
            prop_assert_eq!(b.r1 + n, a.r1);
            prop_assert_eq!(b.r2 + n, a.r2);
            prop_assert_eq!(b.c1, a.c1);
            prop_assert_eq!(b.c2, a.c2);
        }
    }
}
