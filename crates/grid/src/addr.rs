//! Cell addresses and A1 notation.

use std::fmt;
use std::str::FromStr;

use crate::error::GridError;

/// A cell position: 0-based row and column indices.
///
/// Rendered in A1 notation (`A1` = row 0, column 0). Columns are letters
/// `A..Z, AA..`, rows are 1-based numbers, matching spreadsheet convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellAddr {
    pub row: u32,
    pub col: u32,
}

impl CellAddr {
    pub const fn new(row: u32, col: u32) -> Self {
        CellAddr { row, col }
    }

    /// Parse an A1-notation reference such as `B12` or `AA1`.
    pub fn parse_a1(s: &str) -> Result<Self, GridError> {
        let s = s.trim();
        let letters_end = s
            .find(|c: char| !c.is_ascii_alphabetic())
            .unwrap_or(s.len());
        if letters_end == 0 || letters_end == s.len() {
            return Err(GridError::BadA1(s.to_string()));
        }
        let col = letters_to_col(&s[..letters_end])?;
        let row_1b: u32 = s[letters_end..]
            .parse()
            .map_err(|_| GridError::BadA1(s.to_string()))?;
        if row_1b == 0 {
            return Err(GridError::BadA1(s.to_string()));
        }
        Ok(CellAddr::new(row_1b - 1, col))
    }

    /// Render in A1 notation.
    pub fn to_a1(self) -> String {
        format!("{}{}", col_to_letters(self.col), self.row + 1)
    }

    /// The address shifted by (dr, dc); saturates at zero.
    pub fn offset(self, dr: i64, dc: i64) -> Self {
        CellAddr::new(
            (self.row as i64 + dr).max(0) as u32,
            (self.col as i64 + dc).max(0) as u32,
        )
    }
}

impl fmt::Display for CellAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_a1())
    }
}

impl FromStr for CellAddr {
    type Err = GridError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CellAddr::parse_a1(s)
    }
}

impl From<(u32, u32)> for CellAddr {
    fn from((row, col): (u32, u32)) -> Self {
        CellAddr::new(row, col)
    }
}

/// Convert a 0-based column index to spreadsheet letters (0 → `A`, 26 → `AA`).
pub fn col_to_letters(mut col: u32) -> String {
    let mut buf = Vec::new();
    loop {
        buf.push(b'A' + (col % 26) as u8);
        if col < 26 {
            break;
        }
        col = col / 26 - 1;
    }
    buf.reverse();
    // Safety not needed: buf is pure ASCII by construction.
    String::from_utf8(buf).expect("ascii")
}

/// Convert spreadsheet letters to a 0-based column index (`A` → 0, `AA` → 26).
pub fn letters_to_col(s: &str) -> Result<u32, GridError> {
    if s.is_empty() {
        return Err(GridError::BadA1(s.to_string()));
    }
    let mut col: u64 = 0;
    for ch in s.chars() {
        let c = ch.to_ascii_uppercase();
        if !c.is_ascii_uppercase() {
            return Err(GridError::BadA1(s.to_string()));
        }
        col = col * 26 + (c as u64 - 'A' as u64 + 1);
        if col > u32::MAX as u64 {
            return Err(GridError::BadA1(s.to_string()));
        }
    }
    Ok((col - 1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_letters_roundtrip_small() {
        assert_eq!(col_to_letters(0), "A");
        assert_eq!(col_to_letters(25), "Z");
        assert_eq!(col_to_letters(26), "AA");
        assert_eq!(col_to_letters(27), "AB");
        assert_eq!(col_to_letters(51), "AZ");
        assert_eq!(col_to_letters(52), "BA");
        assert_eq!(col_to_letters(701), "ZZ");
        assert_eq!(col_to_letters(702), "AAA");
    }

    #[test]
    fn letters_to_col_inverse() {
        for c in [0u32, 1, 25, 26, 27, 700, 701, 702, 18277, 100_000] {
            assert_eq!(letters_to_col(&col_to_letters(c)).unwrap(), c);
        }
    }

    #[test]
    fn letters_to_col_lowercase_ok() {
        assert_eq!(letters_to_col("aa").unwrap(), 26);
    }

    #[test]
    fn parse_a1_basic() {
        assert_eq!(CellAddr::parse_a1("A1").unwrap(), CellAddr::new(0, 0));
        assert_eq!(CellAddr::parse_a1("B2").unwrap(), CellAddr::new(1, 1));
        assert_eq!(CellAddr::parse_a1("AA10").unwrap(), CellAddr::new(9, 26));
    }

    #[test]
    fn parse_a1_rejects_garbage() {
        for bad in ["", "1", "A", "A0", "1A", "A-1", "A1B"] {
            assert!(CellAddr::parse_a1(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn a1_display_roundtrip() {
        let a = CellAddr::new(999_999, 283);
        assert_eq!(CellAddr::parse_a1(&a.to_a1()).unwrap(), a);
        assert_eq!(a.to_string(), a.to_a1());
    }

    #[test]
    fn offset_saturates() {
        assert_eq!(CellAddr::new(0, 0).offset(-5, -5), CellAddr::new(0, 0));
        assert_eq!(CellAddr::new(2, 3).offset(1, -1), CellAddr::new(3, 2));
    }
}
