//! Error type for the conceptual grid model.

use std::fmt;

/// Errors raised by grid-model operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// A string could not be parsed as an A1 reference.
    BadA1(String),
    /// A rectangle had inverted corners or was otherwise malformed.
    BadRect(String),
    /// A structural edit (insert/delete rows or columns) was out of range.
    BadStructuralEdit(String),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::BadA1(s) => write!(f, "invalid A1 reference: {s}"),
            GridError::BadRect(s) => write!(f, "invalid rectangle: {s}"),
            GridError::BadStructuralEdit(s) => write!(f, "invalid structural edit: {s}"),
        }
    }
}

impl std::error::Error for GridError {}
