//! Conceptual data model for presentational data management (PDM).
//!
//! A spreadsheet is a collection of cells referenced by two dimensions (row,
//! column); each cell holds a value or a formula (DataSpread, ICDE 2018,
//! §III). This crate provides the shared vocabulary used by every other
//! crate in the workspace:
//!
//! * [`CellAddr`] — a (row, column) position with A1-notation support,
//! * [`CellValue`] / [`Cell`] — cell contents (constant or formula result),
//! * [`Rect`] — rectangular regions, the unit of presentational access,
//! * [`SparseSheet`] — an in-memory reference implementation of the
//!   conceptual model (also the test oracle for the storage engine),
//! * [`Occupancy`] — a bounding-box bitmap with 2-D prefix sums giving O(1)
//!   filled-cell counts for any sub-rectangle (the workhorse of the hybrid
//!   optimizer).

pub mod addr;
pub mod error;
pub mod mask;
pub mod region;
pub mod sheet;
pub mod value;

pub use addr::CellAddr;
pub use error::GridError;
pub use mask::Occupancy;
pub use region::Rect;
pub use sheet::SparseSheet;
pub use value::{Cell, CellError, CellValue};
