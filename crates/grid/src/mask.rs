//! Occupancy masks with 2-D prefix sums.
//!
//! The hybrid optimizer (paper §IV-D) repeatedly asks "how many filled cells
//! does this sub-rectangle contain?" for O(n⁴) rectangles. [`Occupancy`]
//! answers in O(1) after an O(area) build using an inclusive 2-D prefix-sum
//! table over the sheet's bounding box.

use crate::addr::CellAddr;
use crate::region::Rect;
use crate::sheet::SparseSheet;

/// A dense occupancy bitmap over a bounding rectangle, with prefix sums.
///
/// Coordinates passed to queries are *absolute* sheet coordinates; cells
/// outside the bounding box are empty by definition.
#[derive(Debug, Clone)]
pub struct Occupancy {
    bbox: Rect,
    width: usize,
    height: usize,
    filled: Vec<bool>,
    /// `(height+1) x (width+1)` inclusive prefix sums of `filled`.
    prefix: Vec<u64>,
}

impl Occupancy {
    /// Build from a sparse sheet. Empty sheets produce a 1×1 all-empty mask.
    pub fn from_sheet(sheet: &SparseSheet) -> Self {
        match sheet.bounding_box() {
            Some(bbox) => Self::from_cells(bbox, sheet.iter().map(|(a, _)| a)),
            None => Self::from_cells(Rect::new(0, 0, 0, 0), std::iter::empty()),
        }
    }

    /// Build from an explicit bounding box and an iterator of filled cells.
    /// Cells outside `bbox` are ignored.
    pub fn from_cells(bbox: Rect, cells: impl IntoIterator<Item = CellAddr>) -> Self {
        let height = bbox.rows() as usize;
        let width = bbox.cols() as usize;
        let mut filled = vec![false; height * width];
        for a in cells {
            if bbox.contains(a) {
                let r = (a.row - bbox.r1) as usize;
                let c = (a.col - bbox.c1) as usize;
                filled[r * width + c] = true;
            }
        }
        let mut prefix = vec![0u64; (height + 1) * (width + 1)];
        let pw = width + 1;
        for r in 0..height {
            let mut row_sum = 0u64;
            for c in 0..width {
                row_sum += filled[r * width + c] as u64;
                prefix[(r + 1) * pw + (c + 1)] = prefix[r * pw + (c + 1)] + row_sum;
            }
        }
        Occupancy {
            bbox,
            width,
            height,
            filled,
            prefix,
        }
    }

    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Total filled cells.
    pub fn total_filled(&self) -> u64 {
        self.prefix[self.height * (self.width + 1) + self.width]
    }

    pub fn is_filled(&self, addr: CellAddr) -> bool {
        if !self.bbox.contains(addr) {
            return false;
        }
        let r = (addr.row - self.bbox.r1) as usize;
        let c = (addr.col - self.bbox.c1) as usize;
        self.filled[r * self.width + c]
    }

    /// Number of filled cells inside `rect` (absolute coordinates), O(1).
    pub fn filled_in(&self, rect: &Rect) -> u64 {
        let Some(clipped) = rect.intersection(&self.bbox) else {
            return 0;
        };
        let r1 = (clipped.r1 - self.bbox.r1) as usize;
        let r2 = (clipped.r2 - self.bbox.r1) as usize + 1;
        let c1 = (clipped.c1 - self.bbox.c1) as usize;
        let c2 = (clipped.c2 - self.bbox.c1) as usize + 1;
        let pw = self.width + 1;
        self.prefix[r2 * pw + c2] + self.prefix[r1 * pw + c1]
            - self.prefix[r1 * pw + c2]
            - self.prefix[r2 * pw + c1]
    }

    /// Number of empty cells inside `rect ∩ bbox` plus the part of `rect`
    /// outside the bounding box.
    pub fn empty_in(&self, rect: &Rect) -> u64 {
        rect.area() - self.filled_in(rect)
    }

    /// Density of `rect`: filled / area.
    pub fn density_in(&self, rect: &Rect) -> f64 {
        self.filled_in(rect) as f64 / rect.area() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sheet_from(cells: &[(u32, u32)]) -> SparseSheet {
        let mut s = SparseSheet::new();
        for &(r, c) in cells {
            s.set_value(CellAddr::new(r, c), 1i64);
        }
        s
    }

    #[test]
    fn empty_sheet_mask() {
        let occ = Occupancy::from_sheet(&SparseSheet::new());
        assert_eq!(occ.total_filled(), 0);
        assert_eq!(occ.filled_in(&Rect::new(0, 0, 100, 100)), 0);
    }

    #[test]
    fn counts_match_bruteforce() {
        let cells = [(2, 3), (2, 4), (3, 3), (5, 8), (9, 2), (9, 3)];
        let s = sheet_from(&cells);
        let occ = Occupancy::from_sheet(&s);
        assert_eq!(occ.total_filled(), 6);
        // Every sub-rectangle of a padded window agrees with brute force.
        for r1 in 0..=10u32 {
            for r2 in r1..=10 {
                for c1 in 0..=9u32 {
                    for c2 in c1..=9 {
                        let rect = Rect::new(r1, c1, r2, c2);
                        let expected = cells
                            .iter()
                            .filter(|&&(r, c)| rect.contains(CellAddr::new(r, c)))
                            .count() as u64;
                        assert_eq!(occ.filled_in(&rect), expected, "{rect}");
                    }
                }
            }
        }
    }

    #[test]
    fn out_of_bbox_queries_are_empty() {
        let s = sheet_from(&[(5, 5)]);
        let occ = Occupancy::from_sheet(&s);
        assert_eq!(occ.filled_in(&Rect::new(0, 0, 3, 3)), 0);
        assert_eq!(occ.filled_in(&Rect::new(0, 0, 100, 100)), 1);
        assert!(!occ.is_filled(CellAddr::new(0, 0)));
        assert!(occ.is_filled(CellAddr::new(5, 5)));
        assert_eq!(occ.empty_in(&Rect::new(0, 0, 9, 9)), 99);
    }

    #[test]
    fn density_in_rect() {
        let s = sheet_from(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let occ = Occupancy::from_sheet(&s);
        assert_eq!(occ.density_in(&Rect::new(0, 0, 1, 1)), 1.0);
        assert_eq!(occ.density_in(&Rect::new(0, 0, 3, 1)), 0.5);
    }
}
