//! Rectangular regions — the unit of presentational access.
//!
//! Scrolling fetches a rectangular window; formulas such as `SUM(A1:B100)`
//! access rectangular ranges; the hybrid optimizer decomposes a sheet into
//! rectangles (paper §IV). [`Rect`] is therefore the most heavily shared
//! type in the workspace.

use std::fmt;

use crate::addr::CellAddr;
use crate::error::GridError;

/// An inclusive rectangle of cells: rows `r1..=r2`, columns `c1..=c2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rect {
    pub r1: u32,
    pub c1: u32,
    pub r2: u32,
    pub c2: u32,
}

impl Rect {
    /// Construct from corners, normalizing order.
    pub fn new(r1: u32, c1: u32, r2: u32, c2: u32) -> Self {
        Rect {
            r1: r1.min(r2),
            c1: c1.min(c2),
            r2: r1.max(r2),
            c2: c1.max(c2),
        }
    }

    /// A 1×1 rectangle covering one cell.
    pub fn cell(addr: CellAddr) -> Self {
        Rect::new(addr.row, addr.col, addr.row, addr.col)
    }

    /// Parse an A1 range such as `B2:C10`; a bare reference is a 1×1 rect.
    pub fn parse_a1(s: &str) -> Result<Self, GridError> {
        match s.split_once(':') {
            Some((a, b)) => {
                let a = CellAddr::parse_a1(a)?;
                let b = CellAddr::parse_a1(b)?;
                Ok(Rect::new(a.row, a.col, b.row, b.col))
            }
            None => Ok(Rect::cell(CellAddr::parse_a1(s)?)),
        }
    }

    pub fn to_a1(self) -> String {
        let a = CellAddr::new(self.r1, self.c1);
        let b = CellAddr::new(self.r2, self.c2);
        if self.rows() == 1 && self.cols() == 1 {
            a.to_a1()
        } else {
            format!("{}:{}", a.to_a1(), b.to_a1())
        }
    }

    pub fn rows(&self) -> u64 {
        (self.r2 - self.r1) as u64 + 1
    }

    pub fn cols(&self) -> u64 {
        (self.c2 - self.c1) as u64 + 1
    }

    pub fn area(&self) -> u64 {
        self.rows() * self.cols()
    }

    pub fn top_left(&self) -> CellAddr {
        CellAddr::new(self.r1, self.c1)
    }

    pub fn contains(&self, a: CellAddr) -> bool {
        a.row >= self.r1 && a.row <= self.r2 && a.col >= self.c1 && a.col <= self.c2
    }

    pub fn contains_rect(&self, o: &Rect) -> bool {
        o.r1 >= self.r1 && o.r2 <= self.r2 && o.c1 >= self.c1 && o.c2 <= self.c2
    }

    pub fn intersects(&self, o: &Rect) -> bool {
        self.r1 <= o.r2 && o.r1 <= self.r2 && self.c1 <= o.c2 && o.c1 <= self.c2
    }

    pub fn intersection(&self, o: &Rect) -> Option<Rect> {
        if !self.intersects(o) {
            return None;
        }
        Some(Rect {
            r1: self.r1.max(o.r1),
            c1: self.c1.max(o.c1),
            r2: self.r2.min(o.r2),
            c2: self.c2.min(o.c2),
        })
    }

    /// Smallest rectangle covering both.
    pub fn bbox_union(&self, o: &Rect) -> Rect {
        Rect {
            r1: self.r1.min(o.r1),
            c1: self.c1.min(o.c1),
            r2: self.r2.max(o.r2),
            c2: self.c2.max(o.c2),
        }
    }

    /// Split after absolute row `row` (must satisfy `r1 <= row < r2`),
    /// the "horizontal cut" of recursive decomposition.
    pub fn split_h(&self, row: u32) -> (Rect, Rect) {
        debug_assert!(row >= self.r1 && row < self.r2);
        (
            Rect { r2: row, ..*self },
            Rect {
                r1: row + 1,
                ..*self
            },
        )
    }

    /// Split after absolute column `col` (must satisfy `c1 <= col < c2`),
    /// the "vertical cut" of recursive decomposition.
    pub fn split_v(&self, col: u32) -> (Rect, Rect) {
        debug_assert!(col >= self.c1 && col < self.c2);
        (
            Rect { c2: col, ..*self },
            Rect {
                c1: col + 1,
                ..*self
            },
        )
    }

    /// Iterate all addresses in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = CellAddr> + '_ {
        let (r1, r2, c1, c2) = (self.r1, self.r2, self.c1, self.c2);
        (r1..=r2).flat_map(move |r| (c1..=c2).map(move |c| CellAddr::new(r, c)))
    }

    /// Translate by (dr, dc); panics in debug builds on underflow.
    pub fn translate(&self, dr: i64, dc: i64) -> Rect {
        Rect {
            r1: (self.r1 as i64 + dr) as u32,
            c1: (self.c1 as i64 + dc) as u32,
            r2: (self.r2 as i64 + dr) as u32,
            c2: (self.c2 as i64 + dc) as u32,
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_a1())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        let r = Rect::new(5, 7, 2, 3);
        assert_eq!(r, Rect::new(2, 3, 5, 7));
        assert_eq!(r.rows(), 4);
        assert_eq!(r.cols(), 5);
        assert_eq!(r.area(), 20);
    }

    #[test]
    fn parse_and_display() {
        let r = Rect::parse_a1("B2:C10").unwrap();
        assert_eq!(r, Rect::new(1, 1, 9, 2));
        assert_eq!(r.to_a1(), "B2:C10");
        let single = Rect::parse_a1("D4").unwrap();
        assert_eq!(single.to_a1(), "D4");
        assert!(Rect::parse_a1("B2:").is_err());
    }

    #[test]
    fn containment_and_intersection() {
        let a = Rect::new(0, 0, 9, 9);
        let b = Rect::new(5, 5, 15, 15);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 9, 9)));
        assert!(a.contains(CellAddr::new(9, 9)));
        assert!(!a.contains(CellAddr::new(10, 9)));
        let c = Rect::new(20, 20, 21, 21);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
        assert_eq!(a.bbox_union(&c), Rect::new(0, 0, 21, 21));
        assert!(a.contains_rect(&Rect::new(1, 1, 2, 2)));
        assert!(!a.contains_rect(&b));
    }

    #[test]
    fn splits_partition_area() {
        let r = Rect::new(2, 3, 10, 8);
        let (t, b) = r.split_h(4);
        assert_eq!(t.area() + b.area(), r.area());
        assert_eq!(t.r2 + 1, b.r1);
        let (l, rt) = r.split_v(5);
        assert_eq!(l.area() + rt.area(), r.area());
        assert_eq!(l.c2 + 1, rt.c1);
    }

    #[test]
    fn iter_covers_all_cells_row_major() {
        let r = Rect::new(1, 1, 2, 3);
        let cells: Vec<_> = r.iter().collect();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0], CellAddr::new(1, 1));
        assert_eq!(cells[2], CellAddr::new(1, 3));
        assert_eq!(cells[5], CellAddr::new(2, 3));
    }

    #[test]
    fn translate_moves_rect() {
        let r = Rect::new(2, 2, 4, 4).translate(3, -1);
        assert_eq!(r, Rect::new(5, 1, 7, 3));
    }
}
