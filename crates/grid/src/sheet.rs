//! `SparseSheet`: the in-memory reference implementation of the conceptual
//! data model.
//!
//! This is the "collection of cells" abstraction of paper §IV-A, used as
//! (a) the input representation for the hybrid optimizer and the analysis
//! toolkit, and (b) the semantic oracle for the storage-engine translators:
//! structural edits here use straightforward (cascading) renumbering, which
//! is exactly the behaviour the positional-mapping structures must replicate
//! in O(log N).

use std::collections::BTreeMap;

use crate::addr::CellAddr;
use crate::error::GridError;
use crate::region::Rect;
use crate::value::{Cell, CellValue};

/// A sparse spreadsheet: only filled cells are stored.
///
/// Keys are `(row, col)` so iteration is row-major, matching the access
/// pattern of scrolling and range formulas.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseSheet {
    cells: BTreeMap<(u32, u32), Cell>,
}

impl SparseSheet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of filled (non-blank) cells.
    pub fn filled_count(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    pub fn get(&self, addr: CellAddr) -> Option<&Cell> {
        self.cells.get(&(addr.row, addr.col))
    }

    /// The cell's computed value; `Empty` for blank cells.
    pub fn value(&self, addr: CellAddr) -> CellValue {
        self.get(addr).map(|c| c.value.clone()).unwrap_or_default()
    }

    /// Set a cell's contents. Blank cells are removed from storage so the
    /// sheet stays sparse.
    pub fn set(&mut self, addr: CellAddr, cell: Cell) {
        if cell.is_blank() {
            self.cells.remove(&(addr.row, addr.col));
        } else {
            self.cells.insert((addr.row, addr.col), cell);
        }
    }

    pub fn set_value(&mut self, addr: CellAddr, v: impl Into<CellValue>) {
        self.set(addr, Cell::value(v));
    }

    pub fn clear(&mut self, addr: CellAddr) -> Option<Cell> {
        self.cells.remove(&(addr.row, addr.col))
    }

    /// Iterate all filled cells in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (CellAddr, &Cell)> {
        self.cells
            .iter()
            .map(|(&(r, c), cell)| (CellAddr::new(r, c), cell))
    }

    /// Iterate the filled cells inside `rect`, row-major.
    pub fn iter_rect(&self, rect: Rect) -> impl Iterator<Item = (CellAddr, &Cell)> {
        self.cells
            .range((rect.r1, 0)..=(rect.r2, u32::MAX))
            .filter(move |(&(_, c), _)| c >= rect.c1 && c <= rect.c2)
            .map(|(&(r, c), cell)| (CellAddr::new(r, c), cell))
    }

    /// Minimum bounding rectangle of the filled cells, or `None` when empty.
    pub fn bounding_box(&self) -> Option<Rect> {
        if self.cells.is_empty() {
            return None;
        }
        let mut r1 = u32::MAX;
        let mut r2 = 0;
        let mut c1 = u32::MAX;
        let mut c2 = 0;
        for &(r, c) in self.cells.keys() {
            r1 = r1.min(r);
            r2 = r2.max(r);
            c1 = c1.min(c);
            c2 = c2.max(c);
        }
        Some(Rect::new(r1, c1, r2, c2))
    }

    /// Density: filled cells / bounding-box area (paper §II-B). 0 for empty.
    pub fn density(&self) -> f64 {
        match self.bounding_box() {
            Some(b) => self.filled_count() as f64 / b.area() as f64,
            None => 0.0,
        }
    }

    /// Insert `n` blank rows so the first inserted row has index `at`;
    /// existing rows at `at` and below shift down (cascading renumber —
    /// O(#cells); the storage engine's positional maps exist to avoid this).
    pub fn insert_rows(&mut self, at: u32, n: u32) -> Result<(), GridError> {
        if n == 0 {
            return Ok(());
        }
        let shifted: Vec<_> = self
            .cells
            .range((at, 0)..)
            .map(|(&k, v)| (k, v.clone()))
            .collect();
        for (k, _) in &shifted {
            self.cells.remove(k);
        }
        for ((r, c), v) in shifted {
            self.cells.insert((r + n, c), v);
        }
        Ok(())
    }

    /// Delete rows `at..at+n`; rows below shift up. Cells in deleted rows
    /// are dropped.
    pub fn delete_rows(&mut self, at: u32, n: u32) -> Result<(), GridError> {
        if n == 0 {
            return Ok(());
        }
        let affected: Vec<_> = self.cells.range((at, 0)..).map(|(&k, _)| k).collect();
        for k in affected {
            let v = self.cells.remove(&k).expect("key just observed");
            let (r, c) = k;
            if r >= at + n {
                self.cells.insert((r - n, c), v);
            }
        }
        Ok(())
    }

    /// Insert `n` blank columns so the first inserted column has index `at`.
    pub fn insert_cols(&mut self, at: u32, n: u32) -> Result<(), GridError> {
        if n == 0 {
            return Ok(());
        }
        let old = std::mem::take(&mut self.cells);
        for ((r, c), v) in old {
            let c2 = if c >= at { c + n } else { c };
            self.cells.insert((r, c2), v);
        }
        Ok(())
    }

    /// Delete columns `at..at+n`; columns to the right shift left.
    pub fn delete_cols(&mut self, at: u32, n: u32) -> Result<(), GridError> {
        if n == 0 {
            return Ok(());
        }
        let old = std::mem::take(&mut self.cells);
        for ((r, c), v) in old {
            if c < at {
                self.cells.insert((r, c), v);
            } else if c >= at + n {
                self.cells.insert((r, c - n), v);
            }
        }
        Ok(())
    }

    /// Count formula cells.
    pub fn formula_count(&self) -> usize {
        self.cells.values().filter(|c| c.is_formula()).count()
    }
}

impl FromIterator<(CellAddr, Cell)> for SparseSheet {
    fn from_iter<I: IntoIterator<Item = (CellAddr, Cell)>>(iter: I) -> Self {
        let mut s = SparseSheet::new();
        for (a, c) in iter {
            s.set(a, c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(r: u32, c: u32) -> CellAddr {
        CellAddr::new(r, c)
    }

    #[test]
    fn set_get_clear() {
        let mut s = SparseSheet::new();
        s.set_value(a(1, 1), 10i64);
        assert_eq!(s.value(a(1, 1)), CellValue::Number(10.0));
        assert_eq!(s.value(a(0, 0)), CellValue::Empty);
        assert_eq!(s.filled_count(), 1);
        s.clear(a(1, 1));
        assert!(s.is_empty());
    }

    #[test]
    fn blank_cells_are_not_stored() {
        let mut s = SparseSheet::new();
        s.set(a(0, 0), Cell::default());
        assert_eq!(s.filled_count(), 0);
        s.set_value(a(0, 0), 1i64);
        s.set(a(0, 0), Cell::default());
        assert_eq!(s.filled_count(), 0);
    }

    #[test]
    fn bounding_box_and_density() {
        let mut s = SparseSheet::new();
        assert_eq!(s.bounding_box(), None);
        s.set_value(a(2, 3), 1i64);
        s.set_value(a(5, 7), 2i64);
        assert_eq!(s.bounding_box(), Some(Rect::new(2, 3, 5, 7)));
        let density = 2.0 / 20.0;
        assert!((s.density() - density).abs() < 1e-12);
    }

    #[test]
    fn iter_rect_filters() {
        let mut s = SparseSheet::new();
        for r in 0..5 {
            for c in 0..5 {
                s.set_value(a(r, c), (r * 5 + c) as i64);
            }
        }
        let got: Vec<_> = s.iter_rect(Rect::new(1, 1, 2, 3)).collect();
        assert_eq!(got.len(), 6);
        assert_eq!(got[0].0, a(1, 1));
        assert_eq!(got[5].0, a(2, 3));
    }

    #[test]
    fn insert_rows_shifts_down() {
        let mut s = SparseSheet::new();
        s.set_value(a(0, 0), 0i64);
        s.set_value(a(1, 0), 1i64);
        s.set_value(a(2, 0), 2i64);
        s.insert_rows(1, 2).unwrap();
        assert_eq!(s.value(a(0, 0)), CellValue::Number(0.0));
        assert_eq!(s.value(a(1, 0)), CellValue::Empty);
        assert_eq!(s.value(a(3, 0)), CellValue::Number(1.0));
        assert_eq!(s.value(a(4, 0)), CellValue::Number(2.0));
    }

    #[test]
    fn delete_rows_drops_and_shifts() {
        let mut s = SparseSheet::new();
        for r in 0..5 {
            s.set_value(a(r, 0), r as i64);
        }
        s.delete_rows(1, 2).unwrap();
        assert_eq!(s.filled_count(), 3);
        assert_eq!(s.value(a(0, 0)), CellValue::Number(0.0));
        assert_eq!(s.value(a(1, 0)), CellValue::Number(3.0));
        assert_eq!(s.value(a(2, 0)), CellValue::Number(4.0));
    }

    #[test]
    fn insert_delete_cols() {
        let mut s = SparseSheet::new();
        for c in 0..4 {
            s.set_value(a(0, c), c as i64);
        }
        s.insert_cols(2, 1).unwrap();
        assert_eq!(s.value(a(0, 2)), CellValue::Empty);
        assert_eq!(s.value(a(0, 3)), CellValue::Number(2.0));
        s.delete_cols(0, 2).unwrap();
        assert_eq!(s.value(a(0, 0)), CellValue::Empty);
        assert_eq!(s.value(a(0, 1)), CellValue::Number(2.0));
        assert_eq!(s.value(a(0, 2)), CellValue::Number(3.0));
    }

    #[test]
    fn insert_then_delete_rows_roundtrip() {
        let mut s = SparseSheet::new();
        for r in 0..10 {
            for c in 0..3 {
                s.set_value(a(r, c), (r * 3 + c) as i64);
            }
        }
        let before = s.clone();
        s.insert_rows(4, 3).unwrap();
        s.delete_rows(4, 3).unwrap();
        assert_eq!(s, before);
    }

    #[test]
    fn formula_count_counts_only_formulas() {
        let mut s = SparseSheet::new();
        s.set_value(a(0, 0), 1i64);
        s.set(a(0, 1), Cell::formula("A1+1"));
        assert_eq!(s.formula_count(), 1);
    }
}
