//! Cell values and contents.

use std::fmt;

/// Spreadsheet error values (`#DIV/0!` and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellError {
    /// Division by zero.
    Div0,
    /// A formula argument had the wrong type.
    Value,
    /// A reference was invalid (e.g. deleted or out of bounds).
    Ref,
    /// An unknown function name was used.
    Name,
    /// A lookup found nothing.
    Na,
    /// A numeric result was out of range.
    Num,
    /// A formula participates in a reference cycle.
    Circular,
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellError::Div0 => "#DIV/0!",
            CellError::Value => "#VALUE!",
            CellError::Ref => "#REF!",
            CellError::Name => "#NAME?",
            CellError::Na => "#N/A",
            CellError::Num => "#NUM!",
            CellError::Circular => "#CIRC!",
        };
        f.write_str(s)
    }
}

/// The value held by (or computed for) a cell.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum CellValue {
    /// An empty cell (blank).
    #[default]
    Empty,
    /// A numeric value. Spreadsheets use doubles throughout.
    Number(f64),
    /// A text value.
    Text(String),
    /// A boolean value.
    Bool(bool),
    /// An error value.
    Error(CellError),
}

impl CellValue {
    pub fn is_empty(&self) -> bool {
        matches!(self, CellValue::Empty)
    }

    /// Numeric view used by arithmetic: numbers as-is, booleans as 0/1,
    /// empty as 0, numeric-looking text coerced, otherwise `None`.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            CellValue::Number(n) => Some(*n),
            CellValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            CellValue::Empty => Some(0.0),
            CellValue::Text(s) => s.trim().parse::<f64>().ok(),
            CellValue::Error(_) => None,
        }
    }

    /// Truthiness used by IF/AND/OR: numbers nonzero, bools as-is.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            CellValue::Bool(b) => Some(*b),
            CellValue::Number(n) => Some(*n != 0.0),
            CellValue::Empty => Some(false),
            CellValue::Text(s) => match s.to_ascii_uppercase().as_str() {
                "TRUE" => Some(true),
                "FALSE" => Some(false),
                _ => None,
            },
            CellValue::Error(_) => None,
        }
    }

    /// Text view used by `&` concatenation and text functions.
    pub fn as_text(&self) -> String {
        match self {
            CellValue::Empty => String::new(),
            CellValue::Number(n) => fmt_number(*n),
            CellValue::Text(s) => s.clone(),
            CellValue::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            CellValue::Error(e) => e.to_string(),
        }
    }

    /// Rough in-memory footprint in bytes, used by the LRU cell cache.
    pub fn approx_size(&self) -> usize {
        match self {
            CellValue::Text(s) => std::mem::size_of::<CellValue>() + s.len(),
            _ => std::mem::size_of::<CellValue>(),
        }
    }
}

impl fmt::Display for CellValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_text())
    }
}

impl From<f64> for CellValue {
    fn from(n: f64) -> Self {
        CellValue::Number(n)
    }
}
impl From<i64> for CellValue {
    fn from(n: i64) -> Self {
        CellValue::Number(n as f64)
    }
}
impl From<bool> for CellValue {
    fn from(b: bool) -> Self {
        CellValue::Bool(b)
    }
}
impl From<&str> for CellValue {
    fn from(s: &str) -> Self {
        CellValue::Text(s.to_string())
    }
}
impl From<String> for CellValue {
    fn from(s: String) -> Self {
        CellValue::Text(s)
    }
}

fn fmt_number(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// A cell's stored contents: the (possibly computed) value plus the formula
/// source when the cell contains a formula (paper Figure 8 stores the pair).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cell {
    pub value: CellValue,
    /// Formula source *without* the leading `=`, e.g. `AVERAGE(B2:C2)+D2`.
    pub formula: Option<String>,
}

impl Cell {
    pub fn value(v: impl Into<CellValue>) -> Self {
        Cell {
            value: v.into(),
            formula: None,
        }
    }

    pub fn formula(src: impl Into<String>) -> Self {
        Cell {
            value: CellValue::Empty,
            formula: Some(src.into()),
        }
    }

    pub fn with_value(mut self, v: impl Into<CellValue>) -> Self {
        self.value = v.into();
        self
    }

    pub fn is_formula(&self) -> bool {
        self.formula.is_some()
    }

    /// True when the cell holds neither a value nor a formula.
    pub fn is_blank(&self) -> bool {
        self.value.is_empty() && self.formula.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_coercions() {
        assert_eq!(CellValue::Number(2.5).as_number(), Some(2.5));
        assert_eq!(CellValue::Bool(true).as_number(), Some(1.0));
        assert_eq!(CellValue::Empty.as_number(), Some(0.0));
        assert_eq!(CellValue::Text(" 42 ".into()).as_number(), Some(42.0));
        assert_eq!(CellValue::Text("x".into()).as_number(), None);
        assert_eq!(CellValue::Error(CellError::Div0).as_number(), None);
    }

    #[test]
    fn bool_coercions() {
        assert_eq!(CellValue::Number(0.0).as_bool(), Some(false));
        assert_eq!(CellValue::Number(-3.0).as_bool(), Some(true));
        assert_eq!(CellValue::Text("true".into()).as_bool(), Some(true));
        assert_eq!(CellValue::Text("yes".into()).as_bool(), None);
    }

    #[test]
    fn text_rendering() {
        assert_eq!(CellValue::Number(3.0).as_text(), "3");
        assert_eq!(CellValue::Number(3.25).as_text(), "3.25");
        assert_eq!(CellValue::Bool(false).as_text(), "FALSE");
        assert_eq!(CellValue::Error(CellError::Na).as_text(), "#N/A");
        assert_eq!(CellValue::Empty.as_text(), "");
    }

    #[test]
    fn cell_constructors() {
        let c = Cell::value(10i64);
        assert!(!c.is_formula());
        assert!(!c.is_blank());
        let f = Cell::formula("SUM(A1:A2)");
        assert!(f.is_formula());
        assert!(!f.is_blank());
        assert!(Cell::default().is_blank());
    }

    #[test]
    fn error_display() {
        assert_eq!(CellError::Circular.to_string(), "#CIRC!");
        assert_eq!(CellError::Value.to_string(), "#VALUE!");
    }
}
