//! Property tests for the sparse sheet's structural-edit semantics — the
//! oracle every storage translator is checked against must itself be sound.

use proptest::prelude::*;

use dataspread_grid::{CellAddr, Occupancy, Rect, SparseSheet};

fn sheet_strategy() -> impl Strategy<Value = SparseSheet> {
    prop::collection::vec(((0u32..40, 0u32..20), any::<i64>()), 0..80).prop_map(|cells| {
        let mut s = SparseSheet::new();
        for ((r, c), v) in cells {
            s.set_value(CellAddr::new(r, c), v);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn insert_rows_preserves_count_and_shifts(s in sheet_strategy(), at in 0u32..45, n in 1u32..5) {
        let mut t = s.clone();
        t.insert_rows(at, n).unwrap();
        prop_assert_eq!(t.filled_count(), s.filled_count());
        for (addr, cell) in s.iter() {
            let want = if addr.row >= at {
                CellAddr::new(addr.row + n, addr.col)
            } else {
                addr
            };
            prop_assert_eq!(t.get(want), Some(cell));
        }
        // The inserted band is blank.
        for r in at..at + n {
            for c in 0..20 {
                prop_assert!(t.get(CellAddr::new(r, c)).is_none());
            }
        }
    }

    #[test]
    fn insert_then_delete_rows_roundtrips(s in sheet_strategy(), at in 0u32..45, n in 1u32..5) {
        let mut t = s.clone();
        t.insert_rows(at, n).unwrap();
        t.delete_rows(at, n).unwrap();
        prop_assert_eq!(t, s);
    }

    #[test]
    fn insert_then_delete_cols_roundtrips(s in sheet_strategy(), at in 0u32..25, n in 1u32..4) {
        let mut t = s.clone();
        t.insert_cols(at, n).unwrap();
        t.delete_cols(at, n).unwrap();
        prop_assert_eq!(t, s);
    }

    #[test]
    fn delete_rows_drops_exactly_the_band(s in sheet_strategy(), at in 0u32..40, n in 1u32..5) {
        let mut t = s.clone();
        let dropped = s
            .iter()
            .filter(|(a, _)| a.row >= at && a.row < at + n)
            .count();
        t.delete_rows(at, n).unwrap();
        prop_assert_eq!(t.filled_count(), s.filled_count() - dropped);
        for (addr, cell) in s.iter() {
            if addr.row < at {
                prop_assert_eq!(t.get(addr), Some(cell));
            } else if addr.row >= at + n {
                prop_assert_eq!(t.get(CellAddr::new(addr.row - n, addr.col)), Some(cell));
            }
        }
    }

    #[test]
    fn occupancy_counts_agree_with_iter_rect(
        s in sheet_strategy(),
        r1 in 0u32..45,
        c1 in 0u32..25,
        dr in 0u32..20,
        dc in 0u32..10,
    ) {
        let occ = Occupancy::from_sheet(&s);
        let rect = Rect::new(r1, c1, r1 + dr, c1 + dc);
        let brute = s.iter_rect(rect).count() as u64;
        prop_assert_eq!(occ.filled_in(&rect), brute);
        prop_assert_eq!(occ.total_filled(), s.filled_count() as u64);
    }

    #[test]
    fn density_is_bounded(s in sheet_strategy()) {
        let d = s.density();
        prop_assert!((0.0..=1.0).contains(&d));
        if let Some(b) = s.bounding_box() {
            prop_assert!(s.filled_count() as u64 <= b.area());
            // The bounding box is tight: its border rows/cols are occupied.
            let top = s.iter().any(|(a, _)| a.row == b.r1);
            let bottom = s.iter().any(|(a, _)| a.row == b.r2);
            let left = s.iter().any(|(a, _)| a.col == b.c1);
            let right = s.iter().any(|(a, _)| a.col == b.c2);
            prop_assert!(top && bottom && left && right);
        }
    }
}
