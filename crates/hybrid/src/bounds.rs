//! Optimality bounds (paper Theorems 3 and 4, Figures 13's OPT and 14).

use dataspread_grid::SparseSheet;

use crate::cost::CostModel;

/// Lower bound on the optimal hybrid data model (denoted OPT in Figure 13):
/// the cost of storing only the non-empty cells in a single ROM table,
/// ignoring the overhead of extra tables and empty cells — i.e.
/// `s1 + s2·filled + s3·(#distinct non-empty columns) + s4·(#distinct
/// non-empty rows)`.
pub fn opt_lower_bound(sheet: &SparseSheet, cm: &CostModel) -> f64 {
    if sheet.is_empty() {
        return 0.0;
    }
    let mut rows = std::collections::HashSet::new();
    let mut cols = std::collections::HashSet::new();
    let mut filled = 0u64;
    for (addr, _) in sheet.iter() {
        rows.insert(addr.row);
        cols.insert(addr.col);
        filled += 1;
    }
    cm.s1_table
        + cm.s2_cell * filled as f64
        + cm.s3_col * cols.len() as f64
        + cm.s4_row * rows.len() as f64
}

/// Theorem 4: the optimal decomposition of a connected component's minimum
/// bounding rectangle has at most `⌊e·s2/s1 + 1⌋` tables, where `e` is the
/// number of empty cells in that bounding rectangle. With `s1 = 0` the bound
/// is vacuous and `u64::MAX` is returned.
pub fn table_count_upper_bound(empty_cells: u64, cm: &CostModel) -> u64 {
    if cm.s1_table <= 0.0 {
        return u64::MAX;
    }
    (empty_cells as f64 * cm.s2_cell / cm.s1_table + 1.0).floor() as u64
}

/// Theorem 3: the DP's recursive-decomposition optimum is within
/// `s1 · k(k−1)/2` of the unrestricted optimum with `k` tables.
pub fn theorem3_additive_slack(k: u64, cm: &CostModel) -> f64 {
    cm.s1_table * (k as f64 * (k as f64 - 1.0)) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_grid::CellAddr;

    #[test]
    fn lower_bound_below_any_single_model() {
        let mut s = SparseSheet::new();
        for r in 0..10 {
            for c in 0..4 {
                if (r + c) % 3 != 0 {
                    s.set_value(CellAddr::new(r, c), 1i64);
                }
            }
        }
        let cm = CostModel::postgres();
        let lb = opt_lower_bound(&s, &cm);
        let bbox_rom = cm.rom(10, 4);
        assert!(lb <= bbox_rom);
        let rcv = cm.s1_table + cm.rcv(s.filled_count() as u64);
        // The lower bound must not exceed real representations' costs when
        // those representations store everything (RCV here stores only
        // filled cells but pays s5 > s2 per cell).
        assert!(lb <= rcv);
    }

    #[test]
    fn empty_sheet_bound_is_zero() {
        assert_eq!(
            opt_lower_bound(&SparseSheet::new(), &CostModel::postgres()),
            0.0
        );
    }

    #[test]
    fn table_bound_matches_formula() {
        let cm = CostModel::postgres();
        // e=0 → 1 table; dense components shouldn't be split.
        assert_eq!(table_count_upper_bound(0, &cm), 1);
        // e = 65536 empty cells: 65536 * 0.125 / 8192 + 1 = 2.
        assert_eq!(table_count_upper_bound(65_536, &cm), 2);
        assert_eq!(
            table_count_upper_bound(u64::MAX, &CostModel::ideal()),
            u64::MAX
        );
    }

    #[test]
    fn theorem3_slack_grows_quadratically() {
        let cm = CostModel::postgres();
        assert_eq!(theorem3_additive_slack(1, &cm), 0.0);
        assert_eq!(theorem3_additive_slack(2, &cm), cm.s1_table);
        assert_eq!(theorem3_additive_slack(4, &cm), cm.s1_table * 6.0);
    }
}
