//! Storage and access cost models (paper Equation 1 and Appendix A-C).

/// The storage-cost constants of Equation 1 (extended with s5 for RCV,
/// Appendix A-C1). Units are bytes, but only ratios matter to the
/// optimizers.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// s1 — fixed cost of a table (first page, catalog entry).
    pub s1_table: f64,
    /// s2 — cost per cell slot (empty or not) in a ROM/COM table
    /// (PostgreSQL: one null-bitmap bit).
    pub s2_cell: f64,
    /// s3 — cost per column (schema entry).
    pub s3_col: f64,
    /// s4 — cost per row (tuple header + RowID).
    pub s4_row: f64,
    /// s5 — cost per RCV tuple (row id + col id + value + header).
    pub s5_rcv: f64,
    /// s6 — expected amortized cost per filled cell in a *columnar
    /// compressed* region (dictionary/RLE typed arrays: no tuple headers,
    /// no per-cell boxing; repeats and nulls collapse into runs). Not part
    /// of the paper's Equation 1 — the post-paper third layout.
    pub s6_columnar_cell: f64,
    /// Present-day databases cap relation width (Appendix A-C4); `None`
    /// lifts the constraint.
    pub max_table_cols: Option<u64>,
}

impl CostModel {
    /// Constants the paper measured on PostgreSQL 9.6 (§VII-B.a):
    /// s1 = 8 KB, s2 = 1 bit, s3 = 40 B, s4 = 50 B, s5 = 52 B.
    pub fn postgres() -> Self {
        CostModel {
            s1_table: 8192.0,
            s2_cell: 0.125,
            s3_col: 40.0,
            s4_row: 50.0,
            s5_rcv: 52.0,
            // Measured on the retail/VCF corpora: dict + RLE + bit-packing
            // lands well under one byte per cell amortized.
            s6_columnar_cell: 0.5,
            max_table_cols: Some(1600),
        }
    }

    /// The theoretical "ideal database" model of §VII-B.b: a ROM/COM table
    /// costs (#cells + rows + cols) units; an RCV tuple costs 3 units.
    pub fn ideal() -> Self {
        CostModel {
            s1_table: 0.0,
            s2_cell: 1.0,
            s3_col: 1.0,
            s4_row: 1.0,
            s5_rcv: 3.0,
            s6_columnar_cell: 1.0,
            max_table_cols: None,
        }
    }

    /// ROM table cost (Equation 2): `s1 + s2·(r·c) + s3·c + s4·r`, or
    /// infinity when the width constraint is violated.
    pub fn rom(&self, rows: u64, cols: u64) -> f64 {
        if let Some(cap) = self.max_table_cols {
            if cols > cap {
                return f64::INFINITY;
            }
        }
        self.s1_table
            + self.s2_cell * (rows as f64 * cols as f64)
            + self.s3_col * cols as f64
            + self.s4_row * rows as f64
    }

    /// COM table cost — ROM transposed (Appendix A-C1).
    pub fn com(&self, rows: u64, cols: u64) -> f64 {
        if let Some(cap) = self.max_table_cols {
            if rows > cap {
                return f64::INFINITY;
            }
        }
        self.s1_table
            + self.s2_cell * (rows as f64 * cols as f64)
            + self.s3_col * rows as f64
            + self.s4_row * cols as f64
    }

    /// RCV cost for a region: `s5 · #filled` (Appendix A-C1). The single
    /// up-front RCV table cost (s1) is charged once per decomposition, not
    /// per region.
    pub fn rcv(&self, filled: u64) -> f64 {
        self.s5_rcv * filled as f64
    }

    /// RCV *objective* cost used by the optimizers: includes the table
    /// cost, so decisions stay consistent with the final accounting. The
    /// paper folds all RCV regions into one table; when a decomposition has
    /// several RCV regions this over-estimates by `(k-1)·s1` — a
    /// conservative bias against fragmenting into many RCV pieces.
    pub fn rcv_table(&self, filled: u64) -> f64 {
        self.s1_table + self.s5_rcv * filled as f64
    }

    /// Columnar compressed region cost: `s1 + s3·c + s6·#filled`. There is
    /// no per-row term (no tuple headers — values live in typed arrays)
    /// and empty cells cost nothing (they collapse into null runs), so for
    /// large dense regions the per-cell constant dominates and undercuts
    /// ROM's `s2 + s4/c` amortized per-cell cost. Width caps do not apply:
    /// each column is its own array, not a relation attribute.
    pub fn columnar(&self, cols: u64, filled: u64) -> f64 {
        self.s1_table + self.s3_col * cols as f64 + self.s6_columnar_cell * filled as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::postgres()
    }
}

/// Access-cost constants for the Theorem 7 extension: the cost of serving a
/// rectangular access from a table is modelled as a per-table probe plus
/// per-tuple and per-cell transfer costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessModel {
    /// Cost of touching a table at all (index probe / relation open).
    pub per_table: f64,
    /// Cost per tuple fetched.
    pub per_tuple: f64,
    /// Cost per cell materialized out of fetched tuples.
    pub per_cell: f64,
}

impl Default for AccessModel {
    fn default() -> Self {
        // Relative magnitudes matching a tuple-at-a-time row store: a probe
        // costs about one tuple-width of work; wide tuples amortize.
        AccessModel {
            per_table: 100.0,
            per_tuple: 10.0,
            per_cell: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postgres_constants_match_paper() {
        let m = CostModel::postgres();
        assert_eq!(m.s1_table, 8192.0);
        assert_eq!(m.s2_cell, 0.125);
        assert_eq!(m.s3_col, 40.0);
        assert_eq!(m.s4_row, 50.0);
        assert_eq!(m.s5_rcv, 52.0);
    }

    #[test]
    fn rom_formula() {
        let m = CostModel::ideal();
        // r*c + c + r
        assert_eq!(m.rom(3, 4), 12.0 + 4.0 + 3.0);
        assert_eq!(m.com(3, 4), 12.0 + 3.0 + 4.0);
        assert_eq!(m.rcv(5), 15.0);
    }

    #[test]
    fn rom_dominates_rcv_when_dense_under_postgres() {
        let m = CostModel::postgres();
        // Fully dense 100x10 region: ROM row overhead beats per-cell RCV.
        let rom = m.rom(100, 10);
        let rcv = m.rcv(1000);
        assert!(rom < rcv, "rom {rom} should beat rcv {rcv} when dense");
    }

    #[test]
    fn rcv_wins_when_sparse() {
        let m = CostModel::postgres();
        // 3 filled cells scattered in 1000x1000.
        let rom = m.rom(1000, 1000);
        let rcv = m.rcv(3);
        assert!(rcv < rom);
    }

    #[test]
    fn width_cap_returns_infinity() {
        let m = CostModel::postgres();
        assert!(m.rom(10, 1601).is_infinite());
        assert!(m.com(1601, 10).is_infinite());
        assert!(m.rom(1601, 10).is_finite(), "rows are not capped for ROM");
    }

    #[test]
    fn com_is_rom_transposed() {
        let m = CostModel::postgres();
        assert_eq!(m.com(7, 3), m.rom(3, 7));
    }
}
