//! Optimal recursive decomposition via dynamic programming (paper §IV-D).
//!
//! `Opt(rect)` = min of (a) 0 when the rectangle holds no filled cell,
//! (b) storing the rectangle as a single table (ROM, and with the Theorem 6
//! extension also COM/RCV), (c) the best horizontal cut, (d) the best
//! vertical cut. Memoized over all O(n⁴) band sub-rectangles with O(n) cut
//! candidates each → O(n⁵) (Theorem 2). The decomposition is reconstructed
//! by re-evaluating the argmin along the optimal cut tree, which avoids
//! storing per-state choices.

use dataspread_grid::Rect;

use crate::model::{best_leaf, Decomposition, ModelKind, Region};
use crate::view::GridView;
use crate::{CostModel, OptimizerOptions};

/// Errors from the DP optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DpError {
    /// The (collapsed) grid exceeds `OptimizerOptions::dp_max_side`; use the
    /// greedy or aggressive-greedy optimizer instead.
    TooLarge { side: usize, max: usize },
}

impl std::fmt::Display for DpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpError::TooLarge { side, max } => {
                write!(f, "grid side {side} exceeds DP limit {max}")
            }
        }
    }
}

impl std::error::Error for DpError {}

struct Dp<'a> {
    view: &'a GridView,
    cm: &'a CostModel,
    opts: &'a OptimizerOptions,
    /// Triangular offsets: state (r1<=r2) maps to roff[r1] + (r2-r1).
    roff: Vec<usize>,
    coff: Vec<usize>,
    ncp: usize,
    memo: Vec<f64>,
}

const UNSET: f64 = -1.0;
const EPS: f64 = 1e-6;

impl<'a> Dp<'a> {
    fn new(view: &'a GridView, cm: &'a CostModel, opts: &'a OptimizerOptions) -> Self {
        let (h, w) = (view.h(), view.w());
        let mut roff = Vec::with_capacity(h);
        let mut acc = 0usize;
        for r1 in 0..h {
            roff.push(acc);
            acc += h - r1;
        }
        let nrp = acc;
        let mut coff = Vec::with_capacity(w);
        let mut acc = 0usize;
        for c1 in 0..w {
            coff.push(acc);
            acc += w - c1;
        }
        let ncp = acc;
        Dp {
            view,
            cm,
            opts,
            roff,
            coff,
            ncp,
            memo: vec![UNSET; nrp * ncp],
        }
    }

    #[inline]
    fn idx(&self, r1: usize, r2: usize, c1: usize, c2: usize) -> usize {
        (self.roff[r1] + (r2 - r1)) * self.ncp + self.coff[c1] + (c2 - c1)
    }

    fn solve(&mut self, r1: usize, r2: usize, c1: usize, c2: usize) -> f64 {
        if self.view.filled_weighted(r1, c1, r2, c2) == 0 {
            return 0.0;
        }
        let idx = self.idx(r1, r2, c1, c2);
        let cached = self.memo[idx];
        if cached != UNSET {
            return cached;
        }
        let (mut best, _) = best_leaf(self.view, self.cm, self.opts, r1, c1, r2, c2);
        // Horizontal cuts (between row bands i and i+1).
        for i in r1..r2 {
            let top = self.solve(r1, i, c1, c2);
            if top >= best {
                continue;
            }
            let bottom = self.solve(i + 1, r2, c1, c2);
            let cost = top + bottom;
            if cost < best {
                best = cost;
            }
        }
        // Vertical cuts.
        for j in c1..c2 {
            let left = self.solve(r1, r2, c1, j);
            if left >= best {
                continue;
            }
            let right = self.solve(r1, r2, j + 1, c2);
            let cost = left + right;
            if cost < best {
                best = cost;
            }
        }
        self.memo[idx] = best;
        best
    }

    fn reconstruct(&mut self, r1: usize, r2: usize, c1: usize, c2: usize, out: &mut Vec<Region>) {
        if self.view.filled_weighted(r1, c1, r2, c2) == 0 {
            return;
        }
        let target = self.solve(r1, r2, c1, c2);
        let (leaf_cost, kind) = best_leaf(self.view, self.cm, self.opts, r1, c1, r2, c2);
        if leaf_cost <= target + EPS {
            out.push(Region {
                rect: self.view.band_rect(r1, c1, r2, c2),
                kind,
            });
            return;
        }
        for i in r1..r2 {
            if self.solve(r1, i, c1, c2) + self.solve(i + 1, r2, c1, c2) <= target + EPS {
                self.reconstruct(r1, i, c1, c2, out);
                self.reconstruct(i + 1, r2, c1, c2, out);
                return;
            }
        }
        for j in c1..c2 {
            if self.solve(r1, r2, c1, j) + self.solve(r1, r2, j + 1, c2) <= target + EPS {
                self.reconstruct(r1, r2, c1, j, out);
                self.reconstruct(r1, r2, j + 1, c2, out);
                return;
            }
        }
        unreachable!("memoized optimum must be attained by some candidate");
    }
}

/// Run the optimal recursive-decomposition DP over a (weighted) grid view.
///
/// Returns the optimal decomposition within the recursive-decomposition
/// space (Theorem 2); with the weighted view this equals the optimum over
/// the unweighted grid (Theorem 5).
pub fn optimize_dp(
    view: &GridView,
    cm: &CostModel,
    opts: &OptimizerOptions,
) -> Result<Decomposition, DpError> {
    if view.is_empty() {
        return Ok(Decomposition::default());
    }
    let side = view.h().max(view.w());
    if side > opts.dp_max_side {
        return Err(DpError::TooLarge {
            side,
            max: opts.dp_max_side,
        });
    }
    let mut dp = Dp::new(view, cm, opts);
    let (h, w) = (view.h(), view.w());
    dp.solve(0, h - 1, 0, w - 1);
    let mut regions = Vec::new();
    dp.reconstruct(0, h - 1, 0, w - 1, &mut regions);
    Ok(Decomposition::new(regions))
}

/// The DP objective value without materializing regions.
pub fn dp_cost(view: &GridView, cm: &CostModel, opts: &OptimizerOptions) -> Result<f64, DpError> {
    if view.is_empty() {
        return Ok(0.0);
    }
    let side = view.h().max(view.w());
    if side > opts.dp_max_side {
        return Err(DpError::TooLarge {
            side,
            max: opts.dp_max_side,
        });
    }
    let mut dp = Dp::new(view, cm, opts);
    Ok(dp.solve(0, view.h() - 1, 0, view.w() - 1))
}

/// Cost of an explicit recursive decomposition given as a cut tree — used by
/// tests to verify DP optimality against enumerated alternatives.
#[doc(hidden)]
pub fn explicit_tree_cost(
    view: &GridView,
    cm: &CostModel,
    opts: &OptimizerOptions,
    rect_bands: (usize, usize, usize, usize),
    rng_choice: &mut impl FnMut(usize) -> usize,
) -> f64 {
    let (r1, r2, c1, c2) = rect_bands;
    if view.filled_weighted(r1, c1, r2, c2) == 0 {
        return 0.0;
    }
    let h_cuts = r2 - r1;
    let v_cuts = c2 - c1;
    let n_choices = 1 + h_cuts + v_cuts;
    let choice = rng_choice(n_choices);
    if choice == 0 || n_choices == 1 {
        return best_leaf(view, cm, opts, r1, c1, r2, c2).0;
    }
    if choice <= h_cuts {
        let i = r1 + choice - 1;
        explicit_tree_cost(view, cm, opts, (r1, i, c1, c2), rng_choice)
            + explicit_tree_cost(view, cm, opts, (i + 1, r2, c1, c2), rng_choice)
    } else {
        let j = c1 + (choice - h_cuts - 1);
        explicit_tree_cost(view, cm, opts, (r1, r2, c1, j), rng_choice)
            + explicit_tree_cost(view, cm, opts, (r1, r2, j + 1, c2), rng_choice)
    }
}

/// Convenience: cost of a primitive single-table model over the whole view.
pub fn primitive_cost(view: &GridView, cm: &CostModel, kind: ModelKind) -> f64 {
    let Some(bbox) = view.bbox() else { return 0.0 };
    let rect = Rect::new(bbox.r1, bbox.c1, bbox.r2, bbox.c2);
    match kind {
        ModelKind::Rom | ModelKind::Tom => cm.rom(rect.rows(), rect.cols()),
        ModelKind::Com => cm.com(rect.rows(), rect.cols()),
        ModelKind::Rcv => cm.s1_table + cm.rcv(view.total_filled()),
        ModelKind::Columnar => cm.columnar(rect.cols(), view.total_filled()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_grid::{CellAddr, SparseSheet};

    fn sheet_from(cells: &[(u32, u32)]) -> SparseSheet {
        let mut s = SparseSheet::new();
        for &(r, c) in cells {
            s.set_value(CellAddr::new(r, c), 1i64);
        }
        s
    }

    /// Two dense tables far apart (Figure 9 style).
    fn two_tables() -> SparseSheet {
        let mut cells = Vec::new();
        for r in 0..4 {
            for c in 1..4 {
                cells.push((r, c));
            }
        }
        for r in 4..7 {
            for c in 3..7 {
                cells.push((r, c));
            }
        }
        sheet_from(&cells)
    }

    #[test]
    fn empty_sheet_yields_empty_decomposition() {
        let view = GridView::from_sheet(&SparseSheet::new());
        let d = optimize_dp(&view, &CostModel::postgres(), &OptimizerOptions::default()).unwrap();
        assert_eq!(d.table_count(), 0);
    }

    #[test]
    fn dense_block_stays_single_rom_table() {
        // Large enough that ROM's fixed page cost amortizes away; a small
        // block would legitimately prefer RCV under PostgreSQL constants
        // (s1 = 8 KB dominates). 2000 rows also rules COM out via the
        // 1600-column relation-width cap (COM would need one column per
        // sheet row).
        let mut s = SparseSheet::new();
        for r in 0..2000 {
            for c in 0..10 {
                s.set_value(CellAddr::new(r, c), 1i64);
            }
        }
        let view = GridView::from_sheet(&s);
        let cm = CostModel::postgres();
        let d = optimize_dp(&view, &cm, &OptimizerOptions::default()).unwrap();
        assert_eq!(d.table_count(), 1);
        assert!(d.is_recoverable(&s));
        assert_eq!(d.regions[0].kind, ModelKind::Rom);
    }

    #[test]
    fn sparse_scatter_prefers_rcv_under_postgres() {
        // A few cells scattered over a wide area: per-cell RCV tuples beat
        // a mostly-empty ROM table (paper takeaway 1).
        let mut s = SparseSheet::new();
        for i in 0..10u32 {
            s.set_value(CellAddr::new(i * 5, (i * 7) % 50), 1i64);
        }
        let view = GridView::from_sheet(&s);
        let cm = CostModel::postgres();
        let d = optimize_dp(&view, &cm, &OptimizerOptions::default()).unwrap();
        assert!(
            d.regions.iter().all(|r| r.kind == ModelKind::Rcv),
            "scatter should land in RCV, got {:?}",
            d.regions
        );
    }

    #[test]
    fn dp_separates_distant_tables_under_ideal_model() {
        let s = two_tables();
        let view = GridView::from_sheet(&s);
        let cm = CostModel::ideal();
        let d = optimize_dp(&view, &cm, &OptimizerOptions::default()).unwrap();
        assert!(d.is_recoverable(&s));
        assert!(!d.has_overlaps());
        // Splitting must beat the single bounding ROM (lots of empty cells).
        let single = primitive_cost(&view, &cm, ModelKind::Rom);
        assert!(d.storage_cost(&view, &cm) < single);
        assert!(d.table_count() >= 2);
    }

    #[test]
    fn dp_cost_matches_decomposition_cost_without_rcv() {
        let s = two_tables();
        let view = GridView::from_sheet(&s);
        let cm = CostModel::ideal();
        let opts = OptimizerOptions {
            models: crate::ModelSet::ROM_ONLY,
            ..OptimizerOptions::default()
        };
        let d = optimize_dp(&view, &cm, &opts).unwrap();
        let cost = dp_cost(&view, &cm, &opts).unwrap();
        assert!((d.storage_cost(&view, &cm) - cost).abs() < 1e-9);
    }

    #[test]
    fn weighted_equals_unweighted_optimum() {
        // Theorem 5 on a concrete sheet.
        let s = two_tables();
        let cm = CostModel::postgres();
        let opts = OptimizerOptions::default();
        let wcost = dp_cost(&GridView::from_sheet(&s), &cm, &opts).unwrap();
        let ucost = dp_cost(&GridView::from_sheet_unweighted(&s), &cm, &opts).unwrap();
        assert!(
            (wcost - ucost).abs() < 1e-6,
            "weighted {wcost} vs unweighted {ucost}"
        );
    }

    #[test]
    fn too_large_is_reported() {
        let mut s = SparseSheet::new();
        // A diagonal never collapses: n distinct rows and columns.
        for i in 0..40u32 {
            s.set_value(CellAddr::new(i, i), 1i64);
        }
        let view = GridView::from_sheet(&s);
        let opts = OptimizerOptions {
            dp_max_side: 16,
            ..OptimizerOptions::default()
        };
        assert!(matches!(
            optimize_dp(&view, &CostModel::postgres(), &opts),
            Err(DpError::TooLarge { .. })
        ));
    }

    #[test]
    fn counterexample_figure_10a_is_approximated_not_matched() {
        // The four-table pinwheel cannot be produced by recursive cuts
        // (Observation 1); the DP must still return a recoverable
        // decomposition.
        let mut cells = Vec::new();
        for r in 0..4 {
            for c in 0..2 {
                cells.push((r, c));
            }
        }
        for r in 0..2 {
            for c in 3..9 {
                cells.push((r, c));
            }
        }
        for r in 5..7 {
            for c in 0..6 {
                cells.push((r, c));
            }
        }
        for r in 3..7 {
            for c in 7..9 {
                cells.push((r, c));
            }
        }
        let s = sheet_from(&cells);
        let view = GridView::from_sheet(&s);
        let d = optimize_dp(&view, &CostModel::ideal(), &OptimizerOptions::default()).unwrap();
        assert!(d.is_recoverable(&s));
        assert!(
            d.table_count() >= 4,
            "pinwheel needs at least 4 pieces + extras"
        );
    }
}
