//! Greedy and aggressive-greedy decomposition (paper §IV-E).
//!
//! Both avoid the DP's O(n⁵) by making local decisions:
//!
//! * **Greedy** compares "store this rectangle as one table" against the
//!   best single cut where both halves are costed as single tables (i.e.
//!   `Opt()` replaced by the leaf cost — a worst-case assumption about the
//!   halves). It stops as soon as not splitting looks locally best.
//! * **Aggressive greedy** never stops early: it always takes the best
//!   local cut until regions are uniformly filled or empty, then backtracks
//!   up the cut tree assembling the cheapest assignment discovered. Same
//!   O(n²) shape, a larger explored space, and costs between Greedy and DP
//!   (Figure 13/15).

use crate::model::{best_leaf, Decomposition, Region};
use crate::view::GridView;
use crate::{CostModel, OptimizerOptions};

/// Leaf cost treating empty rectangles as free.
fn leaf_or_zero(
    view: &GridView,
    cm: &CostModel,
    opts: &OptimizerOptions,
    r1: usize,
    c1: usize,
    r2: usize,
    c2: usize,
) -> f64 {
    if view.filled_weighted(r1, c1, r2, c2) == 0 {
        0.0
    } else {
        best_leaf(view, cm, opts, r1, c1, r2, c2).0
    }
}

/// Find the locally best cut: returns (is_horizontal, index, combined leaf
/// cost) or `None` when the region is a single band cell.
fn best_cut(
    view: &GridView,
    cm: &CostModel,
    opts: &OptimizerOptions,
    r1: usize,
    c1: usize,
    r2: usize,
    c2: usize,
) -> Option<(bool, usize, f64)> {
    let mut best: Option<(bool, usize, f64)> = None;
    for i in r1..r2 {
        let cost = leaf_or_zero(view, cm, opts, r1, c1, i, c2)
            + leaf_or_zero(view, cm, opts, i + 1, c1, r2, c2);
        if best.is_none_or(|(_, _, b)| cost < b) {
            best = Some((true, i, cost));
        }
    }
    for j in c1..c2 {
        let cost = leaf_or_zero(view, cm, opts, r1, c1, r2, j)
            + leaf_or_zero(view, cm, opts, r1, j + 1, r2, c2);
        if best.is_none_or(|(_, _, b)| cost < b) {
            best = Some((false, j, cost));
        }
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn greedy_rec(
    view: &GridView,
    cm: &CostModel,
    opts: &OptimizerOptions,
    r1: usize,
    c1: usize,
    r2: usize,
    c2: usize,
    out: &mut Vec<Region>,
) {
    if view.filled_weighted(r1, c1, r2, c2) == 0 {
        return;
    }
    let (no_split, kind) = best_leaf(view, cm, opts, r1, c1, r2, c2);
    match best_cut(view, cm, opts, r1, c1, r2, c2) {
        Some((horizontal, at, cut_cost)) if cut_cost < no_split => {
            if horizontal {
                greedy_rec(view, cm, opts, r1, c1, at, c2, out);
                greedy_rec(view, cm, opts, at + 1, c1, r2, c2, out);
            } else {
                greedy_rec(view, cm, opts, r1, c1, r2, at, out);
                greedy_rec(view, cm, opts, r1, at + 1, r2, c2, out);
            }
        }
        _ => out.push(Region {
            rect: view.band_rect(r1, c1, r2, c2),
            kind,
        }),
    }
}

/// Greedy decomposition (paper §IV-E), O(n²).
pub fn optimize_greedy(view: &GridView, cm: &CostModel, opts: &OptimizerOptions) -> Decomposition {
    if view.is_empty() {
        return Decomposition::default();
    }
    let mut regions = Vec::new();
    greedy_rec(
        view,
        cm,
        opts,
        0,
        0,
        view.h() - 1,
        view.w() - 1,
        &mut regions,
    );
    Decomposition::new(regions)
}

/// Whether the band rectangle is uniformly filled (no empty cell).
fn fully_dense(view: &GridView, r1: usize, c1: usize, r2: usize, c2: usize) -> bool {
    let area = view.rows_weight(r1, r2) * view.cols_weight(c1, c2);
    view.filled_weighted(r1, c1, r2, c2) == area
}

fn agg_rec(
    view: &GridView,
    cm: &CostModel,
    opts: &OptimizerOptions,
    r1: usize,
    c1: usize,
    r2: usize,
    c2: usize,
) -> (f64, Vec<Region>) {
    if view.filled_weighted(r1, c1, r2, c2) == 0 {
        return (0.0, Vec::new());
    }
    let (leaf_cost, kind) = best_leaf(view, cm, opts, r1, c1, r2, c2);
    let leaf_region = Region {
        rect: view.band_rect(r1, c1, r2, c2),
        kind,
    };
    if fully_dense(view, r1, c1, r2, c2) {
        return (leaf_cost, vec![leaf_region]);
    }
    let Some((horizontal, at, _)) = best_cut(view, cm, opts, r1, c1, r2, c2) else {
        // A single band cell is uniform, so non-dense means empty — already
        // handled above; this is unreachable but safe.
        return (leaf_cost, vec![leaf_region]);
    };
    let ((ca, ra), (cb, rb)) = if horizontal {
        (
            agg_rec(view, cm, opts, r1, c1, at, c2),
            agg_rec(view, cm, opts, at + 1, c1, r2, c2),
        )
    } else {
        (
            agg_rec(view, cm, opts, r1, c1, r2, at),
            agg_rec(view, cm, opts, r1, at + 1, r2, c2),
        )
    };
    let split_cost = ca + cb;
    if leaf_cost <= split_cost {
        (leaf_cost, vec![leaf_region])
    } else {
        let mut regions = ra;
        regions.extend(rb);
        (split_cost, regions)
    }
}

/// Aggressive-greedy decomposition (paper §IV-E), O(n²) with backtracking
/// assembly.
pub fn optimize_agg(view: &GridView, cm: &CostModel, opts: &OptimizerOptions) -> Decomposition {
    if view.is_empty() {
        return Decomposition::default();
    }
    let (_, regions) = agg_rec(view, cm, opts, 0, 0, view.h() - 1, view.w() - 1);
    Decomposition::new(regions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{dp_cost, optimize_dp};
    use dataspread_grid::{CellAddr, SparseSheet};

    fn sheet_with_tables(tables: &[(u32, u32, u32, u32)]) -> SparseSheet {
        let mut s = SparseSheet::new();
        for &(r1, c1, r2, c2) in tables {
            for r in r1..=r2 {
                for c in c1..=c2 {
                    s.set_value(CellAddr::new(r, c), 1i64);
                }
            }
        }
        s
    }

    #[test]
    fn empty_sheet() {
        let view = GridView::from_sheet(&SparseSheet::new());
        assert_eq!(
            optimize_greedy(&view, &CostModel::postgres(), &OptimizerOptions::default())
                .table_count(),
            0
        );
        assert_eq!(
            optimize_agg(&view, &CostModel::postgres(), &OptimizerOptions::default()).table_count(),
            0
        );
    }

    #[test]
    fn both_heuristics_recoverable_and_at_least_dp_cost() {
        let s = sheet_with_tables(&[(0, 0, 5, 3), (10, 8, 18, 12), (0, 10, 2, 14)]);
        let view = GridView::from_sheet(&s);
        let cm = CostModel::ideal();
        let opts = OptimizerOptions::default();
        let dp = dp_cost(&view, &cm, &opts).unwrap();
        for d in [
            optimize_greedy(&view, &cm, &opts),
            optimize_agg(&view, &cm, &opts),
        ] {
            assert!(d.is_recoverable(&s));
            assert!(!d.has_overlaps());
            let c = d.storage_cost(&view, &cm);
            assert!(c >= dp - 1e-6, "heuristic {c} beat DP {dp}?");
        }
    }

    #[test]
    fn agg_no_worse_than_single_table_and_explores_deeper_than_greedy() {
        // Layout where greedy's worst-case halves look bad but further
        // decomposition pays off: nested sparse frame around dense core.
        let mut s = sheet_with_tables(&[(5, 5, 14, 9)]);
        for i in 0..20u32 {
            s.set_value(CellAddr::new(i, 0), 1i64);
            s.set_value(CellAddr::new(i, 19), 1i64);
        }
        let view = GridView::from_sheet(&s);
        let cm = CostModel::ideal();
        let opts = OptimizerOptions::default();
        let greedy = optimize_greedy(&view, &cm, &opts).storage_cost(&view, &cm);
        let agg = optimize_agg(&view, &cm, &opts).storage_cost(&view, &cm);
        let single = crate::dp::primitive_cost(&view, &cm, crate::ModelKind::Rom);
        assert!(agg <= single + 1e-9);
        assert!(agg <= greedy + 1e-9, "agg {agg} must be <= greedy {greedy}");
    }

    #[test]
    fn agg_matches_dp_on_separable_tables() {
        let s = sheet_with_tables(&[(0, 0, 3, 2), (8, 6, 12, 9)]);
        let view = GridView::from_sheet(&s);
        let cm = CostModel::postgres();
        let opts = OptimizerOptions::default();
        let dp = optimize_dp(&view, &cm, &opts).unwrap();
        let agg = optimize_agg(&view, &cm, &opts);
        assert!(
            (agg.storage_cost(&view, &cm) - dp.storage_cost(&view, &cm)).abs() < 1e-6,
            "cleanly separable tables: agg should equal dp"
        );
    }
}
