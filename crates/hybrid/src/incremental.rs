//! Incremental maintenance of hybrid decompositions (paper Appendix A-C2).
//!
//! After user edits, re-optimizing from scratch would migrate every cell
//! into fresh tables. The incremental optimizer adds a *keep-as-is*
//! candidate for rectangles that exactly match a table of the existing
//! decomposition (no migration charge, Equation 21) and charges
//! `η · #populated-cells` for any region that must be (re)materialized
//! (Equation 22). `η` trades migration time against storage optimality
//! (Figure 26a).

use std::collections::HashMap;

use dataspread_grid::{Rect, SparseSheet};

use crate::model::{best_leaf, Decomposition, ModelKind, Region};
use crate::view::GridView;
use crate::{CostModel, OptimizerOptions};

/// Options for incremental maintenance.
#[derive(Debug, Clone)]
pub struct IncrementalOptions {
    /// Migration-cost factor η; 0 re-optimizes from scratch, large values
    /// freeze the current decomposition.
    pub eta: f64,
    pub base: OptimizerOptions,
}

impl Default for IncrementalOptions {
    fn default() -> Self {
        IncrementalOptions {
            eta: 1.0,
            base: OptimizerOptions::default(),
        }
    }
}

/// Statistics of an incremental re-optimization.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MigrationStats {
    /// Populated cells moved into new tables.
    pub migrated_cells: u64,
    /// Tables of the old decomposition kept as-is.
    pub kept_tables: usize,
    /// Total tables in the new decomposition.
    pub new_tables: usize,
}

struct Ctx<'a> {
    view: &'a GridView,
    cm: &'a CostModel,
    opts: &'a OptimizerOptions,
    eta: f64,
    old: &'a HashMap<Rect, ModelKind>,
    /// Absolute row/column boundaries of old regions. Cuts along these are
    /// preferred on cost ties, so the recursion can *reach* old rectangles
    /// as keep candidates instead of slicing past them.
    old_row_bounds: std::collections::HashSet<u32>,
    old_col_bounds: std::collections::HashSet<u32>,
}

/// Leaf candidates: keep (exact old-table match, no migration) vs rebuild
/// (best model + η·filled migration charge). Returns (cost, region, kept).
fn leaf_choice(ctx: &Ctx<'_>, r1: usize, c1: usize, r2: usize, c2: usize) -> (f64, Region, bool) {
    let rect = ctx.view.band_rect(r1, c1, r2, c2);
    let filled = ctx.view.filled_weighted(r1, c1, r2, c2);
    let (rebuild_cost, kind) = best_leaf(ctx.view, ctx.cm, ctx.opts, r1, c1, r2, c2);
    let rebuild = (
        rebuild_cost + ctx.eta * filled as f64,
        Region { rect, kind },
        false,
    );
    match ctx.old.get(&rect) {
        Some(&old_kind) => {
            let rows = ctx.view.rows_weight(r1, r2);
            let cols = ctx.view.cols_weight(c1, c2);
            let keep_cost = match old_kind {
                ModelKind::Rom | ModelKind::Tom => ctx.cm.rom(rows, cols),
                ModelKind::Com => ctx.cm.com(rows, cols),
                ModelKind::Rcv => ctx.cm.rcv_table(filled),
                ModelKind::Columnar => ctx.cm.columnar(cols, filled),
            };
            if keep_cost <= rebuild.0 {
                (
                    keep_cost,
                    Region {
                        rect,
                        kind: old_kind,
                    },
                    true,
                )
            } else {
                rebuild
            }
        }
        None => rebuild,
    }
}

fn fully_dense(view: &GridView, r1: usize, c1: usize, r2: usize, c2: usize) -> bool {
    let area = view.rows_weight(r1, r2) * view.cols_weight(c1, c2);
    view.filled_weighted(r1, c1, r2, c2) == area
}

/// Aggressive-greedy recursion with the keep-as-is candidate.
fn agg_rec(
    ctx: &Ctx<'_>,
    r1: usize,
    c1: usize,
    r2: usize,
    c2: usize,
) -> (f64, Vec<(Region, bool)>) {
    if ctx.view.filled_weighted(r1, c1, r2, c2) == 0 {
        return (0.0, Vec::new());
    }
    let (leaf_cost, leaf_region, kept) = leaf_choice(ctx, r1, c1, r2, c2);
    // Uniform regions can't profit from further cuts, but a kept table
    // match still matters — leaf_choice already handled it.
    if fully_dense(ctx.view, r1, c1, r2, c2) && (r1 == r2 && c1 == c2) {
        return (leaf_cost, vec![(leaf_region, kept)]);
    }
    // Best local cut by rebuild-leaf costs (same rule as plain Agg, with
    // migration charges so keeping big old tables stays attractive). On
    // cost ties, cuts along old-region boundaries win so keep candidates
    // stay reachable by the recursion.
    let mut best_cut: Option<(bool, usize, f64, bool)> = None;
    let leaf0 = |r1: usize, c1: usize, r2: usize, c2: usize| -> f64 {
        if ctx.view.filled_weighted(r1, c1, r2, c2) == 0 {
            0.0
        } else {
            leaf_choice(ctx, r1, c1, r2, c2).0
        }
    };
    let better = |cost: f64, pref: bool, best: &Option<(bool, usize, f64, bool)>| -> bool {
        match best {
            None => true,
            Some((_, _, b, bpref)) => {
                let tol = 1e-9 * b.abs().max(1.0);
                cost < b - tol || (cost < b + tol && pref && !bpref)
            }
        }
    };
    for i in r1..r2 {
        let cost = leaf0(r1, c1, i, c2) + leaf0(i + 1, c1, r2, c2);
        let boundary = ctx.view.band_rect(i, c1, i, c1).r2 + 1;
        let pref = ctx.old_row_bounds.contains(&boundary);
        if better(cost, pref, &best_cut) {
            best_cut = Some((true, i, cost, pref));
        }
    }
    for j in c1..c2 {
        let cost = leaf0(r1, c1, r2, j) + leaf0(r1, j + 1, r2, c2);
        let boundary = ctx.view.band_rect(r1, j, r1, j).c2 + 1;
        let pref = ctx.old_col_bounds.contains(&boundary);
        if better(cost, pref, &best_cut) {
            best_cut = Some((false, j, cost, pref));
        }
    }
    let Some((horizontal, at, _, _)) = best_cut else {
        return (leaf_cost, vec![(leaf_region, kept)]);
    };
    let ((ca, ra), (cb, rb)) = if horizontal {
        (
            agg_rec(ctx, r1, c1, at, c2),
            agg_rec(ctx, at + 1, c1, r2, c2),
        )
    } else {
        (
            agg_rec(ctx, r1, c1, r2, at),
            agg_rec(ctx, r1, at + 1, r2, c2),
        )
    };
    let split = ca + cb;
    if leaf_cost <= split {
        (leaf_cost, vec![(leaf_region, kept)])
    } else {
        let mut regions = ra;
        regions.extend(rb);
        (split, regions)
    }
}

/// Incrementally re-optimize: keeps old tables where worthwhile, charges
/// `η · migCost` for regions that change (paper Appendix A-C2, Figure 26).
pub fn incremental_agg(
    sheet: &SparseSheet,
    old: &Decomposition,
    cm: &CostModel,
    opts: &IncrementalOptions,
) -> (Decomposition, MigrationStats) {
    // Force band boundaries at old-region edges so "keep" rectangles remain
    // expressible in band coordinates.
    let mut row_bounds = Vec::new();
    let mut col_bounds = Vec::new();
    for region in &old.regions {
        row_bounds.push(region.rect.r1);
        row_bounds.push(region.rect.r2 + 1);
        col_bounds.push(region.rect.c1);
        col_bounds.push(region.rect.c2 + 1);
    }
    let view = GridView::with_boundaries(sheet, &row_bounds, &col_bounds);
    if view.is_empty() {
        return (Decomposition::default(), MigrationStats::default());
    }
    let old_map: HashMap<Rect, ModelKind> = old
        .regions
        .iter()
        .map(|region| (region.rect, region.kind))
        .collect();
    let ctx = Ctx {
        view: &view,
        cm,
        opts: &opts.base,
        eta: opts.eta,
        old: &old_map,
        old_row_bounds: row_bounds.iter().copied().collect(),
        old_col_bounds: col_bounds.iter().copied().collect(),
    };
    let (_, tagged) = agg_rec(&ctx, 0, 0, view.h() - 1, view.w() - 1);
    let mut stats = MigrationStats {
        new_tables: tagged.len(),
        ..MigrationStats::default()
    };
    let mut regions = Vec::with_capacity(tagged.len());
    for (region, kept) in tagged {
        if kept {
            stats.kept_tables += 1;
        } else {
            stats.migrated_cells += view.filled_in(&region.rect);
        }
        regions.push(region);
    }
    (Decomposition::new(regions), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::optimize_agg;
    use dataspread_grid::CellAddr;

    fn dense_sheet(r1: u32, c1: u32, r2: u32, c2: u32) -> SparseSheet {
        let mut s = SparseSheet::new();
        for r in r1..=r2 {
            for c in c1..=c2 {
                s.set_value(CellAddr::new(r, c), 1i64);
            }
        }
        s
    }

    #[test]
    fn unchanged_sheet_keeps_everything() {
        let s = dense_sheet(0, 0, 9, 4);
        let view = GridView::from_sheet(&s);
        let cm = CostModel::postgres();
        let old = optimize_agg(&view, &cm, &OptimizerOptions::default());
        let (new, stats) = incremental_agg(&s, &old, &cm, &IncrementalOptions::default());
        assert_eq!(stats.migrated_cells, 0);
        assert_eq!(stats.kept_tables, old.table_count());
        assert!(new.is_recoverable(&s));
    }

    #[test]
    fn large_eta_freezes_decomposition() {
        let mut s = dense_sheet(0, 0, 9, 4);
        let view = GridView::from_sheet(&s);
        let cm = CostModel::postgres();
        let old = optimize_agg(&view, &cm, &OptimizerOptions::default());
        // Diverge: add a second dense block.
        for r in 20..30 {
            for c in 0..5 {
                s.set_value(CellAddr::new(r, c), 1i64);
            }
        }
        let (new, stats) = incremental_agg(
            &s,
            &old,
            &cm,
            &IncrementalOptions {
                eta: 1e12,
                ..IncrementalOptions::default()
            },
        );
        // The old table must be kept; only the new block migrates.
        assert!(stats.kept_tables >= 1, "huge eta must keep the old table");
        assert!(new.is_recoverable(&s));
        assert!(stats.migrated_cells <= 50);
    }

    #[test]
    fn zero_eta_matches_from_scratch_cost() {
        let mut s = dense_sheet(0, 0, 5, 5);
        for r in 30..34 {
            for c in 10..14 {
                s.set_value(CellAddr::new(r, c), 1i64);
            }
        }
        let cm = CostModel::postgres();
        let old = Decomposition::default(); // nothing to keep
        let (new, stats) = incremental_agg(
            &s,
            &old,
            &cm,
            &IncrementalOptions {
                eta: 0.0,
                ..IncrementalOptions::default()
            },
        );
        let scratch = optimize_agg(&GridView::from_sheet(&s), &cm, &OptimizerOptions::default());
        let view = GridView::from_sheet(&s);
        assert!((new.storage_cost(&view, &cm) - scratch.storage_cost(&view, &cm)).abs() < 1e-6);
        assert_eq!(stats.kept_tables, 0);
        assert_eq!(stats.migrated_cells, s.filled_count() as u64);
    }

    #[test]
    fn eta_monotonicity_storage_vs_migration() {
        // Higher eta ⇒ fewer migrated cells, storage no better (Fig 26a).
        let mut s = dense_sheet(0, 0, 9, 9);
        let view0 = GridView::from_sheet(&s);
        let cm = CostModel::postgres();
        let old = optimize_agg(&view0, &cm, &OptimizerOptions::default());
        for r in 0..10 {
            for c in 30..33 {
                s.set_value(CellAddr::new(r, c), 1i64);
            }
        }
        for r in 40..45 {
            s.set_value(CellAddr::new(r, 0), 1i64);
        }
        let mut prev_migrated = u64::MAX;
        for eta in [0.0, 10.0, 1e6] {
            let (_, stats) = incremental_agg(
                &s,
                &old,
                &cm,
                &IncrementalOptions {
                    eta,
                    ..IncrementalOptions::default()
                },
            );
            assert!(
                stats.migrated_cells <= prev_migrated,
                "eta {eta}: migration should not increase"
            );
            prev_migrated = stats.migrated_cells;
        }
    }
}
