//! Presentational awareness: primitive and hybrid data models (paper §IV).
//!
//! A spreadsheet can be stored in a database as a single table — row
//! oriented (ROM), column oriented (COM), or row-column-value (RCV) — or
//! decomposed into multiple tables, one per region, each using the model
//! that suits that region ("hybrid data models"). Finding the best hybrid is
//! NP-hard (Theorem 1, by reduction from minimum edge-length rectilinear
//! partitioning), but restricting to decompositions obtainable by recursive
//! horizontal/vertical cuts admits an exact dynamic program (Theorem 2) as
//! well as cheap greedy heuristics.
//!
//! * [`cost::CostModel`] — the s1..s5 storage constants (PostgreSQL and
//!   "ideal database" presets) plus optional access costs,
//! * [`view::GridView`] — (weighted) occupancy with O(1) rectangle counts;
//!   collapsing structurally identical adjacent rows/columns implements the
//!   paper's *weighted representation* (Theorem 5: no loss of optimality),
//! * [`dp`] — optimal recursive decomposition, O(n⁵),
//! * [`greedy`] — the greedy and aggressive-greedy heuristics, O(n²),
//! * [`incremental`] — maintenance under edits with migration factor η,
//! * [`bounds`] — the OPT lower bound and the ⌊e·s2/s1 + 1⌋ table-count
//!   upper bound (Theorems 3 and 4).

pub mod bounds;
pub mod cost;
pub mod dp;
pub mod greedy;
pub mod incremental;
pub mod model;
pub mod view;

pub use bounds::{opt_lower_bound, table_count_upper_bound};
pub use cost::{AccessModel, CostModel};
pub use dp::optimize_dp;
pub use greedy::{optimize_agg, optimize_greedy};
pub use incremental::{incremental_agg, IncrementalOptions};
pub use model::{Decomposition, ModelKind, Region};
pub use view::GridView;

/// Which single-table models the optimizer may assign to a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSet {
    pub rom: bool,
    pub com: bool,
    pub rcv: bool,
    /// The columnar compressed layout (dictionary/RLE typed arrays). Off in
    /// every paper-faithful preset: it is a post-paper physical layout, only
    /// considered for regions past [`OptimizerOptions::columnar_min_filled`].
    pub columnar: bool,
}

impl ModelSet {
    /// ROM-only — the setting of Problem 1 (Hybrid-ROM).
    pub const ROM_ONLY: ModelSet = ModelSet {
        rom: true,
        com: false,
        rcv: false,
        columnar: false,
    };

    /// ROM + COM + RCV — the extension of Theorem 6.
    pub const ALL: ModelSet = ModelSet {
        rom: true,
        com: true,
        rcv: true,
        columnar: false,
    };

    /// Every model including the columnar compressed layout.
    pub const ALL_WITH_COLUMNAR: ModelSet = ModelSet {
        columnar: true,
        ..ModelSet::ALL
    };
}

impl Default for ModelSet {
    fn default() -> Self {
        ModelSet::ALL
    }
}

/// Options shared by the optimizers.
#[derive(Debug, Clone)]
pub struct OptimizerOptions {
    pub models: ModelSet,
    /// DP guard: refuse grids whose (collapsed) side exceeds this, since DP
    /// is O(n⁵) (the paper terminates DP after a wall-clock budget; we bound
    /// the input instead so behaviour is deterministic).
    pub dp_max_side: usize,
    /// Optional formula/scroll workload: rectangles whose access cost is
    /// added to the objective (paper Theorem 7 extension).
    pub workload: Vec<dataspread_grid::Rect>,
    /// Access-cost constants; only used when `workload` is non-empty.
    pub access: AccessModel,
    /// Minimum (weighted) filled cells before a band may be assigned the
    /// columnar layout. Point writes on a columnar region pay an overlay
    /// merge and periodic compaction, so the layout only makes sense for
    /// regions large enough that scan/footprint wins dominate — small
    /// regions stay with the paper's row-oriented models.
    pub columnar_min_filled: u64,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            models: ModelSet::default(),
            dp_max_side: 96,
            workload: Vec::new(),
            access: AccessModel::default(),
            columnar_min_filled: 65_536,
        }
    }
}
