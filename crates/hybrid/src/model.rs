//! Hybrid data models: regions, decompositions, and their cost.

use dataspread_grid::{Rect, SparseSheet};

use crate::cost::CostModel;
use crate::view::GridView;
use crate::{AccessModel, ModelSet, OptimizerOptions};

/// The primitive data model assigned to a region (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Row-oriented: one tuple per sheet row.
    Rom,
    /// Column-oriented: one tuple per sheet column.
    Com,
    /// Row-column-value: one tuple per filled cell.
    Rcv,
    /// Table-oriented: a linked database table (not chosen by the
    /// optimizer; created by `linkTable`).
    Tom,
    /// Columnar compressed: per-column typed arrays with dictionary and
    /// run-length encoding — the post-paper third physical layout for
    /// large read-mostly regions (only considered when
    /// [`crate::ModelSet::columnar`] is enabled).
    Columnar,
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ModelKind::Rom => "ROM",
            ModelKind::Com => "COM",
            ModelKind::Rcv => "RCV",
            ModelKind::Tom => "TOM",
            ModelKind::Columnar => "COL",
        })
    }
}

/// One region of a hybrid decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    pub rect: Rect,
    pub kind: ModelKind,
}

/// A hybrid data model: a set of disjoint regions covering the filled cells.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Decomposition {
    pub regions: Vec<Region>,
}

impl Decomposition {
    pub fn new(regions: Vec<Region>) -> Self {
        Decomposition { regions }
    }

    /// A single-table decomposition covering the sheet's bounding box.
    pub fn single(sheet: &SparseSheet, kind: ModelKind) -> Self {
        match sheet.bounding_box() {
            Some(bbox) => Decomposition {
                regions: vec![Region { rect: bbox, kind }],
            },
            None => Decomposition::default(),
        }
    }

    pub fn table_count(&self) -> usize {
        self.regions.len()
    }

    /// Storage cost under `cm` (Equation 1 summed over tables, with the
    /// single up-front RCV table cost charged once).
    pub fn storage_cost(&self, view: &GridView, cm: &CostModel) -> f64 {
        let mut total = 0.0;
        let mut any_rcv = false;
        for region in &self.regions {
            let rows = region.rect.rows();
            let cols = region.rect.cols();
            total += match region.kind {
                ModelKind::Rom | ModelKind::Tom => cm.rom(rows, cols),
                ModelKind::Com => cm.com(rows, cols),
                ModelKind::Rcv => {
                    any_rcv = true;
                    cm.rcv(view.filled_in(&region.rect))
                }
                ModelKind::Columnar => cm.columnar(cols, view.filled_in(&region.rect)),
            };
        }
        if any_rcv {
            total += cm.s1_table;
        }
        total
    }

    /// Access cost of serving `workload` rectangles from this decomposition
    /// (Theorem 7 extension): each intersected table contributes a probe
    /// plus per-tuple and per-cell transfer.
    pub fn access_cost(&self, view: &GridView, am: &AccessModel, workload: &[Rect]) -> f64 {
        let mut total = 0.0;
        for want in workload {
            for region in &self.regions {
                let Some(hit) = want.intersection(&region.rect) else {
                    continue;
                };
                total += am.per_table;
                total += match region.kind {
                    // ROM fetches whole tuples for the hit rows.
                    ModelKind::Rom | ModelKind::Tom => {
                        am.per_tuple * hit.rows() as f64
                            + am.per_cell * (hit.rows() * region.rect.cols()) as f64
                    }
                    ModelKind::Com => {
                        am.per_tuple * hit.cols() as f64
                            + am.per_cell * (hit.cols() * region.rect.rows()) as f64
                    }
                    ModelKind::Rcv => {
                        let filled = view.filled_in(&hit) as f64;
                        am.per_tuple * filled + am.per_cell * filled
                    }
                    // Columnar fetches one column segment per hit column;
                    // materializing out of typed arrays avoids the boxed-
                    // datum walk, modelled as a flat per-cell discount.
                    ModelKind::Columnar => {
                        am.per_tuple * hit.cols() as f64
                            + am.per_cell * 0.25 * (hit.rows() * hit.cols()) as f64
                    }
                };
            }
        }
        total
    }

    /// Recoverability (paper §IV-A): every filled cell is recorded by
    /// exactly one region.
    pub fn is_recoverable(&self, sheet: &SparseSheet) -> bool {
        sheet.iter().all(|(addr, _)| {
            self.regions
                .iter()
                .filter(|reg| reg.rect.contains(addr))
                .count()
                == 1
        })
    }

    /// Whether any two regions overlap (recursive decompositions never do).
    pub fn has_overlaps(&self) -> bool {
        for (i, a) in self.regions.iter().enumerate() {
            for b in &self.regions[i + 1..] {
                if a.rect.intersects(&b.rect) {
                    return true;
                }
            }
        }
        false
    }
}

/// Best single-table (leaf) choice for a band rectangle: returns
/// `(cost, model)` under the allowed [`ModelSet`], including workload access
/// cost when configured.
pub(crate) fn best_leaf(
    view: &GridView,
    cm: &CostModel,
    opts: &OptimizerOptions,
    r1b: usize,
    c1b: usize,
    r2b: usize,
    c2b: usize,
) -> (f64, ModelKind) {
    let rows = view.rows_weight(r1b, r2b);
    let cols = view.cols_weight(c1b, c2b);
    let filled = view.filled_weighted(r1b, c1b, r2b, c2b);
    let rect = view.band_rect(r1b, c1b, r2b, c2b);
    let ModelSet {
        rom,
        com,
        rcv,
        columnar,
    } = opts.models;

    let mut best = (f64::INFINITY, ModelKind::Rom);
    let mut consider = |kind: ModelKind, storage: f64| {
        let mut cost = storage;
        if !opts.workload.is_empty() && cost.is_finite() {
            let probe = Decomposition::new(vec![Region { rect, kind }]);
            cost += probe.access_cost(view, &opts.access, &opts.workload);
        }
        if cost < best.0 {
            best = (cost, kind);
        }
    };
    if rom {
        consider(ModelKind::Rom, cm.rom(rows, cols));
    }
    if com {
        consider(ModelKind::Com, cm.com(rows, cols));
    }
    if rcv {
        consider(ModelKind::Rcv, cm.rcv_table(filled));
    }
    if columnar && filled >= opts.columnar_min_filled {
        consider(ModelKind::Columnar, cm.columnar(cols, filled));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_grid::CellAddr;

    fn sheet() -> SparseSheet {
        let mut s = SparseSheet::new();
        for r in 0..4 {
            for c in 0..3 {
                s.set_value(CellAddr::new(r, c), 1i64);
            }
        }
        s.set_value(CellAddr::new(10, 10), 2i64);
        s
    }

    #[test]
    fn single_covers_bbox() {
        let s = sheet();
        let d = Decomposition::single(&s, ModelKind::Rom);
        assert_eq!(d.table_count(), 1);
        assert_eq!(d.regions[0].rect, Rect::new(0, 0, 10, 10));
        assert!(d.is_recoverable(&s));
    }

    #[test]
    fn recoverability_fails_on_uncovered_or_double_covered() {
        let s = sheet();
        let missing = Decomposition::new(vec![Region {
            rect: Rect::new(0, 0, 3, 2),
            kind: ModelKind::Rom,
        }]);
        assert!(!missing.is_recoverable(&s), "misses the (10,10) cell");
        let doubled = Decomposition::new(vec![
            Region {
                rect: Rect::new(0, 0, 10, 10),
                kind: ModelKind::Rom,
            },
            Region {
                rect: Rect::new(0, 0, 0, 0),
                kind: ModelKind::Rcv,
            },
        ]);
        assert!(!doubled.is_recoverable(&s), "A1 covered twice");
        assert!(doubled.has_overlaps());
    }

    #[test]
    fn storage_cost_sums_tables_and_charges_rcv_once() {
        let s = sheet();
        let view = GridView::from_sheet(&s);
        let cm = CostModel::ideal();
        let d = Decomposition::new(vec![
            Region {
                rect: Rect::new(0, 0, 3, 2),
                kind: ModelKind::Rom,
            },
            Region {
                rect: Rect::new(10, 10, 10, 10),
                kind: ModelKind::Rcv,
            },
        ]);
        // ROM 4x3: 12+4+3 = 19; RCV 1 cell: 3; + one global s1 (0 in ideal).
        assert_eq!(d.storage_cost(&view, &cm), 19.0 + 3.0);
        let pg = CostModel::postgres();
        let with_rcv = d.storage_cost(&view, &pg);
        let rom_only = Decomposition::new(vec![d.regions[0]]).storage_cost(&view, &pg);
        assert!(
            with_rcv > rom_only + pg.rcv(1) + pg.s1_table - 1e-9,
            "global RCV table cost must be charged"
        );
    }

    #[test]
    fn access_cost_prefers_matching_model() {
        let s = sheet();
        let view = GridView::from_sheet(&s);
        let am = AccessModel::default();
        let dense = Rect::new(0, 0, 3, 2);
        // Row-range scan over the dense table.
        let workload = [Rect::new(0, 0, 1, 2)];
        let rom = Decomposition::new(vec![Region {
            rect: dense,
            kind: ModelKind::Rom,
        }])
        .access_cost(&view, &am, &workload);
        let rcv = Decomposition::new(vec![Region {
            rect: dense,
            kind: ModelKind::Rcv,
        }])
        .access_cost(&view, &am, &workload);
        // ROM: 2 tuples; RCV: 6 tuples — ROM must win.
        assert!(rom < rcv);
    }

    #[test]
    fn best_leaf_respects_model_set() {
        let s = sheet();
        let view = GridView::from_sheet(&s);
        let cm = CostModel::postgres();
        let mut opts = OptimizerOptions {
            models: ModelSet::ROM_ONLY,
            ..OptimizerOptions::default()
        };
        let (_, kind) = best_leaf(&view, &cm, &opts, 0, 0, view.h() - 1, view.w() - 1);
        assert_eq!(kind, ModelKind::Rom);
        opts.models = ModelSet::ALL;
        let (cost_all, _) = best_leaf(&view, &cm, &opts, 0, 0, view.h() - 1, view.w() - 1);
        let (cost_rom, _) = best_leaf(
            &view,
            &CostModel::postgres(),
            &OptimizerOptions {
                models: ModelSet::ROM_ONLY,
                ..OptimizerOptions::default()
            },
            0,
            0,
            view.h() - 1,
            view.w() - 1,
        );
        assert!(cost_all <= cost_rom);
    }
}
